//! Chaos suite: seeded fault-injection runs across the training loop,
//! the checkpoint format, and the market-data sanitizer.
//!
//! The headline scenario is the PR's acceptance test: one scripted
//! [`FaultPlan`] corrupts an on-disk checkpoint, poisons a gradient epoch
//! with NaN, and damages market candles — and guarded training still
//! completes, recovers through rollback/repair, reports the recoveries
//! through telemetry, and lands on **bit-for-bit** the same weights as a
//! fault-free run. Determinism is the load-bearing property: every test
//! here reruns its scenario and asserts identical outcomes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use spikefolio::agent::SdpAgent;
use spikefolio::checkpoint::{self, LoadCheckpointError};
use spikefolio::config::SdpConfig;
use spikefolio::guarded::{
    apply_market_faults, train_sdp_guarded, GuardedOutcome, ResilienceOptions,
};
use spikefolio::training::Trainer;
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_market::{sanitize_market, MarketData, SanitizeConfig};
use spikefolio_resilience::{FaultPlan, GradFault, GuardConfig, MarketFaultKind};
use spikefolio_snn::stbp::{flat_params, set_flat_params};
use spikefolio_telemetry::{labels, MemoryRecorder};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("spikefolio-chaos-{}-{name}", std::process::id()));
    p
}

fn tiny_cfg() -> SdpConfig {
    let mut cfg = SdpConfig::smoke();
    cfg.training.epochs = 4;
    cfg.training.steps_per_epoch = 2;
    cfg.training.batch_size = 4;
    cfg
}

fn chaos_market(seed: u64) -> MarketData {
    ExperimentPreset::experiment1().shrunk(30, 0).generate(seed)
}

/// The acceptance-scenario plan: a transient write fault on the very
/// first checkpoint, bitrot on the checkpoint that epoch 2's rollback
/// will read (successful write #2 = the post-epoch-1 state), a NaN
/// gradient at epoch 2, and three kinds of candle damage.
fn acceptance_plan() -> FaultPlan {
    FaultPlan::new(42)
        .fail_writes(checkpoint::CHECKPOINT_IO_LABEL, 1)
        .corrupt_write(checkpoint::CHECKPOINT_IO_LABEL, 2)
        .grad_fault_at(2, GradFault::NaN)
        .market_fault(3, 0, MarketFaultKind::DropNan)
        .market_fault(6, 1, MarketFaultKind::NonPositive)
        .market_fault(9, 2, MarketFaultKind::Outlier(50.0))
}

/// Runs the full damaged-data + guarded-training scenario once.
fn run_acceptance(path: &Path) -> (Vec<f64>, GuardedOutcome, MemoryRecorder, usize) {
    let plan = acceptance_plan();
    let mut market = chaos_market(7);
    apply_market_faults(&mut market, plan.market_faults());
    let report = sanitize_market(&mut market, &SanitizeConfig::default())
        .expect("repair policy never rejects");
    let repairs = report.repairs();

    let cfg = tiny_cfg();
    let trainer = Trainer::new(&cfg);
    let mut agent = SdpAgent::new(&cfg, market.num_assets(), 3);
    let mut rec = MemoryRecorder::new();
    let mut opts = ResilienceOptions {
        guard: GuardConfig::default(),
        checkpoint_path: Some(path.to_path_buf()),
        faults: plan,
    };
    let outcome = train_sdp_guarded(&trainer, &mut agent, &market, &mut opts, &mut rec);
    (flat_params(&agent.network), outcome, rec, repairs)
}

#[test]
fn chaos_run_recovers_and_is_bitwise_reproducible() {
    let path_a = tmp("acceptance-a.ckpt");
    let path_b = tmp("acceptance-b.ckpt");
    let (weights_a, outcome, rec, repairs) = run_acceptance(&path_a);

    // Training completed despite every injected fault.
    assert!(!outcome.aborted, "guarded run must not abort: {outcome:?}");
    assert_eq!(outcome.log.epoch_rewards.len(), tiny_cfg().training.epochs);
    assert!(weights_a.iter().all(|p| p.is_finite()));

    // The candle damage was found and repaired.
    assert!(repairs >= 3, "expected ≥3 sanitizer repairs, got {repairs}");

    // The NaN epoch was recovered via rollback, visible in telemetry.
    assert!(outcome.recoveries >= 1, "{outcome:?}");
    assert!(rec.counter_total(labels::COUNTER_RESILIENCE_RECOVERIES) >= 1);

    // The corrupted checkpoint was caught by its CRC and rewritten.
    assert!(outcome.corruption_detected >= 1, "{outcome:?}");
    assert!(rec.counter_total(labels::COUNTER_RESILIENCE_CORRUPTIONS) >= 1);

    // The transient write fault was absorbed by retry/backoff.
    assert!(outcome.io_retries >= 1, "{outcome:?}");
    assert!(rec.counter_total(labels::COUNTER_RESILIENCE_IO_RETRIES) >= 1);

    // After the final rewrite the on-disk checkpoint is clean and holds
    // exactly the final weights.
    let mut probe = SdpAgent::new(&tiny_cfg(), chaos_market(7).num_assets(), 3);
    checkpoint::load_sdp(&mut probe, &path_a).expect("final checkpoint must be intact");
    assert_eq!(flat_params(&probe.network), weights_a);

    // Same seed + same plan → bit-for-bit the same run (wall-clock
    // timings aside, everything must match).
    let (weights_b, outcome_b, _, _) = run_acceptance(&path_b);
    assert_eq!(weights_a, weights_b, "chaos run must be deterministic");
    assert_eq!(outcome.log.epoch_rewards, outcome_b.log.epoch_rewards);
    assert_eq!(outcome.log.epoch_grad_norms, outcome_b.log.epoch_grad_norms);
    assert_eq!(outcome.log.steps, outcome_b.log.steps);
    assert_eq!(outcome.recoveries, outcome_b.recoveries);
    assert_eq!(outcome.epochs_skipped, outcome_b.epochs_skipped);
    assert_eq!(outcome.io_retries, outcome_b.io_retries);
    assert_eq!(outcome.corruption_detected, outcome_b.corruption_detected);
    assert_eq!(outcome.aborted, outcome_b.aborted);

    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}

#[test]
fn recovered_run_matches_fault_free_training() {
    // Fault-free reference on the *same* repaired market.
    let plan = acceptance_plan();
    let mut market = chaos_market(7);
    apply_market_faults(&mut market, plan.market_faults());
    sanitize_market(&mut market, &SanitizeConfig::default()).unwrap();

    let cfg = tiny_cfg();
    let trainer = Trainer::new(&cfg);
    let mut clean = SdpAgent::new(&cfg, market.num_assets(), 3);
    let _ = trainer.train_sdp(&mut clean, &market);

    let path = tmp("reference.ckpt");
    let (faulted_weights, outcome, _, _) = run_acceptance(&path);
    std::fs::remove_file(&path).ok();

    // Rollback restores the pre-epoch state bit-for-bit and the one-shot
    // faults are consumed on their first firing, so the recovered run is
    // indistinguishable from one where the faults never happened.
    assert!(!outcome.aborted);
    assert_eq!(flat_params(&clean.network), faulted_weights);
}

#[test]
fn rollback_restores_bitwise_identical_weights_mid_run() {
    // Poison epoch 1 of a 2-epoch run and compare against training that
    // stops after epoch 0 + retrains epoch 1 — i.e. the rollback replay
    // must reproduce the clean epoch-1 update exactly.
    let market = chaos_market(11);
    let mut cfg = tiny_cfg();
    cfg.training.epochs = 2;
    let trainer = Trainer::new(&cfg);

    let mut clean = SdpAgent::new(&cfg, market.num_assets(), 5);
    let _ = trainer.train_sdp(&mut clean, &market);

    let mut faulted = SdpAgent::new(&cfg, market.num_assets(), 5);
    let mut opts = ResilienceOptions {
        faults: FaultPlan::new(8).grad_fault_at(1, GradFault::Inf),
        ..Default::default()
    };
    let outcome =
        train_sdp_guarded(&trainer, &mut faulted, &market, &mut opts, &mut MemoryRecorder::new());
    assert_eq!(outcome.recoveries, 1);
    assert_eq!(flat_params(&clean.network), flat_params(&faulted.network));
}

#[test]
fn truncated_checkpoint_is_detected_and_healed() {
    let path = tmp("torn.ckpt");
    let market = chaos_market(13);
    let cfg = tiny_cfg();
    let trainer = Trainer::new(&cfg);
    let mut agent = SdpAgent::new(&cfg, market.num_assets(), 9);
    // Tear the post-epoch-1 checkpoint in half; epoch 2's rollback reads it.
    let mut opts = ResilienceOptions {
        checkpoint_path: Some(path.clone()),
        faults: FaultPlan::new(21)
            .truncate_write(checkpoint::CHECKPOINT_IO_LABEL, 2)
            .grad_fault_at(2, GradFault::NaN),
        ..Default::default()
    };
    let mut rec = MemoryRecorder::new();
    let outcome = train_sdp_guarded(&trainer, &mut agent, &market, &mut opts, &mut rec);
    assert!(!outcome.aborted);
    assert!(outcome.corruption_detected >= 1, "{outcome:?}");

    // The healed checkpoint round-trips and matches the final weights.
    let mut probe = SdpAgent::new(&cfg, market.num_assets(), 9);
    checkpoint::load_sdp(&mut probe, &path).expect("healed checkpoint must load");
    assert_eq!(flat_params(&probe.network), flat_params(&agent.network));
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoint v2 round-trips arbitrary parameter bit patterns
    /// exactly, and any single flipped byte is detected — the file never
    /// silently loads wrong data.
    #[test]
    fn checkpoint_v2_checksum_round_trips_and_detects_bitrot(
        seed in 0u64..10_000,
        flip_pos in 0usize..1_000_000,
        flip_bit in 0u32..8,
    ) {
        let cfg = tiny_cfg();
        let mut agent = SdpAgent::new(&cfg, 11, seed);
        // Scramble the parameters deterministically from the seed so every
        // case checksums a different payload.
        let mut params = flat_params(&agent.network);
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for p in params.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *p = f64::from_bits(x >> 12 | 0x3ff0_0000_0000_0000); // finite, ∈ [1, 2)
        }
        set_flat_params(&mut agent.network, &params);

        let path = tmp(&format!("prop-{seed}.ckpt"));
        checkpoint::save_sdp(&agent, &path).unwrap();

        // Round trip is bit-exact.
        let mut restored = SdpAgent::new(&cfg, 11, seed.wrapping_add(1));
        checkpoint::load_sdp(&mut restored, &path).unwrap();
        let back = flat_params(&restored.network);
        prop_assert!(
            params.iter().zip(&back).all(|(a, b)| a.to_bits() == b.to_bits()),
            "round trip changed bits"
        );

        // Any single flipped byte must be rejected, never silently loaded.
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        std::fs::write(&path, &bytes).unwrap();
        let verdict = checkpoint::load_sdp(&mut restored, &path);
        std::fs::remove_file(&path).ok();
        match verdict {
            Err(
                LoadCheckpointError::Corrupt { .. }
                | LoadCheckpointError::Parse(_)
                | LoadCheckpointError::Shape { .. },
            ) => {}
            Err(LoadCheckpointError::Io(e)) => {
                return Err(format!("bitrot misclassified as IO error: {e}"));
            }
            Ok(()) => return Err(format!("flipped byte at {pos} loaded silently")),
        }
    }

    /// The sanitizer repairs arbitrary injected candle damage in one pass:
    /// a second pass always reports a clean market.
    #[test]
    fn sanitizer_repair_converges_in_one_pass(
        seed in 0u64..10_000,
        // The shrunk(30, 0) market has 60 periods; the outlier needs a
        // previous close as reference, so it starts at period 1.
        p1 in 0usize..60, a1 in 0usize..11,
        p2 in 0usize..60, a2 in 0usize..11,
        p3 in 1usize..60, a3 in 0usize..11,
        factor in 10.0f64..500.0,
    ) {
        let mut market = chaos_market(seed);
        apply_market_faults(&mut market, &[
            spikefolio_resilience::MarketFault {
                period: p1, asset: a1, kind: MarketFaultKind::DropNan,
            },
            spikefolio_resilience::MarketFault {
                period: p2, asset: a2, kind: MarketFaultKind::NonPositive,
            },
            spikefolio_resilience::MarketFault {
                period: p3, asset: a3, kind: MarketFaultKind::Outlier(factor),
            },
        ]);
        let cfg = SanitizeConfig::default();
        let first = sanitize_market(&mut market, &cfg)
            .map_err(|e| format!("repair policy rejected: {e}"))?;
        prop_assert!(!first.issues.is_empty(), "damage went undetected");
        let second = sanitize_market(&mut market, &cfg)
            .map_err(|e| format!("second pass rejected: {e}"))?;
        prop_assert!(second.clean(), "repair did not converge: {:?}", second.issues);
    }
}
