//! Integration tests for the Table 1 experiment presets: date ranges,
//! split fractions, and generated-market properties.

use spikefolio_market::experiments::{crypto_era_calendar, ExperimentPreset};
use spikefolio_market::{Date, Regime};

#[test]
fn table1_ranges_are_exact() {
    let cases = [
        ("Experiment 1", "2016/08/01", "2019/04/14", "2019/08/01"),
        ("Experiment 2", "2017/08/01", "2020/04/14", "2020/08/01"),
        ("Experiment 3", "2018/08/01", "2021/04/14", "2021/08/01"),
    ];
    for (preset, (name, start, split, end)) in ExperimentPreset::all().into_iter().zip(cases) {
        assert_eq!(preset.name, name);
        assert_eq!(preset.train_start.to_string(), start);
        assert_eq!(preset.backtest_start.to_string(), split);
        assert_eq!(preset.end.to_string(), end);
        // Each experiment spans three years.
        let days = preset.train_start.days_until(preset.end);
        assert!((1094..=1096).contains(&days), "{name} spans {days} days");
    }
}

#[test]
fn backtest_windows_are_about_15_weeks() {
    for preset in ExperimentPreset::all() {
        let days = preset.backtest_start.days_until(preset.end);
        assert!((108..=110).contains(&days), "{}: {days} backtest days", preset.name);
    }
}

#[test]
fn generated_markets_have_eleven_assets_and_full_span() {
    let preset = ExperimentPreset::experiment1().shrunk(100, 25);
    let market = preset.generate(2024);
    assert_eq!(market.num_assets(), 11);
    assert_eq!(market.num_periods(), 125 * 2);
    let (train, test) = market.split_at_date(preset.backtest_start);
    assert_eq!(train.num_periods() + test.num_periods(), market.num_periods());
    assert_eq!(test.start_date(), preset.backtest_start);
}

#[test]
fn generation_is_reproducible_across_calls() {
    let preset = ExperimentPreset::experiment2().shrunk(40, 10);
    let a = preset.generate(7);
    let b = preset.generate(7);
    for t in (0..a.num_periods()).step_by(13) {
        for asset in 0..a.num_assets() {
            assert_eq!(a.candle(t, asset), b.candle(t, asset));
        }
    }
}

#[test]
fn era_calendar_covers_all_three_experiments() {
    let cal = crypto_era_calendar();
    let first = cal.first().unwrap().0;
    let last = cal.last().unwrap().0;
    assert!(first <= Date::new(2016, 8, 1));
    assert!(last <= Date::new(2021, 8, 1));
    // The March 2020 COVID crash is present.
    assert!(cal.iter().any(|&(d, r)| r == Regime::Crash && d.year() == 2020));
    // The May 2021 correction is present.
    assert!(cal.iter().any(|&(d, r)| r == Regime::Crash && d.year() == 2021));
}

#[test]
fn experiment_climates_differ_across_presets() {
    // The three backtest windows land in different regimes, which is the
    // whole point of Table 1's three splits.
    let e2 = ExperimentPreset::experiment2().generator_config();
    let e3 = ExperimentPreset::experiment3().generator_config();
    assert_eq!(e2.regime_at(Date::new(2020, 5, 1)), Regime::MildBull); // post-crash recovery
    assert_eq!(e2.regime_at(Date::new(2020, 3, 15)), Regime::Crash); // …after the crash
    assert_eq!(e3.regime_at(Date::new(2021, 5, 15)), Regime::Crash); // May 2021 correction
    let e1 = ExperimentPreset::experiment1().generator_config();
    assert_eq!(e1.regime_at(Date::new(2019, 5, 1)), Regime::MildBull);
}

#[test]
fn candle_invariants_hold_across_a_full_generation() {
    let market = ExperimentPreset::experiment3().shrunk(120, 30).generate(5);
    for t in 0..market.num_periods() {
        for a in 0..market.num_assets() {
            let c = market.candle(t, a);
            assert!(c.low <= c.open.min(c.close));
            assert!(c.high >= c.open.max(c.close));
            assert!(c.low > 0.0 && c.volume >= 0.0);
        }
    }
}
