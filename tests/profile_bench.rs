//! Integration tests for the performance observatory: the pinned bench
//! matrix behind `spikefolio bench`, the baseline JSON round-trip and
//! regression gate, and the chrome-trace profile workload behind
//! `spikefolio profile`.

use spikefolio::profiling::{
    run_bench_workloads, run_profile_workload, WorkloadOptions, BENCH_BATCHES,
};
use spikefolio_profile::{compare, BenchBaseline, CompareThresholds};
use spikefolio_telemetry::labels;
use spikefolio_telemetry::value::{parse, Value};

#[test]
fn bench_baseline_round_trips_through_schema_tagged_json() {
    let base = run_bench_workloads(&WorkloadOptions::smoke(2016));
    let json = base.to_json();
    assert!(json.contains(spikefolio_profile::bench::SCHEMA));
    let back = BenchBaseline::parse(&json).expect("baseline JSON parses back");
    assert_eq!(back.entries.len(), base.entries.len());
    for e in &base.entries {
        let b = back.entry(&e.name).expect("entry survives round trip");
        assert_eq!(b.ops, e.ops, "{}", e.name);
        assert_eq!(b.reps, e.reps);
        assert!((b.wall_s - e.wall_s).abs() < 1e-12);
    }

    // The matrix covers forward+backward at every pinned batch size plus
    // the end-to-end slice.
    for batch in BENCH_BATCHES {
        assert!(base.entry(&format!("forward/b{batch}")).is_some());
        assert!(base.entry(&format!("backward/b{batch}")).is_some());
    }
    assert!(base.entry("table3/slice").is_some());
}

#[test]
fn bench_compare_gates_regressions_but_passes_a_fresh_self_run() {
    let opts = WorkloadOptions::smoke(2016);
    let base = run_bench_workloads(&opts);
    let thresholds = CompareThresholds::default();

    // A same-seed re-run has identical op counts, so the only live gate is
    // the wide two-sided wall-clock ratio — it must pass.
    let current = run_bench_workloads(&opts);
    for e in &base.entries {
        assert_eq!(current.entry(&e.name).expect("same matrix").ops, e.ops, "{}", e.name);
    }

    let selfcheck = compare(&base, &base, &thresholds);
    assert!(selfcheck.passed(), "self-compare must pass:\n{}", selfcheck.render());
    assert_eq!(selfcheck.num_failed(), 0);

    // A 2x-inflated baseline trips the stale-baseline side of the gate.
    let mut inflated = base.clone();
    for e in &mut inflated.entries {
        e.wall_s *= 2.0;
    }
    let report = compare(&inflated, &current, &thresholds);
    assert!(!report.passed(), "2x-inflated baseline must fail:\n{}", report.render());

    // Drifted op counts fail even when wall clock is identical.
    let mut drifted = base.clone();
    if let Some(ops) = drifted.entries[0].ops.get_mut("dense_macs") {
        *ops = ops.saturating_mul(2);
    }
    let report = compare(&drifted, &base, &thresholds);
    assert!(!report.passed(), "op-count drift must fail the gate");
}

#[test]
fn profile_trace_exports_nested_epoch_phases_and_deploy_spans() {
    let report = run_profile_workload(&WorkloadOptions::smoke(2016));

    let doc = parse(&report.trace_json).expect("chrome trace is valid JSON");
    let events = doc.get("traceEvents").and_then(Value::as_list).expect("traceEvents list");
    let complete_spans = |name: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("X")
                    && e.get("name").and_then(Value::as_str) == Some(name)
            })
            .map(|e| {
                let ts = e.get("ts").and_then(Value::as_f64).unwrap_or(f64::NAN);
                let dur = e.get("dur").and_then(Value::as_f64).unwrap_or(f64::NAN);
                (ts, ts + dur)
            })
            .collect::<Vec<_>>()
    };

    let epochs = complete_spans(labels::SPAN_TRAIN_EPOCH);
    assert!(!epochs.is_empty(), "trace has no epoch spans");
    for phase in [
        labels::SPAN_TRAIN_SAMPLE,
        labels::SPAN_TRAIN_FORWARD,
        labels::SPAN_TRAIN_BACKWARD,
        labels::SPAN_TRAIN_APPLY,
    ] {
        let spans = complete_spans(phase);
        assert!(!spans.is_empty(), "trace has no {phase} spans");
        for (t0, t1) in spans {
            assert!(
                epochs.iter().any(|&(e0, e1)| e0 <= t0 && t1 <= e1 + 1e-6),
                "{phase} span [{t0}, {t1}] escapes every epoch interval"
            );
        }
    }

    // The Loihi deployment contributes quantize + inference spans.
    assert!(
        !complete_spans(labels::SPAN_PROFILE_LOIHI_QUANTIZE).is_empty(),
        "trace has no quantize span"
    );
    assert!(!complete_spans(labels::SPAN_CHIP_INFER).is_empty(), "trace has no chip-infer spans");

    // Cost model + sparsity sanity.
    assert!(!report.cost.layers.is_empty());
    assert!(report.cost.total_synops() <= report.cost.total_dense_macs());
    assert!((0.0..=1.0).contains(&report.cost.sparsity()));
    if let Some(s) = report.train_sparsity {
        assert!((0.0..=1.0).contains(&s), "training sparsity gauge out of range: {s}");
    }
    assert!(report.phase_tree.contains("train/"), "phase tree misses train/ group");
}
