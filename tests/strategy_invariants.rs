//! Property tests spanning crates: every policy in the workspace must
//! maintain portfolio invariants on arbitrary generated markets.

use proptest::prelude::*;
use spikefolio::agent::SdpAgent;
use spikefolio::config::SdpConfig;
use spikefolio::drl::DrlAgent;
use spikefolio_baselines::{Anticor, BestStock, BuyAndHold, Ons, Ucrp, M0};
use spikefolio_env::backtest::HoldCash;
use spikefolio_env::{BacktestConfig, Backtester, CostModel, Policy};
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_market::MarketData;

fn market_for(seed: u64, days: i64) -> MarketData {
    ExperimentPreset::experiment1().shrunk(days, 0).generate(seed)
}

fn policies() -> Vec<Box<dyn Policy>> {
    let cfg = SdpConfig::smoke();
    vec![
        Box::new(Ons::new()),
        Box::new(BestStock::new()),
        Box::new(Anticor::with_window(4)),
        Box::new(M0::new()),
        Box::new(Ucrp::new()),
        Box::new(BuyAndHold::new()),
        Box::new(HoldCash),
        Box::new(SdpAgent::new(&cfg, 11, 5)),
        Box::new(DrlAgent::new(&cfg, 11, 5)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_policy_keeps_portfolio_invariants(seed in 0u64..1000) {
        let market = market_for(seed, 25);
        for mut policy in policies() {
            let r = Backtester::new(BacktestConfig {
                costs: CostModel::Proportional { rate: 0.0025 },
                risk_free_per_period: 0.0,
            })
            .run(policy.as_mut(), &market);
            // Value curve strictly positive and finite.
            prop_assert!(r.values.iter().all(|&v| v > 0.0 && v.is_finite()),
                "{} produced a bad value curve", r.policy_name);
            // All weights on the simplex.
            for w in &r.weights {
                prop_assert!(spikefolio_tensor::simplex::is_on_simplex(w, 1e-6),
                    "{} left the simplex: {w:?}", r.policy_name);
            }
            // Metrics well-formed.
            prop_assert!((0.0..1.0).contains(&r.metrics.mdd));
            prop_assert!(r.metrics.fapv > 0.0);
            prop_assert!(r.metrics.sharpe.is_finite());
            prop_assert!(r.turnover >= 0.0);
        }
    }

    #[test]
    fn costs_never_help(seed in 0u64..200) {
        // For any deterministic policy, adding transaction costs cannot
        // increase the final value. (Run the high-turnover UCRP.)
        let market = market_for(seed, 20);
        let free = Backtester::new(BacktestConfig { costs: CostModel::Free, risk_free_per_period: 0.0 })
            .run(&mut Ucrp::new(), &market);
        let paid = Backtester::new(BacktestConfig {
            costs: CostModel::Iterative { buy: 0.0025, sell: 0.0025 },
            risk_free_per_period: 0.0,
        })
        .run(&mut Ucrp::new(), &market);
        prop_assert!(paid.fapv() <= free.fapv() + 1e-12);
    }

    #[test]
    fn hold_cash_is_exactly_flat(seed in 0u64..200) {
        let market = market_for(seed, 15);
        let r = Backtester::default().run(&mut HoldCash, &market);
        prop_assert!(r.values.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }
}
