//! Live-desk chaos acceptance suite.
//!
//! The headline property is the PR's acceptance test: across *any*
//! scripted fault sequence — trainer NaN epochs, panicked training
//! attempts, corrupted candidate checkpoints, poisoned validation data,
//! swap-time IO failures, feed stalls — the desk never serves a model
//! that did not pass the validation gate, the serving model's held-out
//! reward never regresses, and the whole run is bit-for-bit reproducible
//! under its seed. A recovered run must also land on exactly the weights
//! a fault-free run produces: recovery means *absorbing* the fault, not
//! merely surviving it.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use spikefolio::agent::SdpAgent;
use spikefolio::checkpoint::{heal_sdp, load_sdp, save_sdp};
use spikefolio::config::SdpConfig;
use spikefolio::{parse_fault_spec, run_desk, run_desk_quiet, DeskOptions, DeskReport};
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_market::io::to_csv;
use spikefolio_snn::stbp::flat_params;
use spikefolio_telemetry::{labels, MemoryRecorder};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spikefolio-live-desk-{}-{name}", std::process::id()))
}

/// The smoke desk shrunk to a test-speed trainer.
fn fast_opts(name: &str) -> DeskOptions {
    let dir = tmp_dir(name);
    let _ = std::fs::remove_dir_all(&dir);
    let mut opts = DeskOptions::smoke(dir);
    opts.config.training.epochs = 2;
    opts.config.training.steps_per_epoch = 2;
    opts.config.training.batch_size = 4;
    opts
}

/// Every round's gate invariants: finite serving reward never below the
/// incumbent's, and the served version always one that passed the gate.
fn assert_never_serves_ungated(report: &DeskReport) {
    for r in &report.rounds {
        if r.serving_reward.is_finite() && r.incumbent_reward.is_finite() {
            assert!(
                r.serving_reward >= r.incumbent_reward,
                "round {} served reward {} below incumbent {} ({})",
                r.round,
                r.serving_reward,
                r.incumbent_reward,
                r.outcome,
            );
        }
        assert!(
            report.gate_passed_versions.contains(&r.served_version),
            "round {} served v{} which never passed the gate (passed: {:?})",
            r.round,
            r.served_version,
            report.gate_passed_versions,
        );
    }
    assert!(
        report.gate_passed_versions.contains(&report.final_version),
        "final serving version v{} never passed the gate",
        report.final_version,
    );
}

#[test]
fn chaos_desk_serves_only_gated_models_and_is_deterministic() {
    let mut opts = fast_opts("chaos-a");
    opts.faults = parse_fault_spec("corrupt@0,nan@1,swapio@2,val@3", opts.seed).unwrap();
    let mut rec = MemoryRecorder::new();
    let report = run_desk(opts, &mut rec).expect("chaos run completes");

    assert_eq!(report.rounds.len(), 4, "all rounds ran: {report:?}");
    assert!(!report.ended_early);
    assert_never_serves_ungated(&report);

    // Every injected fault was absorbed, none left the desk degraded.
    assert!(report.recoveries >= 4, "four faults need four recoveries: {report:?}");
    assert!(!report.degraded, "all faults recover, desk must end healthy: {report:?}");
    assert_eq!(rec.counter_total(labels::COUNTER_DESK_ROUNDS), 4);
    assert!(rec.counter_total(labels::COUNTER_DESK_RECOVERIES) >= 3);
    assert!(rec.counter_total(labels::COUNTER_RESILIENCE_CORRUPTIONS) >= 1);
    assert!(rec.counter_total(labels::COUNTER_RESILIENCE_IO_RETRIES) >= 1);

    // Same seed + same fault script → bit-for-bit the same report,
    // including the CRC over the final serving weights.
    let mut opts_b = fast_opts("chaos-b");
    opts_b.faults = parse_fault_spec("corrupt@0,nan@1,swapio@2,val@3", opts_b.seed).unwrap();
    let report_b = run_desk_quiet(opts_b).expect("replay completes");
    assert_eq!(report.final_weights_crc, report_b.final_weights_crc);
    assert_eq!(report.to_json(), report_b.to_json(), "chaos run must be deterministic");
}

#[test]
fn recovered_desk_matches_fault_free_run() {
    let clean = run_desk_quiet(fast_opts("clean")).expect("fault-free run completes");

    let mut opts = fast_opts("recovered");
    opts.faults =
        parse_fault_spec("corrupt@0,stall@0x2,nan@1,panic@1,swapio@2,val@3", opts.seed).unwrap();
    let faulted = run_desk_quiet(opts).expect("faulted run completes");

    // Recovery is exact: the faulted desk makes the same promotion
    // decisions and lands on bitwise the same serving weights.
    assert_eq!(clean.final_weights_crc, faulted.final_weights_crc);
    assert_eq!(clean.final_version, faulted.final_version);
    assert_eq!(clean.promotions, faulted.promotions);
    assert_eq!(clean.gate_passed_versions, faulted.gate_passed_versions);
    for (c, f) in clean.rounds.iter().zip(&faulted.rounds) {
        assert_eq!(c.outcome, f.outcome, "round {} diverged", c.round);
        assert_eq!(c.served_version, f.served_version);
        assert_eq!(c.serving_reward.to_bits(), f.serving_reward.to_bits());
        assert_eq!(c.candidate_reward.to_bits(), f.candidate_reward.to_bits());
    }
    // ...while the report still shows the faults were hit, not skipped.
    assert!(faulted.recoveries > clean.recoveries, "clean {clean:?} vs faulted {faulted:?}");
    assert!(faulted.feed_stalls > clean.feed_stalls);
}

#[test]
fn persistent_corruption_is_quarantined_while_serving_continues() {
    let mut opts = fast_opts("persistent-corruption");
    // Two corruption faults in the same round: the heal is re-rotted, so
    // the integrity probe must quarantine the candidate for good.
    opts.rounds = 3;
    opts.faults = parse_fault_spec("corrupt@1,corrupt@1", opts.seed).unwrap();
    let dir = opts.dir.clone();
    let mut rec = MemoryRecorder::new();
    let report = run_desk(opts, &mut rec).expect("run completes");

    let r1 = &report.rounds[1];
    assert_eq!(r1.outcome, "rejected:integrity", "{report:?}");
    assert!(r1.degraded, "an unrecovered corruption degrades its round");
    assert!(report.quarantines >= 1);
    assert!(
        dir.join("quarantine").join("round-1-integrity.ckpt").exists(),
        "quarantined bytes kept for forensics"
    );
    assert!(rec.counter_total(labels::COUNTER_SERVE_SWAP_REJECTED) >= 1);
    assert!(rec.counter_total(labels::COUNTER_DESK_QUARANTINES) >= 1);

    // Serving rode through on last-good and the desk finished its rounds.
    assert_eq!(r1.served_version, report.rounds[0].served_version);
    assert_eq!(report.rounds.len(), 3);
    assert!(!report.ended_early);
    assert!(!report.degraded, "later healthy rounds clear the degraded flag");
    assert_never_serves_ungated(&report);
}

#[test]
fn stalled_csv_feed_trips_watchdog_and_keeps_last_good() {
    let mut opts = fast_opts("csv-stall");
    std::fs::create_dir_all(&opts.dir).unwrap();
    // 44 periods on disk: enough for the 40-period warmup, not for round
    // 0's 46-period target — the feed then goes quiet forever.
    let market = ExperimentPreset::experiment1().shrunk(22, 0).generate(7);
    let csv_path = opts.dir.join("feed.csv");
    let mut csv = to_csv(&market);
    // A torn final line, as a live writer would leave mid-append: the
    // tail must hold it back rather than choke on it.
    csv.push_str("44,BTC,1.0,2.0");
    std::fs::write(&csv_path, csv).unwrap();

    opts.rounds = 2;
    opts.csv = Some(csv_path);
    opts.max_stall_polls = 2;
    let report = run_desk_quiet(opts).expect("stalled run still reports");

    assert_eq!(report.rounds.len(), 1, "desk stops at the stall: {report:?}");
    assert_eq!(report.rounds[0].outcome, "stalled");
    assert!(report.ended_early);
    assert!(report.degraded, "an unresolved stall is a degraded end state");
    assert!(report.feed_stalls >= 1);
    // Last-good stays up: version 1 (the warmup incumbent) serves on.
    assert_eq!(report.final_version, 1);
    assert_eq!(report.gate_passed_versions, vec![1]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A hot-swap writer racing `heal_sdp` on the same path never leaves
    /// a truncated or CRC-invalid checkpoint behind: both sides go
    /// through the atomic temp-file + rename protocol, so any observer
    /// sees one complete, valid generation — never a torn hybrid.
    #[test]
    fn swap_racing_heal_never_leaves_invalid_checkpoint(
        seed in 0u64..1_000,
        writes in 1usize..4,
        heals in 1usize..4,
    ) {
        let cfg = SdpConfig::smoke();
        let swapper = SdpAgent::new(&cfg, 5, seed);
        let healer = SdpAgent::new(&cfg, 5, seed.wrapping_add(1));
        let path = tmp_dir(&format!("race-{seed}-{writes}-{heals}.ckpt"));
        save_sdp(&swapper, &path).unwrap();

        std::thread::scope(|scope| {
            let w = scope.spawn(|| {
                for _ in 0..writes {
                    save_sdp(&swapper, &path).unwrap();
                }
            });
            let h = scope.spawn(|| {
                for _ in 0..heals {
                    // heal() validates and only rewrites an invalid file;
                    // racing the swapper it may see either generation.
                    heal_sdp(&healer, &path).unwrap();
                }
            });
            w.join().unwrap();
            h.join().unwrap();
        });

        let mut probe = SdpAgent::new(&cfg, 5, seed.wrapping_add(2));
        load_sdp(&mut probe, &path)
            .map_err(|e| format!("post-race checkpoint invalid: {e}"))?;
        let got = flat_params(&probe.network);
        let is_swapper = got == flat_params(&swapper.network);
        let is_healer = got == flat_params(&healer.network);
        std::fs::remove_file(&path).ok();
        prop_assert!(
            is_swapper || is_healer,
            "post-race weights match neither racer's generation"
        );
    }
}
