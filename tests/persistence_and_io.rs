//! Cross-crate integration: checkpoints survive the full train → save →
//! reload → trade pipeline, CSV market data round-trips through a
//! backtest, and the EIIE / walk-forward extensions interoperate with the
//! rest of the stack.

use spikefolio::agent::SdpAgent;
use spikefolio::checkpoint;
use spikefolio::config::SdpConfig;
use spikefolio::eiie::EiieAgent;
use spikefolio::online::{walk_forward, WalkForwardConfig};
use spikefolio::training::Trainer;
use spikefolio_env::Backtester;
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_market::io::{from_csv, to_csv};

fn smoke_config() -> SdpConfig {
    let mut cfg = SdpConfig::smoke();
    cfg.training.epochs = 2;
    cfg.training.steps_per_epoch = 4;
    cfg.training.batch_size = 8;
    cfg
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("spikefolio-it-{}-{name}", std::process::id()));
    p
}

#[test]
fn trained_checkpoint_reproduces_backtest() {
    let (train, test) = ExperimentPreset::experiment1().shrunk(50, 15).generate_split(3);
    let cfg = smoke_config();
    let mut agent = SdpAgent::new(&cfg, train.num_assets(), cfg.seed);
    let _ = Trainer::new(&cfg).train_sdp(&mut agent, &train);
    let reference = Backtester::new(cfg.backtest).run(&mut agent.clone(), &test);

    let path = tmp("trained.ckpt");
    checkpoint::save_sdp(&agent, &path).unwrap();
    let mut restored = SdpAgent::new(&cfg, train.num_assets(), 424242);
    checkpoint::load_sdp(&mut restored, &path).unwrap();
    let replayed = Backtester::new(cfg.backtest).run(&mut restored, &test);
    std::fs::remove_file(path).ok();

    assert_eq!(reference.values, replayed.values, "checkpointed policy must trade identically");
}

#[test]
fn csv_round_trip_preserves_backtests() {
    let market = ExperimentPreset::experiment2().shrunk(30, 8).generate(5);
    let csv = to_csv(&market);
    let reloaded = from_csv(&csv, market.start_date(), market.periods_per_day()).unwrap();

    let mut a = spikefolio_baselines::Ucrp::new();
    let mut b = spikefolio_baselines::Ucrp::new();
    let r1 = Backtester::default().run(&mut a, &market);
    let r2 = Backtester::default().run(&mut b, &reloaded);
    assert_eq!(r1.values, r2.values);
    assert_eq!(r1.metrics, r2.metrics);
}

#[test]
fn eiie_trains_and_backtests_end_to_end() {
    let (train, test) = ExperimentPreset::experiment1().shrunk(60, 15).generate_split(9);
    let cfg = smoke_config();
    let mut agent = EiieAgent::new(&cfg, train.num_assets(), cfg.seed);
    let log = Trainer::new(&cfg).train_eiie(&mut agent, &train);
    assert!(log.steps > 0);
    let r = Backtester::new(cfg.backtest).run(&mut agent, &test);
    assert!(r.fapv() > 0.0 && r.fapv().is_finite());
    for w in &r.weights {
        assert!(spikefolio_tensor::simplex::is_on_simplex(w, 1e-9));
    }
}

#[test]
fn walk_forward_compounds_across_blocks() {
    let market = ExperimentPreset::experiment3().shrunk(70, 0).generate(10);
    let cfg = smoke_config();
    let wf = WalkForwardConfig { train_window: 50, trade_window: 30, retrain_from_scratch: false };
    let result = walk_forward(&cfg, wf, &market, 11);
    // Value curve compounds: each entry is the cumulative product of the
    // per-period growth factors, so log(final) = Σ log returns.
    let final_v = *result.values.last().unwrap();
    assert!((result.metrics.fapv - final_v).abs() < 1e-12);
    assert!(result.retrainings >= 2);
}

#[test]
fn alif_agent_trains_and_cannot_deploy() {
    use spikefolio::deploy::LoihiDeployment;
    use spikefolio_loihi::LoihiChip;
    use spikefolio_snn::neuron::AdaptiveParams;
    let (train, test) = ExperimentPreset::experiment1().shrunk(40, 10).generate_split(3);
    let mut cfg = smoke_config();
    cfg.network.adaptation = Some(AdaptiveParams::new());
    let mut agent = SdpAgent::new(&cfg, train.num_assets(), cfg.seed);
    let _ = Trainer::new(&cfg).train_sdp(&mut agent, &train);
    let r = Backtester::new(cfg.backtest).run(&mut agent, &test);
    assert!(r.fapv() > 0.0, "ALIF agent must train and trade");
    // Chip deployment is LIF-only by design.
    let deploy = std::panic::catch_unwind(|| LoihiDeployment::new(&agent, &LoihiChip::default()));
    assert!(deploy.is_err(), "ALIF deployment must be rejected");
}
