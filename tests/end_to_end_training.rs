//! End-to-end training: the full pipeline from synthetic market through
//! STBP training to a backtested policy, at smoke scale.

use spikefolio::agent::SdpAgent;
use spikefolio::config::SdpConfig;
use spikefolio::drl::DrlAgent;
use spikefolio::training::Trainer;
use spikefolio_env::Backtester;
use spikefolio_market::experiments::ExperimentPreset;

fn smoke_config() -> SdpConfig {
    let mut cfg = SdpConfig::smoke();
    cfg.training.epochs = 5;
    cfg.training.steps_per_epoch = 12;
    cfg.training.batch_size = 16;
    cfg.training.learning_rate = 1e-3;
    cfg
}

#[test]
fn sdp_training_improves_in_sample_performance() {
    let (train, _) = ExperimentPreset::experiment1().shrunk(90, 20).generate_split(11);
    let cfg = smoke_config();
    let mut untrained = SdpAgent::new(&cfg, train.num_assets(), cfg.seed);
    let mut trained = untrained.clone();
    let log = Trainer::new(&cfg).train_sdp(&mut trained, &train);
    assert_eq!(log.epoch_rewards.len(), cfg.training.epochs);
    assert!(log.epoch_rewards.iter().all(|r| r.is_finite()));
    // The trained policy must beat its own initialization in-sample (the
    // objective it ascended). Per-epoch reward streams are noisy batch
    // estimates, so compare end-to-end backtest log returns instead.
    let bt = Backtester::new(cfg.backtest);
    let r_untrained = bt.run(&mut untrained, &train);
    let r_trained = bt.run(&mut trained, &train);
    assert!(
        r_trained.metrics.mean_log_return >= r_untrained.metrics.mean_log_return - 1e-4,
        "in-sample performance degraded: trained {} vs untrained {}",
        r_trained.metrics.mean_log_return,
        r_untrained.metrics.mean_log_return
    );
}

#[test]
fn trained_sdp_backtests_on_heldout_data() {
    let (train, test) = ExperimentPreset::experiment1().shrunk(90, 25).generate_split(11);
    let cfg = smoke_config();
    let mut agent = SdpAgent::new(&cfg, train.num_assets(), cfg.seed);
    let _ = Trainer::new(&cfg).train_sdp(&mut agent, &train);
    let r = Backtester::new(cfg.backtest).run(&mut agent, &test);
    assert!(r.fapv() > 0.0 && r.fapv().is_finite());
    assert!((0.0..1.0).contains(&r.metrics.mdd));
    // The policy actually trades (it is not stuck on one vertex forever).
    assert!(r.turnover.is_finite());
}

#[test]
fn both_agents_train_on_the_same_data_without_interference() {
    let (train, test) = ExperimentPreset::experiment2().shrunk(80, 20).generate_split(3);
    let cfg = smoke_config();
    let trainer = Trainer::new(&cfg);

    let mut sdp = SdpAgent::new(&cfg, train.num_assets(), cfg.seed);
    let sdp_log = trainer.train_sdp(&mut sdp, &train);
    let mut drl = DrlAgent::new(&cfg, train.num_assets(), cfg.seed);
    let drl_log = trainer.train_drl(&mut drl, &train);

    assert_eq!(sdp_log.steps, drl_log.steps, "identical training budgets");
    let r_sdp = Backtester::new(cfg.backtest).run(&mut sdp, &test);
    let r_drl = Backtester::new(cfg.backtest).run(&mut drl, &test);
    assert!(r_sdp.fapv().is_finite() && r_drl.fapv().is_finite());
}

#[test]
fn training_is_reproducible_under_fixed_seeds() {
    let (train, _) = ExperimentPreset::experiment1().shrunk(50, 10).generate_split(11);
    let mut cfg = smoke_config();
    cfg.training.epochs = 2;
    cfg.training.steps_per_epoch = 4;

    let run = || {
        let mut agent = SdpAgent::new(&cfg, train.num_assets(), cfg.seed);
        let log = Trainer::new(&cfg).train_sdp(&mut agent, &train);
        (spikefolio_snn::stbp::flat_params(&agent.network), log.epoch_rewards)
    };
    let (p1, r1) = run();
    let (p2, r2) = run();
    assert_eq!(r1, r2, "reward streams differ");
    assert_eq!(p1, p2, "trained parameters differ");
}
