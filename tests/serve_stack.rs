//! Integration tests for the `spikefolio-serve` stack: hot checkpoint
//! swap under live load, serving-boundary weight guarantees, the NDJSON
//! TCP protocol end to end, deterministic-mode bitwise reproducibility,
//! and the CI smoke flow.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spikefolio::config::SdpConfig;
use spikefolio::serving::{
    run_loadgen_smoke, write_reference_checkpoint, BackendKind, CheckpointBackendLoader,
};
use spikefolio_serve::{
    InferenceBackend, InferenceRequest, LatencyHistogram, ModelLoader, ModelStore, Server,
    ServerOptions, Service, ServiceConfig,
};
use spikefolio_telemetry::value::{parse, Value};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

const ASSETS: usize = 5;

fn temp_ckpt(name: &str, seed: u64) -> String {
    let path: PathBuf = std::env::temp_dir().join(format!("spikefolio_{name}_{seed}.ckpt"));
    let path = path.to_string_lossy().into_owned();
    write_reference_checkpoint(&path, &SdpConfig::smoke(), ASSETS, seed).expect("write checkpoint");
    path
}

fn loader() -> CheckpointBackendLoader {
    CheckpointBackendLoader::new(SdpConfig::smoke(), ASSETS, BackendKind::Float)
}

/// A state every test can agree on: deterministic, mid-range values.
fn fixed_state(dim: usize) -> Vec<f64> {
    (0..dim).map(|i| 0.9 + 0.2 * ((i % 7) as f64 / 7.0)).collect()
}

// ---------------------------------------------------------------- smoke

#[test]
fn loadgen_smoke_flow_passes() {
    let outcome = run_loadgen_smoke(None, 11).expect("smoke run");
    assert!(outcome.clean_shutdown, "server did not shut down cleanly");
    assert_eq!(outcome.report.served, outcome.report.requests);
    assert_eq!(outcome.report.deterministic, Some(true), "responses not bitwise identical");
    assert!(outcome.passed(), "{}", outcome.report.render());
}

// ------------------------------------------------------- hot swap (sat 6)

#[test]
fn hot_swap_under_load_switches_versions_and_survives_bad_reload() {
    let ckpt_a = temp_ckpt("swap_a", 1);
    let ckpt_b = temp_ckpt("swap_b", 2);

    // Precompute, per version, the exact weights the fixed probe request
    // must yield: (model, state, seed) fully determines them.
    let probe_seed = 9u64;
    let backend_a = loader().load(&ckpt_a).expect("load A");
    let backend_b = loader().load(&ckpt_b).expect("load B");
    let dim = backend_a.state_dim();
    let state = fixed_state(dim);
    let expect_a = backend_a.infer_batch(&state, &[probe_seed]).remove(0);
    let expect_b = backend_b.infer_batch(&state, &[probe_seed]).remove(0);
    assert_ne!(
        expect_a.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
        expect_b.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
        "seeds 1 and 2 produced identical checkpoints"
    );

    let store = Arc::new(ModelStore::open(Box::new(loader()), &ckpt_a).expect("open store"));
    let service =
        Service::start(Arc::clone(&store), ServiceConfig { workers: 2, ..Default::default() });

    let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

    // Callers hammer the service while the swap happens; every response
    // must carry weights consistent with the version it reports.
    std::thread::scope(|s| {
        let mut callers = Vec::new();
        for t in 0..3u64 {
            let service = Arc::clone(&service);
            let state = state.clone();
            let (expect_a, expect_b) = (expect_a.clone(), expect_b.clone());
            callers.push(s.spawn(move || {
                for i in 0..120u64 {
                    let resp = service
                        .call(InferenceRequest {
                            id: t * 1000 + i,
                            state: state.clone(),
                            seed: probe_seed,
                            deadline: None,
                            corr: 0,
                        })
                        .expect("call during swap");
                    let expect = match resp.model_version {
                        1 => &expect_a,
                        2 => &expect_b,
                        v => panic!("unexpected model version {v}"),
                    };
                    assert_eq!(
                        bits(&resp.weights),
                        bits(expect),
                        "weights inconsistent with reported version {}",
                        resp.model_version
                    );
                }
            }));
        }
        // Let some version-1 traffic through, then swap mid-flight.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let v = store.reload(&ckpt_b).expect("hot swap to B");
        assert_eq!(v, 2);
        for c in callers {
            c.join().expect("caller thread");
        }
    });

    // After the swap every new request sees version 2.
    let resp = service
        .call(InferenceRequest {
            id: 9999,
            state: state.clone(),
            seed: probe_seed,
            deadline: None,
            corr: 0,
        })
        .expect("post-swap call");
    assert_eq!(resp.model_version, 2);
    assert_eq!(bits(&resp.weights), bits(&expect_b));

    // A bad checkpoint must be rejected and leave version 2 serving.
    let err = store.reload("/nonexistent/model.ckpt").expect_err("bad reload must fail");
    assert!(!err.is_empty());
    assert_eq!(store.version(), 2);
    assert_eq!(store.swap_counts(), (1, 1), "one swap, one rejected swap");
    let resp = service
        .call(InferenceRequest { id: 10_000, state, seed: probe_seed, deadline: None, corr: 0 })
        .expect("call after failed reload");
    assert_eq!(resp.model_version, 2);
    assert_eq!(bits(&resp.weights), bits(&expect_b));

    service.shutdown();
}

// ------------------------------------- boundary validation proptest (sat 1)

/// One shared service for the property test (building the SNN stack per
/// case would dominate the runtime), plus the model's state dimension.
fn shared_service() -> &'static (Arc<Service>, usize) {
    static SERVICE: OnceLock<(Arc<Service>, usize)> = OnceLock::new();
    SERVICE.get_or_init(|| {
        let ckpt = temp_ckpt("proptest", 3);
        let store = Arc::new(ModelStore::open(Box::new(loader()), &ckpt).expect("open store"));
        let dim = store.current().backend.state_dim();
        (Service::start(store, ServiceConfig::default()), dim)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever finite state a client sends — huge, negative, tiny — the
    /// served weights are finite and on the probability simplex.
    #[test]
    fn served_weights_are_finite_and_sum_to_one(seed in 0u64..500, scale in 1e-3f64..1e6) {
        let (service, state_dim) = shared_service();
        let mut rng = StdRng::seed_from_u64(seed);
        let state: Vec<f64> = (0..*state_dim).map(|_| rng.gen_range(-scale..scale)).collect();
        let resp = service
            .call(InferenceRequest { id: seed, state, seed, deadline: None, corr: 0 })
            .expect("adversarial-but-finite state must be served");
        prop_assert!(resp.weights.iter().all(|w| w.is_finite()));
        prop_assert!(
            spikefolio_tensor::simplex::is_on_simplex(&resp.weights, 1e-6),
            "served weights off the simplex: {:?}",
            resp.weights
        );
    }
}

// --------------------------------------------------------- TCP round trip

fn is_true(v: &Value, key: &str) -> bool {
    matches!(v.get(key), Some(Value::Bool(true)))
}

fn send_line(reader: &mut BufReader<TcpStream>, line: &str) -> Value {
    let mut out = line.to_string();
    out.push('\n');
    reader.get_mut().write_all(out.as_bytes()).expect("write request");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    parse(resp.trim()).expect("response is JSON")
}

fn start_tcp_server(
    ckpt: &str,
    config: ServiceConfig,
) -> (String, spikefolio_serve::ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let store = Arc::new(ModelStore::open(Box::new(loader()), ckpt).expect("open store"));
    let service = Service::start(store, config);
    let server =
        Server::bind("127.0.0.1:0", service, ServerOptions::default()).expect("bind loopback");
    let handle = server.handle();
    let addr = handle.addr().to_string();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

#[test]
fn tcp_protocol_round_trip_state_window_and_control_verbs() {
    let ckpt = temp_ckpt("tcp", 4);
    let ckpt_b = temp_ckpt("tcp_b", 5);
    let (addr, handle, join) = start_tcp_server(&ckpt, ServiceConfig::default());
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream);

    // info: schema, dims, version.
    let info = send_line(&mut reader, r#"{"cmd":"info"}"#);
    assert_eq!(info.get("schema").and_then(Value::as_str), Some("spikefolio.serve.v1"));
    assert_eq!(info.get("model_version").and_then(Value::as_u64), Some(1));
    let dim = info.get("state_dim").and_then(Value::as_u64).expect("state_dim") as usize;
    let action_dim = info.get("action_dim").and_then(Value::as_u64).expect("action_dim") as usize;
    assert_eq!(action_dim, ASSETS + 1);

    // ping.
    let pong = send_line(&mut reader, r#"{"cmd":"ping"}"#);
    assert!(is_true(&pong, "ok"), "{pong:?}");

    // A raw-window request and the equivalent pre-built state request
    // must serve identical weights (same model, same seed).
    let config = SdpConfig::smoke();
    let window = config.state.window;
    let mut candles = Vec::new();
    for p in 0..window {
        for a in 0..ASSETS {
            let base = 1.0 + 0.01 * (p * ASSETS + a) as f64;
            candles.extend_from_slice(&[base, base * 1.02, base * 0.98, base * 1.01]);
        }
    }
    let mut prev = vec![0.0; ASSETS + 1];
    prev[0] = 1.0;
    let backend = loader().load(&ckpt).expect("load");
    let state = backend.state_from_window(&candles, ASSETS, &prev).expect("window state");
    assert_eq!(state.len(), dim);

    let render_list = |v: &[f64]| v.iter().map(|x| format!("{x}")).collect::<Vec<_>>().join(",");
    let by_state = send_line(
        &mut reader,
        &format!(r#"{{"id":1,"state":[{}],"seed":7}}"#, render_list(&state)),
    );
    let by_window = send_line(
        &mut reader,
        &format!(
            r#"{{"id":2,"window":[{}],"assets":{ASSETS},"prev_weights":[{}],"seed":7}}"#,
            render_list(&candles),
            render_list(&prev)
        ),
    );
    assert!(is_true(&by_state, "ok"), "{by_state:?}");
    assert!(is_true(&by_window, "ok"), "{by_window:?}");
    let weights = |v: &Value| {
        v.get("weights")
            .and_then(Value::as_list)
            .expect("weights")
            .iter()
            .map(|x| x.as_f64().expect("weight").to_bits())
            .collect::<Vec<_>>()
    };
    assert_eq!(weights(&by_state), weights(&by_window), "window path diverged from state path");

    // A malformed line gets a parse error, not a dropped connection.
    let bad = send_line(&mut reader, r#"{"id":3,"state":"nope"}"#);
    assert!(!is_true(&bad, "ok"), "{bad:?}");

    // reload to a second checkpoint bumps the served version.
    let reloaded = send_line(&mut reader, &format!(r#"{{"cmd":"reload","path":"{ckpt_b}"}}"#));
    assert_eq!(reloaded.get("model_version").and_then(Value::as_u64), Some(2), "{reloaded:?}");

    // stats reflects the traffic and the swap.
    let reply = send_line(&mut reader, r#"{"cmd":"stats"}"#);
    let stats = reply.get("stats").expect("stats map");
    assert!(stats.get("served").and_then(Value::as_u64).unwrap_or(0) >= 2, "{reply:?}");
    assert_eq!(stats.get("swaps").and_then(Value::as_u64), Some(1), "{reply:?}");

    // shutdown verb stops the server; the accept loop joins cleanly.
    let ack = send_line(&mut reader, r#"{"cmd":"shutdown"}"#);
    assert!(is_true(&ack, "ok"), "{ack:?}");
    assert!(join.join().expect("server thread").is_ok());
    assert!(handle.is_stopped());
}

// ------------------------------------------------ metrics verb (observatory)

#[test]
fn metrics_verb_reports_schema_exact_stage_counts_and_corr_echo() {
    let ckpt = temp_ckpt("metrics", 7);
    let (addr, handle, join) = start_tcp_server(&ckpt, ServiceConfig::default());
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream);

    let dim = loader().load(&ckpt).expect("load").state_dim();
    let state_json = fixed_state(dim).iter().map(f64::to_string).collect::<Vec<_>>().join(",");
    let requests = 12u64;
    let mut corrs = Vec::new();
    for i in 0..requests {
        let resp =
            send_line(&mut reader, &format!(r#"{{"id":{i},"state":[{state_json}],"seed":{i}}}"#));
        assert!(is_true(&resp, "ok"), "{resp:?}");
        corrs.push(resp.get("corr").and_then(Value::as_u64).expect("served response carries corr"));
    }
    // Correlation IDs are minted per request: all distinct, never zero.
    let mut unique = corrs.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), corrs.len(), "correlation ids not distinct: {corrs:?}");
    assert!(corrs.iter().all(|&c| c > 0));

    // One infer request per response has passed every stage exactly once,
    // so all six per-stage histogram counts equal the request tally.
    let reply = send_line(&mut reader, r#"{"cmd":"metrics"}"#);
    assert!(is_true(&reply, "ok"), "{reply:?}");
    assert_eq!(reply.get("schema").and_then(Value::as_str), Some("spikefolio.metrics.v1"));
    let metrics = reply.get("metrics").expect("metrics map");
    let stages = metrics.get("stages").expect("stages map");
    for stage in ["accept", "parse", "queue_wait", "batch_form", "backend_infer", "render"] {
        let count = stages.get(stage).and_then(|s| s.get("count")).and_then(Value::as_u64);
        assert_eq!(count, Some(requests), "stage {stage} count mismatch: {metrics:?}");
    }
    assert_eq!(
        metrics.get("counters").and_then(|c| c.get("served")).and_then(Value::as_u64),
        Some(requests)
    );
    assert_eq!(
        metrics.get("swap").and_then(|s| s.get("last_good_version")).and_then(Value::as_u64),
        Some(1)
    );

    // The Prometheus exposition renders the same counters as text.
    let prom = send_line(&mut reader, r#"{"cmd":"metrics","format":"prometheus"}"#);
    assert!(is_true(&prom, "ok"), "{prom:?}");
    let text = prom.get("text").and_then(Value::as_str).expect("prometheus text");
    assert!(text.contains(&format!("spikefolio_serve_served_total {requests}")), "{text}");
    assert!(text.contains("spikefolio_serve_stage_latency_seconds_bucket"), "{text}");

    handle.shutdown();
    assert!(join.join().expect("server thread").is_ok());
}

/// A backend that sleeps through every batch: what a wedged or
/// mis-deployed model looks like to the SLO watchdog.
struct SlowBackend {
    dim: usize,
    delay_ms: u64,
}

impl InferenceBackend for SlowBackend {
    fn name(&self) -> &str {
        "slow-test"
    }
    fn state_dim(&self) -> usize {
        self.dim
    }
    fn action_dim(&self) -> usize {
        3
    }
    fn infer_batch(&self, _states: &[f64], seeds: &[u64]) -> Vec<Vec<f64>> {
        std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
        seeds.iter().map(|_| vec![0.5, 0.25, 0.25]).collect()
    }
}

struct SlowLoader;

impl ModelLoader for SlowLoader {
    fn load(&self, _source: &str) -> Result<Box<dyn InferenceBackend>, String> {
        Ok(Box::new(SlowBackend { dim: 4, delay_ms: 5 }))
    }
}

#[test]
fn degraded_flag_trips_over_tcp_with_injected_slow_backend() {
    let store = Arc::new(ModelStore::open(Box::new(SlowLoader), "slow").expect("open store"));
    let mut config = ServiceConfig::default();
    // A 5 ms backend against a 100 µs SLO: every request burns budget.
    config.health.latency_slo_us = 100;
    let service = Service::start(store, config);
    let server =
        Server::bind("127.0.0.1:0", service, ServerOptions::default()).expect("bind loopback");
    let handle = server.handle();
    let addr = handle.addr().to_string();
    let join = std::thread::spawn(move || server.run());

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream);
    for i in 0..8u64 {
        let resp = send_line(&mut reader, &format!(r#"{{"id":{i},"state":[1,1,1,1],"seed":{i}}}"#));
        assert!(is_true(&resp, "ok"), "{resp:?}");
    }
    let reply = send_line(&mut reader, r#"{"cmd":"metrics"}"#);
    let health = reply.get("metrics").and_then(|m| m.get("health")).expect("health map");
    assert!(is_true(health, "degraded"), "slow backend did not trip the watchdog: {reply:?}");
    let reasons: Vec<&str> = health
        .get("reasons")
        .and_then(Value::as_list)
        .expect("reasons list")
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert!(reasons.contains(&"latency_burn"), "reasons: {reasons:?}");

    handle.shutdown();
    assert!(join.join().expect("server thread").is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exact-count invariant under adversarial durations: however many
    /// observations land and however they are split across two
    /// histograms, the merge is bucket-exact and the total count is
    /// conserved — including extreme values (0, 1, u64::MAX).
    #[test]
    fn histogram_merge_is_exact_under_adversarial_durations(
        raw in collection::vec(0u64..=u64::MAX, 1usize..64),
        split in 0usize..64,
    ) {
        // Interleave bucket-boundary extremes with the random stream so
        // every case also exercises 0, 1, the exact-range edge (7/8),
        // and saturation at u64::MAX.
        let durations: Vec<u64> = raw
            .iter()
            .enumerate()
            .map(|(k, &v)| match k % 7 {
                0 => 0,
                1 => 1,
                2 => 7,
                3 => 8,
                4 => u64::MAX,
                _ => v,
            })
            .collect();
        let whole = LatencyHistogram::new();
        let left = LatencyHistogram::new();
        let right = LatencyHistogram::new();
        let cut = split.min(durations.len());
        for (k, &ns) in durations.iter().enumerate() {
            whole.observe_ns(ns);
            if k < cut { left.observe_ns(ns) } else { right.observe_ns(ns) }
        }
        left.merge_from(&right);
        let merged = left.snapshot();
        let direct = whole.snapshot();
        prop_assert_eq!(merged.count, durations.len() as u64);
        prop_assert_eq!(&merged.buckets, &direct.buckets);
        prop_assert_eq!(merged.max_us.to_bits(), direct.max_us.to_bits());
        // Quantiles are monotone and bounded by the exact max.
        prop_assert!(merged.p50_us <= merged.p95_us);
        prop_assert!(merged.p95_us <= merged.p99_us);
        prop_assert!(merged.p99_us <= merged.max_us);
        // Every observed duration maps into a bucket whose bounds hold it.
        for &ns in &durations {
            let idx = spikefolio_serve::metrics::bucket_index(ns);
            let (lo, hi) = spikefolio_serve::metrics::bucket_bounds_ns(idx);
            prop_assert!(lo <= ns && ns <= hi);
        }
    }
}

// ------------------------------------------------- bitwise determinism

#[test]
fn deterministic_mode_renders_bitwise_identical_response_streams() {
    let ckpt = temp_ckpt("det", 6);
    let (addr, handle, join) =
        start_tcp_server(&ckpt, ServiceConfig { deterministic: true, ..Default::default() });

    let dim = {
        let backend = loader().load(&ckpt).expect("load");
        backend.state_dim()
    };
    let run_stream = || {
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut reader = BufReader::new(stream);
        let mut lines = Vec::new();
        for i in 0..16u64 {
            let mut rng = StdRng::seed_from_u64(i);
            let state: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.5..1.5)).collect();
            let state_json = state.iter().map(|x| format!("{x}")).collect::<Vec<_>>().join(",");
            let mut out = format!(r#"{{"id":{i},"state":[{state_json}],"seed":{i}}}"#);
            out.push('\n');
            reader.get_mut().write_all(out.as_bytes()).expect("write");
            let mut resp = String::new();
            reader.read_line(&mut resp).expect("read");
            lines.push(resp);
        }
        lines
    };
    let first = run_stream();
    let second = run_stream();
    assert_eq!(first, second, "deterministic mode responses differ between identical streams");

    handle.shutdown();
    assert!(join.join().expect("server thread").is_ok());
}
