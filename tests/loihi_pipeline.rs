//! Fig. 2 pipeline: train → quantize (eq. 14) → map onto the chip model →
//! backtest on-chip, verifying behaviour preservation and event accounting.

use spikefolio::agent::SdpAgent;
use spikefolio::config::SdpConfig;
use spikefolio::deploy::LoihiDeployment;
use spikefolio::training::Trainer;
use spikefolio_env::Backtester;
use spikefolio_loihi::energy::LoihiEnergyModel;
use spikefolio_loihi::LoihiChip;
use spikefolio_market::experiments::ExperimentPreset;

fn trained_agent() -> (SdpAgent, spikefolio_market::MarketData, SdpConfig) {
    let mut cfg = SdpConfig::smoke();
    cfg.training.epochs = 3;
    cfg.training.steps_per_epoch = 8;
    cfg.training.batch_size = 12;
    cfg.training.learning_rate = 1e-3;
    let (train, test) = ExperimentPreset::experiment1().shrunk(70, 20).generate_split(23);
    let mut agent = SdpAgent::new(&cfg, train.num_assets(), cfg.seed);
    let _ = Trainer::new(&cfg).train_sdp(&mut agent, &train);
    (agent, test, cfg)
}

#[test]
fn deployed_policy_tracks_float_policy_in_backtest() {
    let (mut agent, test, cfg) = trained_agent();
    let mut deployed = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();

    let r_float = Backtester::new(cfg.backtest).run(&mut agent, &test);
    let r_chip = Backtester::new(cfg.backtest).run(&mut deployed, &test);

    // Quantization should not change the economic outcome by much: final
    // values within a factor ~2 of each other on a short backtest.
    let ratio = r_chip.fapv() / r_float.fapv();
    assert!(
        (0.5..2.0).contains(&ratio),
        "on-chip fAPV {} vs float {} (ratio {ratio})",
        r_chip.fapv(),
        r_float.fapv()
    );
}

#[test]
fn quantization_report_is_sane() {
    let (agent, _, _) = trained_agent();
    let deployed = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();
    let report = deployed.quantization_report();
    assert_eq!(report.ratios.len(), agent.network.depth());
    for (&r, &e) in report.ratios.iter().zip(&report.max_errors) {
        assert!(r > 0.0, "non-positive rescale ratio");
        assert!(e <= 0.5 / r + 1e-12, "quantization error {e} exceeds half step");
    }
    // Training leaves most weights non-zero.
    assert!(report.zero_fractions.iter().all(|&z| z < 0.9));
}

#[test]
fn event_counters_feed_the_energy_model() {
    let (agent, test, cfg) = trained_agent();
    let mut deployed = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();
    let _ = Backtester::new(cfg.backtest).run(&mut deployed, &test);

    let mean = deployed.mean_stats().to_spike_stats();
    assert!(mean.encoder_spikes > 0);
    assert!(mean.synops > 0);
    assert!(mean.neuron_updates > 0);

    // Physical model: energy in a plausible silicon range (pJ–µJ).
    let physical = LoihiEnergyModel::davies2018();
    let e = physical.dynamic_energy(&mean);
    assert!(e > 1e-12 && e < 1e-3, "implausible energy {e} J");

    // Calibrated model reproduces the paper's endpoint on this workload.
    let calibrated = LoihiEnergyModel::calibrated(&mean, 15.81);
    assert!((calibrated.dynamic_energy(&mean) * 1e9 - 15.81).abs() < 1e-9);
}

#[test]
fn chip_resources_scale_with_network_size() {
    let cfg_small = SdpConfig::smoke();
    let mut cfg_large = SdpConfig::smoke();
    cfg_large.network.hidden = vec![128, 128];
    cfg_large.network.pop_in = 10;

    let small = SdpAgent::new(&cfg_small, 11, 1);
    let large = SdpAgent::new(&cfg_large, 11, 1);
    let chip = LoihiChip::default();
    let d_small = LoihiDeployment::new(&small, &chip).unwrap();
    let d_large = LoihiDeployment::new(&large, &chip).unwrap();
    assert!(
        d_large.allocation().total_synapses > d_small.allocation().total_synapses,
        "bigger network must use more synapses"
    );
    assert!(d_large.allocation().total_cores >= d_small.allocation().total_cores);
}

#[test]
fn deterministic_encoding_makes_deployment_reproducible() {
    let (agent, test, cfg) = trained_agent();
    let run = || {
        let mut deployed = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();
        Backtester::new(cfg.backtest).run(&mut deployed, &test).values
    };
    assert_eq!(run(), run());
}
