//! Equivalence battery for the event-driven sparse spike kernels.
//!
//! Locks the sparse path to the dense reference at three levels:
//!
//! * **Network level** — batched forward traces and backward gradients at
//!   b1/b8/b32 are *bitwise* equal between [`KernelPath::Dense`] and
//!   [`KernelPath::Sparse`] in the default bitwise mode, for hard, soft,
//!   and adaptive (ALIF) networks.
//! * **Training level** — thread-count invariance holds on the sparse
//!   path, and a short seeded Table-3 slice trained end-to-end lands on
//!   bit-identical final weights whichever path the trainer runs.
//! * **Kernel level** — a proptest battery over adversarial spike
//!   patterns (all-zero timesteps, fully-dense timesteps, single-neuron
//!   spikes, ragged per-sample sparsity) pins `spike_drive` /
//!   `spike_outer_acc` to the dense GEMMs: bitwise in
//!   [`SparseMode::Bitwise`], ≤1e-6 relative in
//!   [`SparseMode::FastMath`].
//!
//! The accounting test closes the loop the CI bench smoke also checks:
//! the event count tallied by the kernels while propagating spikes must
//! equal the cost model's independently derived synops exactly.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spikefolio::agent::SdpAgent;
use spikefolio::config::SdpConfig;
use spikefolio::training::Trainer;
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_profile::CostReport;
use spikefolio_snn::encoder::Encoding;
use spikefolio_snn::network::{SdpNetwork, SdpNetworkConfig};
use spikefolio_snn::neuron::SpikeFn;
use spikefolio_snn::{
    reset_kernel_path, set_kernel_path, stbp, BatchNetworkTrace, BatchWorkspace, KernelPath,
    SparseMode, SpikeSet,
};
use spikefolio_tensor::{gemm, sparse, Matrix};

const BATCHES: [usize; 3] = [1, 8, 32];

fn states(batch: usize, dim: usize) -> Matrix {
    Matrix::from_fn(batch, dim, |b, d| 0.7 + 0.04 * ((b * dim + d) % 17) as f64)
}

fn nets() -> Vec<(&'static str, SdpNetwork)> {
    let mut rng = StdRng::seed_from_u64(7);
    let hard = SdpNetwork::new(
        {
            let mut c = SdpNetworkConfig::small(6, 3);
            c.hidden = vec![12, 9];
            c
        },
        &mut rng,
    );
    let prob = SdpNetwork::new(
        {
            let mut c = SdpNetworkConfig::small(6, 3);
            c.encoder.encoding = Encoding::Probabilistic;
            c
        },
        &mut rng,
    );
    let soft = SdpNetwork::new(
        {
            let mut c = SdpNetworkConfig::small(6, 3);
            c.spike_fn = SpikeFn::Soft { temperature: 0.4 };
            c
        },
        &mut rng,
    );
    let alif = SdpNetwork::new(
        {
            let mut c = SdpNetworkConfig::small(6, 3);
            c.adaptation = Some(spikefolio_snn::neuron::AdaptiveParams { beta: 0.6, rho: 0.85 });
            c
        },
        &mut rng,
    );
    vec![("hard", hard), ("probabilistic", prob), ("soft", soft), ("alif", alif)]
}

/// Runs forward on both paths with identical seeded RNGs and returns the
/// two traces.
fn forward_both(
    net: &SdpNetwork,
    batch: usize,
    path: KernelPath,
) -> (BatchNetworkTrace, BatchWorkspace) {
    let st = states(batch, net.config().state_dim);
    let mut ws = BatchWorkspace::new(net, batch);
    let mut trace = BatchNetworkTrace::new(net, batch);
    let mut rngs: Vec<StdRng> =
        (0..batch).map(|b| StdRng::seed_from_u64(1000 + b as u64)).collect();
    net.forward_batch_with(&st, &mut rngs, &mut ws, &mut trace, path);
    (trace, ws)
}

#[test]
fn forward_traces_are_bitwise_equal_at_all_batch_sizes() {
    for (kind, net) in nets() {
        for batch in BATCHES {
            let (dense, _) = forward_both(&net, batch, KernelPath::Dense);
            let (sparse_t, _) = forward_both(&net, batch, KernelPath::Sparse(SparseMode::Bitwise));
            // Whole-trace equality: voltages, thresholds, spikes, spike
            // sets, actions, stats, and the kernel event tally.
            assert_eq!(sparse_t, dense, "{kind} net, batch {batch}");
            assert!(sparse_t.kernel_events > 0, "{kind} net produced no events");
        }
    }
}

#[test]
fn backward_gradients_are_bitwise_equal_at_all_batch_sizes() {
    for (kind, net) in nets() {
        for batch in BATCHES {
            let (trace, mut ws) =
                forward_both(&net, batch, KernelPath::Sparse(SparseMode::Bitwise));
            let d_actions =
                Matrix::from_fn(batch, 3, |b, a| 0.2 - 0.1 * a as f64 + 0.01 * b as f64);
            let dense = stbp::backward_batch_with(
                &net,
                &trace,
                &d_actions,
                0.05,
                &mut ws,
                KernelPath::Dense,
            );
            let sparse_g = stbp::backward_batch_with(
                &net,
                &trace,
                &d_actions,
                0.05,
                &mut ws,
                KernelPath::Sparse(SparseMode::Bitwise),
            );
            assert_eq!(
                stbp::flat_grads(&sparse_g),
                stbp::flat_grads(&dense),
                "{kind} net, batch {batch}"
            );
        }
    }
}

#[test]
fn training_is_thread_count_invariant_on_the_sparse_path() {
    // PR 1's contract: per-sample seeding makes trained parameters
    // independent of the worker count. The sparse kernels reuse the same
    // micro-batch workspaces, so the invariance must survive.
    let (train, _) = ExperimentPreset::experiment1().shrunk(40, 10).generate_split(5);
    let mut cfg = SdpConfig::smoke();
    cfg.training.epochs = 2;
    cfg.training.steps_per_epoch = 6;
    cfg.training.batch_size = 8;
    let run = |threads: usize| {
        let mut c = cfg.clone();
        c.training.parallelism = threads;
        let mut agent = SdpAgent::new(&c, train.num_assets(), 3);
        let log = Trainer::new(&c).train_sdp(&mut agent, &train);
        (stbp::flat_params(&agent.network), log.epoch_rewards)
    };
    let (p1, r1) = run(1);
    let (p4, r4) = run(4);
    assert_eq!(r1, r4, "epoch rewards must not depend on thread count");
    assert_eq!(p1, p4, "trained parameters must not depend on thread count");
}

#[test]
fn trained_model_regression_sparse_equals_dense_on_table3_slice() {
    // Drive a full end-to-end training run (short seeded Table-3 slice)
    // down each kernel path via the process-global override — the only
    // lever for code that exposes just the default entry points. Safe
    // concurrently: both paths are bit-identical.
    let (train, _) = ExperimentPreset::experiment1().shrunk(30, 8).generate_split(11);
    let mut cfg = SdpConfig::smoke();
    cfg.training.epochs = 2;
    cfg.training.steps_per_epoch = 5;
    cfg.training.batch_size = 6;
    let run = |path: Option<KernelPath>| {
        match path {
            Some(p) => set_kernel_path(p),
            None => reset_kernel_path(),
        }
        let mut agent = SdpAgent::new(&cfg, train.num_assets(), 3);
        let log = Trainer::new(&cfg).train_sdp(&mut agent, &train);
        reset_kernel_path();
        (stbp::flat_params(&agent.network), log.epoch_rewards)
    };
    let (dense_params, dense_rewards) = run(Some(KernelPath::Dense));
    let (sparse_params, sparse_rewards) = run(Some(KernelPath::Sparse(SparseMode::Bitwise)));
    let (default_params, default_rewards) = run(None);
    assert_eq!(sparse_rewards, dense_rewards, "training curves must match bitwise");
    assert_eq!(sparse_params, dense_params, "final weights must match bitwise");
    // The default path must be one of the two verified paths (sparse
    // bitwise unless the fast-math env flag was set for this run).
    if std::env::var("SPIKEFOLIO_FAST_MATH").is_err() {
        assert_eq!(default_params, dense_params, "default path drifted from the references");
        assert_eq!(default_rewards, dense_rewards);
    }
}

#[test]
fn kernel_event_tally_matches_cost_model_synops() {
    let net = SdpNetwork::new(SdpNetworkConfig::small(16, 4), &mut StdRng::seed_from_u64(2016));
    let batch = 32;
    let (trace, _) = forward_both(&net, batch, KernelPath::Sparse(SparseMode::Bitwise));
    // Three independent tallies of the same quantity: the kernels' own
    // running count, the stats recomputation from the dense rasters, and
    // the cost model fed by per-layer spike counts.
    assert_eq!(trace.kernel_events, trace.stats.synops);
    let shapes: Vec<(usize, usize)> =
        net.layers.iter().map(|l| (l.in_dim(), l.out_dim())).collect();
    let cost = CostReport::from_workload(
        &shapes,
        net.config().timesteps,
        batch,
        trace.stats.encoder_spikes,
        &trace.layer_spikes,
    );
    assert_eq!(trace.kernel_events, cost.total_synops());
}

// ---------------------------------------------------------------------------
// Kernel-level proptest battery over adversarial spike patterns.
// ---------------------------------------------------------------------------

/// Deterministic adversarial raster: `pattern` selects the shape family.
fn adversarial_raster(pattern: usize, rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    match pattern {
        // All-zero timesteps: a random raster with every third row (and
        // the first) silenced.
        0 => {
            let mut m =
                Matrix::from_fn(rows, cols, |_, _| if rng.gen_bool(0.4) { 1.0 } else { 0.0 });
            for r in 0..rows {
                if r == 0 || r % 3 == 0 {
                    m.row_mut(r).iter_mut().for_each(|v| *v = 0.0);
                }
            }
            m
        }
        // Fully-dense timesteps: every neuron fires every step.
        1 => Matrix::filled(rows, cols, 1.0),
        // Single-neuron spikes: exactly one event per row.
        2 => {
            let mut m = Matrix::zeros(rows, cols);
            for r in 0..rows {
                let c = rng.gen_range(0..cols);
                m.row_mut(r)[c] = 1.0;
            }
            m
        }
        // Ragged per-sample sparsity: per-row density swept 0..=100%,
        // with graded "soft" spike values in (0, 1].
        _ => {
            let mut m = Matrix::zeros(rows, cols);
            for r in 0..rows {
                let density = r as f64 / rows.max(1) as f64;
                for c in 0..cols {
                    if rng.gen_bool(density) {
                        m.row_mut(r)[c] = 0.25 + 0.75 * rng.gen_range(0.0..1.0);
                    }
                }
            }
            m
        }
    }
}

fn weights(out_dim: usize, in_dim: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    Matrix::from_fn(out_dim, in_dim, |_, _| rng.gen_range(-0.5..0.5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `spike_drive` equals `gemm_nt` bitwise in the default mode, and to
    /// ≤1e-6 relative error in fast-math mode, over every adversarial
    /// pattern family.
    #[test]
    fn drive_matches_dense_over_adversarial_patterns(
        pattern in 0usize..4,
        bsz in 1usize..7,
        t_max in 1usize..5,
        in_dim in 1usize..40,
        out_dim in 1usize..24,
        seed in 0u64..1000,
    ) {
        let rows = t_max * bsz;
        let stack = adversarial_raster(pattern, rows, in_dim, seed);
        let set = SpikeSet::from_matrix(&stack);
        let w = weights(out_dim, in_dim, seed);
        let wt = w.transposed();
        for t in 0..t_max {
            let block = &stack.as_slice()[t * bsz * in_dim..(t + 1) * bsz * in_dim];
            let mut dense = vec![0.0; bsz * out_dim];
            gemm::gemm_nt(block, w.as_slice(), &mut dense, bsz, in_dim, out_dim);

            let mut bitwise = vec![f64::NAN; bsz * out_dim];
            let synops = sparse::spike_drive(
                block, &set, t * bsz, wt.as_slice(), &mut bitwise,
                bsz, in_dim, out_dim, SparseMode::Bitwise,
            );
            prop_assert_eq!(&bitwise, &dense);
            let events: u64 =
                (0..bsz).map(|b| set.row(t * bsz + b).len() as u64).sum();
            prop_assert_eq!(synops, events * out_dim as u64);

            let mut fast = vec![f64::NAN; bsz * out_dim];
            sparse::spike_drive(
                block, &set, t * bsz, wt.as_slice(), &mut fast,
                bsz, in_dim, out_dim, SparseMode::FastMath,
            );
            for (f, d) in fast.iter().zip(&dense) {
                let rel = (f - d).abs() / (1.0 + d.abs());
                prop_assert!(rel <= 1e-6, "fast-math drift {} vs {} (pattern {})", f, d, pattern);
            }
        }
    }

    /// `spike_outer_acc` equals `gemm_tn_acc` bitwise over every
    /// adversarial pattern family (both modes share one code path — there
    /// is no per-element reduction to reorder).
    #[test]
    fn weight_grad_matches_dense_over_adversarial_patterns(
        pattern in 0usize..4,
        rows in 1usize..24,
        m in 1usize..16,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let b = adversarial_raster(pattern, rows, n, seed);
        let set = SpikeSet::from_matrix(&b);
        let a = weights(rows, m, seed ^ 1); // dense delta stack
        let start = weights(m, n, seed ^ 2); // non-zero accumulator start
        let mut dense = start.clone();
        gemm::gemm_tn_acc(0.9, a.as_slice(), b.as_slice(), dense.as_mut_slice(), rows, m, n);
        let mut sparse_out = start.clone();
        sparse::spike_outer_acc(
            0.9, a.as_slice(), b.as_slice(), &set, sparse_out.as_mut_slice(), rows, m, n,
        );
        prop_assert_eq!(sparse_out.as_slice(), dense.as_slice());
    }

    /// The spike-set round-trip holds for every adversarial pattern: the
    /// occupancy marks exactly the non-zero entries, in ascending order.
    #[test]
    fn spike_set_round_trips_adversarial_patterns(
        pattern in 0usize..4,
        rows in 1usize..20,
        cols in 1usize..50,
        seed in 0u64..1000,
    ) {
        let m = adversarial_raster(pattern, rows, cols, seed);
        let set = SpikeSet::from_matrix(&m);
        prop_assert_eq!(set.rows(), rows);
        prop_assert_eq!(set.cols(), cols);
        let nonzero = m.as_slice().iter().filter(|&&x| x != 0.0).count() as u64;
        prop_assert_eq!(set.nnz(), nonzero);
        for r in 0..rows {
            let row = set.row(r);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {} not ascending", r);
            for &c in row {
                prop_assert!(m.row(r)[c as usize] != 0.0);
            }
        }
    }
}
