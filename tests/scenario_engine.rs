//! Scenario-engine integration: the `spikefolio.scorecard.v1` schema
//! contract and the stress-matrix acceptance criteria, exercised through
//! the real matrix runner.
//!
//! Pinned here:
//!
//! 1. **Schema golden file** — the scorecard writer's byte-level output
//!    for a fixed document (the `spikefolio.scorecard.v1` analogue of the
//!    `spikefolio.run.v1` golden test in `telemetry_run.rs`).
//! 2. **Coverage** — one row per (universe × scenario × strategy) cell,
//!    DDPG included, and every cell parses back through `from_json`.
//! 3. **Determinism** — the same seed replays to bitwise-identical JSON.
//! 4. **Friction accounting** — with realistic frictions enabled,
//!    rebalancing strategies pay positive cost drag while buy-and-hold
//!    pays nothing after its initial allocation.

use spikefolio::{run_scenario_matrix, ScenarioMatrixOptions};
use spikefolio_baselines::BuyAndHold;
use spikefolio_env::{BacktestConfig, Backtester, CostModel};
use spikefolio_market::{MarketClass, UniverseGrid, UniverseSpec};
use spikefolio_scenario::{Scenario, Scorecard, ScorecardCell, SCORECARD_SCHEMA};
use spikefolio_telemetry::NoopRecorder;

fn smoke_opts() -> ScenarioMatrixOptions {
    ScenarioMatrixOptions {
        seed: 20220314,
        universes: vec!["crypto".into(), "fx".into()],
        scenarios: vec![Scenario::Calm, Scenario::FlashCrash],
        smoke: true,
        costs: CostModel::realistic_frictions(),
    }
}

/// Byte-exact golden file for the scorecard writer: a fixed document must
/// serialize to exactly this JSON. Any change here is a schema revision
/// and needs a version bump in `SCORECARD_SCHEMA`.
#[test]
fn scorecard_writer_matches_golden_output() {
    let card = Scorecard {
        seed: 7,
        cost_model: "frictional(c=0.0025, s=0.001, k=0.005, d=0.5)".into(),
        cells: vec![ScorecardCell {
            universe: "crypto".into(),
            scenario: "flash-crash".into(),
            strategy: "SDP".into(),
            reward: -0.25,
            sharpe: -1.5,
            max_drawdown: 0.2,
            turnover: 3.5,
            cost_drag: 0.015625,
            final_value: 0.75,
        }],
    };
    let golden = concat!(
        "{\"schema\":\"spikefolio.scorecard.v1\",\"seed\":7,",
        "\"cost_model\":\"frictional(c=0.0025, s=0.001, k=0.005, d=0.5)\",",
        "\"universes\":[\"crypto\"],\"scenarios\":[\"flash-crash\"],",
        "\"strategies\":[\"SDP\"],\"cells\":[{\"universe\":\"crypto\",",
        "\"scenario\":\"flash-crash\",\"strategy\":\"SDP\",\"reward\":-0.25,",
        "\"sharpe\":-1.5,\"max_drawdown\":0.2,\"turnover\":3.5,",
        "\"cost_drag\":0.015625,\"final_value\":0.75}]}",
    );
    assert_eq!(
        card.to_json(),
        golden,
        "scorecard JSON changed — bump SCORECARD_SCHEMA if intentional"
    );
    assert_eq!(Scorecard::from_json(golden).expect("golden parses"), card);
}

/// The matrix emits one row per (universe × scenario × strategy) cell,
/// DDPG included, and the document round-trips through its own parser.
#[test]
fn matrix_scorecard_covers_every_cell_and_round_trips() {
    let opts = smoke_opts();
    let card = run_scenario_matrix(&opts, &mut NoopRecorder).expect("matrix runs");

    let universes = ["crypto", "fx"];
    let scenarios = ["calm", "flash-crash"];
    let strategies =
        ["SDP", "DRL[Jiang]", "EIIE", "DDPG", "ONS", "ANTICOR", "UCRP", "Buy and Hold"];
    assert_eq!(card.cells.len(), universes.len() * scenarios.len() * strategies.len());
    for u in universes {
        for s in scenarios {
            for strat in strategies {
                let cell = card.cell(u, s, strat);
                assert!(cell.is_some(), "missing cell ({u}, {s}, {strat})");
                let cell = cell.expect("present");
                assert!(cell.final_value.is_finite() && cell.final_value > 0.0);
                assert!(cell.reward.is_finite());
            }
        }
    }

    let json = card.to_json();
    assert!(json.starts_with(&format!("{{\"schema\":\"{SCORECARD_SCHEMA}\"")));
    assert_eq!(Scorecard::from_json(&json).expect("parses"), card);
}

/// Determinism contract: the same options and seed replay to
/// bitwise-identical scorecard JSON.
#[test]
fn matrix_replays_bitwise_under_a_pinned_seed() {
    let opts = ScenarioMatrixOptions {
        universes: vec!["equity".into()],
        scenarios: vec![Scenario::Calm, Scenario::CorrelatedMeltdown],
        ..smoke_opts()
    };
    let a = run_scenario_matrix(&opts, &mut NoopRecorder).expect("first run");
    let b = run_scenario_matrix(&opts, &mut NoopRecorder).expect("second run");
    assert_eq!(a.to_json(), b.to_json());
}

/// With realistic frictions on, every rebalancing strategy pays positive
/// cost drag while buy-and-hold's only cost is its initial allocation —
/// after the first period it trades (and pays) nothing.
#[test]
fn frictions_drag_rebalancers_but_not_buy_and_hold() {
    let opts = ScenarioMatrixOptions {
        universes: vec!["crypto".into()],
        scenarios: vec![Scenario::Calm],
        ..smoke_opts()
    };
    let card = run_scenario_matrix(&opts, &mut NoopRecorder).expect("matrix runs");
    for strategy in ["SDP", "DRL[Jiang]", "EIIE", "DDPG", "ONS", "ANTICOR", "UCRP"] {
        let cell = card.cell("crypto", "calm", strategy).expect("cell present");
        assert!(cell.cost_drag > 0.0, "{strategy} should pay costs, drag={}", cell.cost_drag);
        assert!(cell.turnover > 0.0, "{strategy} should trade");
    }

    // Pin the buy-and-hold guarantee at the costs_paid series level: the
    // initial cash → uniform allocation pays, every later step is free.
    let (_, test) = UniverseSpec::single_class(MarketClass::Crypto, 8, UniverseGrid::smoke())
        .generate_split(opts.seed);
    let result = Backtester::new(BacktestConfig {
        costs: CostModel::realistic_frictions(),
        ..BacktestConfig::default()
    })
    .run(&mut BuyAndHold::new(), &test);
    assert!(result.costs_paid[0] > 0.0, "initial allocation pays frictions");
    for (t, &c) in result.costs_paid.iter().enumerate().skip(1) {
        assert!(c.abs() <= 1e-12, "buy-and-hold paid {c} at step {t}");
    }
}
