//! Flight-recorder, lineage-ledger, and quarantine-triage acceptance
//! suite.
//!
//! The headline properties: an injected mid-round crash leaves an
//! atomically written `spikefolio.blackbox.v1` dump whose ordered event
//! tail ends at the panic; `desk triage` replays a quarantined round's
//! gate numbers **bitwise** from the manifest and artifacts alone; and
//! the lineage ledger written during a run reads back losslessly with a
//! walkable promotion ancestry.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use spikefolio::{
    render_ancestry, render_desk_top, run_desk_quiet, run_triage, DeskOptions, TriageOptions,
};
use spikefolio_blackbox::read_ledger;
use spikefolio_resilience::FaultPlan;
use spikefolio_telemetry::value::{parse, Value};
use std::path::PathBuf;
use std::process::Command;

fn tmp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spikefolio-blackbox-{}-{name}", std::process::id()))
}

/// The smoke desk shrunk to a test-speed trainer, with the full
/// observability sidecar armed under its working directory.
fn fast_opts(name: &str) -> DeskOptions {
    let dir = tmp_dir(name);
    let _ = std::fs::remove_dir_all(&dir);
    let mut opts = DeskOptions::smoke(dir);
    opts.config.training.epochs = 2;
    opts.config.training.steps_per_epoch = 2;
    opts.config.training.batch_size = 4;
    opts.blackbox = Some(opts.dir.join("blackbox.json"));
    opts.lineage = Some(opts.dir.join("lineage.jsonl"));
    opts.status = Some(opts.dir.join("desk-top.json"));
    opts
}

#[test]
fn injected_crash_writes_an_ordered_blackbox_dump() {
    let dir = tmp_dir("crash-dump");
    let _ = std::fs::remove_dir_all(&dir);
    // A scripted `crash` fault panics the desk process mid-round 1; the
    // chained panic hook must flush the flight recorder on the way down.
    let out = Command::new(env!("CARGO_BIN_EXE_spikefolio"))
        .args(["live-desk", "--seed", "5", "--rounds", "2", "--epochs", "2"])
        .args(["--faults", "crash@1", "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn spikefolio");
    assert!(!out.status.success(), "a crash fault must kill the process");

    let raw = std::fs::read_to_string(dir.join("blackbox.json")).expect("crash dump written");
    let v = parse(raw.trim()).expect("dump parses as JSON");
    assert_eq!(v.get("schema").and_then(Value::as_str), Some("spikefolio.blackbox.v1"));
    let events = v.get("events").and_then(Value::as_list).expect("events array");
    assert!(!events.is_empty());

    // Sequence numbers are strictly increasing: the ring preserved order.
    let seqs: Vec<u64> =
        events.iter().map(|e| e.get("seq").and_then(Value::as_u64).unwrap()).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "unordered tail: {seqs:?}");

    // The tail runs right up to the fault: the crash event carries its
    // round, and the very last event is the panic itself.
    let stages: Vec<&str> =
        events.iter().map(|e| e.get("stage").and_then(Value::as_str).unwrap()).collect();
    assert_eq!(*stages.last().unwrap(), "panic", "{stages:?}");
    let crash = stages.iter().position(|s| *s == "fault/crash").expect("fault/crash recorded");
    assert!(crash < stages.len() - 1, "crash event must precede the panic: {stages:?}");
    assert_eq!(events[crash].get("round").and_then(Value::as_u64), Some(1));
    let message = events.last().unwrap().get("message").and_then(Value::as_str).unwrap_or("");
    assert!(message.contains("injected crash fault"), "{message:?}");
}

#[test]
fn triage_replays_a_quarantined_gate_bitwise() {
    // A zero drift bound quarantines every candidate whose entropy moved
    // at all — guaranteeing at least one manifest with the reward stage
    // (and usually the drift stage) evaluated.
    let mut opts = fast_opts("triage-drift");
    opts.rounds = 2;
    opts.drift_threshold = 0.0;
    let dir = opts.dir.clone();
    let config = opts.config.clone();
    let report = run_desk_quiet(opts).expect("desk completes");
    assert!(report.quarantines >= 1, "zero drift bound must quarantine: {report:?}");

    let t = run_triage(&TriageOptions { config, dir, round: None }).expect("triage replays");
    assert!(matches!(t.kind.as_str(), "drift" | "validation"), "{t:?}");
    assert!(t.reward_evaluated, "reward stage ran at desk time: {t:?}");
    assert_eq!(t.candidate_reward.bitwise_match(), Some(true), "{t:?}");
    assert_eq!(t.incumbent_reward.bitwise_match(), Some(true), "{t:?}");
    if t.drift_evaluated {
        assert_eq!(t.entropy_drift.bitwise_match(), Some(true), "{t:?}");
    }
    assert!(t.reproduced(), "{t:?}");
}

#[test]
fn triage_reproduces_an_integrity_quarantine_as_a_failing_load() {
    // Two corruptions in round 1 re-rot the heal, so the integrity probe
    // rejects the candidate and the rotten bytes land in quarantine. The
    // *reproduction* of that quarantine is the load failing again.
    let mut opts = fast_opts("triage-integrity");
    opts.rounds = 2;
    opts.faults = spikefolio::parse_fault_spec("corrupt@1,corrupt@1", opts.seed).unwrap();
    let dir = opts.dir.clone();
    let config = opts.config.clone();
    let report = run_desk_quiet(opts).expect("desk completes");
    assert_eq!(report.rounds[1].outcome, "rejected:integrity", "{report:?}");

    let t = run_triage(&TriageOptions { config, dir, round: Some(1) }).expect("triage replays");
    assert_eq!(t.kind, "integrity");
    assert_eq!(t.integrity_recorded, Some(false));
    assert!(!t.integrity_replayed, "rotten bytes must still fail to load");
    assert!(t.candidate_load_error.is_some());
    // The desk judged the *in-memory* candidate's reward before probing
    // the bytes on disk, so the candidate side is unreplayable from the
    // rotten artifact — while the incumbent still replays bitwise.
    assert_eq!(t.candidate_reward.bitwise_match(), None, "{t:?}");
    assert_eq!(t.incumbent_reward.bitwise_match(), Some(true), "{t:?}");
    assert!(t.reproduced(), "{t:?}");
}

#[test]
fn desk_run_writes_readable_ledger_ancestry_and_status() {
    let opts = fast_opts("ledger");
    let dir = opts.dir.clone();
    let report = run_desk_quiet(opts).expect("desk completes");

    let log = read_ledger(dir.join("lineage.jsonl")).expect("ledger reads");
    assert_eq!(log.skipped, 0, "a clean run's ledger has no torn lines");
    assert_eq!(log.entries.len(), report.rounds.len(), "one entry per round");
    if report.promotions > 0 {
        let chain = render_ancestry(&log, report.final_version);
        assert!(
            chain.contains(&format!("v{}", report.final_version)),
            "ancestry of the final version must start at it: {chain:?}"
        );
    }

    // The final status snapshot marks the run done and renders a frame.
    let raw = std::fs::read_to_string(dir.join("desk-top.json")).expect("status written");
    let v = parse(raw.trim()).expect("status parses");
    assert_eq!(v.get("schema").and_then(Value::as_str), Some("spikefolio.deskstatus.v1"));
    assert_eq!(v.get("done"), Some(&Value::Bool(true)));
    let frame = render_desk_top(&v);
    assert!(frame.contains("DONE"), "{frame}");

    // A clean run still flushes its blackbox at run end.
    let dump = std::fs::read_to_string(dir.join("blackbox.json")).expect("end-of-run dump");
    let d = parse(dump.trim()).expect("dump parses");
    assert_eq!(d.get("schema").and_then(Value::as_str), Some("spikefolio.blackbox.v1"));
}

#[test]
fn armed_recorder_does_not_change_the_desk_outcome() {
    // The sidecar is observe-only: a run with the blackbox, ledger, and
    // status file armed must land on bitwise the same decisions and
    // weights as a bare run of the same seed.
    let mut bare = fast_opts("bare");
    bare.blackbox = None;
    bare.lineage = None;
    bare.status = None;
    bare.faults = FaultPlan::default();
    let bare_report = run_desk_quiet(bare).expect("bare run completes");
    let armed_report = run_desk_quiet(fast_opts("armed")).expect("armed run completes");
    assert_eq!(bare_report.final_weights_crc, armed_report.final_weights_crc);
    assert_eq!(bare_report.to_json(), armed_report.to_json());
}
