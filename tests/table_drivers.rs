//! Smoke-scale runs of the Table 3 / Table 4 drivers and their report
//! formatting — the same code paths the examples and benches execute at
//! full scale.

use spikefolio::experiments::{
    encoding_comparison, run_table3, run_table4, timestep_tradeoff, RunOptions,
    PAPER_LOIHI_NJ_PER_INF,
};
use spikefolio::report;

fn tiny_opts() -> RunOptions {
    let mut opts = RunOptions::smoke();
    opts.shrink = Some((30, 10));
    opts.config.training.epochs = 1;
    opts.config.training.steps_per_epoch = 2;
    opts.config.training.batch_size = 4;
    opts
}

#[test]
fn table3_driver_produces_three_experiments() {
    let outcomes = run_table3(&tiny_opts());
    assert_eq!(outcomes.len(), 3);
    for (out, name) in outcomes.iter().zip(["Experiment 1", "Experiment 2", "Experiment 3"]) {
        assert_eq!(out.experiment, name);
        assert_eq!(out.rows.len(), 7);
        for row in &out.rows {
            assert!(row.metrics.fapv.is_finite() && row.metrics.fapv > 0.0);
            assert!((0.0..1.0).contains(&row.metrics.mdd));
            assert!(row.metrics.sharpe.is_finite());
        }
        assert!(out.sdp_log.steps > 0);
        assert!(out.drl_log.steps > 0);
    }
    let text = report::format_table3(&outcomes);
    assert!(text.contains("Experiment 3"));
    assert!(text.lines().count() > 21, "7 rows × 3 blocks + headers");
}

#[test]
fn table4_driver_reproduces_headline_ratios() {
    let outcomes = run_table4(&tiny_opts());
    assert_eq!(outcomes.len(), 3);
    for out in &outcomes {
        // Paper headline: ≥186× vs CPU, ≥516× vs GPU. The calibrated model
        // reproduces the order of magnitude on every experiment.
        assert!(out.cpu_advantage() > 100.0, "{}: {}", out.experiment, out.cpu_advantage());
        assert!(out.gpu_advantage() > 300.0, "{}: {}", out.experiment, out.gpu_advantage());
        // Loihi idle power is the small board constant; GPU idles high.
        assert!(out.loihi().idle_w < out.rows[1].idle_w);
    }
    // Calibration endpoint: experiment 1's Loihi row hits the paper value.
    assert!((outcomes[0].loihi().nj_per_inf - PAPER_LOIHI_NJ_PER_INF).abs() < 1e-6);
    // Experiments 2–3 extrapolate with the same constants and stay close.
    for out in &outcomes[1..] {
        let nj = out.loihi().nj_per_inf;
        assert!(
            (PAPER_LOIHI_NJ_PER_INF * 0.3..PAPER_LOIHI_NJ_PER_INF * 3.0).contains(&nj),
            "{}: {nj} nJ",
            out.experiment
        );
    }
    let text = report::format_table4(&outcomes);
    assert!(text.contains("Loihi") && text.contains("CPU") && text.contains("GPU"));
    assert!(text.contains("advantage"));
}

#[test]
fn timestep_ablation_shows_energy_performance_tradeoff() {
    let points = timestep_tradeoff(&tiny_opts(), &[1, 5, 10]);
    assert_eq!(points.len(), 3);
    // Energy and latency are monotone in T (the paper's stated trade-off).
    for w in points.windows(2) {
        assert!(w[1].nj_per_inf > w[0].nj_per_inf);
        assert!(w[1].latency_s > w[0].latency_s);
    }
    let text = report::format_timestep_tradeoff(&points);
    assert!(text.contains("nJ/Inf"));
}

#[test]
fn encoding_ablation_covers_both_modes() {
    let points = encoding_comparison(&tiny_opts());
    assert_eq!(points.len(), 2);
    assert!(points.iter().all(|p| p.metrics.fapv.is_finite()));
    let text = report::format_encoding_comparison(&points);
    assert!(text.contains("deterministic") && text.contains("probabilistic"));
}
