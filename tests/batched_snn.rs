//! Equivalence, gradient-correctness, property, and regression tests for
//! the batched SNN execution engine (`SdpNetwork::forward_batch` /
//! `stbp::backward_batch`).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spikefolio::agent::SdpAgent;
use spikefolio::checkpoint;
use spikefolio::config::SdpConfig;
use spikefolio_snn::encoder::Encoding;
use spikefolio_snn::network::{SdpNetwork, SdpNetworkConfig};
use spikefolio_snn::neuron::SpikeFn;
use spikefolio_snn::stbp;
use spikefolio_snn::{BatchNetworkTrace, BatchWorkspace};
use spikefolio_tensor::Matrix;

const TOL: f64 = 1e-12;

fn small_net(encoding: Encoding) -> SdpNetwork {
    let mut cfg = SdpNetworkConfig::small(6, 3);
    cfg.hidden = vec![12, 9];
    cfg.encoder.encoding = encoding;
    let mut rng = StdRng::seed_from_u64(7);
    SdpNetwork::new(cfg, &mut rng)
}

fn states(batch: usize, dim: usize) -> Matrix {
    Matrix::from_fn(batch, dim, |b, d| 0.7 + 0.04 * ((b * dim + d) % 17) as f64)
}

/// Runs the batched forward + backward and the per-sample reference
/// (identical per-sample encoder seeds) and compares actions exactly and
/// every gradient block within `TOL`.
fn check_equivalence(encoding: Encoding) {
    let net = small_net(encoding);
    let dim = net.config().state_dim;
    let rate_penalty = 0.05;
    for &batch in &[1usize, 3, 32] {
        let st = states(batch, dim);
        let d_actions = Matrix::from_fn(batch, 3, |b, a| 0.2 - 0.1 * a as f64 + 0.01 * b as f64);

        let mut ws = BatchWorkspace::new(&net, batch);
        let mut trace = BatchNetworkTrace::new(&net, batch);
        let mut rngs: Vec<StdRng> =
            (0..batch).map(|b| StdRng::seed_from_u64(1000 + b as u64)).collect();
        net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
        let batched = stbp::backward_batch(&net, &trace, &d_actions, rate_penalty, &mut ws);

        let mut reference = stbp::SdpGradients::zeros_like(&net);
        for b in 0..batch {
            let mut r = StdRng::seed_from_u64(1000 + b as u64);
            let (action, tr) = net.forward(st.row(b), &mut r);
            // Actions must match the per-sample path exactly, not just
            // within tolerance.
            assert_eq!(
                trace.action(b),
                action.as_slice(),
                "batch {batch} sample {b}: action mismatch ({encoding:?})"
            );
            let g = stbp::backward_with_rate_penalty(&net, &tr, d_actions.row(b), rate_penalty);
            reference.accumulate(&g);
        }

        for (k, (bg, rg)) in batched.layers.iter().zip(&reference.layers).enumerate() {
            for (i, (x, y)) in
                bg.d_weights.as_slice().iter().zip(rg.d_weights.as_slice()).enumerate()
            {
                assert!((x - y).abs() <= TOL, "batch {batch} layer {k} d_weights[{i}]: {x} vs {y}");
            }
            for (i, (x, y)) in bg.d_bias.iter().zip(&rg.d_bias).enumerate() {
                assert!((x - y).abs() <= TOL, "batch {batch} layer {k} d_bias[{i}]: {x} vs {y}");
            }
        }
        for (i, (x, y)) in
            batched.d_decoder_weights.iter().zip(&reference.d_decoder_weights).enumerate()
        {
            assert!((x - y).abs() <= TOL, "batch {batch} decoder d_weights[{i}]: {x} vs {y}");
        }
        for (i, (x, y)) in batched.d_decoder_bias.iter().zip(&reference.d_decoder_bias).enumerate()
        {
            assert!((x - y).abs() <= TOL, "batch {batch} decoder d_bias[{i}]: {x} vs {y}");
        }
    }
}

#[test]
fn batched_path_matches_per_sample_deterministic_encoding() {
    check_equivalence(Encoding::Deterministic);
}

#[test]
fn batched_path_matches_per_sample_probabilistic_encoding() {
    check_equivalence(Encoding::Probabilistic);
}

/// Loss of a linear functional `Σ_b c_b · a_b` computed entirely through
/// the batched forward path (deterministic encoding, so re-running is
/// exact).
fn batched_loss(net: &SdpNetwork, st: &Matrix, c: &Matrix) -> f64 {
    let batch = st.shape().0;
    let mut ws = BatchWorkspace::new(net, batch);
    let mut trace = BatchNetworkTrace::new(net, batch);
    let mut rngs: Vec<StdRng> = (0..batch).map(|b| StdRng::seed_from_u64(b as u64)).collect();
    net.forward_batch(st, &mut rngs, &mut ws, &mut trace);
    (0..batch).map(|b| trace.action(b).iter().zip(c.row(b)).map(|(x, y)| x * y).sum::<f64>()).sum()
}

#[test]
fn backward_batch_matches_finite_differences_on_soft_network() {
    // Soft spikes make the whole network differentiable, so the batched
    // STBP gradients must agree with central differences.
    let mut cfg = SdpNetworkConfig::small(3, 2);
    cfg.hidden = vec![6];
    cfg.pop_out = 2;
    cfg.timesteps = 4;
    cfg.encoder.pop_size = 3;
    cfg.spike_fn = SpikeFn::Soft { temperature: 0.4 };
    let mut rng = StdRng::seed_from_u64(123);
    let net = SdpNetwork::new(cfg, &mut rng);

    let batch = 3;
    let st = states(batch, 3);
    let c = Matrix::from_fn(batch, 2, |b, a| if a == 0 { 1.0 + 0.2 * b as f64 } else { -1.5 });

    let mut ws = BatchWorkspace::new(&net, batch);
    let mut trace = BatchNetworkTrace::new(&net, batch);
    let mut rngs: Vec<StdRng> = (0..batch).map(|b| StdRng::seed_from_u64(b as u64)).collect();
    net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
    let grads = stbp::backward_batch(&net, &trace, &c, 0.0, &mut ws);
    let analytic = stbp::flat_grads(&grads);
    let params = stbp::flat_params(&net);
    assert_eq!(analytic.len(), params.len());

    let eps = 1e-5;
    let mut checked = 0;
    for i in (0..params.len()).step_by(5).chain(params.len().saturating_sub(4)..params.len()) {
        let mut pp = params.clone();
        pp[i] += eps;
        let mut netp = net.clone();
        stbp::set_flat_params(&mut netp, &pp);
        let lp = batched_loss(&netp, &st, &c);

        let mut pm = params.clone();
        pm[i] -= eps;
        let mut netm = net.clone();
        stbp::set_flat_params(&mut netm, &pm);
        let lm = batched_loss(&netm, &st, &c);

        let num = (lp - lm) / (2.0 * eps);
        let err = (analytic[i] - num).abs() / (1.0 + num.abs());
        assert!(err < 1e-4, "param {i}: analytic {} vs numeric {num}", analytic[i]);
        checked += 1;
    }
    assert!(checked >= 15, "checked too few parameters: {checked}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The rate decoder maps any non-negative spike-count vector to a
    /// point on the probability simplex.
    #[test]
    fn decoder_outputs_lie_on_the_simplex(
        sums in proptest::collection::vec(0.0f64..20.0, 12)
    ) {
        let net = small_net(Encoding::Deterministic);
        // small(6, 3) with pop_out 4 → 12 output-population neurons.
        let trace = net.decoder.decode(&sums);
        prop_assert!(spikefolio_tensor::simplex::is_on_simplex(&trace.action, 1e-9),
            "decoded action off the simplex: {:?}", trace.action);
    }

    /// Batched forward actions stay on the simplex for arbitrary state
    /// batches.
    #[test]
    fn batched_actions_lie_on_the_simplex(seed in 0u64..500, batch in 1usize..9) {
        let net = small_net(Encoding::Deterministic);
        let dim = net.config().state_dim;
        let mut vrng = StdRng::seed_from_u64(seed);
        let st = Matrix::from_fn(batch, dim, |_, _| vrng.gen_range(0.5..1.5));
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut trace = BatchNetworkTrace::new(&net, batch);
        let mut rngs: Vec<StdRng> =
            (0..batch).map(|b| StdRng::seed_from_u64(seed ^ b as u64)).collect();
        net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
        for b in 0..batch {
            prop_assert!(
                spikefolio_tensor::simplex::is_on_simplex(trace.action(b), 1e-9),
                "sample {b} off the simplex: {:?}", trace.action(b)
            );
        }
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("spikefolio-batched-{}-{name}", std::process::id()));
    p
}

#[test]
fn checkpoint_roundtrip_preserves_batched_forward_bitwise() {
    let cfg = SdpConfig::smoke();
    let agent = SdpAgent::new(&cfg, 3, cfg.seed);
    let path = tmp("roundtrip.ckpt");
    checkpoint::save_sdp(&agent, &path).unwrap();
    // Restore into an agent with different random parameters.
    let mut restored = SdpAgent::new(&cfg, 3, cfg.seed ^ 0xdead_beef);
    checkpoint::load_sdp(&mut restored, &path).unwrap();
    std::fs::remove_file(&path).ok();

    let dim = agent.network.config().state_dim;
    let batch = 8;
    let st = states(batch, dim);
    let run = |net: &SdpNetwork| -> Vec<Vec<f64>> {
        let mut ws = BatchWorkspace::new(net, batch);
        let mut trace = BatchNetworkTrace::new(net, batch);
        let mut rngs: Vec<StdRng> = (0..batch).map(|b| StdRng::seed_from_u64(b as u64)).collect();
        net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
        (0..batch).map(|b| trace.action(b).to_vec()).collect()
    };
    let original = run(&agent.network);
    let reloaded = run(&restored.network);
    // The checkpoint stores exact f64 bits, so the restored agent's
    // batched outputs must be bit-identical, not merely close.
    assert_eq!(original, reloaded);
}
