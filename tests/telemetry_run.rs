//! Run-telemetry integration: the JSONL schema contract and the
//! observe-only guarantee, exercised through real SDP training.
//!
//! Two properties are pinned here:
//!
//! 1. **Schema golden file** — the writer's byte-level output for a fixed
//!    record sequence, and the shape (kind + required fields) of every
//!    record a real training run emits under `spikefolio.run.v1`.
//! 2. **Determinism** — training with a [`JsonlSink`] attached produces
//!    bitwise-identical results to training with the [`NoopRecorder`].

use spikefolio::agent::SdpAgent;
use spikefolio::config::SdpConfig;
use spikefolio::training::Trainer;
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_snn::stbp;
use spikefolio_telemetry::{
    labels, summarize_lines, JsonlSink, NoopRecorder, Record, Recorder, Value,
};

fn market() -> spikefolio_market::MarketData {
    ExperimentPreset::experiment1().shrunk(40, 10).generate(11)
}

fn trained_log(rec: &mut dyn Recorder) -> (SdpAgent, spikefolio::training::TrainingLog) {
    let config = SdpConfig::smoke();
    let market = market();
    let mut agent = SdpAgent::new(&config, market.num_assets(), 3);
    let log = Trainer::new(&config).train_sdp_with(&mut agent, &market, rec);
    (agent, log)
}

/// Byte-exact golden file for the writer: a fixed record sequence must
/// serialize to exactly these lines. Any change here is a schema revision
/// and needs a version bump in `spikefolio_telemetry::sink::SCHEMA`.
#[test]
fn jsonl_writer_matches_golden_output() {
    let mut sink = JsonlSink::new(Vec::new());
    sink.counter(labels::COUNTER_LOIHI_SYNOPS, 42);
    sink.span(labels::SPAN_TRAIN_EPOCH, 0.5);
    sink.emit(
        Record::new("epoch")
            .field("agent", "sdp")
            .field("epoch", 0u64)
            .field("reward", 0.25)
            .field("firing_rates", vec![0.5]),
    );
    let bytes = sink.finish().unwrap();
    let golden = concat!(
        "{\"schema\":\"spikefolio.run.v1\",\"seq\":0,\"kind\":\"epoch\",",
        "\"agent\":\"sdp\",\"epoch\":0,\"reward\":0.25,\"firing_rates\":[0.5],",
        "\"counters\":{\"loihi/synops\":42},",
        "\"spans\":{\"train/epoch\":{\"s\":0.5,\"n\":1}}}\n",
        "{\"schema\":\"spikefolio.run.v1\",\"seq\":1,\"kind\":\"run_end\",",
        "\"records\":1,\"counter_totals\":{\"loihi/synops\":42}}\n",
    );
    assert_eq!(
        String::from_utf8(bytes).unwrap(),
        golden,
        "JSONL writer output changed — bump the schema version if intentional"
    );
}

/// Every record of a real training run carries the schema stamp, a
/// strictly increasing `seq`, a known `kind`, and the fields the
/// summarizer relies on.
#[test]
fn training_run_log_conforms_to_schema() {
    let mut sink = JsonlSink::new(Vec::new());
    let (_, log) = trained_log(&mut sink);
    let bytes = sink.finish().unwrap();
    let text = String::from_utf8(bytes).unwrap();

    let mut epoch_records = 0usize;
    let mut saw_run_end = false;
    for (seq_expected, line) in text.lines().enumerate() {
        let v = spikefolio_telemetry::value::parse(line).expect("every line parses");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("spikefolio.run.v1"));
        assert_eq!(v.get("seq").and_then(Value::as_u64), Some(seq_expected as u64));
        let kind = v.get("kind").and_then(Value::as_str).expect("kind present");
        match kind {
            "epoch" => {
                epoch_records += 1;
                for field in [
                    "agent",
                    "epoch",
                    "reward",
                    "wall_s",
                    "grad_norm",
                    "grad_norms",
                    "update_mag",
                    "samples",
                    "timesteps",
                    "firing_rates",
                    "encoder_rate",
                    "spikes",
                ] {
                    assert!(v.get(field).is_some(), "epoch record missing '{field}': {line}");
                }
                assert_eq!(v.get("agent").and_then(Value::as_str), Some("sdp"));

                // The profiler attaches phase spans and op counters to
                // every epoch record.
                let spans = v.get("spans").expect("epoch record carries spans");
                for label in [
                    labels::SPAN_TRAIN_EPOCH,
                    labels::SPAN_TRAIN_SAMPLE,
                    labels::SPAN_TRAIN_FORWARD,
                    labels::SPAN_TRAIN_BACKWARD,
                    labels::SPAN_TRAIN_APPLY,
                    labels::SPAN_PROFILE_SNN_ENCODE,
                    labels::SPAN_PROFILE_SNN_LIF,
                    labels::SPAN_PROFILE_SNN_STBP,
                ] {
                    let span = spans.get(label).unwrap_or_else(|| panic!("missing span {label}"));
                    assert!(span.get("s").and_then(Value::as_f64).is_some());
                    assert!(span.get("n").and_then(Value::as_u64).is_some());
                }
                let counters = v.get("counters").expect("epoch record carries op counters");
                for label in [labels::COUNTER_OPS_DENSE_MACS, labels::COUNTER_OPS_SYNOPS] {
                    assert!(
                        counters.get(label).and_then(Value::as_u64).is_some(),
                        "missing counter {label}: {line}"
                    );
                }
                let sparsity = v
                    .get("gauges")
                    .and_then(|g| g.get(labels::GAUGE_OPS_SPARSITY))
                    .and_then(Value::as_f64)
                    .expect("epoch record carries the sparsity gauge");
                assert!((0.0..=1.0).contains(&sparsity), "sparsity out of range: {sparsity}");
            }
            "run_end" => {
                saw_run_end = true;
                assert!(v.get("records").and_then(Value::as_u64).is_some());
                // Training counts dense MACs and synops, so run_end
                // carries their authoritative totals.
                let totals = v.get("counter_totals").expect("run_end carries counter totals");
                for label in [labels::COUNTER_OPS_DENSE_MACS, labels::COUNTER_OPS_SYNOPS] {
                    assert!(
                        totals.get(label).and_then(Value::as_u64).is_some(),
                        "missing counter total {label}: {line}"
                    );
                }
            }
            other => panic!("unexpected record kind '{other}'"),
        }
    }
    assert_eq!(epoch_records, log.epoch_rewards.len(), "one epoch record per epoch");
    assert!(saw_run_end, "finish() must append the run_end record");
}

/// Telemetry is observe-only: identical seeds with and without a live
/// sink give bitwise-identical rewards, gradient norms, and weights —
/// and the log's reward series reads back equal to the returned log.
#[test]
fn recorded_training_is_bitwise_identical_to_noop() {
    let (plain_agent, plain_log) = trained_log(&mut NoopRecorder);
    let mut sink = JsonlSink::new(Vec::new());
    let (rec_agent, rec_log) = trained_log(&mut sink);
    let bytes = sink.finish().unwrap();

    assert_eq!(plain_log.epoch_rewards, rec_log.epoch_rewards);
    assert_eq!(plain_log.epoch_grad_norms, rec_log.epoch_grad_norms);
    assert_eq!(
        stbp::flat_params(&plain_agent.network),
        stbp::flat_params(&rec_agent.network),
        "weights diverged — telemetry perturbed training"
    );

    let summary = summarize_lines(&bytes[..]).unwrap();
    let logged: Vec<f64> =
        summary.epochs.get("sdp").expect("sdp series").iter().map(|p| p.reward).collect();
    assert_eq!(logged, rec_log.epoch_rewards, "log must replay the exact reward series");
}
