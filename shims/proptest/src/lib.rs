//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro with `pat in strategy` arguments and an optional
//! `#![proptest_config(...)]` header, range strategies over numbers,
//! [`collection::vec`], and [`prop_assert!`]. Cases are generated from a
//! seeded RNG (seed derived from the test name, so runs are
//! deterministic); there is no shrinking — a failing case reports its
//! index and generated values are reported by the assertion message.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values (no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_strategy!(usize, u64, u32, i64, i32);

    /// A constant strategy (stand-in for `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact `usize` or a range.
    pub trait SizeRange {
        /// Picks a length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Creates a `Vec` strategy with the given element strategy and length
    /// (exact or range), mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (the `cases` knob is the only one honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Drives the case loop of one `proptest!` test.
    #[derive(Debug)]
    pub struct TestRunner {
        cases: u32,
        rng: StdRng,
    }

    impl TestRunner {
        /// Creates a runner whose RNG seed is derived from `name` (FNV-1a),
        /// so each test gets a stable, distinct stream.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325_u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            Self { cases: config.cases, rng: StdRng::seed_from_u64(seed) }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The case RNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts inside a `proptest!` body; failure aborts the current case with
/// a message instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if $cond {
        } else {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// The proptest test-block macro: expands each `fn name(pat in strategy)`
/// into a `#[test]` that runs `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, ::std::stringify!($name));
                for case in 0..runner.cases() {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), runner.rng());
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            ::std::stringify!($name),
                            case + 1,
                            runner.cases(),
                            msg
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -0.5f64..0.5, n in 0u64..1000) {
            prop_assert!((-0.5..0.5).contains(&x));
            prop_assert!(n < 1000);
        }

        #[test]
        fn vec_lengths_honored(
            v in collection::vec(0.0f64..1.0, 1..20),
            w in collection::vec(0.0f64..1.0, 4),
        ) {
            prop_assert!((1..20).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_header_parses(seed in 0u64..100) {
            prop_assert!(seed < 100);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "failed at case")]
        fn failing_property_panics_with_case_info(x in 0.0f64..1.0) {
            prop_assert!(x < 0.0, "x was {}", x);
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, TestRunner};
        let draw = |name: &str| {
            let mut r = TestRunner::new(ProptestConfig::default(), name);
            (0..5).map(|_| (0.0f64..1.0).generate(r.rng())).collect::<Vec<_>>()
        };
        assert_eq!(draw("a"), draw("a"));
        assert_ne!(draw("a"), draw("b"));
    }
}
