//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`]
//! / [`BenchmarkGroup::bench_with_input`] / `sample_size`, [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — on top of a straightforward wall-clock
//! harness: warm up, calibrate iterations per sample, then report
//! min/mean/max time per iteration over `sample_size` samples.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendering as the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }

    /// Creates an id rendering as `function_name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One measured benchmark result.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Mean seconds per iteration.
    pub mean: f64,
    /// Fastest sample, seconds per iteration.
    pub min: f64,
    /// Slowest sample, seconds per iteration.
    pub max: f64,
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

const WARMUP: Duration = Duration::from_millis(300);
const TARGET_SAMPLE: Duration = Duration::from_millis(100);

fn run_bench(name: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) -> Sample {
    // Warm up and calibrate: run single iterations until the warmup budget
    // is spent, estimating the per-iteration cost.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut warm_time = Duration::ZERO;
    while warm_start.elapsed() < WARMUP {
        routine(&mut b);
        warm_time += b.elapsed;
        warm_iters += b.iters;
    }
    let per_iter = (warm_time.as_secs_f64() / warm_iters.max(1) as f64).max(1e-9);
    let iters = ((TARGET_SAMPLE.as_secs_f64() / per_iter).round() as u64).max(1);

    let mut times = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        b.iters = iters;
        routine(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0_f64, f64::max);
    println!(
        "{name:<52} time: [{} {} {}]  ({} iters × {} samples)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        iters,
        times.len()
    );
    Sample { mean, min, max }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declared for API compatibility; the harness always calibrates to
    /// its fixed per-sample budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: std::fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// CLI-argument handling is a no-op in the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, 10, f);
        self
    }
}

/// Bundles benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut b = Bencher { iters: 1000, elapsed: Duration::ZERO };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 1000);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
        assert_eq!(BenchmarkId::new("fwd", 32).to_string(), "fwd/32");
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains(" s"));
    }
}
