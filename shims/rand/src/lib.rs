//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *subset* of the rand 0.8 API it actually uses: the [`Rng`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`], uniform `gen` / `gen_range` /
//! `gen_bool` sampling. The generator is xoshiro256++ seeded via SplitMix64
//! — statistically strong and deterministic, but the streams differ from
//! upstream `StdRng` (ChaCha12). Nothing in the workspace depends on the
//! exact upstream streams, only on seeded determinism.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (the subset of `rand::SeedableRng`
/// this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (stand-in for sampling from `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1) — same construction
        // as upstream rand's `Standard` for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// The random number generator trait (the subset of `rand::Rng` this
/// workspace uses).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    #[inline]
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: **xoshiro256++**
    /// seeded via SplitMix64. Different streams than upstream `StdRng`
    /// (ChaCha12), but seeded determinism is all callers rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(-0.05..0.05);
            assert!((-0.05..0.05).contains(&x));
            let y = r.gen_range(10usize..=100);
            assert!((10..=100).contains(&y));
            let z = r.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&z));
        }
        // Inclusive integer range covers both endpoints eventually.
        let hits: std::collections::HashSet<usize> =
            (0..200).map(|_| r.gen_range(0usize..=3)).collect();
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn works_through_mut_reference_and_unsized() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut r = StdRng::seed_from_u64(5);
        let _ = takes_generic(&mut r);
        let borrowed: &mut StdRng = &mut r;
        let _: f64 = borrowed.gen();
    }
}
