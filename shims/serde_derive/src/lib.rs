//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace annotates config types with serde derives but never
//! serializes through serde (checkpointing is a hand-rolled hex format in
//! `spikefolio::checkpoint`). These derives therefore expand to nothing:
//! the attribute stays valid, no trait impls are generated, and no
//! registry access is needed to build offline.

use proc_macro::TokenStream;

/// Expands to nothing; accepts any item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts any item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
