//! Offline stand-in for `rand_distr`: the [`Distribution`] trait plus the
//! [`Normal`] and [`StudentT`] distributions the market generator draws
//! from. Sampling uses textbook transforms (Box–Muller, Marsaglia–Tsang)
//! rather than upstream's ziggurat tables — the distributions match, the
//! exact streams do not, and nothing in the workspace depends on the
//! streams beyond seeded determinism.

use rand::Rng;

/// Types that can be sampled from a distribution.
pub trait Distribution<T> {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Uniform in `(0, 1]` — safe input for `ln`.
#[inline]
fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    1.0 - f64::sample_standard(rng)
}

/// Small helper so `?Sized` rngs can be sampled without the `Rng::gen`
/// `Sized` bound.
trait SampleStandard {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64;
}

impl SampleStandard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Draws a standard normal via Box–Muller.
#[inline]
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = open_unit(rng);
    let u2 = f64::sample_standard(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !(std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite()) {
            return Err(Error("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Student's t distribution with `df` degrees of freedom.
///
/// Generic parameter mirrors upstream's `StudentT<F>`; only `f64` is
/// implemented here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT<F = f64> {
    df: F,
}

impl StudentT<f64> {
    /// Creates a Student-t distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if `df` is not a positive finite number.
    pub fn new(df: f64) -> Result<Self, Error> {
        if !(df > 0.0 && df.is_finite()) {
            return Err(Error("StudentT requires df > 0"));
        }
        Ok(Self { df })
    }
}

/// Gamma(shape, scale = 1) via Marsaglia–Tsang, with the standard boost
/// for `shape < 1`.
fn standard_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) · U^{1/a}.
        let u = open_unit(rng);
        return standard_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = open_unit(rng);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

impl Distribution<f64> for StudentT<f64> {
    /// Samples `t = z / √(χ²_df / df)` with `χ²_df = 2·Gamma(df/2)`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = standard_normal(rng);
        let chi2 = 2.0 * standard_gamma(self.df / 2.0, rng);
        z / (chi2 / self.df).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 2.0).abs() < 0.03, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn student_t_moments_match() {
        // For df > 2: mean 0, variance df / (df − 2).
        let df = 5.0;
        let d = StudentT::new(df).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - df / (df - 2.0)).abs() < 0.15, "var {var}");
    }

    #[test]
    fn student_t_has_fatter_tails_than_normal() {
        let t = StudentT::new(3.0).unwrap();
        let n = Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let big = |xs: Vec<f64>| xs.iter().filter(|x| x.abs() > 4.0).count();
        let t_tail = big((0..100_000).map(|_| t.sample(&mut rng)).collect());
        let n_tail = big((0..100_000).map(|_| n.sample(&mut rng)).collect());
        assert!(t_tail > n_tail * 5, "t tail {t_tail} vs normal tail {n_tail}");
    }

    #[test]
    fn student_t_rejects_bad_df() {
        assert!(StudentT::new(0.0).is_err());
        assert!(StudentT::new(-2.0).is_err());
        assert!(StudentT::new(f64::INFINITY).is_err());
    }

    #[test]
    fn gamma_boost_handles_small_shape() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..1000 {
            let g = standard_gamma(0.4, &mut rng);
            assert!(g > 0.0 && g.is_finite());
        }
    }
}
