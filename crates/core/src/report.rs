//! Plain-text table formatting mirroring the paper's Tables 3 and 4.

use crate::experiments::{
    CostAblationPoint, EncodingPoint, ExperimentOutcome, PowerOutcome, RatePenaltyPoint,
    TimestepPoint,
};

/// Formats the full Table 3 (three experiment blocks, seven strategies
/// each) with the paper's columns: MDD, fAPV, Sharpe.
pub fn format_table3(outcomes: &[ExperimentOutcome]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{:<12} {:>10} {:>12} {:>12}\n", "Strategy", "MDD", "fAPV", "Sharpe"));
    for out in outcomes {
        s.push_str(&format!("--- {} ---\n", out.experiment));
        for row in &out.rows {
            s.push_str(&format!(
                "{:<12} {:>10.3} {:>12.4e} {:>12.3}\n",
                row.strategy, row.metrics.mdd, row.metrics.fapv, row.metrics.sharpe
            ));
        }
    }
    s
}

/// Formats Table 4 (power/performance across hardware).
pub fn format_table4(outcomes: &[PowerOutcome]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<28} {:>9} {:>9} {:>14} {:>13}\n",
        "Algorithm / Device", "Idle(W)", "Dyn(W)", "Inf/s", "nJ/Inf"
    ));
    for out in outcomes {
        for r in &out.rows {
            s.push_str(&format!(
                "{:<28} {:>9.2} {:>9.4} {:>14.1} {:>13.2}\n",
                r.label, r.idle_w, r.dyn_w, r.inf_per_s, r.nj_per_inf
            ));
        }
        s.push_str(&format!(
            "    → Loihi energy advantage: {:.0}x vs CPU, {:.0}x vs GPU\n",
            out.cpu_advantage(),
            out.gpu_advantage()
        ));
    }
    s
}

/// Formats the timestep trade-off ablation.
pub fn format_timestep_tradeoff(points: &[TimestepPoint]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:>4} {:>12} {:>12} {:>12} {:>10} {:>10}\n",
        "T", "nJ/Inf", "latency(µs)", "fAPV", "Sharpe", "MDD"
    ));
    for p in points {
        s.push_str(&format!(
            "{:>4} {:>12.2} {:>12.1} {:>12.4} {:>10.3} {:>10.3}\n",
            p.timesteps,
            p.nj_per_inf,
            p.latency_s * 1e6,
            p.metrics.fapv,
            p.metrics.sharpe,
            p.metrics.mdd
        ));
    }
    s
}

/// Formats the encoding-mode ablation.
pub fn format_encoding_comparison(points: &[EncodingPoint]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<16} {:>12} {:>10} {:>10} {:>14}\n",
        "Encoding", "fAPV", "Sharpe", "MDD", "final reward"
    ));
    for p in points {
        s.push_str(&format!(
            "{:<16} {:>12.4} {:>10.3} {:>10.3} {:>14.6}\n",
            p.encoding, p.metrics.fapv, p.metrics.sharpe, p.metrics.mdd, p.final_reward
        ));
    }
    s
}

/// Formats the transaction-cost-model ablation.
pub fn format_cost_ablation(points: &[CostAblationPoint]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<22} {:>12} {:>10} {:>10} {:>12}\n",
        "Cost model", "fAPV", "Sharpe", "MDD", "turnover"
    ));
    for p in points {
        s.push_str(&format!(
            "{:<22} {:>12.4} {:>10.3} {:>10.3} {:>12.2}\n",
            p.model, p.metrics.fapv, p.metrics.sharpe, p.metrics.mdd, p.turnover
        ));
    }
    s
}

/// Formats the spike-rate-penalty ablation.
pub fn format_rate_penalty(points: &[RatePenaltyPoint]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>14} {:>10} {:>10}\n",
        "lambda", "spikes/inf", "synops/inf", "nJ/inf(phys)", "fAPV", "Sharpe"
    ));
    for p in points {
        s.push_str(&format!(
            "{:>8.3} {:>12} {:>12} {:>14.2} {:>10.4} {:>10.3}\n",
            p.lambda,
            p.spikes_per_inference,
            p.synops_per_inference,
            p.physical_nj_per_inf,
            p.metrics.fapv,
            p.metrics.sharpe
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::experiments::{run_experiment, RunOptions};
    use spikefolio_market::experiments::ExperimentPreset;

    #[test]
    fn table3_formatting_contains_all_rows() {
        let mut opts = RunOptions::smoke();
        opts.shrink = Some((25, 8));
        opts.config.training.epochs = 1;
        opts.config.training.steps_per_epoch = 1;
        opts.config.training.batch_size = 2;
        let out = run_experiment(&opts, ExperimentPreset::experiment1());
        let text = format_table3(&[out]);
        for name in ["SDP", "DRL[Jiang]", "ONS", "Best Stock", "ANTICOR", "M0", "UCRP"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("Experiment 1"));
        assert!(text.contains("MDD"));
    }
}
