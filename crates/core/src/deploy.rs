//! Loihi deployment pipeline (Fig. 2): train → rescale (eq. 14) → map →
//! run on the chip model with the off-chip decoder.

use crate::agent::SdpAgent;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_env::{DecisionContext, Policy, StateBuilder};
use spikefolio_loihi::chip::{LoihiChip, LoihiNetwork, LoihiRunStats};
use spikefolio_loihi::quantize::{quantize_network, QuantizationReport};
use spikefolio_snn::decoder::Decoder;
use spikefolio_snn::PopulationEncoder;
use spikefolio_telemetry::{labels, NoopRecorder, Recorder, Stopwatch};

/// A trained SDP policy deployed on the behavioural Loihi chip model.
///
/// The spiking body runs in 8-bit integer arithmetic on the chip model;
/// the population encoder and rate decoder run "off chip" (on Loihi's
/// embedded x86 lakemont cores in real deployments). Implements
/// [`Policy`], so the deployed network can be backtested with the exact
/// same engine as the float agent — which is how the pipeline tests
/// verify that quantization preserves trading behaviour.
#[derive(Debug, Clone)]
pub struct LoihiDeployment {
    encoder: PopulationEncoder,
    decoder: Decoder,
    state_builder: StateBuilder,
    chip_net: LoihiNetwork,
    report: QuantizationReport,
    timesteps: usize,
    rng: StdRng,
    /// Accumulated event counters over all inferences run so far.
    pub total_stats: LoihiRunStats,
    /// Number of inferences run so far.
    pub inferences: u64,
}

impl LoihiDeployment {
    /// Quantizes and maps a trained agent onto `chip`.
    ///
    /// # Errors
    ///
    /// Returns the mapping error if the network exceeds the chip budget.
    pub fn new(
        agent: &SdpAgent,
        chip: &LoihiChip,
    ) -> Result<Self, spikefolio_loihi::chip::MapNetworkError> {
        let (quantized, report) = quantize_network(&agent.network);
        let timesteps = quantized.timesteps;
        let chip_net = chip.map(quantized)?;
        Ok(Self {
            encoder: agent.network.encoder.clone(),
            decoder: agent.network.decoder.clone(),
            state_builder: *agent.state_builder(),
            chip_net,
            report,
            timesteps,
            rng: StdRng::seed_from_u64(0xC41),
            total_stats: LoihiRunStats::default(),
            inferences: 0,
        })
    }

    /// The quantization report (per-layer ratios and error bounds).
    pub fn quantization_report(&self) -> &QuantizationReport {
        &self.report
    }

    /// Core allocation on the chip.
    pub fn allocation(&self) -> &spikefolio_loihi::chip::CoreAllocation {
        self.chip_net.allocation()
    }

    /// One on-chip inference from a raw state vector.
    pub fn act(&mut self, state: &[f64]) -> Vec<f64> {
        self.act_recorded(state, &mut NoopRecorder)
    }

    /// [`act`](Self::act) with telemetry: times the off-chip encode and
    /// the chip inference (`encode` / `loihi/infer` spans) and records the
    /// inference's event counts under the `loihi/*` counters. Observe-only
    /// — the action is identical with any recorder.
    pub fn act_recorded(&mut self, state: &[f64], rec: &mut dyn Recorder) -> Vec<f64> {
        let encode_watch = Stopwatch::start(rec);
        let raster = self.encoder.encode(state, self.timesteps, &mut self.rng);
        encode_watch.stop(rec, labels::SPAN_ENCODE);
        let infer_watch = Stopwatch::start(rec);
        let (sums, stats) = self.chip_net.infer(&raster);
        infer_watch.stop(rec, labels::SPAN_CHIP_INFER);
        self.total_stats.input_spikes += stats.input_spikes;
        self.total_stats.neuron_spikes += stats.neuron_spikes;
        self.total_stats.synops += stats.synops;
        self.total_stats.neuron_updates += stats.neuron_updates;
        self.total_stats.timesteps += stats.timesteps;
        self.inferences += 1;
        spikefolio_loihi::telemetry::record_run_stats(rec, &stats, 1);
        self.decoder.decode(&sums).action
    }

    /// Average event counts per inference so far (zeroes before the first
    /// inference).
    pub fn mean_stats(&self) -> LoihiRunStats {
        if self.inferences == 0 {
            return LoihiRunStats::default();
        }
        let n = self.inferences;
        LoihiRunStats {
            input_spikes: self.total_stats.input_spikes / n,
            neuron_spikes: self.total_stats.neuron_spikes / n,
            synops: self.total_stats.synops / n,
            neuron_updates: self.total_stats.neuron_updates / n,
            timesteps: self.total_stats.timesteps / n,
        }
    }
}

impl Policy for LoihiDeployment {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let state = self.state_builder.build(ctx.market, ctx.t, ctx.prev_weights);
        self.act(&state)
    }

    fn warmup_periods(&self) -> usize {
        self.state_builder.min_period()
    }

    fn name(&self) -> &str {
        "SDP (Loihi)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SdpConfig;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::simplex::is_on_simplex;
    use spikefolio_tensor::vector::argmax;

    fn agent_and_market() -> (SdpAgent, spikefolio_market::MarketData) {
        let market = ExperimentPreset::experiment1().shrunk(30, 10).generate(5);
        let agent = SdpAgent::new(&SdpConfig::smoke(), market.num_assets(), 2);
        (agent, market)
    }

    #[test]
    fn deployment_succeeds_for_smoke_network() {
        let (agent, _) = agent_and_market();
        let dep = LoihiDeployment::new(&agent, &LoihiChip::default());
        assert!(dep.is_ok());
        let dep = dep.unwrap();
        assert!(dep.allocation().total_cores >= 1);
        assert!(!dep.quantization_report().ratios.is_empty());
    }

    #[test]
    fn chip_actions_match_float_agent_mostly() {
        let (mut agent, market) = agent_and_market();
        let mut dep = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();
        let w = vec![1.0 / 12.0; 12];
        let mut agree = 0;
        let total = 15;
        for t in 4..4 + total {
            let s = agent.state(&market, t, &w);
            let a_float = agent.act(&s);
            let a_chip = dep.act(&s);
            assert!(is_on_simplex(&a_chip, 1e-9));
            if argmax(&a_float) == argmax(&a_chip) {
                agree += 1;
            }
        }
        assert!(agree * 10 >= total * 8, "only {agree}/{total} argmax agreements");
    }

    #[test]
    fn recorded_act_is_identical_and_counts_events() {
        let (agent, market) = agent_and_market();
        let mut plain_dep = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();
        let mut rec_dep = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();
        let w = vec![1.0 / 12.0; 12];
        let s = agent.state_builder().build(&market, 4, &w);
        let plain = plain_dep.act(&s);
        let mut rec = spikefolio_telemetry::MemoryRecorder::new();
        let recorded = rec_dep.act_recorded(&s, &mut rec);
        assert_eq!(plain, recorded, "telemetry must not change the action");
        assert_eq!(rec.counter_total(labels::COUNTER_LOIHI_INFERENCES), 1);
        assert_eq!(rec.counter_total(labels::COUNTER_LOIHI_SYNOPS), rec_dep.total_stats.synops);
        assert_eq!(rec.span_total(labels::SPAN_ENCODE).1, 1);
        assert_eq!(rec.span_total(labels::SPAN_CHIP_INFER).1, 1);
    }

    #[test]
    fn deployment_backtests_and_accumulates_stats() {
        let (agent, market) = agent_and_market();
        let mut dep = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();
        let r = Backtester::default().run(&mut dep, &market);
        assert!(r.fapv() > 0.0);
        assert!(dep.inferences > 0);
        let mean = dep.mean_stats();
        assert!(mean.neuron_updates > 0);
        assert_eq!(mean.timesteps, 5);
    }
}
