//! Loihi deployment pipeline (Fig. 2): train → rescale (eq. 14) → map →
//! run on the chip model with the off-chip decoder.

use crate::agent::SdpAgent;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_env::{DecisionContext, Policy, StateBuilder};
use spikefolio_loihi::chip::{LoihiChip, LoihiNetwork, LoihiRunStats, MapNetworkError};
use spikefolio_loihi::quantize::{
    try_quantize_network, QuantizationReport, QuantizeError, QuantizeOptions,
};
use spikefolio_snn::decoder::Decoder;
use spikefolio_snn::PopulationEncoder;
use spikefolio_telemetry::{labels, NoopRecorder, Recorder, Stopwatch};

/// A trained SDP policy deployed on the behavioural Loihi chip model.
///
/// The spiking body runs in 8-bit integer arithmetic on the chip model;
/// the population encoder and rate decoder run "off chip" (on Loihi's
/// embedded x86 lakemont cores in real deployments). Implements
/// [`Policy`], so the deployed network can be backtested with the exact
/// same engine as the float agent — which is how the pipeline tests
/// verify that quantization preserves trading behaviour.
#[derive(Debug, Clone)]
pub struct LoihiDeployment {
    encoder: PopulationEncoder,
    decoder: Decoder,
    state_builder: StateBuilder,
    chip_net: LoihiNetwork,
    report: QuantizationReport,
    timesteps: usize,
    rng: StdRng,
    /// Accumulated event counters over all inferences run so far.
    pub total_stats: LoihiRunStats,
    /// Number of inferences run so far.
    pub inferences: u64,
}

/// Why a trained agent could not be deployed on the chip model.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// Quantization failed (ALIF network, all-zero layer, or too many
    /// weights saturating at full scale).
    Quantize(QuantizeError),
    /// The quantized network exceeds the chip budget.
    Map(MapNetworkError),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Quantize(e) => write!(f, "quantization failed: {e}"),
            DeployError::Map(e) => write!(f, "chip mapping failed: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl LoihiDeployment {
    /// Quantizes and maps a trained agent onto `chip` with default
    /// quantization options (max-abs ratio — nothing saturates).
    ///
    /// # Errors
    ///
    /// Returns the mapping error if the network exceeds the chip budget.
    ///
    /// # Panics
    ///
    /// Panics if quantization itself fails (all-zero layer or ALIF
    /// network) — impossible for agents produced by this crate's
    /// constructors and training loop.
    #[allow(clippy::expect_used)] // documented panic contract of the legacy API
    pub fn new(
        agent: &SdpAgent,
        chip: &LoihiChip,
    ) -> Result<Self, spikefolio_loihi::chip::MapNetworkError> {
        Self::new_recorded(agent, chip, &QuantizeOptions::default(), &mut NoopRecorder).map_err(
            |e| match e {
                DeployError::Map(m) => m,
                DeployError::Quantize(q) => panic!("{q}"),
            },
        )
    }

    /// [`new`](Self::new) with explicit [`QuantizeOptions`] and telemetry:
    /// the number of weights clamped to full scale during rescaling is
    /// recorded on the `loihi/saturated_weights` counter. Observe-only —
    /// the deployment is identical with any recorder.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] if quantization fails (including a
    /// saturated fraction above `opts.max_saturation_fraction`) or the
    /// network exceeds the chip budget.
    pub fn new_recorded(
        agent: &SdpAgent,
        chip: &LoihiChip,
        opts: &QuantizeOptions,
        rec: &mut dyn Recorder,
    ) -> Result<Self, DeployError> {
        let quantize_watch = Stopwatch::start(rec);
        let (quantized, report) =
            try_quantize_network(&agent.network, opts).map_err(DeployError::Quantize)?;
        quantize_watch.stop(rec, labels::SPAN_PROFILE_LOIHI_QUANTIZE);
        if rec.enabled() && report.total_saturated() > 0 {
            rec.counter(labels::COUNTER_LOIHI_SATURATED_WEIGHTS, report.total_saturated());
        }
        let timesteps = quantized.timesteps;
        let chip_net = chip.map(quantized).map_err(DeployError::Map)?;
        Ok(Self {
            encoder: agent.network.encoder.clone(),
            decoder: agent.network.decoder.clone(),
            state_builder: *agent.state_builder(),
            chip_net,
            report,
            timesteps,
            rng: StdRng::seed_from_u64(0xC41),
            total_stats: LoihiRunStats::default(),
            inferences: 0,
        })
    }

    /// The quantization report (per-layer ratios and error bounds).
    pub fn quantization_report(&self) -> &QuantizationReport {
        &self.report
    }

    /// Core allocation on the chip.
    pub fn allocation(&self) -> &spikefolio_loihi::chip::CoreAllocation {
        self.chip_net.allocation()
    }

    /// One on-chip inference from a raw state vector.
    pub fn act(&mut self, state: &[f64]) -> Vec<f64> {
        self.act_recorded(state, &mut NoopRecorder)
    }

    /// [`act`](Self::act) with telemetry: times the off-chip encode and
    /// the chip inference (`encode` / `loihi/infer` spans) and records the
    /// inference's event counts under the `loihi/*` counters. Observe-only
    /// — the action is identical with any recorder.
    pub fn act_recorded(&mut self, state: &[f64], rec: &mut dyn Recorder) -> Vec<f64> {
        let encode_watch = Stopwatch::start(rec);
        let raster = self.encoder.encode(state, self.timesteps, &mut self.rng);
        encode_watch.stop(rec, labels::SPAN_ENCODE);
        let infer_watch = Stopwatch::start(rec);
        let (sums, stats) = self.chip_net.infer(&raster);
        infer_watch.stop(rec, labels::SPAN_CHIP_INFER);
        self.total_stats += stats;
        self.inferences += 1;
        spikefolio_loihi::telemetry::record_run_stats(rec, &stats, 1);
        self.decoder.decode(&sums).action
    }

    /// Average event counts per inference so far (zeroes before the first
    /// inference).
    pub fn mean_stats(&self) -> LoihiRunStats {
        if self.inferences == 0 {
            return LoihiRunStats::default();
        }
        let n = self.inferences;
        LoihiRunStats {
            input_spikes: self.total_stats.input_spikes / n,
            neuron_spikes: self.total_stats.neuron_spikes / n,
            synops: self.total_stats.synops / n,
            neuron_updates: self.total_stats.neuron_updates / n,
            timesteps: self.total_stats.timesteps / n,
        }
    }
}

impl Policy for LoihiDeployment {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let state = self.state_builder.build(ctx.market, ctx.t, ctx.prev_weights);
        self.act(&state)
    }

    fn warmup_periods(&self) -> usize {
        self.state_builder.min_period()
    }

    fn name(&self) -> &str {
        "SDP (Loihi)"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::config::SdpConfig;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::simplex::is_on_simplex;
    use spikefolio_tensor::vector::argmax;

    fn agent_and_market() -> (SdpAgent, spikefolio_market::MarketData) {
        let market = ExperimentPreset::experiment1().shrunk(30, 10).generate(5);
        let agent = SdpAgent::new(&SdpConfig::smoke(), market.num_assets(), 2);
        (agent, market)
    }

    #[test]
    fn deployment_succeeds_for_smoke_network() {
        let (agent, _) = agent_and_market();
        let dep = LoihiDeployment::new(&agent, &LoihiChip::default());
        assert!(dep.is_ok());
        let dep = dep.unwrap();
        assert!(dep.allocation().total_cores >= 1);
        assert!(!dep.quantization_report().ratios.is_empty());
    }

    #[test]
    fn chip_actions_match_float_agent_mostly() {
        let (mut agent, market) = agent_and_market();
        let mut dep = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();
        let w = vec![1.0 / 12.0; 12];
        let mut agree = 0;
        let total = 15;
        for t in 4..4 + total {
            let s = agent.state(&market, t, &w);
            let a_float = agent.act(&s);
            let a_chip = dep.act(&s);
            assert!(is_on_simplex(&a_chip, 1e-9));
            if argmax(&a_float) == argmax(&a_chip) {
                agree += 1;
            }
        }
        assert!(agree * 10 >= total * 8, "only {agree}/{total} argmax agreements");
    }

    #[test]
    fn recorded_act_is_identical_and_counts_events() {
        let (agent, market) = agent_and_market();
        let mut plain_dep = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();
        let mut rec_dep = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();
        let w = vec![1.0 / 12.0; 12];
        let s = agent.state_builder().build(&market, 4, &w);
        let plain = plain_dep.act(&s);
        let mut rec = spikefolio_telemetry::MemoryRecorder::new();
        let recorded = rec_dep.act_recorded(&s, &mut rec);
        assert_eq!(plain, recorded, "telemetry must not change the action");
        assert_eq!(rec.counter_total(labels::COUNTER_LOIHI_INFERENCES), 1);
        assert_eq!(rec.counter_total(labels::COUNTER_LOIHI_SYNOPS), rec_dep.total_stats.synops);
        assert_eq!(rec.span_total(labels::SPAN_ENCODE).1, 1);
        assert_eq!(rec.span_total(labels::SPAN_CHIP_INFER).1, 1);
    }

    #[test]
    fn saturation_counter_is_emitted_for_aggressive_options() {
        use spikefolio_loihi::quantize::QuantizeOptions;
        let (agent, _) = agent_and_market();
        // Defaults: nothing saturates, counter untouched.
        let mut rec = spikefolio_telemetry::MemoryRecorder::new();
        let dep = LoihiDeployment::new_recorded(
            &agent,
            &LoihiChip::default(),
            &QuantizeOptions::default(),
            &mut rec,
        )
        .unwrap();
        assert_eq!(rec.counter_total(labels::COUNTER_LOIHI_SATURATED_WEIGHTS), 0);
        assert_eq!(dep.quantization_report().total_saturated(), 0);
        // Median-scaled ratio: outlier weights clamp and the counter sees
        // exactly the report's total.
        let opts = QuantizeOptions { ratio_percentile: 0.5, max_saturation_fraction: 1.0 };
        let mut rec = spikefolio_telemetry::MemoryRecorder::new();
        let dep =
            LoihiDeployment::new_recorded(&agent, &LoihiChip::default(), &opts, &mut rec).unwrap();
        let saturated = dep.quantization_report().total_saturated();
        assert!(saturated > 0);
        assert_eq!(rec.counter_total(labels::COUNTER_LOIHI_SATURATED_WEIGHTS), saturated);
        // A tight bound turns the same saturation into a typed error.
        let tight = QuantizeOptions { ratio_percentile: 0.1, max_saturation_fraction: 0.001 };
        let err = LoihiDeployment::new_recorded(
            &agent,
            &LoihiChip::default(),
            &tight,
            &mut spikefolio_telemetry::NoopRecorder,
        )
        .unwrap_err();
        assert!(matches!(err, DeployError::Quantize(_)), "{err}");
    }

    #[test]
    fn deployment_backtests_and_accumulates_stats() {
        let (agent, market) = agent_and_market();
        let mut dep = LoihiDeployment::new(&agent, &LoihiChip::default()).unwrap();
        let r = Backtester::default().run(&mut dep, &market);
        assert!(r.fapv() > 0.0);
        assert!(dep.inferences > 0);
        let mean = dep.mean_stats();
        assert!(mean.neuron_updates > 0);
        assert_eq!(mean.timesteps, 5);
    }
}
