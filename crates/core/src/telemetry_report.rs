//! Plain-text rendering of a summarized JSONL run log — the output of
//! `spikefolio telemetry summarize <run.jsonl>`.
//!
//! Takes the aggregate view produced by
//! [`spikefolio_telemetry::summarize_file`] and formats reward curves,
//! spike activity, phase timings, counter totals, backtests, and an
//! energy estimate. The energy section prefers the chip model's `loihi/*`
//! event counters (recorded by a deployed backtest) and falls back to the
//! float trainer's per-epoch spike totals when no deployment was logged.

use spikefolio_loihi::energy::LoihiEnergyModel;
use spikefolio_loihi::telemetry::{mean_spike_stats, run_stats_from_counters};
use spikefolio_snn::network::SpikeStats;
use spikefolio_telemetry::RunSummary;

/// Returns a clear one-line explanation when the run log has nothing to
/// summarize — no epochs, spans, counters, spike totals, or backtests —
/// so the CLI can exit cleanly instead of printing a bare header that
/// looks like a formatting bug. Distinguishes a truly empty log from a
/// header-only one (e.g. a run that died before recording anything).
pub fn empty_run_message(path: &str, s: &RunSummary) -> Option<String> {
    let has_content = !s.epochs.is_empty()
        || !s.backtests.is_empty()
        || !s.spans.is_empty()
        || !s.counters.is_empty()
        || s.spike_totals.samples > 0
        || !s.firing_rates.is_empty()
        || !s.desk_rounds.is_empty()
        || !s.desk_quarantines_by_kind.is_empty()
        || !s.scenario_cells.is_empty();
    if has_content {
        return None;
    }
    Some(if s.records == 0 {
        format!(
            "run log '{path}' is empty: no telemetry records found.\n\
             The run may have exited before any instrumentation fired; re-run with\n\
             --telemetry to record a fresh log."
        )
    } else {
        format!(
            "run log '{path}' contains {} record(s) but no summarizable data\n\
             (no epochs, spans, counters, spike totals, or backtests) — likely a\n\
             header-only log from a run that stopped before doing any work.",
            s.records
        )
    })
}

/// Renders the full human-readable report for one summarized run log.
pub fn format_run_summary(s: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!("run log: {} records ({} lines skipped)\n", s.records, s.skipped_lines));
    push_rewards(&mut out, s);
    push_spike_activity(&mut out, s);
    push_phases(&mut out, s);
    push_counters(&mut out, s);
    push_backtests(&mut out, s);
    push_desk(&mut out, s);
    push_scenarios(&mut out, s);
    push_energy(&mut out, s);
    out
}

fn push_scenarios(out: &mut String, s: &RunSummary) {
    if s.scenario_cells.is_empty() {
        return;
    }
    out.push_str("\n== scenario matrix ==\n");
    let universes: Vec<&str> = {
        let mut seen = Vec::new();
        for c in &s.scenario_cells {
            if !seen.contains(&c.universe.as_str()) {
                seen.push(c.universe.as_str());
            }
        }
        seen
    };
    out.push_str(&format!(
        "{} cell(s) across {} universe(s); metrics live in the scorecard JSON\n",
        s.scenario_cells.len(),
        universes.len(),
    ));
    out.push_str(&format!(
        "{:<14} {:<20} {:<20} {:>10} {:>12} {:>10}\n",
        "universe", "scenario", "strategy", "reward", "value", "wall(s)"
    ));
    let opt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |x| format!("{x:.3}"));
    for c in &s.scenario_cells {
        out.push_str(&format!(
            "{:<14} {:<20} {:<20} {:>10.4} {:>12.4} {:>10}\n",
            c.universe,
            c.scenario,
            c.strategy,
            c.reward,
            c.final_value,
            opt(c.wall_s)
        ));
    }
}

fn push_desk(out: &mut String, s: &RunSummary) {
    if s.desk_rounds.is_empty() && s.desk_quarantines_by_kind.is_empty() {
        return;
    }
    out.push_str("\n== live desk ==\n");
    if !s.desk_rounds.is_empty() {
        let promotions = s.desk_rounds.iter().filter(|r| r.outcome == "promoted").count();
        out.push_str(&format!(
            "{} round(s), {} promoted, {} quarantined\n",
            s.desk_rounds.len(),
            promotions,
            s.desk_quarantines_by_kind.values().sum::<u64>(),
        ));
        out.push_str(&format!(
            "{:<7} {:<18} {:>8} {:>12} {:>12} {:>10}\n",
            "round", "outcome", "serving", "candidate", "incumbent", "tune(s)"
        ));
        let opt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |x| format!("{x:.3}"));
        for r in &s.desk_rounds {
            out.push_str(&format!(
                "{:<7} {:<18} {:>8} {:>12.6} {:>12.6} {:>10}\n",
                r.round,
                r.outcome,
                format!("v{}", r.served_version),
                r.candidate_reward,
                r.incumbent_reward,
                opt(r.wall_s)
            ));
        }
    }
    if !s.desk_quarantines_by_kind.is_empty() {
        out.push_str("quarantines by kind:");
        for (kind, n) in &s.desk_quarantines_by_kind {
            out.push_str(&format!(" {kind}={n}"));
        }
        out.push('\n');
    }
}

fn push_rewards(out: &mut String, s: &RunSummary) {
    if s.epochs.is_empty() {
        return;
    }
    out.push_str("\n== reward curves ==\n");
    out.push_str(&format!(
        "{:<8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}\n",
        "agent", "epochs", "first", "last", "best", "mean", "wall(s)", "grad"
    ));
    // Logs written before the wall/grad fields existed render "-" there
    // instead of a fabricated zero.
    let opt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |x| format!("{x:.3}"));
    for agent in s.epochs.keys() {
        let Some(r) = s.reward_stats(agent) else { continue };
        out.push_str(&format!(
            "{:<8} {:>7} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>10} {:>10}\n",
            agent,
            r.epochs,
            r.first,
            r.last,
            r.best,
            r.mean,
            opt(r.mean_wall_s),
            opt(r.mean_grad_norm)
        ));
    }
}

fn push_spike_activity(out: &mut String, s: &RunSummary) {
    if s.firing_rates.is_empty() && s.spike_totals.samples == 0 {
        return;
    }
    out.push_str("\n== spike activity ==\n");
    if !s.firing_rates.is_empty() {
        out.push_str(&format!("{:<10} {:>12}\n", "layer", "firing rate"));
        for (k, rate) in s.firing_rates.iter().enumerate() {
            out.push_str(&format!("{:<10} {:>12.4}\n", format!("L{}", k + 1), rate));
        }
        out.push_str(&format!("{:<10} {:>12.4}\n", "encoder", s.encoder_rate));
    }
    if let Some(t) = s.timesteps {
        out.push_str(&format!(
            "T={} timesteps, {} training inferences\n",
            t, s.spike_totals.samples
        ));
    }
    if let Some((enc, neu, syn, upd)) = s.mean_events_per_inference() {
        out.push_str(&format!(
            "mean events/inference: {enc:.1} encoder spikes, {neu:.1} neuron spikes, \
             {syn:.1} synops, {upd:.1} updates\n"
        ));
    }
}

fn push_phases(out: &mut String, s: &RunSummary) {
    if s.spans.is_empty() {
        return;
    }
    out.push_str("\n== phase breakdown ==\n");
    out.push_str(&format!(
        "{:<28} {:>12} {:>10} {:>12}\n",
        "span", "total(s)", "count", "mean(ms)"
    ));
    // Largest total first: the expensive phases are what the reader wants.
    let mut spans: Vec<_> = s.spans.iter().collect();
    spans.sort_by(|a, b| b.1 .0.total_cmp(&a.1 .0));
    for (label, (total_s, count)) in spans {
        let mean_ms = if *count > 0 { total_s * 1e3 / *count as f64 } else { 0.0 };
        out.push_str(&format!("{label:<28} {total_s:>12.3} {count:>10} {mean_ms:>12.3}\n"));
    }
}

fn push_counters(out: &mut String, s: &RunSummary) {
    if s.counters.is_empty() {
        return;
    }
    out.push_str("\n== counter totals ==\n");
    for (label, total) in &s.counters {
        out.push_str(&format!("{label:<28} {total:>14}\n"));
    }
}

fn push_backtests(out: &mut String, s: &RunSummary) {
    if s.backtests.is_empty() {
        return;
    }
    out.push_str("\n== backtests ==\n");
    out.push_str(&format!(
        "{:<20} {:>7} {:>14} {:>10}\n",
        "policy", "steps", "final value", "turnover"
    ));
    for b in &s.backtests {
        out.push_str(&format!(
            "{:<20} {:>7} {:>14.4} {:>10.3}\n",
            b.policy, b.steps, b.final_value, b.turnover
        ));
    }
}

fn push_energy(out: &mut String, s: &RunSummary) {
    let Some((label, stats, timesteps)) = energy_workload(s) else { return };
    if timesteps == 0 {
        return;
    }
    let report = LoihiEnergyModel::davies2018().report(&label, &stats, timesteps);
    out.push_str("\n== energy estimate (davies2018 event model) ==\n");
    out.push_str(&format!(
        "{:<28} {:>9} {:>9} {:>14} {:>13}\n",
        "workload", "idle(W)", "dyn(W)", "inf/s", "nJ/inf"
    ));
    out.push_str(&format!(
        "{:<28} {:>9.2} {:>9.4} {:>14.1} {:>13.2}\n",
        report.label, report.idle_w, report.dyn_w, report.inf_per_s, report.nj_per_inf
    ));
}

/// Picks the per-inference workload to cost: recorded `loihi/*` chip
/// counters when present, otherwise the training epochs' spike totals.
fn energy_workload(s: &RunSummary) -> Option<(String, SpikeStats, usize)> {
    let counter = |label: &str| s.counters.get(label).copied().unwrap_or(0);
    if let Some((totals, inferences)) = run_stats_from_counters(counter) {
        let (stats, timesteps) = mean_spike_stats(&totals, inferences);
        return Some(("chip counters (per inf)".to_owned(), stats, timesteps));
    }
    let (enc, neu, syn, upd) = s.mean_events_per_inference()?;
    let stats = SpikeStats {
        encoder_spikes: enc.round() as u64,
        neuron_spikes: neu.round() as u64,
        synops: syn.round() as u64,
        neuron_updates: upd.round() as u64,
    };
    Some(("training epochs (per inf)".to_owned(), stats, s.timesteps? as usize))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_telemetry::{labels, Record, Recorder, Value};

    fn sample_summary(with_chip_counters: bool) -> RunSummary {
        let mut sink = spikefolio_telemetry::JsonlSink::new(Vec::new());
        for (e, reward) in [0.1_f64, 0.3].iter().enumerate() {
            sink.span(labels::SPAN_TRAIN_EPOCH, 2.0);
            sink.emit(
                Record::new("epoch")
                    .field("agent", "sdp")
                    .field("epoch", e as u64)
                    .field("reward", *reward)
                    .field("wall_s", 2.0)
                    .field("grad_norm", 0.5)
                    .field("samples", 10u64)
                    .field("timesteps", 5u64)
                    .field("firing_rates", vec![0.25, 0.5])
                    .field("encoder_rate", 0.1)
                    .field(
                        "spikes",
                        Value::Map(vec![
                            ("encoder".into(), Value::U64(400)),
                            ("neuron".into(), Value::U64(300)),
                            ("synops".into(), Value::U64(60_000)),
                            ("updates".into(), Value::U64(700)),
                        ]),
                    ),
            );
        }
        if with_chip_counters {
            let stats = spikefolio_loihi::chip::LoihiRunStats {
                input_spikes: 4_000,
                neuron_spikes: 3_000,
                synops: 600_000,
                neuron_updates: 7_000,
                timesteps: 50,
            };
            spikefolio_loihi::telemetry::record_run_stats(&mut sink, &stats, 10);
        }
        sink.emit(
            Record::new("backtest_end")
                .field("policy", "SDP")
                .field("steps", 20u64)
                .field("final_value", 1.25)
                .field("turnover", 3.0),
        );
        let log = sink.finish().unwrap();
        spikefolio_telemetry::summarize_lines(&log[..]).unwrap()
    }

    #[test]
    fn report_renders_every_section() {
        let text = format_run_summary(&sample_summary(true));
        for needle in [
            "== reward curves ==",
            "== spike activity ==",
            "== phase breakdown ==",
            "== counter totals ==",
            "== backtests ==",
            "== energy estimate (davies2018 event model) ==",
            "chip counters (per inf)",
            "train/epoch",
            "loihi/synops",
            "SDP",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn energy_falls_back_to_training_totals_without_chip_counters() {
        let text = format_run_summary(&sample_summary(false));
        assert!(text.contains("training epochs (per inf)"), "{text}");
        assert!(!text.contains("chip counters"), "{text}");
    }

    #[test]
    fn old_schema_epochs_render_dashes_for_missing_wall_and_grad() {
        let mut sink = spikefolio_telemetry::JsonlSink::new(Vec::new());
        sink.emit(
            Record::new("epoch").field("agent", "sdp").field("epoch", 0u64).field("reward", 0.2),
        );
        let log = sink.finish().unwrap();
        let summary = spikefolio_telemetry::summarize_lines(&log[..]).unwrap();
        let text = format_run_summary(&summary);
        let row = text.lines().find(|l| l.starts_with("sdp")).unwrap();
        assert_eq!(row.split_whitespace().rev().take(2).collect::<Vec<_>>(), ["-", "-"], "{text}");
    }

    #[test]
    fn desk_section_renders_rounds_and_quarantine_tally() {
        let mut sink = spikefolio_telemetry::JsonlSink::new(Vec::new());
        sink.emit(
            Record::new("desk_round")
                .field("round", 0u64)
                .field("outcome", "promoted")
                .field("served_version", 2u64)
                .field("candidate_reward", 0.12)
                .field("incumbent_reward", 0.10)
                .field("wall_s", 0.8),
        );
        sink.emit(
            Record::new("desk_quarantine")
                .field("round", 1u64)
                .field("kind", "drift")
                .field("reason", "entropy drifted"),
        );
        sink.emit(
            Record::new("desk_round")
                .field("round", 1u64)
                .field("outcome", "rejected:drift")
                .field("served_version", 2u64)
                .field("candidate_reward", 0.08)
                .field("incumbent_reward", 0.10)
                .field("wall_s", 0.7),
        );
        let log = sink.finish().unwrap();
        let summary = spikefolio_telemetry::summarize_lines(&log[..]).unwrap();
        let text = format_run_summary(&summary);
        for needle in [
            "== live desk ==",
            "2 round(s), 1 promoted, 1 quarantined",
            "rejected:drift",
            "quarantines by kind: drift=1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // A desk-only log is summarizable, not "empty".
        assert!(empty_run_message("desk.jsonl", &summary).is_none());
    }

    #[test]
    fn scenario_section_renders_cells_with_wall_clock() {
        let mut sink = spikefolio_telemetry::JsonlSink::new(Vec::new());
        sink.emit(
            Record::new("scenario_cell")
                .field("universe", "crypto")
                .field("scenario", "flash-crash")
                .field("strategy", "SDP")
                .field("reward", -0.12)
                .field("final_value", 0.8869)
                .field("wall_s", 0.031),
        );
        sink.emit(
            Record::new("scenario_cell")
                .field("universe", "equity")
                .field("scenario", "calm")
                .field("strategy", "Buy and Hold")
                .field("reward", 0.04)
                .field("final_value", 1.0408)
                .field("wall_s", 0.005),
        );
        let log = sink.finish().unwrap();
        let summary = spikefolio_telemetry::summarize_lines(&log[..]).unwrap();
        let text = format_run_summary(&summary);
        for needle in [
            "== scenario matrix ==",
            "2 cell(s) across 2 universe(s)",
            "flash-crash",
            "Buy and Hold",
            "0.031",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // A scenario-only log is summarizable, not "empty".
        assert!(empty_run_message("matrix.jsonl", &summary).is_none());
    }

    #[test]
    fn empty_summary_renders_header_only() {
        let text = format_run_summary(&RunSummary::default());
        assert_eq!(text, "run log: 0 records (0 lines skipped)\n");
    }

    #[test]
    fn empty_run_message_flags_empty_and_header_only_logs() {
        // Truly empty: zero records.
        let msg = empty_run_message("runs/a.jsonl", &RunSummary::default()).unwrap();
        assert!(msg.contains("runs/a.jsonl"), "{msg}");
        assert!(msg.contains("empty"), "{msg}");

        // Header-only: records exist (e.g. run_start/run_end) but nothing
        // summarizable was recorded.
        let header_only = RunSummary { records: 2, ..Default::default() };
        let msg = empty_run_message("runs/b.jsonl", &header_only).unwrap();
        assert!(msg.contains("2 record(s)"), "{msg}");
        assert!(msg.contains("no summarizable data"), "{msg}");
    }

    #[test]
    fn empty_run_message_is_none_for_real_logs() {
        assert!(empty_run_message("x.jsonl", &sample_summary(false)).is_none());
        // Any single section counts as content.
        let mut counters_only = RunSummary { records: 3, ..Default::default() };
        counters_only.counters.insert("serve/requests".to_owned(), 5);
        assert!(empty_run_message("x.jsonl", &counters_only).is_none());
    }
}
