//! `spikefolio desk-top`: a live terminal dashboard over the desk's
//! status file, plus the lineage-ledger renderers shared with the
//! `lineage` verb and serve-top.
//!
//! The desk atomically rewrites a `spikefolio.deskstatus.v1` snapshot
//! after every round (see `DeskOptions::status`); the dashboard polls
//! that file — never the desk process — so it can attach, detach, and
//! survive a desk crash, and the `seq` field lets it tell a live desk
//! from a stale file.

use std::path::PathBuf;
use std::time::Duration;

use spikefolio_blackbox::{LineageEntry, LineageLog};
use spikefolio_telemetry::value::{parse, Value};

/// `spikefolio desk-top` parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeskTopOptions {
    /// Status file to poll (the desk's `--status` path).
    pub path: PathBuf,
    /// Poll interval (ms).
    pub interval_ms: u64,
    /// Number of polls; `0` polls until the desk reports `done`.
    pub iterations: usize,
    /// Print the raw status JSON per poll instead of the dashboard.
    pub raw: bool,
}

/// Unicode sparkline of `values` (min..max auto-scaled, non-finite
/// values render as `·`, an all-equal series renders flat).
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '·'
            } else if hi <= lo {
                BARS[0]
            } else {
                let t = (v - lo) / (hi - lo);
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Formats one `spikefolio.deskstatus.v1` snapshot as the desk-top frame.
pub fn render_desk_top(v: &Value) -> String {
    use std::fmt::Write as _;
    let u = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    let f = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(f64::NAN);
    let done = matches!(v.get("done"), Some(Value::Bool(true)));
    let degraded = matches!(v.get("degraded"), Some(Value::Bool(true)));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "spikefolio desk-top  seed {}  round {}/{}  serving v{}  [{}]",
        u("seed"),
        u("rounds_done"),
        u("rounds_total"),
        u("served_version"),
        if done { "DONE" } else { "RUNNING" },
    );
    let by_kind = match v.get("quarantines_by_kind") {
        Some(Value::Map(pairs)) if !pairs.is_empty() => {
            let parts: Vec<String> =
                pairs.iter().map(|(k, n)| format!("{k} {}", n.as_u64().unwrap_or(0))).collect();
            format!(" ({})", parts.join(", "))
        }
        _ => String::new(),
    };
    let _ = writeln!(
        out,
        "promotions {}  quarantines {}{by_kind}  recoveries {}  feed stalls {}  health {}",
        u("promotions"),
        u("quarantines"),
        u("recoveries"),
        u("feed_stalls"),
        if degraded { "DEGRADED" } else { "ok" },
    );
    if let Some(Value::U64(round)) = v.get("last_round") {
        let _ = writeln!(
            out,
            "last round {round}: {}  revealed {}  cand {:+.5}  inc {:+.5}  drift {:.3}",
            v.get("last_outcome").and_then(Value::as_str).unwrap_or("?"),
            u("last_revealed"),
            f("last_candidate_reward"),
            f("last_incumbent_reward"),
            f("last_drift"),
        );
    }
    if let Some(Value::List(margins)) = v.get("margins") {
        let col = |i: usize| -> Vec<f64> {
            margins
                .iter()
                .map(|pair| {
                    pair.as_list()
                        .and_then(|p| p.get(i))
                        .and_then(Value::as_f64)
                        .unwrap_or(f64::NAN)
                })
                .collect()
        };
        if !margins.is_empty() {
            let _ = writeln!(
                out,
                "gate margin  {}  (candidate − incumbent reward)",
                sparkline(&col(0))
            );
            let _ = writeln!(out, "drift        {}", sparkline(&col(1)));
        }
    }
    out
}

/// `spikefolio desk-top`: polls the desk status file and repaints a
/// terminal dashboard until the desk reports `done` (or the iteration
/// budget runs out). A missing file is reported and re-polled, so the
/// dashboard can be started before the desk.
///
/// # Errors
///
/// A status file that exists but does not parse as
/// `spikefolio.deskstatus.v1`.
pub fn run_desk_top(opts: &DeskTopOptions) -> Result<(), String> {
    use std::io::Write as _;
    let mut done_polls = 0usize;
    loop {
        match std::fs::read_to_string(&opts.path) {
            Ok(raw) => {
                let v = parse(raw.trim())
                    .map_err(|e| format!("status file {}: {e}", opts.path.display()))?;
                if v.get("schema").and_then(Value::as_str) != Some(crate::desk::DESK_STATUS_SCHEMA)
                {
                    return Err(format!(
                        "status file {} is not a {} document",
                        opts.path.display(),
                        crate::desk::DESK_STATUS_SCHEMA
                    ));
                }
                if opts.raw {
                    println!("{}", v.to_json());
                } else {
                    if opts.iterations != 1 {
                        print!("\x1b[2J\x1b[H");
                    }
                    print!("{}", render_desk_top(&v));
                }
                if matches!(v.get("done"), Some(Value::Bool(true))) {
                    let _ = std::io::stdout().flush();
                    return Ok(());
                }
            }
            Err(_) => println!("waiting for status file {} ...", opts.path.display()),
        }
        let _ = std::io::stdout().flush();
        done_polls += 1;
        if opts.iterations != 0 && done_polls >= opts.iterations {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms.max(50)));
    }
}

/// One-line ancestry chain of `version` from the lineage ledger:
/// `v4 ←(round 3, margin +1.2e-3) v3 ←(round 1, margin +4.5e-4) v1`.
/// Empty when the ledger never promoted `version` (e.g. the warmup v1).
pub fn render_ancestry(log: &LineageLog, version: u64) -> String {
    let chain = log.ancestry(version);
    if chain.is_empty() {
        return String::new();
    }
    let mut out = format!("v{version}");
    for e in &chain {
        out.push_str(&format!(
            " ←(round {}, margin {:+.3e}) v{}",
            e.round,
            e.candidate_reward - e.incumbent_reward,
            e.parent_version,
        ));
    }
    out
}

/// Renders the whole lineage ledger as a table, newest round last, with
/// the tolerant reader's torn/corrupt-line count when nonzero.
pub fn render_lineage_ledger(log: &LineageLog) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5} {:>7} {:<13} {:>7} {:>14} {:>14} {:>8}  reason",
        "round", "parent", "outcome", "served", "cand reward", "inc reward", "drift"
    );
    for e in &log.entries {
        let outcome = match &e.kind {
            Some(kind) => format!("{}:{kind}", e.outcome),
            None => e.outcome.clone(),
        };
        let _ = writeln!(
            out,
            "{:>5} {:>7} {:<13} {:>7} {:>14} {:>14} {:>8}  {}",
            e.round,
            format!("v{}", e.parent_version),
            outcome,
            format!("v{}", e.served_version),
            format!("{:+.5e}", e.candidate_reward),
            format!("{:+.5e}", e.incumbent_reward),
            format!("{:.4}", e.entropy_drift),
            e.reason.as_deref().unwrap_or(""),
        );
    }
    if log.skipped > 0 {
        let _ = writeln!(out, "skipped {} torn/corrupt ledger line(s)", log.skipped);
    }
    out
}

/// Renders a single lineage entry for machine consumers (`--json`).
pub fn lineage_json(log: &LineageLog) -> String {
    let entries: Vec<Value> = log.entries.iter().map(LineageEntry::to_value).collect();
    Value::Map(vec![
        ("schema".to_string(), Value::Str("spikefolio.lineage-log.v1".to_string())),
        ("entries".to_string(), Value::List(entries)),
        ("skipped".to_string(), Value::U64(log.skipped)),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn entry(round: u64, parent: u64, promoted: Option<u64>) -> LineageEntry {
        LineageEntry {
            round,
            parent_version: parent,
            promoted_version: promoted,
            served_version: promoted.unwrap_or(parent),
            window_from: 0,
            revealed: 40 + 6 * round,
            integrity_ok: true,
            candidate_reward: 0.01 + round as f64 * 1e-3,
            incumbent_reward: 0.005,
            entropy_drift: 0.01,
            drift_bound: 0.75,
            outcome: if promoted.is_some() { "promoted" } else { "quarantined" }.to_string(),
            kind: promoted.is_none().then(|| "drift".to_string()),
            reason: promoted.is_none().then(|| "entropy drift over bound".to_string()),
        }
    }

    #[test]
    fn sparkline_scales_and_handles_degenerate_series() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
        assert_eq!(sparkline(&[2.0, 2.0]), "▁▁", "flat series renders flat");
        assert_eq!(sparkline(&[f64::NAN, 1.0]).chars().next(), Some('·'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn desk_top_frame_carries_round_progress_and_sparklines() {
        let json = concat!(
            r#"{"schema":"spikefolio.deskstatus.v1","seq":3,"seed":9,"rounds_total":4,"#,
            r#""rounds_done":3,"done":false,"served_version":2,"promotions":1,"#,
            r#""quarantines":2,"quarantines_by_kind":{"drift":1,"validation":1},"#,
            r#""recoveries":1,"feed_stalls":0,"degraded":false,"#,
            r#""last_round":2,"last_outcome":"rejected:drift","last_revealed":58,"#,
            r#""last_candidate_reward":0.01,"last_incumbent_reward":0.02,"last_drift":0.9,"#,
            r#""margins":[[-0.01,0.1],[0.02,0.2],[-0.01,0.9]]}"#,
        );
        let v = parse(json).expect("synthetic status parses");
        let frame = render_desk_top(&v);
        assert!(frame.contains("round 3/4"), "{frame}");
        assert!(frame.contains("serving v2"), "{frame}");
        assert!(frame.contains("quarantines 2 (drift 1, validation 1)"), "{frame}");
        assert!(frame.contains("rejected:drift"), "{frame}");
        assert!(frame.contains("gate margin"), "{frame}");
        assert!(frame.contains("RUNNING"), "{frame}");
    }

    #[test]
    fn ancestry_renders_newest_first_chain() {
        let log = LineageLog {
            entries: vec![entry(0, 1, Some(2)), entry(1, 2, None), entry(2, 2, Some(3))],
            skipped: 0,
        };
        let chain = render_ancestry(&log, 3);
        assert!(chain.starts_with("v3 ←(round 2"), "{chain}");
        assert!(chain.contains("v2 ←(round 0"), "{chain}");
        assert!(chain.ends_with("v1"), "{chain}");
        assert_eq!(render_ancestry(&log, 1), "", "warmup root has no promoting entry");
    }

    #[test]
    fn ledger_table_shows_outcomes_and_skip_count() {
        let log = LineageLog { entries: vec![entry(0, 1, Some(2)), entry(1, 2, None)], skipped: 2 };
        let table = render_lineage_ledger(&log);
        assert!(table.contains("promoted"), "{table}");
        assert!(table.contains("quarantined:drift"), "{table}");
        assert!(table.contains("skipped 2 torn/corrupt"), "{table}");
        let json = lineage_json(&log);
        let v = parse(&json).expect("lineage json parses");
        assert_eq!(v.get("skipped").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("entries").and_then(Value::as_list).map(<[Value]>::len), Some(2));
    }
}
