//! Concrete serving backends and CLI drivers behind `spikefolio-serve`.
//!
//! The serve crate is policy-agnostic; this module plugs the repo's real
//! policies into it: the float SNN backend (batched `forward_batch`
//! kernels, bitwise batch-composition invariant) and the Loihi-quantized
//! emulation backend (eq. (14) quantization + fixed-point chip model),
//! both constructed from the same shape-validated v1/v2 checkpoints the
//! trainer writes. It also hosts the `spikefolio serve` / `spikefolio
//! loadgen` subcommand implementations, including the CI smoke flow and
//! the batching-vs-unbatched self benchmark.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_env::StateBuilder;
use spikefolio_loihi::chip::{LoihiChip, LoihiNetwork, LoihiRunStats};
use spikefolio_loihi::quantize::try_quantize_network;
use spikefolio_loihi::QuantizeOptions;
use spikefolio_market::Candle;
use spikefolio_serve::{
    run_loadgen, InferenceBackend, LoadReport, LoadgenOptions, ModelLoader, ModelStore, Server,
    ServerHandle, ServerOptions, Service, ServiceConfig,
};
use spikefolio_snn::{BatchNetworkTrace, BatchWorkspace, SdpNetwork};
use spikefolio_telemetry::value::{parse, Value};
use spikefolio_tensor::Matrix;

use crate::agent::SdpAgent;
use crate::checkpoint;
use crate::config::SdpConfig;

/// Which policy implementation answers requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The float SNN running the PR 1 batched kernels.
    Float,
    /// The Loihi-quantized fixed-point emulation (per-sample chip
    /// inference; batching still amortizes queueing and dispatch).
    Loihi,
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "float" | "snn" => Ok(Self::Float),
            "loihi" => Ok(Self::Loihi),
            other => Err(format!("unknown backend {other:?} (expected float|loihi)")),
        }
    }
}

/// Parses a flat `[open, high, low, close]` stream into candles for
/// [`StateBuilder::build_from_window`].
fn candles_from_flat(flat: &[f64]) -> Result<Vec<Candle>, String> {
    if !flat.len().is_multiple_of(4) {
        return Err(format!(
            "window carries {} values, expected a multiple of 4 ([open,high,low,close] per candle)",
            flat.len()
        ));
    }
    Ok(flat
        .chunks_exact(4)
        .map(|c| Candle { open: c[0], high: c[1], low: c[2], close: c[3], volume: 0.0 })
        .collect())
}

/// The float SNN backend: one `forward_batch` per micro-batch, each
/// sample encoded with its own request-seeded RNG, so served weights are
/// independent of batch composition.
///
/// Inference rides the default event-driven sparse kernel path
/// ([`spikefolio_snn::kernel_path`]); the bitwise contract means served
/// actions are identical to the dense reference, just cheaper per spike.
#[derive(Debug)]
pub struct FloatPolicyBackend {
    network: SdpNetwork,
    state_builder: StateBuilder,
    // Recycled forward buffers: at paper scale the (T·B)×dim stack
    // allocations cost as much as the batched GEMMs save, so the last
    // workspace is parked here between micro-batches. `forward_batch`
    // overwrites every cell it reads, so reuse cannot leak state across
    // calls; a size mismatch just rebuilds. Taken out of the lock for
    // the duration of the forward pass so concurrent workers never
    // serialize on it — a loser simply allocates its own.
    scratch: Mutex<Option<(usize, BatchWorkspace, BatchNetworkTrace)>>,
    // Per-layer firing rates of the most recent micro-batch, feeding the
    // serving health monitor's drift EWMA.
    rates: Mutex<Option<Vec<f64>>>,
}

impl Clone for FloatPolicyBackend {
    fn clone(&self) -> Self {
        Self::new(self.network.clone(), self.state_builder)
    }
}

impl FloatPolicyBackend {
    /// Wraps a trained network and its state layout.
    pub fn new(network: SdpNetwork, state_builder: StateBuilder) -> Self {
        Self { network, state_builder, scratch: Mutex::new(None), rates: Mutex::new(None) }
    }
}

impl InferenceBackend for FloatPolicyBackend {
    fn name(&self) -> &str {
        "snn-float"
    }

    fn state_dim(&self) -> usize {
        self.network.config().state_dim
    }

    fn action_dim(&self) -> usize {
        self.network.config().action_dim
    }

    fn infer_batch(&self, states: &[f64], seeds: &[u64]) -> Vec<Vec<f64>> {
        let batch = seeds.len();
        let dim = self.state_dim();
        let Ok(matrix) = Matrix::try_from_vec(batch, dim, states.to_vec()) else {
            // Shape mismatches are caught at admission; if one slips
            // through, emit rejectable output instead of panicking a
            // batcher worker.
            return vec![vec![f64::NAN; self.action_dim()]; batch];
        };
        let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        if batch == 1 {
            // Singleton batches take the canonical per-sample path
            // (bitwise identical by the batch-composition invariance
            // contract); the batch engine and its recycled workspaces
            // below only pay for width > 1.
            return vec![self.network.act(matrix.row(0), &mut rngs[0])];
        }
        let cached = self.scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        let (mut ws, mut trace) = match cached {
            Some((b, ws, trace)) if b == batch => (ws, trace),
            _ => (
                BatchWorkspace::new(&self.network, batch),
                BatchNetworkTrace::new(&self.network, batch),
            ),
        };
        self.network.forward_batch(&matrix, &mut rngs, &mut ws, &mut trace);
        let actions = (0..batch).map(|b| trace.action(b).to_vec()).collect();
        *self.rates.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some(self.network.layer_firing_rates(&trace.layer_spikes, batch as u64));
        *self.scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some((batch, ws, trace));
        actions
    }

    fn layer_firing_rates(&self) -> Option<Vec<f64>> {
        self.rates.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    fn state_from_window(
        &self,
        candles_flat: &[f64],
        num_assets: usize,
        prev_weights: &[f64],
    ) -> Result<Vec<f64>, String> {
        let candles = candles_from_flat(candles_flat)?;
        self.state_builder.build_from_window(&candles, num_assets, prev_weights)
    }
}

/// The Loihi backend: states are population-encoded off-chip with the
/// request seed, then run through the mapped fixed-point chip model one
/// sample at a time (the chip model is sequential), decoding spike sums
/// back into weights. Event counts accumulate across requests.
pub struct LoihiPolicyBackend {
    encoder: spikefolio_snn::PopulationEncoder,
    decoder: spikefolio_snn::decoder::Decoder,
    chip_net: LoihiNetwork,
    timesteps: usize,
    state_dim: usize,
    action_dim: usize,
    state_builder: StateBuilder,
    total_stats: Mutex<LoihiRunStats>,
}

impl std::fmt::Debug for LoihiPolicyBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoihiPolicyBackend")
            .field("state_dim", &self.state_dim)
            .field("action_dim", &self.action_dim)
            .field("timesteps", &self.timesteps)
            .finish()
    }
}

impl LoihiPolicyBackend {
    /// Quantizes `network` (eq. (14)) and maps it onto `chip`.
    ///
    /// # Errors
    ///
    /// Quantization or chip-mapping failures as a message.
    pub fn new(
        network: &SdpNetwork,
        state_builder: StateBuilder,
        chip: &LoihiChip,
        opts: &QuantizeOptions,
    ) -> Result<Self, String> {
        let (quantized, _report) =
            try_quantize_network(network, opts).map_err(|e| format!("quantize: {e:?}"))?;
        let timesteps = quantized.timesteps;
        let chip_net = chip.map(quantized).map_err(|e| format!("chip map: {e:?}"))?;
        Ok(Self {
            encoder: network.encoder.clone(),
            decoder: network.decoder.clone(),
            chip_net,
            timesteps,
            state_dim: network.config().state_dim,
            action_dim: network.config().action_dim,
            state_builder,
            total_stats: Mutex::new(LoihiRunStats::default()),
        })
    }

    /// Accumulated on-chip event counts across every served sample.
    pub fn total_stats(&self) -> LoihiRunStats {
        *self.total_stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl InferenceBackend for LoihiPolicyBackend {
    fn name(&self) -> &str {
        "loihi-quantized"
    }

    fn state_dim(&self) -> usize {
        self.state_dim
    }

    fn action_dim(&self) -> usize {
        self.action_dim
    }

    fn infer_batch(&self, states: &[f64], seeds: &[u64]) -> Vec<Vec<f64>> {
        let dim = self.state_dim;
        let mut out = Vec::with_capacity(seeds.len());
        let mut batch_stats = LoihiRunStats::default();
        for (b, &seed) in seeds.iter().enumerate() {
            let Some(row) = states.get(b * dim..(b + 1) * dim) else {
                out.push(vec![f64::NAN; self.action_dim]);
                continue;
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let raster = self.encoder.encode(row, self.timesteps, &mut rng);
            let (sums, stats) = self.chip_net.infer(&raster);
            batch_stats += stats;
            out.push(self.decoder.decode(&sums).action);
        }
        *self.total_stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner) += batch_stats;
        out
    }

    fn state_from_window(
        &self,
        candles_flat: &[f64],
        num_assets: usize,
        prev_weights: &[f64],
    ) -> Result<Vec<f64>, String> {
        let candles = candles_from_flat(candles_flat)?;
        self.state_builder.build_from_window(&candles, num_assets, prev_weights)
    }
}

/// A [`ModelLoader`] that builds backends from the trainer's v1/v2
/// checkpoints: every load constructs a fresh agent skeleton from the
/// fixed `(config, num_assets)` pair, so `load_sdp`'s shape validation
/// rejects any checkpoint that does not match the serving topology.
pub struct CheckpointBackendLoader {
    config: SdpConfig,
    num_assets: usize,
    kind: BackendKind,
    chip: LoihiChip,
    quantize: QuantizeOptions,
}

impl CheckpointBackendLoader {
    /// A loader for the given serving topology.
    pub fn new(config: SdpConfig, num_assets: usize, kind: BackendKind) -> Self {
        Self {
            config,
            num_assets,
            kind,
            chip: LoihiChip::default(),
            quantize: QuantizeOptions::default(),
        }
    }
}

impl ModelLoader for CheckpointBackendLoader {
    fn load(&self, source: &str) -> Result<Box<dyn InferenceBackend>, String> {
        let mut agent = SdpAgent::new(&self.config, self.num_assets, 0);
        checkpoint::load_sdp(&mut agent, source)
            .map_err(|e| format!("checkpoint {source}: {e}"))?;
        let state_builder = *agent.state_builder();
        match self.kind {
            BackendKind::Float => {
                Ok(Box::new(FloatPolicyBackend::new(agent.network, state_builder)))
            }
            BackendKind::Loihi => Ok(Box::new(LoihiPolicyBackend::new(
                &agent.network,
                state_builder,
                &self.chip,
                &self.quantize,
            )?)),
        }
    }
}

/// Writes a reference checkpoint: a freshly initialized (untrained but
/// fully valid) agent for `(config, num_assets, seed)` — the seeded model
/// the CI smoke flow and the self benchmark serve.
///
/// # Errors
///
/// IO failures as a message.
pub fn write_reference_checkpoint(
    path: &str,
    config: &SdpConfig,
    num_assets: usize,
    seed: u64,
) -> Result<(), String> {
    let agent = SdpAgent::new(config, num_assets, seed);
    checkpoint::save_sdp(&agent, path).map_err(|e| format!("write {path}: {e}"))
}

/// Everything `spikefolio serve` needs.
#[derive(Debug, Clone)]
pub struct ServeRunOptions {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Checkpoint to serve.
    pub checkpoint: String,
    /// Model topology the checkpoint must match.
    pub config: SdpConfig,
    /// Risky-asset count of the serving universe.
    pub num_assets: usize,
    /// Float or Loihi backend.
    pub backend: BackendKind,
    /// Queue / batch / worker configuration.
    pub service: ServiceConfig,
    /// Optional JSONL run-log path for the final telemetry flush.
    pub telemetry: Option<String>,
    /// Optional Chrome-trace JSON output path, written at shutdown when
    /// request-trace sampling is on (load in Perfetto / `chrome://tracing`).
    pub trace: Option<String>,
    /// Sample 1-in-N requests into the trace (`0` disables tracing).
    pub trace_sample: u64,
    /// Per-request latency SLO for the health watchdog (µs); `None`
    /// keeps the service default.
    pub slo_us: Option<u64>,
}

/// Builds the store + service + server stack for `opts` without running
/// the accept loop — shared by the CLI, the smoke flow, and tests.
///
/// # Errors
///
/// Checkpoint load or bind failures as a message.
pub fn build_server(
    opts: &ServeRunOptions,
) -> Result<(Server, ServerHandle, Arc<Service>), String> {
    let loader = CheckpointBackendLoader::new(opts.config.clone(), opts.num_assets, opts.backend);
    let store = ModelStore::open(Box::new(loader), &opts.checkpoint)?;
    let mut service_cfg = opts.service;
    service_cfg.trace_sample = opts.trace_sample;
    if let Some(slo) = opts.slo_us {
        service_cfg.health.latency_slo_us = slo;
    }
    let service = Service::start(Arc::new(store), service_cfg);
    let server = Server::bind(&opts.addr, Arc::clone(&service), ServerOptions::default())
        .map_err(|e| format!("bind {}: {e}", opts.addr))?;
    let handle = server.handle();
    Ok((server, handle, service))
}

/// `spikefolio serve`: builds the stack, prints the bound address, and
/// blocks until a client sends `{"cmd":"shutdown"}`. On exit the service
/// counters are flushed to the `--telemetry` run log when one was given.
///
/// # Errors
///
/// Build, run, or telemetry-write failures as a message.
pub fn run_serve(opts: &ServeRunOptions) -> Result<(), String> {
    let (server, handle, service) = build_server(opts)?;
    println!("serving {} on {} (backend {})", opts.checkpoint, handle.addr(), backend_name(opts));
    server.run().map_err(|e| format!("server: {e}"))?;
    finish_telemetry(&service, opts.telemetry.as_deref())?;
    if let Some(path) = opts.trace.as_deref() {
        match service.trace_json() {
            Some(json) => {
                std::fs::write(path, json).map_err(|e| format!("trace {path}: {e}"))?;
                println!("wrote request trace to {path} (1-in-{} sampling)", opts.trace_sample);
            }
            None => println!("--trace given but --trace-sample is 0; no trace recorded"),
        }
    }
    let stats = service.stats();
    println!(
        "served {} requests in {} batches (max batch {}), shed {} (queue) / {} (deadline)",
        stats.served, stats.batches, stats.max_batch, stats.shed_queue_full, stats.shed_deadline
    );
    Ok(())
}

fn backend_name(opts: &ServeRunOptions) -> &'static str {
    match opts.backend {
        BackendKind::Float => "snn-float",
        BackendKind::Loihi => "loihi-quantized",
    }
}

fn finish_telemetry(service: &Service, path: Option<&str>) -> Result<(), String> {
    let Some(path) = path else { return Ok(()) };
    let mut sink = spikefolio_telemetry::JsonlSink::create(path)
        .map_err(|e| format!("telemetry {path}: {e}"))?;
    service.flush_telemetry(&mut sink);
    sink.finish().map_err(|e| format!("telemetry {path}: {e}"))?;
    Ok(())
}

/// `spikefolio serve-top` parameters: poll a running server's `metrics`
/// verb and render a live terminal dashboard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeTopOptions {
    /// Server address to poll.
    pub addr: String,
    /// Poll interval (ms).
    pub interval_ms: u64,
    /// Number of polls; `0` polls until the server goes away.
    pub iterations: usize,
    /// Print the raw `spikefolio.metrics.v1` JSON snapshot per poll
    /// instead of the dashboard (machine-consumable).
    pub raw: bool,
    /// Print the Prometheus text exposition per poll instead of the
    /// dashboard.
    pub prometheus: bool,
    /// Desk lineage ledger to resolve the serving model's ancestry
    /// from; the chain is appended to every dashboard frame.
    pub lineage: Option<String>,
}

impl Default for ServeTopOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            interval_ms: 1000,
            iterations: 0,
            raw: false,
            prometheus: false,
            lineage: None,
        }
    }
}

/// One `metrics` round trip on a fresh connection (stateless by design:
/// a dashboard that holds no connection cannot pin a draining server).
fn fetch_metrics(addr: &str, prometheus: bool) -> Result<Value, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).map_err(|e| format!("set_nodelay: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
    let cmd = if prometheus {
        "{\"cmd\":\"metrics\",\"format\":\"prometheus\"}\n"
    } else {
        "{\"cmd\":\"metrics\"}\n"
    };
    writer.write_all(cmd.as_bytes()).map_err(|e| format!("send metrics: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("read metrics: {e}"))?;
    let v = parse(line.trim()).map_err(|e| format!("parse metrics response: {e}"))?;
    if !matches!(v.get("ok"), Some(Value::Bool(true))) {
        return Err(format!("server refused metrics: {}", line.trim()));
    }
    Ok(v)
}

/// Formats one `spikefolio.metrics.v1` snapshot as the serve-top frame.
fn render_top(m: &Value) -> String {
    use std::fmt::Write as _;
    let cnt =
        |k: &str| m.get("counters").and_then(|c| c.get(k)).and_then(Value::as_u64).unwrap_or(0);
    let gauge =
        |k: &str| m.get("gauges").and_then(|g| g.get(k)).and_then(Value::as_u64).unwrap_or(0);
    let health = m.get("health");
    let hf = |k: &str| health.and_then(|h| h.get(k)).and_then(Value::as_f64).unwrap_or(0.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "spikefolio serve-top  backend {}  model v{}  uptime {:.1} s",
        m.get("backend").and_then(Value::as_str).unwrap_or("?"),
        m.get("model_version").and_then(Value::as_u64).unwrap_or(0),
        m.get("uptime_s").and_then(Value::as_f64).unwrap_or(0.0),
    );
    let _ = writeln!(
        out,
        "requests {}  served {}  shed {} queue / {} deadline  parse_errors {}  over_slo {}",
        cnt("requests"),
        cnt("served"),
        cnt("shed_queue_full"),
        cnt("shed_deadline"),
        cnt("parse_errors"),
        cnt("over_slo"),
    );
    let _ = writeln!(
        out,
        "queue depth {} (peak {})  batches {}  max batch {}",
        gauge("queue_depth"),
        gauge("queue_depth_peak"),
        cnt("batches"),
        gauge("max_batch"),
    );
    if let Some(swap) = m.get("swap") {
        let su = |k: &str| swap.get(k).and_then(Value::as_u64).unwrap_or(0);
        let mut line = format!(
            "swaps {}  io-failed {}  gate-rejected {}  last good v{}",
            su("swaps"),
            su("failures"),
            su("rejected"),
            su("last_good_version"),
        );
        if let Some(kind) = swap.get("last_rejection_kind").and_then(Value::as_str) {
            line.push_str(&format!("  [last rejection: {kind}]"));
        }
        let _ = writeln!(out, "{line}");
    }
    let degraded = matches!(health.and_then(|h| h.get("degraded")), Some(Value::Bool(true)));
    let reasons: Vec<&str> = health
        .and_then(|h| h.get("reasons"))
        .and_then(Value::as_list)
        .map(|rs| rs.iter().filter_map(Value::as_str).collect())
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "health {}  burn {:.2}  shed {:.2}  drift {:.3}{}",
        if degraded { "DEGRADED" } else { "ok" },
        hf("burn_rate"),
        hf("shed_rate"),
        hf("drift_score"),
        if reasons.is_empty() { String::new() } else { format!("  [{}]", reasons.join(", ")) },
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "stage (us)", "count", "p50", "p95", "p99", "max"
    );
    if let Some(Value::Map(stages)) = m.get("stages") {
        for (name, s) in stages {
            let sf = |k: &str| s.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                name,
                s.get("count").and_then(Value::as_u64).unwrap_or(0),
                sf("p50_us"),
                sf("p95_us"),
                sf("p99_us"),
                sf("max_us"),
            );
        }
    }
    if let Some(t) = m.get("trace") {
        if let Some(every) = t.get("sample_every").and_then(Value::as_u64) {
            let _ = writeln!(
                out,
                "trace: 1-in-{every} sampling, {} requests sampled",
                t.get("sampled").and_then(Value::as_u64).unwrap_or(0),
            );
        }
    }
    out
}

/// `spikefolio serve-top`: polls the `metrics` verb and repaints a
/// terminal dashboard (or emits raw JSON / Prometheus text with the
/// corresponding flags — one line/block per poll, suitable for piping).
///
/// # Errors
///
/// Connection or protocol failures as a message.
pub fn run_serve_top(opts: &ServeTopOptions) -> Result<(), String> {
    let mut done = 0usize;
    loop {
        let v = fetch_metrics(&opts.addr, opts.prometheus)?;
        if opts.prometheus {
            print!("{}", v.get("text").and_then(Value::as_str).unwrap_or(""));
        } else {
            let metrics = v
                .get("metrics")
                .ok_or_else(|| "metrics response carries no `metrics` map".to_string())?;
            if opts.raw {
                println!("{}", metrics.to_json());
            } else {
                if opts.iterations != 1 {
                    // Repaint in place when running as a live dashboard.
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render_top(metrics));
                if let Some(ledger) = &opts.lineage {
                    // Ancestry of the model answering requests right now,
                    // resolved against the desk's lineage ledger (re-read
                    // per poll: the desk may still be promoting).
                    let version = metrics.get("model_version").and_then(Value::as_u64).unwrap_or(0);
                    match spikefolio_blackbox::read_ledger(ledger) {
                        Ok(log) => {
                            let chain = crate::desk_top::render_ancestry(&log, version);
                            if chain.is_empty() {
                                println!("lineage: v{version} has no promotion trail in {ledger}");
                            } else {
                                println!("lineage: {chain}");
                            }
                        }
                        Err(e) => println!("lineage: cannot read {ledger}: {e}"),
                    }
                }
            }
        }
        let _ = std::io::stdout().flush();
        done += 1;
        if opts.iterations != 0 && done >= opts.iterations {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms.max(50)));
    }
}

/// Outcome of the scripted smoke flow ([`run_loadgen_smoke`]).
#[derive(Debug, Clone)]
pub struct SmokeOutcome {
    /// The loadgen report of the double-run.
    pub report: LoadReport,
    /// Whether the server's accept loop exited and joined cleanly.
    pub clean_shutdown: bool,
}

impl SmokeOutcome {
    /// All smoke invariants: every request served, bitwise-identical
    /// responses across the two passes, and a clean shutdown.
    pub fn passed(&self) -> bool {
        self.clean_shutdown
            && self.report.served == self.report.requests
            && self.report.shed_queue_full == 0
            && self.report.shed_deadline == 0
            && self.report.errors == 0
            && self.report.deterministic == Some(true)
    }
}

/// `spikefolio loadgen --smoke`: spins up a deterministic single-worker
/// server on a loopback port around `checkpoint` (written fresh when
/// absent), replays a seeded scripted request set twice through the real
/// TCP path, checks the responses are bitwise identical, and shuts the
/// server down.
///
/// # Errors
///
/// Any setup, load, or protocol failure as a message.
pub fn run_loadgen_smoke(checkpoint: Option<&str>, seed: u64) -> Result<SmokeOutcome, String> {
    let config = SdpConfig::smoke();
    let num_assets = 5;
    let owned_path;
    let path = match checkpoint {
        Some(p) => p,
        None => {
            let dir = std::env::temp_dir();
            owned_path = dir
                .join(format!("spikefolio_serve_smoke_{seed}.ckpt"))
                .to_string_lossy()
                .into_owned();
            write_reference_checkpoint(&owned_path, &config, num_assets, seed)?;
            &owned_path
        }
    };
    let opts = ServeRunOptions {
        addr: "127.0.0.1:0".to_string(),
        checkpoint: path.to_string(),
        config,
        num_assets,
        backend: BackendKind::Float,
        service: ServiceConfig { deterministic: true, queue_capacity: 1024, ..Default::default() },
        telemetry: None,
        trace: None,
        trace_sample: 0,
        slo_us: None,
    };
    let (server, handle, _service) = build_server(&opts)?;
    let addr = handle.addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());
    // A few connection retries: the smoke shares a loopback with whatever
    // else the test runner has saturated, and a refused first connect
    // while the listener thread warms up should not fail the smoke.
    let load = LoadgenOptions {
        requests: 64,
        concurrency: 4,
        seed,
        runs: 2,
        connect_retries: 3,
        ..Default::default()
    };
    let result = run_loadgen(&addr, &load);
    handle.shutdown();
    let clean_shutdown = matches!(server_thread.join(), Ok(Ok(())));
    Ok(SmokeOutcome { report: result?, clean_shutdown })
}

/// The batching-vs-unbatched self benchmark: serves `checkpoint` twice on
/// loopback — once with the given batching policy, once pinned to
/// `max_batch = 1` — and drives both with the identical closed-loop
/// request stream. Returns `(batching report, unbatched report)`.
///
/// # Errors
///
/// Any setup or load failure as a message.
pub fn run_self_bench(
    checkpoint: &str,
    config: &SdpConfig,
    num_assets: usize,
    load: &LoadgenOptions,
    service: ServiceConfig,
) -> Result<(LoadReport, LoadReport), String> {
    let mut reports = Vec::with_capacity(2);
    for max_batch in [service.batch.max_batch.max(2), 1] {
        let mut svc = service;
        svc.batch.max_batch = max_batch;
        let opts = ServeRunOptions {
            addr: "127.0.0.1:0".to_string(),
            checkpoint: checkpoint.to_string(),
            config: config.clone(),
            num_assets,
            backend: BackendKind::Float,
            service: svc,
            telemetry: None,
            trace: None,
            trace_sample: 0,
            slo_us: None,
        };
        let (server, handle, _service) = build_server(&opts)?;
        let addr = handle.addr().to_string();
        let server_thread = std::thread::spawn(move || server.run());
        let result = run_loadgen(&addr, load);
        handle.shutdown();
        let _ = server_thread.join();
        reports.push(result?);
    }
    let unbatched = reports.pop().unwrap_or_else(unreachable_report);
    let batching = reports.pop().unwrap_or_else(unreachable_report);
    Ok((batching, unbatched))
}

/// Placeholder satisfying the no-unwrap lint on a vec we just filled.
fn unreachable_report() -> LoadReport {
    LoadReport {
        mode: String::new(),
        requests: 0,
        served: 0,
        shed_queue_full: 0,
        shed_deadline: 0,
        errors: 0,
        wall_s: 0.0,
        throughput_rps: 0.0,
        latency: spikefolio_serve::LatencySummary::default(),
        batch_hist: Vec::new(),
        max_batch: 0,
        deterministic: None,
        server_stages: Vec::new(),
        server_degraded: None,
        connect_retries: 0,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rand::Rng;

    #[test]
    fn float_backend_matches_direct_network_act() {
        let config = SdpConfig::smoke();
        let agent = SdpAgent::new(&config, 3, 11);
        let backend = FloatPolicyBackend::new(agent.network.clone(), *agent.state_builder());
        let dim = backend.state_dim();
        let mut rng = StdRng::seed_from_u64(5);
        let states: Vec<f64> = (0..2 * dim).map(|_| rng.gen_range(0.8..1.2)).collect();
        let out = backend.infer_batch(&states, &[42, 43]);
        for (b, &seed) in [42u64, 43].iter().enumerate() {
            let mut sample_rng = StdRng::seed_from_u64(seed);
            let direct = agent.network.act(&states[b * dim..(b + 1) * dim], &mut sample_rng);
            assert_eq!(out[b], direct, "sample {b} must match per-sample act");
        }
    }

    #[test]
    fn candle_parsing_validates_multiple_of_four() {
        assert!(candles_from_flat(&[1.0, 2.0, 3.0]).is_err());
        let candles = candles_from_flat(&[1.0, 2.0, 0.5, 1.5]).expect("one candle");
        assert_eq!(candles.len(), 1);
        assert_eq!(candles[0].high, 2.0);
        assert_eq!(candles[0].close, 1.5);
    }

    #[test]
    fn loader_rejects_missing_and_accepts_written_checkpoint() {
        let config = SdpConfig::smoke();
        let dir = std::env::temp_dir();
        let path = dir.join("spikefolio_serving_loader_test.ckpt");
        let path_str = path.to_string_lossy().into_owned();
        write_reference_checkpoint(&path_str, &config, 3, 7).expect("write");
        let loader = CheckpointBackendLoader::new(config.clone(), 3, BackendKind::Float);
        let backend = loader.load(&path_str).expect("load");
        assert_eq!(backend.action_dim(), 4);
        assert!(loader.load("/nonexistent/nope.ckpt").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_top_renders_snapshot_fields() {
        let json = concat!(
            r#"{"uptime_s":1.5,"backend":"snn-float","model_version":2,"#,
            r#""counters":{"requests":10,"served":9,"shed_queue_full":1,"shed_deadline":0,"#,
            r#""parse_errors":0,"over_slo":3},"#,
            r#""gauges":{"queue_depth":0,"queue_depth_peak":4,"max_batch":8},"#,
            r#""stages":{"backend_infer":{"count":9,"p50_us":12.0,"p95_us":30.0,"#,
            r#""p99_us":40.0,"max_us":44.0}},"#,
            r#""health":{"degraded":true,"reasons":["latency_burn"],"burn_rate":1.2,"#,
            r#""shed_rate":0.1,"drift_score":0.01},"#,
            r#""trace":{"sample_every":64,"sampled":2}}"#,
        );
        let v = parse(json).expect("synthetic snapshot parses");
        let frame = render_top(&v);
        assert!(frame.contains("backend snn-float"));
        assert!(frame.contains("model v2"));
        assert!(frame.contains("requests 10"));
        assert!(frame.contains("DEGRADED"));
        assert!(frame.contains("latency_burn"));
        assert!(frame.contains("backend_infer"));
        assert!(frame.contains("1-in-64 sampling"));
    }

    #[test]
    fn backend_kind_parses() {
        assert_eq!("float".parse::<BackendKind>(), Ok(BackendKind::Float));
        assert_eq!("loihi".parse::<BackendKind>(), Ok(BackendKind::Loihi));
        assert!("gpu".parse::<BackendKind>().is_err());
    }
}
