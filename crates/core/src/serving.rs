//! Concrete serving backends and CLI drivers behind `spikefolio-serve`.
//!
//! The serve crate is policy-agnostic; this module plugs the repo's real
//! policies into it: the float SNN backend (batched `forward_batch`
//! kernels, bitwise batch-composition invariant) and the Loihi-quantized
//! emulation backend (eq. (14) quantization + fixed-point chip model),
//! both constructed from the same shape-validated v1/v2 checkpoints the
//! trainer writes. It also hosts the `spikefolio serve` / `spikefolio
//! loadgen` subcommand implementations, including the CI smoke flow and
//! the batching-vs-unbatched self benchmark.

use std::str::FromStr;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_env::StateBuilder;
use spikefolio_loihi::chip::{LoihiChip, LoihiNetwork, LoihiRunStats};
use spikefolio_loihi::quantize::try_quantize_network;
use spikefolio_loihi::QuantizeOptions;
use spikefolio_market::Candle;
use spikefolio_serve::{
    run_loadgen, InferenceBackend, LoadReport, LoadgenOptions, ModelLoader, ModelStore, Server,
    ServerHandle, ServerOptions, Service, ServiceConfig,
};
use spikefolio_snn::{BatchNetworkTrace, BatchWorkspace, SdpNetwork};
use spikefolio_tensor::Matrix;

use crate::agent::SdpAgent;
use crate::checkpoint;
use crate::config::SdpConfig;

/// Which policy implementation answers requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The float SNN running the PR 1 batched kernels.
    Float,
    /// The Loihi-quantized fixed-point emulation (per-sample chip
    /// inference; batching still amortizes queueing and dispatch).
    Loihi,
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "float" | "snn" => Ok(Self::Float),
            "loihi" => Ok(Self::Loihi),
            other => Err(format!("unknown backend {other:?} (expected float|loihi)")),
        }
    }
}

/// Parses a flat `[open, high, low, close]` stream into candles for
/// [`StateBuilder::build_from_window`].
fn candles_from_flat(flat: &[f64]) -> Result<Vec<Candle>, String> {
    if !flat.len().is_multiple_of(4) {
        return Err(format!(
            "window carries {} values, expected a multiple of 4 ([open,high,low,close] per candle)",
            flat.len()
        ));
    }
    Ok(flat
        .chunks_exact(4)
        .map(|c| Candle { open: c[0], high: c[1], low: c[2], close: c[3], volume: 0.0 })
        .collect())
}

/// The float SNN backend: one `forward_batch` per micro-batch, each
/// sample encoded with its own request-seeded RNG, so served weights are
/// independent of batch composition.
///
/// Inference rides the default event-driven sparse kernel path
/// ([`spikefolio_snn::kernel_path`]); the bitwise contract means served
/// actions are identical to the dense reference, just cheaper per spike.
#[derive(Debug)]
pub struct FloatPolicyBackend {
    network: SdpNetwork,
    state_builder: StateBuilder,
    // Recycled forward buffers: at paper scale the (T·B)×dim stack
    // allocations cost as much as the batched GEMMs save, so the last
    // workspace is parked here between micro-batches. `forward_batch`
    // overwrites every cell it reads, so reuse cannot leak state across
    // calls; a size mismatch just rebuilds. Taken out of the lock for
    // the duration of the forward pass so concurrent workers never
    // serialize on it — a loser simply allocates its own.
    scratch: Mutex<Option<(usize, BatchWorkspace, BatchNetworkTrace)>>,
}

impl Clone for FloatPolicyBackend {
    fn clone(&self) -> Self {
        Self::new(self.network.clone(), self.state_builder)
    }
}

impl FloatPolicyBackend {
    /// Wraps a trained network and its state layout.
    pub fn new(network: SdpNetwork, state_builder: StateBuilder) -> Self {
        Self { network, state_builder, scratch: Mutex::new(None) }
    }
}

impl InferenceBackend for FloatPolicyBackend {
    fn name(&self) -> &str {
        "snn-float"
    }

    fn state_dim(&self) -> usize {
        self.network.config().state_dim
    }

    fn action_dim(&self) -> usize {
        self.network.config().action_dim
    }

    fn infer_batch(&self, states: &[f64], seeds: &[u64]) -> Vec<Vec<f64>> {
        let batch = seeds.len();
        let dim = self.state_dim();
        let Ok(matrix) = Matrix::try_from_vec(batch, dim, states.to_vec()) else {
            // Shape mismatches are caught at admission; if one slips
            // through, emit rejectable output instead of panicking a
            // batcher worker.
            return vec![vec![f64::NAN; self.action_dim()]; batch];
        };
        let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        if batch == 1 {
            // Singleton batches take the canonical per-sample path
            // (bitwise identical by the batch-composition invariance
            // contract); the batch engine and its recycled workspaces
            // below only pay for width > 1.
            return vec![self.network.act(matrix.row(0), &mut rngs[0])];
        }
        let cached = self.scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        let (mut ws, mut trace) = match cached {
            Some((b, ws, trace)) if b == batch => (ws, trace),
            _ => (
                BatchWorkspace::new(&self.network, batch),
                BatchNetworkTrace::new(&self.network, batch),
            ),
        };
        self.network.forward_batch(&matrix, &mut rngs, &mut ws, &mut trace);
        let actions = (0..batch).map(|b| trace.action(b).to_vec()).collect();
        *self.scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some((batch, ws, trace));
        actions
    }

    fn state_from_window(
        &self,
        candles_flat: &[f64],
        num_assets: usize,
        prev_weights: &[f64],
    ) -> Result<Vec<f64>, String> {
        let candles = candles_from_flat(candles_flat)?;
        self.state_builder.build_from_window(&candles, num_assets, prev_weights)
    }
}

/// The Loihi backend: states are population-encoded off-chip with the
/// request seed, then run through the mapped fixed-point chip model one
/// sample at a time (the chip model is sequential), decoding spike sums
/// back into weights. Event counts accumulate across requests.
pub struct LoihiPolicyBackend {
    encoder: spikefolio_snn::PopulationEncoder,
    decoder: spikefolio_snn::decoder::Decoder,
    chip_net: LoihiNetwork,
    timesteps: usize,
    state_dim: usize,
    action_dim: usize,
    state_builder: StateBuilder,
    total_stats: Mutex<LoihiRunStats>,
}

impl std::fmt::Debug for LoihiPolicyBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoihiPolicyBackend")
            .field("state_dim", &self.state_dim)
            .field("action_dim", &self.action_dim)
            .field("timesteps", &self.timesteps)
            .finish()
    }
}

impl LoihiPolicyBackend {
    /// Quantizes `network` (eq. (14)) and maps it onto `chip`.
    ///
    /// # Errors
    ///
    /// Quantization or chip-mapping failures as a message.
    pub fn new(
        network: &SdpNetwork,
        state_builder: StateBuilder,
        chip: &LoihiChip,
        opts: &QuantizeOptions,
    ) -> Result<Self, String> {
        let (quantized, _report) =
            try_quantize_network(network, opts).map_err(|e| format!("quantize: {e:?}"))?;
        let timesteps = quantized.timesteps;
        let chip_net = chip.map(quantized).map_err(|e| format!("chip map: {e:?}"))?;
        Ok(Self {
            encoder: network.encoder.clone(),
            decoder: network.decoder.clone(),
            chip_net,
            timesteps,
            state_dim: network.config().state_dim,
            action_dim: network.config().action_dim,
            state_builder,
            total_stats: Mutex::new(LoihiRunStats::default()),
        })
    }

    /// Accumulated on-chip event counts across every served sample.
    pub fn total_stats(&self) -> LoihiRunStats {
        *self.total_stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl InferenceBackend for LoihiPolicyBackend {
    fn name(&self) -> &str {
        "loihi-quantized"
    }

    fn state_dim(&self) -> usize {
        self.state_dim
    }

    fn action_dim(&self) -> usize {
        self.action_dim
    }

    fn infer_batch(&self, states: &[f64], seeds: &[u64]) -> Vec<Vec<f64>> {
        let dim = self.state_dim;
        let mut out = Vec::with_capacity(seeds.len());
        let mut batch_stats = LoihiRunStats::default();
        for (b, &seed) in seeds.iter().enumerate() {
            let Some(row) = states.get(b * dim..(b + 1) * dim) else {
                out.push(vec![f64::NAN; self.action_dim]);
                continue;
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let raster = self.encoder.encode(row, self.timesteps, &mut rng);
            let (sums, stats) = self.chip_net.infer(&raster);
            batch_stats += stats;
            out.push(self.decoder.decode(&sums).action);
        }
        *self.total_stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner) += batch_stats;
        out
    }

    fn state_from_window(
        &self,
        candles_flat: &[f64],
        num_assets: usize,
        prev_weights: &[f64],
    ) -> Result<Vec<f64>, String> {
        let candles = candles_from_flat(candles_flat)?;
        self.state_builder.build_from_window(&candles, num_assets, prev_weights)
    }
}

/// A [`ModelLoader`] that builds backends from the trainer's v1/v2
/// checkpoints: every load constructs a fresh agent skeleton from the
/// fixed `(config, num_assets)` pair, so `load_sdp`'s shape validation
/// rejects any checkpoint that does not match the serving topology.
pub struct CheckpointBackendLoader {
    config: SdpConfig,
    num_assets: usize,
    kind: BackendKind,
    chip: LoihiChip,
    quantize: QuantizeOptions,
}

impl CheckpointBackendLoader {
    /// A loader for the given serving topology.
    pub fn new(config: SdpConfig, num_assets: usize, kind: BackendKind) -> Self {
        Self {
            config,
            num_assets,
            kind,
            chip: LoihiChip::default(),
            quantize: QuantizeOptions::default(),
        }
    }
}

impl ModelLoader for CheckpointBackendLoader {
    fn load(&self, source: &str) -> Result<Box<dyn InferenceBackend>, String> {
        let mut agent = SdpAgent::new(&self.config, self.num_assets, 0);
        checkpoint::load_sdp(&mut agent, source)
            .map_err(|e| format!("checkpoint {source}: {e}"))?;
        let state_builder = *agent.state_builder();
        match self.kind {
            BackendKind::Float => {
                Ok(Box::new(FloatPolicyBackend::new(agent.network, state_builder)))
            }
            BackendKind::Loihi => Ok(Box::new(LoihiPolicyBackend::new(
                &agent.network,
                state_builder,
                &self.chip,
                &self.quantize,
            )?)),
        }
    }
}

/// Writes a reference checkpoint: a freshly initialized (untrained but
/// fully valid) agent for `(config, num_assets, seed)` — the seeded model
/// the CI smoke flow and the self benchmark serve.
///
/// # Errors
///
/// IO failures as a message.
pub fn write_reference_checkpoint(
    path: &str,
    config: &SdpConfig,
    num_assets: usize,
    seed: u64,
) -> Result<(), String> {
    let agent = SdpAgent::new(config, num_assets, seed);
    checkpoint::save_sdp(&agent, path).map_err(|e| format!("write {path}: {e}"))
}

/// Everything `spikefolio serve` needs.
#[derive(Debug, Clone)]
pub struct ServeRunOptions {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Checkpoint to serve.
    pub checkpoint: String,
    /// Model topology the checkpoint must match.
    pub config: SdpConfig,
    /// Risky-asset count of the serving universe.
    pub num_assets: usize,
    /// Float or Loihi backend.
    pub backend: BackendKind,
    /// Queue / batch / worker configuration.
    pub service: ServiceConfig,
    /// Optional JSONL run-log path for the final telemetry flush.
    pub telemetry: Option<String>,
}

/// Builds the store + service + server stack for `opts` without running
/// the accept loop — shared by the CLI, the smoke flow, and tests.
///
/// # Errors
///
/// Checkpoint load or bind failures as a message.
pub fn build_server(
    opts: &ServeRunOptions,
) -> Result<(Server, ServerHandle, Arc<Service>), String> {
    let loader = CheckpointBackendLoader::new(opts.config.clone(), opts.num_assets, opts.backend);
    let store = ModelStore::open(Box::new(loader), &opts.checkpoint)?;
    let service = Service::start(Arc::new(store), opts.service);
    let server = Server::bind(&opts.addr, Arc::clone(&service), ServerOptions::default())
        .map_err(|e| format!("bind {}: {e}", opts.addr))?;
    let handle = server.handle();
    Ok((server, handle, service))
}

/// `spikefolio serve`: builds the stack, prints the bound address, and
/// blocks until a client sends `{"cmd":"shutdown"}`. On exit the service
/// counters are flushed to the `--telemetry` run log when one was given.
///
/// # Errors
///
/// Build, run, or telemetry-write failures as a message.
pub fn run_serve(opts: &ServeRunOptions) -> Result<(), String> {
    let (server, handle, service) = build_server(opts)?;
    println!("serving {} on {} (backend {})", opts.checkpoint, handle.addr(), backend_name(opts));
    server.run().map_err(|e| format!("server: {e}"))?;
    finish_telemetry(&service, opts.telemetry.as_deref())?;
    let stats = service.stats();
    println!(
        "served {} requests in {} batches (max batch {}), shed {} (queue) / {} (deadline)",
        stats.served, stats.batches, stats.max_batch, stats.shed_queue_full, stats.shed_deadline
    );
    Ok(())
}

fn backend_name(opts: &ServeRunOptions) -> &'static str {
    match opts.backend {
        BackendKind::Float => "snn-float",
        BackendKind::Loihi => "loihi-quantized",
    }
}

fn finish_telemetry(service: &Service, path: Option<&str>) -> Result<(), String> {
    let Some(path) = path else { return Ok(()) };
    let mut sink = spikefolio_telemetry::JsonlSink::create(path)
        .map_err(|e| format!("telemetry {path}: {e}"))?;
    service.flush_telemetry(&mut sink);
    sink.finish().map_err(|e| format!("telemetry {path}: {e}"))?;
    Ok(())
}

/// Outcome of the scripted smoke flow ([`run_loadgen_smoke`]).
#[derive(Debug, Clone)]
pub struct SmokeOutcome {
    /// The loadgen report of the double-run.
    pub report: LoadReport,
    /// Whether the server's accept loop exited and joined cleanly.
    pub clean_shutdown: bool,
}

impl SmokeOutcome {
    /// All smoke invariants: every request served, bitwise-identical
    /// responses across the two passes, and a clean shutdown.
    pub fn passed(&self) -> bool {
        self.clean_shutdown
            && self.report.served == self.report.requests
            && self.report.shed_queue_full == 0
            && self.report.shed_deadline == 0
            && self.report.errors == 0
            && self.report.deterministic == Some(true)
    }
}

/// `spikefolio loadgen --smoke`: spins up a deterministic single-worker
/// server on a loopback port around `checkpoint` (written fresh when
/// absent), replays a seeded scripted request set twice through the real
/// TCP path, checks the responses are bitwise identical, and shuts the
/// server down.
///
/// # Errors
///
/// Any setup, load, or protocol failure as a message.
pub fn run_loadgen_smoke(checkpoint: Option<&str>, seed: u64) -> Result<SmokeOutcome, String> {
    let config = SdpConfig::smoke();
    let num_assets = 5;
    let owned_path;
    let path = match checkpoint {
        Some(p) => p,
        None => {
            let dir = std::env::temp_dir();
            owned_path = dir
                .join(format!("spikefolio_serve_smoke_{seed}.ckpt"))
                .to_string_lossy()
                .into_owned();
            write_reference_checkpoint(&owned_path, &config, num_assets, seed)?;
            &owned_path
        }
    };
    let opts = ServeRunOptions {
        addr: "127.0.0.1:0".to_string(),
        checkpoint: path.to_string(),
        config,
        num_assets,
        backend: BackendKind::Float,
        service: ServiceConfig { deterministic: true, queue_capacity: 1024, ..Default::default() },
        telemetry: None,
    };
    let (server, handle, _service) = build_server(&opts)?;
    let addr = handle.addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());
    let load = LoadgenOptions { requests: 64, concurrency: 4, seed, runs: 2, ..Default::default() };
    let result = run_loadgen(&addr, &load);
    handle.shutdown();
    let clean_shutdown = matches!(server_thread.join(), Ok(Ok(())));
    Ok(SmokeOutcome { report: result?, clean_shutdown })
}

/// The batching-vs-unbatched self benchmark: serves `checkpoint` twice on
/// loopback — once with the given batching policy, once pinned to
/// `max_batch = 1` — and drives both with the identical closed-loop
/// request stream. Returns `(batching report, unbatched report)`.
///
/// # Errors
///
/// Any setup or load failure as a message.
pub fn run_self_bench(
    checkpoint: &str,
    config: &SdpConfig,
    num_assets: usize,
    load: &LoadgenOptions,
    service: ServiceConfig,
) -> Result<(LoadReport, LoadReport), String> {
    let mut reports = Vec::with_capacity(2);
    for max_batch in [service.batch.max_batch.max(2), 1] {
        let mut svc = service;
        svc.batch.max_batch = max_batch;
        let opts = ServeRunOptions {
            addr: "127.0.0.1:0".to_string(),
            checkpoint: checkpoint.to_string(),
            config: config.clone(),
            num_assets,
            backend: BackendKind::Float,
            service: svc,
            telemetry: None,
        };
        let (server, handle, _service) = build_server(&opts)?;
        let addr = handle.addr().to_string();
        let server_thread = std::thread::spawn(move || server.run());
        let result = run_loadgen(&addr, load);
        handle.shutdown();
        let _ = server_thread.join();
        reports.push(result?);
    }
    let unbatched = reports.pop().unwrap_or_else(unreachable_report);
    let batching = reports.pop().unwrap_or_else(unreachable_report);
    Ok((batching, unbatched))
}

/// Placeholder satisfying the no-unwrap lint on a vec we just filled.
fn unreachable_report() -> LoadReport {
    LoadReport {
        mode: String::new(),
        requests: 0,
        served: 0,
        shed_queue_full: 0,
        shed_deadline: 0,
        errors: 0,
        wall_s: 0.0,
        throughput_rps: 0.0,
        latency: spikefolio_serve::LatencySummary::default(),
        batch_hist: Vec::new(),
        max_batch: 0,
        deterministic: None,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rand::Rng;

    #[test]
    fn float_backend_matches_direct_network_act() {
        let config = SdpConfig::smoke();
        let agent = SdpAgent::new(&config, 3, 11);
        let backend = FloatPolicyBackend::new(agent.network.clone(), *agent.state_builder());
        let dim = backend.state_dim();
        let mut rng = StdRng::seed_from_u64(5);
        let states: Vec<f64> = (0..2 * dim).map(|_| rng.gen_range(0.8..1.2)).collect();
        let out = backend.infer_batch(&states, &[42, 43]);
        for (b, &seed) in [42u64, 43].iter().enumerate() {
            let mut sample_rng = StdRng::seed_from_u64(seed);
            let direct = agent.network.act(&states[b * dim..(b + 1) * dim], &mut sample_rng);
            assert_eq!(out[b], direct, "sample {b} must match per-sample act");
        }
    }

    #[test]
    fn candle_parsing_validates_multiple_of_four() {
        assert!(candles_from_flat(&[1.0, 2.0, 3.0]).is_err());
        let candles = candles_from_flat(&[1.0, 2.0, 0.5, 1.5]).expect("one candle");
        assert_eq!(candles.len(), 1);
        assert_eq!(candles[0].high, 2.0);
        assert_eq!(candles[0].close, 1.5);
    }

    #[test]
    fn loader_rejects_missing_and_accepts_written_checkpoint() {
        let config = SdpConfig::smoke();
        let dir = std::env::temp_dir();
        let path = dir.join("spikefolio_serving_loader_test.ckpt");
        let path_str = path.to_string_lossy().into_owned();
        write_reference_checkpoint(&path_str, &config, 3, 7).expect("write");
        let loader = CheckpointBackendLoader::new(config.clone(), 3, BackendKind::Float);
        let backend = loader.load(&path_str).expect("load");
        assert_eq!(backend.action_dim(), 4);
        assert!(loader.load("/nonexistent/nope.ckpt").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn backend_kind_parses() {
        assert_eq!("float".parse::<BackendKind>(), Ok(BackendKind::Float));
        assert_eq!("loihi".parse::<BackendKind>(), Ok(BackendKind::Loihi));
        assert!("gpu".parse::<BackendKind>().is_err());
    }
}
