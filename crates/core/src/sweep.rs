//! Hyperparameter sweeps over the SDP trainer — the tooling behind
//! Table 2's chosen values.

use crate::agent::SdpAgent;
use crate::experiments::RunOptions;
use crate::training::Trainer;
use serde::{Deserialize, Serialize};
use spikefolio_env::{Backtester, Metrics};
use spikefolio_market::experiments::ExperimentPreset;

/// One grid point's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Learning rate used.
    pub learning_rate: f64,
    /// Hidden layer widths used.
    pub hidden: Vec<usize>,
    /// Final training reward.
    pub final_reward: f64,
    /// Held-out backtest metrics.
    pub metrics: Metrics,
}

/// Grid sweep over learning rates × hidden-layer shapes on experiment 1.
///
/// Each point trains a fresh agent with the base options' budget and
/// backtests it on the held-out range; results come back in grid order
/// (`lrs` outer, `hiddens` inner).
///
/// # Panics
///
/// Panics if either grid axis is empty.
pub fn lr_hidden_sweep(opts: &RunOptions, lrs: &[f64], hiddens: &[Vec<usize>]) -> Vec<SweepPoint> {
    assert!(!lrs.is_empty() && !hiddens.is_empty(), "sweep axes must be non-empty");
    let preset = match opts.shrink {
        Some((a, b)) => ExperimentPreset::experiment1().shrunk(a, b),
        None => ExperimentPreset::experiment1(),
    };
    let (train, test) = preset.generate_split(opts.market_seed);
    let mut points = Vec::with_capacity(lrs.len() * hiddens.len());
    for &lr in lrs {
        for hidden in hiddens {
            let mut config = opts.config.clone();
            config.training.learning_rate = lr;
            config.network.hidden = hidden.clone();
            let mut agent = SdpAgent::new(&config, train.num_assets(), config.seed);
            let log = Trainer::new(&config).train_sdp(&mut agent, &train);
            let result = Backtester::new(config.backtest).run(&mut agent, &test);
            points.push(SweepPoint {
                learning_rate: lr,
                hidden: hidden.clone(),
                final_reward: log.final_reward(),
                metrics: result.metrics,
            });
        }
    }
    points
}

/// Formats a sweep as an aligned table.
pub fn format_sweep(points: &[SweepPoint]) -> String {
    let mut s = format!(
        "{:>10} {:<16} {:>14} {:>10} {:>10}\n",
        "lr", "hidden", "final reward", "fAPV", "Sharpe"
    );
    for p in points {
        s.push_str(&format!(
            "{:>10.1e} {:<16} {:>14.6} {:>10.4} {:>10.3}\n",
            p.learning_rate,
            format!("{:?}", p.hidden),
            p.final_reward,
            p.metrics.fapv,
            p.metrics.sharpe
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn sweep_covers_the_grid() {
        let mut opts = RunOptions::smoke();
        opts.shrink = Some((25, 8));
        opts.config.training.epochs = 1;
        opts.config.training.steps_per_epoch = 2;
        opts.config.training.batch_size = 4;
        let points = lr_hidden_sweep(&opts, &[1e-3, 1e-2], &[vec![8], vec![12, 8]]);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].hidden, vec![8]);
        assert_eq!(points[1].hidden, vec![12, 8]);
        assert!((points[2].learning_rate - 1e-2).abs() < 1e-15);
        assert!(points.iter().all(|p| p.metrics.fapv.is_finite()));
        let table = format_sweep(&points);
        assert!(table.contains("fAPV"));
        assert_eq!(table.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_rejected() {
        let opts = RunOptions::smoke();
        let _ = lr_hidden_sweep(&opts, &[], &[vec![8]]);
    }
}
