//! Saving and restoring trained policies.
//!
//! Checkpoints use a small self-describing text format (one header line,
//! one `name length values…` line per parameter buffer, floats serialized
//! via [`f64::to_bits`] in hex so round-trips are exact). No external
//! serialization crate is needed and files diff cleanly.

use crate::agent::SdpAgent;
use crate::drl::DrlAgent;
use spikefolio_snn::stbp::{flat_params, set_flat_params};
use std::fmt::Write as _;
use std::path::Path;

/// Magic tag of the checkpoint format.
const MAGIC: &str = "spikefolio-checkpoint-v1";

/// Error loading or parsing a checkpoint.
#[derive(Debug)]
pub enum LoadCheckpointError {
    /// File could not be read.
    Io(std::io::Error),
    /// File contents did not parse as a checkpoint.
    Parse(String),
    /// Parameter counts do not match the target network.
    Shape {
        /// Parameters in the file.
        found: usize,
        /// Parameters the network expects.
        expected: usize,
    },
}

impl std::fmt::Display for LoadCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadCheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            LoadCheckpointError::Parse(m) => write!(f, "invalid checkpoint syntax: {m}"),
            LoadCheckpointError::Shape { found, expected } => {
                write!(f, "checkpoint has {found} parameters, network expects {expected}")
            }
        }
    }
}

impl std::error::Error for LoadCheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadCheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadCheckpointError {
    fn from(e: std::io::Error) -> Self {
        LoadCheckpointError::Io(e)
    }
}

fn encode(kind: &str, params: &[f64]) -> String {
    let mut s = String::with_capacity(params.len() * 18 + 64);
    let _ = writeln!(s, "{MAGIC} kind={kind} params={}", params.len());
    for chunk in params.chunks(64) {
        for p in chunk {
            let _ = write!(s, "{:016x} ", p.to_bits());
        }
        s.push('\n');
    }
    s
}

fn decode(text: &str, kind: &str) -> Result<Vec<f64>, LoadCheckpointError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| LoadCheckpointError::Parse("empty file".into()))?;
    let mut fields = header.split_whitespace();
    if fields.next() != Some(MAGIC) {
        return Err(LoadCheckpointError::Parse("bad magic".into()));
    }
    let kind_field = fields.next().unwrap_or_default();
    if kind_field != format!("kind={kind}") {
        return Err(LoadCheckpointError::Parse(format!(
            "expected kind={kind}, found {kind_field}"
        )));
    }
    let count: usize = fields
        .next()
        .and_then(|f| f.strip_prefix("params="))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| LoadCheckpointError::Parse("missing params= field".into()))?;
    let mut out = Vec::with_capacity(count);
    for line in lines {
        for tok in line.split_whitespace() {
            let bits = u64::from_str_radix(tok, 16)
                .map_err(|_| LoadCheckpointError::Parse(format!("bad hex token {tok:?}")))?;
            out.push(f64::from_bits(bits));
        }
    }
    if out.len() != count {
        return Err(LoadCheckpointError::Parse(format!(
            "header promised {count} values, found {}",
            out.len()
        )));
    }
    Ok(out)
}

/// Saves an SDP agent's trained parameters.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn save_sdp(agent: &SdpAgent, path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, encode("sdp", &flat_params(&agent.network)))
}

/// Restores an SDP agent's parameters in place.
///
/// The agent must have been constructed with the same configuration
/// (network shape) the checkpoint was saved from.
///
/// # Errors
///
/// Returns [`LoadCheckpointError`] on I/O failure, syntax errors, or a
/// parameter-count mismatch.
pub fn load_sdp(agent: &mut SdpAgent, path: impl AsRef<Path>) -> Result<(), LoadCheckpointError> {
    let text = std::fs::read_to_string(path)?;
    let params = decode(&text, "sdp")?;
    let expected = flat_params(&agent.network).len();
    if params.len() != expected {
        return Err(LoadCheckpointError::Shape { found: params.len(), expected });
    }
    set_flat_params(&mut agent.network, &params);
    Ok(())
}

/// Saves a DRL baseline agent's parameters.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn save_drl(agent: &DrlAgent, path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, encode("drl", &agent.network.flat_params()))
}

/// Restores a DRL baseline agent's parameters in place.
///
/// # Errors
///
/// Returns [`LoadCheckpointError`] on I/O failure, syntax errors, or a
/// parameter-count mismatch.
pub fn load_drl(agent: &mut DrlAgent, path: impl AsRef<Path>) -> Result<(), LoadCheckpointError> {
    let text = std::fs::read_to_string(path)?;
    let params = decode(&text, "drl")?;
    let expected = agent.network.flat_params().len();
    if params.len() != expected {
        return Err(LoadCheckpointError::Shape { found: params.len(), expected });
    }
    agent.network.set_flat_params(&params);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SdpConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spikefolio-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn sdp_round_trip_is_bit_exact() {
        let cfg = SdpConfig::smoke();
        let agent = SdpAgent::new(&cfg, 5, 7);
        let path = tmp("sdp.ckpt");
        save_sdp(&agent, &path).unwrap();
        let mut restored = SdpAgent::new(&cfg, 5, 999); // different init
        load_sdp(&mut restored, &path).unwrap();
        assert_eq!(flat_params(&restored.network), flat_params(&agent.network));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn drl_round_trip_is_bit_exact() {
        let cfg = SdpConfig::smoke();
        let agent = DrlAgent::new(&cfg, 5, 7);
        let path = tmp("drl.ckpt");
        save_drl(&agent, &path).unwrap();
        let mut restored = DrlAgent::new(&cfg, 5, 999);
        load_drl(&mut restored, &path).unwrap();
        assert_eq!(restored.network.flat_params(), agent.network.flat_params());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let cfg = SdpConfig::smoke();
        let agent = SdpAgent::new(&cfg, 5, 7);
        let path = tmp("kind.ckpt");
        save_sdp(&agent, &path).unwrap();
        let mut drl = DrlAgent::new(&cfg, 5, 7);
        let err = load_drl(&mut drl, &path).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Parse(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let cfg = SdpConfig::smoke();
        let agent = SdpAgent::new(&cfg, 5, 7);
        let path = tmp("shape.ckpt");
        save_sdp(&agent, &path).unwrap();
        let mut other = SdpAgent::new(&cfg, 11, 7); // different asset count
        let err = load_sdp(&mut other, &path).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Shape { .. }), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_files_are_rejected() {
        let path = tmp("garbage.ckpt");
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        let cfg = SdpConfig::smoke();
        let mut agent = SdpAgent::new(&cfg, 5, 7);
        assert!(load_sdp(&mut agent, &path).is_err());
        std::fs::remove_file(&path).ok();
        // Missing file is an Io error.
        assert!(matches!(load_sdp(&mut agent, &path), Err(LoadCheckpointError::Io(_))));
    }

    #[test]
    fn special_values_survive_round_trip() {
        let params = vec![0.0, -0.0, f64::MIN_POSITIVE, 1e300, -1e-300, std::f64::consts::PI];
        let text = encode("sdp", &params);
        let back = decode(&text, "sdp").unwrap();
        for (a, b) in params.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
