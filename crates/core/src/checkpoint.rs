//! Saving and restoring trained policies.
//!
//! Checkpoints use a small self-describing text format (one header line,
//! one line of hex `f64::to_bits` words per 64 parameters, so round-trips
//! are exact and files diff cleanly). Format **v2** appends an integrity
//! trailer — `crc32=XXXXXXXX len=N` over every byte before it — and all
//! writes go through temp-file + fsync + atomic rename, so a crash
//! mid-write can never leave a truncated checkpoint behind and bitrot is
//! detected at load time as a typed [`LoadCheckpointError::Corrupt`]
//! instead of a parse panic. v1 files (no trailer) still load.

use crate::agent::SdpAgent;
use crate::drl::DrlAgent;
use spikefolio_resilience::io::atomic_write_faulted;
use spikefolio_resilience::{crc32, FaultPlan};
use spikefolio_snn::stbp::{flat_params, set_flat_params};
use std::fmt::Write as _;
use std::path::Path;

/// Magic tag of the legacy (un-checksummed) checkpoint format.
const MAGIC_V1: &str = "spikefolio-checkpoint-v1";

/// Magic tag of the current checkpoint format.
const MAGIC_V2: &str = "spikefolio-checkpoint-v2";

/// Fault-plan label under which checkpoint IO faults are scheduled.
pub const CHECKPOINT_IO_LABEL: &str = "checkpoint";

/// Error loading or parsing a checkpoint.
#[derive(Debug)]
pub enum LoadCheckpointError {
    /// File could not be read.
    Io(std::io::Error),
    /// File contents did not parse as a checkpoint.
    Parse(String),
    /// The v2 integrity trailer did not match the stored bytes — the file
    /// was truncated or bit-flipped after it was written.
    Corrupt {
        /// Checksum the trailer promised.
        expected: u32,
        /// Checksum of the bytes actually present.
        found: u32,
    },
    /// Parameter counts do not match the target network.
    Shape {
        /// Parameters in the file.
        found: usize,
        /// Parameters the network expects.
        expected: usize,
    },
}

impl std::fmt::Display for LoadCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadCheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            LoadCheckpointError::Parse(m) => write!(f, "invalid checkpoint syntax: {m}"),
            LoadCheckpointError::Corrupt { expected, found } => {
                write!(f, "checkpoint corrupted: stored crc32={expected:08x}, computed {found:08x}")
            }
            LoadCheckpointError::Shape { found, expected } => {
                write!(f, "checkpoint has {found} parameters, network expects {expected}")
            }
        }
    }
}

impl std::error::Error for LoadCheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadCheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadCheckpointError {
    fn from(e: std::io::Error) -> Self {
        LoadCheckpointError::Io(e)
    }
}

fn encode(kind: &str, params: &[f64]) -> String {
    let mut s = String::with_capacity(params.len() * 18 + 96);
    let _ = writeln!(s, "{MAGIC_V2} kind={kind} params={}", params.len());
    for chunk in params.chunks(64) {
        for p in chunk {
            let _ = write!(s, "{:016x} ", p.to_bits());
        }
        s.push('\n');
    }
    let crc = crc32(s.as_bytes());
    let _ = writeln!(s, "crc32={crc:08x} len={}", s.len());
    s
}

/// Splits a v2 file into `(payload, trailer)` and verifies the checksum.
fn verify_v2(text: &str) -> Result<&str, LoadCheckpointError> {
    let body = text.strip_suffix('\n').unwrap_or(text);
    let trailer_start = match body.rfind('\n') {
        Some(i) => i + 1,
        None => return Err(LoadCheckpointError::Parse("missing v2 trailer".into())),
    };
    let trailer = &body[trailer_start..];
    let payload = &text[..trailer_start];
    let mut fields = trailer.split_whitespace();
    let expected = fields
        .next()
        .and_then(|f| f.strip_prefix("crc32="))
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| LoadCheckpointError::Parse("bad v2 trailer (crc32= field)".into()))?;
    let len: usize = fields
        .next()
        .and_then(|f| f.strip_prefix("len="))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| LoadCheckpointError::Parse("bad v2 trailer (len= field)".into()))?;
    if payload.len() != len {
        // A torn write that cut whole lines: the trailer survived but the
        // payload length disagrees. Surface as corruption, not syntax.
        return Err(LoadCheckpointError::Corrupt { expected, found: crc32(payload.as_bytes()) });
    }
    let found = crc32(payload.as_bytes());
    if found != expected {
        return Err(LoadCheckpointError::Corrupt { expected, found });
    }
    Ok(payload)
}

/// Reads a checkpoint leniently: bitrot can make the file invalid UTF-8,
/// which must classify as corruption (via the CRC mismatch downstream),
/// not as an opaque IO error. Lossy decoding guarantees the damaged bytes
/// change the checksummed payload.
fn read_checkpoint_text(path: impl AsRef<Path>) -> Result<String, LoadCheckpointError> {
    let bytes = std::fs::read(path)?;
    Ok(String::from_utf8_lossy(&bytes).into_owned())
}

fn decode(text: &str, kind: &str) -> Result<Vec<f64>, LoadCheckpointError> {
    let magic = text.split_whitespace().next().unwrap_or_default();
    let payload = match magic {
        m if m == MAGIC_V2 => verify_v2(text)?,
        m if m == MAGIC_V1 => text,
        _ => return Err(LoadCheckpointError::Parse("bad magic".into())),
    };
    let mut lines = payload.lines();
    let header = lines.next().ok_or_else(|| LoadCheckpointError::Parse("empty file".into()))?;
    let mut fields = header.split_whitespace();
    let _magic = fields.next();
    let kind_field = fields.next().unwrap_or_default();
    if kind_field != format!("kind={kind}") {
        return Err(LoadCheckpointError::Parse(format!(
            "expected kind={kind}, found {kind_field}"
        )));
    }
    let count: usize = fields
        .next()
        .and_then(|f| f.strip_prefix("params="))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| LoadCheckpointError::Parse("missing params= field".into()))?;
    let mut out = Vec::with_capacity(count);
    for line in lines {
        for tok in line.split_whitespace() {
            let bits = u64::from_str_radix(tok, 16)
                .map_err(|_| LoadCheckpointError::Parse(format!("bad hex token {tok:?}")))?;
            out.push(f64::from_bits(bits));
        }
    }
    if out.len() != count {
        return Err(LoadCheckpointError::Parse(format!(
            "header promised {count} values, found {}",
            out.len()
        )));
    }
    Ok(out)
}

/// Saves an SDP agent's trained parameters (v2 format, atomic write).
///
/// # Errors
///
/// Returns any I/O error from staging, syncing, or renaming the file.
pub fn save_sdp(agent: &SdpAgent, path: impl AsRef<Path>) -> std::io::Result<()> {
    save_sdp_faulted(agent, path, None)
}

/// [`save_sdp`] with a fault-injection seam: when `faults` is `Some`, the
/// plan may fail the write with a transient error or corrupt the stored
/// bytes afterwards (see
/// [`atomic_write_faulted`](spikefolio_resilience::atomic_write_faulted)).
///
/// # Errors
///
/// Returns injected faults as `ErrorKind::Interrupted`, otherwise any
/// real I/O error.
pub fn save_sdp_faulted(
    agent: &SdpAgent,
    path: impl AsRef<Path>,
    faults: Option<&mut FaultPlan>,
) -> std::io::Result<()> {
    let text = encode("sdp", &flat_params(&agent.network));
    atomic_write_faulted(path, text.as_bytes(), CHECKPOINT_IO_LABEL, faults)
}

/// Restores an SDP agent's parameters in place.
///
/// The agent must have been constructed with the same configuration
/// (network shape) the checkpoint was saved from. Both v2 and legacy v1
/// files load; only v2 files carry integrity protection.
///
/// # Errors
///
/// Returns [`LoadCheckpointError`] on I/O failure, syntax errors,
/// checksum mismatch, or a parameter-count mismatch.
pub fn load_sdp(agent: &mut SdpAgent, path: impl AsRef<Path>) -> Result<(), LoadCheckpointError> {
    load_sdp_faulted(agent, path, None)
}

/// [`load_sdp`] with a fault-injection seam for transient read errors.
///
/// # Errors
///
/// As [`load_sdp`]; injected read faults surface as
/// [`LoadCheckpointError::Io`] with `ErrorKind::Interrupted`.
pub fn load_sdp_faulted(
    agent: &mut SdpAgent,
    path: impl AsRef<Path>,
    faults: Option<&mut FaultPlan>,
) -> Result<(), LoadCheckpointError> {
    if let Some(err) = faults.and_then(|p| p.take_read_fault(CHECKPOINT_IO_LABEL)) {
        return Err(err.into());
    }
    let text = read_checkpoint_text(path)?;
    let params = decode(&text, "sdp")?;
    let expected = flat_params(&agent.network).len();
    if params.len() != expected {
        return Err(LoadCheckpointError::Shape { found: params.len(), expected });
    }
    set_flat_params(&mut agent.network, &params);
    Ok(())
}

/// Probes the checkpoint at `path` against `agent` and rewrites it from
/// the agent's in-memory parameters if it is unreadable, corrupt, or the
/// wrong shape. Returns `true` when a heal (rewrite) happened, `false`
/// when the file verified clean.
///
/// The rewrite goes through the same atomic temp-file + fsync + rename
/// path as every checkpoint write, so a heal racing a concurrent swap of
/// the same file can never expose a truncated or CRC-invalid checkpoint:
/// readers see either the old bytes or the new bytes, whole.
///
/// # Errors
///
/// Returns the I/O error if the healing rewrite itself fails (a clean or
/// corrupt probe never errors; a missing file is healed by writing it).
pub fn heal_sdp(agent: &SdpAgent, path: impl AsRef<Path>) -> std::io::Result<bool> {
    let path = path.as_ref();
    let mut probe = agent.clone();
    match load_sdp(&mut probe, path) {
        Ok(()) => Ok(false),
        Err(_) => {
            save_sdp(agent, path)?;
            Ok(true)
        }
    }
}

/// Saves a DRL baseline agent's parameters (v2 format, atomic write).
///
/// # Errors
///
/// Returns any I/O error from staging, syncing, or renaming the file.
pub fn save_drl(agent: &DrlAgent, path: impl AsRef<Path>) -> std::io::Result<()> {
    let text = encode("drl", &agent.network.flat_params());
    atomic_write_faulted(path, text.as_bytes(), CHECKPOINT_IO_LABEL, None)
}

/// Restores a DRL baseline agent's parameters in place (v2 or legacy v1).
///
/// # Errors
///
/// Returns [`LoadCheckpointError`] on I/O failure, syntax errors,
/// checksum mismatch, or a parameter-count mismatch.
pub fn load_drl(agent: &mut DrlAgent, path: impl AsRef<Path>) -> Result<(), LoadCheckpointError> {
    let text = read_checkpoint_text(path)?;
    let params = decode(&text, "drl")?;
    let expected = agent.network.flat_params().len();
    if params.len() != expected {
        return Err(LoadCheckpointError::Shape { found: params.len(), expected });
    }
    agent.network.set_flat_params(&params);
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::config::SdpConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spikefolio-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn sdp_round_trip_is_bit_exact() {
        let cfg = SdpConfig::smoke();
        let agent = SdpAgent::new(&cfg, 5, 7);
        let path = tmp("sdp.ckpt");
        save_sdp(&agent, &path).unwrap();
        let mut restored = SdpAgent::new(&cfg, 5, 999); // different init
        load_sdp(&mut restored, &path).unwrap();
        assert_eq!(flat_params(&restored.network), flat_params(&agent.network));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn drl_round_trip_is_bit_exact() {
        let cfg = SdpConfig::smoke();
        let agent = DrlAgent::new(&cfg, 5, 7);
        let path = tmp("drl.ckpt");
        save_drl(&agent, &path).unwrap();
        let mut restored = DrlAgent::new(&cfg, 5, 999);
        load_drl(&mut restored, &path).unwrap();
        assert_eq!(restored.network.flat_params(), agent.network.flat_params());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let cfg = SdpConfig::smoke();
        let agent = SdpAgent::new(&cfg, 5, 7);
        let path = tmp("kind.ckpt");
        save_sdp(&agent, &path).unwrap();
        let mut drl = DrlAgent::new(&cfg, 5, 7);
        let err = load_drl(&mut drl, &path).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Parse(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let cfg = SdpConfig::smoke();
        let agent = SdpAgent::new(&cfg, 5, 7);
        let path = tmp("shape.ckpt");
        save_sdp(&agent, &path).unwrap();
        let mut other = SdpAgent::new(&cfg, 11, 7); // different asset count
        let err = load_sdp(&mut other, &path).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Shape { .. }), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_files_are_rejected() {
        let path = tmp("garbage.ckpt");
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        let cfg = SdpConfig::smoke();
        let mut agent = SdpAgent::new(&cfg, 5, 7);
        assert!(load_sdp(&mut agent, &path).is_err());
        std::fs::remove_file(&path).ok();
        // Missing file is an Io error.
        assert!(matches!(load_sdp(&mut agent, &path), Err(LoadCheckpointError::Io(_))));
    }

    #[test]
    fn special_values_survive_round_trip() {
        let params = vec![0.0, -0.0, f64::MIN_POSITIVE, 1e300, -1e-300, std::f64::consts::PI];
        let text = encode("sdp", &params);
        let back = decode(&text, "sdp").unwrap();
        for (a, b) in params.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn v1_files_still_load() {
        // A legacy checkpoint: same body, v1 magic, no trailer.
        let cfg = SdpConfig::smoke();
        let agent = SdpAgent::new(&cfg, 5, 7);
        let params = flat_params(&agent.network);
        let v2 = encode("sdp", &params);
        let payload_end = v2.rfind("crc32=").unwrap();
        let v1 = v2[..payload_end].replacen(MAGIC_V2, MAGIC_V1, 1);
        let path = tmp("legacy.ckpt");
        std::fs::write(&path, v1).unwrap();
        let mut restored = SdpAgent::new(&cfg, 5, 999);
        load_sdp(&mut restored, &path).unwrap();
        assert_eq!(flat_params(&restored.network), params);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bit_flips_are_detected_as_corruption() {
        let cfg = SdpConfig::smoke();
        let agent = SdpAgent::new(&cfg, 5, 7);
        let path = tmp("bitflip.ckpt");
        save_sdp(&agent, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the middle of the payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let mut restored = SdpAgent::new(&cfg, 5, 999);
        let err = load_sdp(&mut restored, &path).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Corrupt { .. }), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncation_is_detected_as_corruption() {
        let cfg = SdpConfig::smoke();
        let agent = SdpAgent::new(&cfg, 5, 7);
        let path = tmp("trunc.ckpt");
        save_sdp(&agent, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Keep the trailer but drop a payload line — a torn write.
        let mut lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 3);
        lines.remove(1);
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let mut restored = SdpAgent::new(&cfg, 5, 999);
        let err = load_sdp(&mut restored, &path).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Corrupt { .. }), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn heal_rewrites_corrupt_and_missing_files_only() {
        let cfg = SdpConfig::smoke();
        let agent = SdpAgent::new(&cfg, 5, 7);
        let path = tmp("heal.ckpt");
        std::fs::remove_file(&path).ok();
        // Missing file: healed by writing it.
        assert!(heal_sdp(&agent, &path).unwrap(), "missing file must heal");
        // Clean file: untouched.
        assert!(!heal_sdp(&agent, &path).unwrap(), "clean file must not heal");
        // Corrupt file: healed back to the agent's parameters.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        assert!(heal_sdp(&agent, &path).unwrap(), "corrupt file must heal");
        let mut restored = SdpAgent::new(&cfg, 5, 999);
        load_sdp(&mut restored, &path).unwrap();
        assert_eq!(flat_params(&restored.network), flat_params(&agent.network));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_checkpoint_corruption_is_caught_on_load() {
        let cfg = SdpConfig::smoke();
        let agent = SdpAgent::new(&cfg, 5, 7);
        let path = tmp("inject.ckpt");
        let mut plan = FaultPlan::new(3).corrupt_write(CHECKPOINT_IO_LABEL, 0);
        save_sdp_faulted(&agent, &path, Some(&mut plan)).unwrap();
        let mut restored = SdpAgent::new(&cfg, 5, 999);
        let err = load_sdp(&mut restored, &path).unwrap_err();
        assert!(matches!(err, LoadCheckpointError::Corrupt { .. }), "{err}");
        // A clean rewrite recovers the file.
        save_sdp(&agent, &path).unwrap();
        load_sdp(&mut restored, &path).unwrap();
        assert_eq!(flat_params(&restored.network), flat_params(&agent.network));
        std::fs::remove_file(path).ok();
    }
}
