//! DDPG-style actor-critic baseline for the scenario scorecard matrix.
//!
//! A deterministic-policy actor (the same MLP-softmax body as the
//! DRL\[Jiang\] baseline) paired with a state-action value critic. The
//! critic regresses toward the immediate eq. (1) reward (the objective is
//! additive over periods, so the myopic `γ = 0` target is the standard
//! simplification in the Jiang framework); the actor ascends the critic's
//! action gradient `∂Q/∂a`, the defining DDPG update. This gives the
//! scorecard a learned-value baseline whose training signal is *indirect*
//! (through the critic) where SDP/DRL/EIIE differentiate the reward
//! analytically.

use crate::config::SdpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_ann::linear::LinearGradients;
use spikefolio_ann::{Activation, Linear, Mlp};
use spikefolio_env::{DecisionContext, Policy, StateBuilder};
use spikefolio_market::MarketData;
use spikefolio_tensor::optim::{Optimizer, ParamSlot};
use spikefolio_tensor::vector;

/// A scalar-output value network `Q(s, a)` over the concatenated
/// state-action vector: linear layers with a pointwise activation between
/// them and a raw (linear) scalar head.
#[derive(Debug, Clone, PartialEq)]
pub struct Critic {
    layers: Vec<Linear>,
    activation: Activation,
}

/// Forward trace of a [`Critic`] pass, consumed by
/// [`Critic::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct CriticTrace {
    /// Input to each layer (first entry is the network input).
    inputs: Vec<Vec<f64>>,
    /// Pre-activation output of each layer.
    pre_activations: Vec<Vec<f64>>,
}

/// Gradients for every layer of a [`Critic`].
#[derive(Debug, Clone, PartialEq)]
pub struct CriticGradients {
    /// Per-layer gradients, input-side first.
    pub layers: Vec<LinearGradients>,
}

impl CriticGradients {
    /// Accumulates `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, other: &CriticGradients) {
        assert_eq!(self.layers.len(), other.layers.len(), "layer count mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.d_weights.add_scaled(1.0, &b.d_weights);
            vector::axpy(&mut a.d_bias, 1.0, &b.d_bias);
        }
    }

    /// Scales all gradients by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for l in &mut self.layers {
            l.d_weights.scale(alpha);
            l.d_bias.iter_mut().for_each(|g| *g *= alpha);
        }
    }

    /// Global L2 norm.
    pub fn global_norm(&self) -> f64 {
        let mut sq = 0.0;
        for l in &self.layers {
            sq += l.d_weights.as_slice().iter().map(|g| g * g).sum::<f64>();
            sq += l.d_bias.iter().map(|g| g * g).sum::<f64>();
        }
        sq.sqrt()
    }

    /// Clips the global norm to `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f64) {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
        }
    }
}

impl Critic {
    /// Builds a critic with the given layer `dims`; the last dim must
    /// be 1 (scalar value head).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given, any is zero, or the last
    /// is not 1.
    pub fn new<R: rand::Rng + ?Sized>(dims: &[usize], activation: Activation, rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "dims must be positive");
        assert_eq!(dims[dims.len() - 1], 1, "critic head must be scalar");
        let layers = dims.windows(2).map(|w| Linear::new(w[0], w[1], rng)).collect();
        Self { layers, activation }
    }

    /// Input dimension (state dim + action dim).
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// Forward pass with trace; returns `(trace, Q(s, a))`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim()`.
    pub fn forward(&self, input: &[f64]) -> (CriticTrace, f64) {
        let mut inputs = vec![input.to_vec()];
        let mut pre_activations = Vec::with_capacity(self.layers.len());
        let mut x = input.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&x);
            pre_activations.push(z.clone());
            x = if i + 1 < self.layers.len() { self.activation.apply_vec(&z) } else { z };
            inputs.push(x.clone());
        }
        let q = x[0];
        (CriticTrace { inputs, pre_activations }, q)
    }

    /// Backward pass from the scalar upstream gradient `∂L/∂Q`; returns
    /// `(gradients, ∂L/∂input)`. The tail of the input gradient (the
    /// action slice) is the DDPG actor's learning signal.
    ///
    /// # Panics
    ///
    /// Panics if the trace shape is inconsistent with the network.
    pub fn backward(&self, trace: &CriticTrace, d_q: f64) -> (CriticGradients, Vec<f64>) {
        let mut dy = vec![d_q];
        let mut grads = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate().rev() {
            if i + 1 < self.layers.len() {
                for (d, &z) in dy.iter_mut().zip(&trace.pre_activations[i]) {
                    *d *= self.activation.grad(z);
                }
            }
            let (g, dx) = layer.backward(&trace.inputs[i], &dy);
            grads.push(g);
            dy = dx;
        }
        grads.reverse();
        (CriticGradients { layers: grads }, dy)
    }
}

/// Trainer pairing a [`Critic`] with an optimizer (mirrors
/// `spikefolio_ann::MlpTrainer`).
#[derive(Debug)]
pub struct CriticTrainer<O: Optimizer> {
    optimizer: O,
    weight_slots: Vec<ParamSlot>,
    bias_slots: Vec<ParamSlot>,
    /// Optional global-norm gradient clip.
    pub max_grad_norm: Option<f64>,
}

impl<O: Optimizer> CriticTrainer<O> {
    /// Registers `net`'s parameters with `optimizer`.
    pub fn new(net: &Critic, mut optimizer: O) -> Self {
        let weight_slots = net.layers.iter().map(|l| optimizer.register(l.weights.len())).collect();
        let bias_slots = net.layers.iter().map(|l| optimizer.register(l.bias.len())).collect();
        Self { optimizer, weight_slots, bias_slots, max_grad_norm: Some(10.0) }
    }

    /// Applies one descent step.
    ///
    /// # Panics
    ///
    /// Panics if `grads` doesn't match the network shape.
    pub fn apply(&mut self, net: &mut Critic, grads: &CriticGradients) {
        let mut grads = grads.clone();
        if let Some(max) = self.max_grad_norm {
            grads.clip_global_norm(max);
        }
        for (i, g) in grads.layers.iter().enumerate() {
            self.optimizer.step(
                self.weight_slots[i],
                net.layers[i].weights.as_mut_slice(),
                g.d_weights.as_slice(),
            );
            self.optimizer.step(self.bias_slots[i], &mut net.layers[i].bias, &g.d_bias);
        }
    }
}

/// The DDPG-style baseline agent: deterministic MLP-softmax actor plus a
/// state-action critic, trained by
/// [`Trainer::train_ddpg`](crate::training::Trainer::train_ddpg).
#[derive(Debug, Clone)]
pub struct DdpgAgent {
    /// The policy network (same body as the DRL baseline).
    pub actor: Mlp,
    /// The `Q(s, a)` value network.
    pub critic: Critic,
    state_builder: StateBuilder,
}

impl DdpgAgent {
    /// Builds the baseline for a market with `num_assets` risky assets.
    ///
    /// The actor's hidden sizes mirror the SDP configuration
    /// (capacity-matched, like the DRL baseline); the critic reuses the
    /// same hidden sizes over the concatenated state-action input.
    pub fn new(config: &SdpConfig, num_assets: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sb = StateBuilder::new(config.state);
        let state_dim = sb.state_dim(num_assets);
        let action_dim = num_assets + 1;
        let mut actor_dims = vec![state_dim];
        actor_dims.extend(&config.network.hidden);
        actor_dims.push(action_dim);
        let actor = Mlp::new(&actor_dims, Activation::Relu, &mut rng);
        let mut critic_dims = vec![state_dim + action_dim];
        critic_dims.extend(&config.network.hidden);
        critic_dims.push(1);
        let critic = Critic::new(&critic_dims, Activation::Relu, &mut rng);
        Self { actor, critic, state_builder: sb }
    }

    /// The state feature builder in force.
    pub fn state_builder(&self) -> &StateBuilder {
        &self.state_builder
    }

    /// Builds the state vector at period `t` of `market`.
    pub fn state(&self, market: &MarketData, t: usize, prev_weights: &[f64]) -> Vec<f64> {
        self.state_builder.build(market, t, prev_weights)
    }

    /// Runs actor inference on an explicit state vector.
    pub fn act(&self, state: &[f64]) -> Vec<f64> {
        self.actor.act(state)
    }

    /// Evaluates the critic on a state-action pair.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() + action.len() != critic.in_dim()`.
    pub fn q_value(&self, state: &[f64], action: &[f64]) -> f64 {
        let mut sa = Vec::with_capacity(state.len() + action.len());
        sa.extend_from_slice(state);
        sa.extend_from_slice(action);
        self.critic.forward(&sa).1
    }
}

impl Policy for DdpgAgent {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let state = self.state_builder.build(ctx.market, ctx.t, ctx.prev_weights);
        self.actor.act(&state)
    }

    fn warmup_periods(&self) -> usize {
        self.state_builder.min_period()
    }

    fn name(&self) -> &str {
        "DDPG"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::simplex::is_on_simplex;

    #[test]
    fn untrained_agent_backtests_cleanly() {
        let market = ExperimentPreset::experiment1().shrunk(30, 10).generate(5);
        let mut agent = DdpgAgent::new(&SdpConfig::smoke(), market.num_assets(), 1);
        let r = Backtester::default().run(&mut agent, &market);
        assert_eq!(r.policy_name, "DDPG");
        for w in &r.weights {
            assert!(is_on_simplex(w, 1e-9));
        }
    }

    #[test]
    fn critic_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let critic = Critic::new(&[5, 7, 1], Activation::Tanh, &mut rng);
        let input = [0.4, -0.2, 1.1, 0.7, -0.9];
        let (trace, q) = critic.forward(&input);
        let (grads, d_input) = critic.backward(&trace, 1.0);
        let eps = 1e-6;
        // Input gradients (the slice the actor learns from).
        for i in 0..input.len() {
            let mut xp = input;
            xp[i] += eps;
            let mut xm = input;
            xm[i] -= eps;
            let num = (critic.forward(&xp).1 - critic.forward(&xm).1) / (2.0 * eps);
            assert!((d_input[i] - num).abs() < 1e-6, "input {i}: {} vs {num}", d_input[i]);
        }
        // Spot-check first-layer weight gradients.
        for col in 0..input.len() {
            let mut cp = critic.clone();
            cp.layers[0].weights[(0, col)] += eps;
            let mut cm = critic.clone();
            cm.layers[0].weights[(0, col)] -= eps;
            let num = (cp.forward(&input).1 - cm.forward(&input).1) / (2.0 * eps);
            assert!((grads.layers[0].d_weights[(0, col)] - num).abs() < 1e-6);
        }
        assert!(q.is_finite());
    }

    #[test]
    fn critic_training_fits_a_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut critic = Critic::new(&[3, 8, 1], Activation::Relu, &mut rng);
        let mut trainer = CriticTrainer::new(&critic, spikefolio_tensor::optim::Adam::new(1e-2));
        let input = [0.5, -0.3, 0.8];
        let target = 0.042;
        for _ in 0..200 {
            let (trace, q) = critic.forward(&input);
            let (g, _) = critic.backward(&trace, q - target);
            trainer.apply(&mut critic, &g);
        }
        let (_, q) = critic.forward(&input);
        assert!((q - target).abs() < 1e-3, "critic converged to {q}, wanted {target}");
    }

    #[test]
    fn deterministic_construction_and_inference() {
        let cfg = SdpConfig::smoke();
        let a = DdpgAgent::new(&cfg, 5, 7);
        let b = DdpgAgent::new(&cfg, 5, 7);
        let state = vec![0.1; a.actor.in_dim()];
        assert_eq!(a.act(&state), b.act(&state));
        let action = a.act(&state);
        assert_eq!(a.q_value(&state, &action), b.q_value(&state, &action));
    }

    #[test]
    fn critic_input_dim_is_state_plus_action() {
        let cfg = SdpConfig::smoke();
        let agent = DdpgAgent::new(&cfg, 5, 7);
        assert_eq!(agent.critic.in_dim(), agent.actor.in_dim() + 6);
    }
}
