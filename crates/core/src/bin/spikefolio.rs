//! `spikefolio` command-line interface: run any of the paper's experiments
//! from one binary.
//!
//! ```sh
//! spikefolio table3 [--full|--smoke] [--seed N] [--telemetry RUN.jsonl] [--guard] [--sanitize]
//! spikefolio table4 [--smoke] [--seed N] [--telemetry RUN.jsonl] [--guard] [--sanitize]
//! spikefolio ablation timesteps|encoding|costs|rate-penalty
//! spikefolio figures [--out DIR]
//! spikefolio stats                        # synthetic-market diagnostics
//! spikefolio telemetry summarize RUN.jsonl
//! spikefolio profile [--smoke] [--seed N] [--trace TRACE.json]
//! spikefolio bench run [--smoke] [--seed N] [--out BENCH.json]
//! spikefolio bench compare BENCH.json [--smoke] [--seed N]
//! spikefolio checkpoint init PATH [--smoke|--full] [--seed N] [--assets N]
//! spikefolio serve --checkpoint CKPT [--addr HOST:PORT] [--backend float|loihi]
//!                  [--smoke|--full] [--assets N] [--max-batch N] [--max-wait-us N]
//!                  [--queue N] [--workers N] [--deterministic] [--telemetry RUN.jsonl]
//!                  [--trace TRACE.json] [--trace-sample N] [--slo-us N]
//! spikefolio serve-top --addr HOST:PORT [--interval-ms N] [--iterations N] [--raw] [--prom]
//!                      [--lineage LEDGER.jsonl]
//! spikefolio loadgen --smoke [--checkpoint CKPT] [--seed N]
//! spikefolio loadgen --addr HOST:PORT [--requests N] [--concurrency N] [--open-rps R]
//!                    [--seed N] [--deadline-ms N] [--check-determinism] [--out REPORT.json]
//!                    [--retry N] [--backoff-ms N]
//! spikefolio loadgen --self-bench --checkpoint CKPT [--smoke|--full] [--assets N]
//!                    [--requests N] [--concurrency N] [--seed N] [--max-batch N]
//! spikefolio live-desk [--full] [--seed N] [--rounds N] [--warmup N] [--reveal N]
//!                      [--window N] [--epochs N] [--val-fraction F] [--drift-threshold F]
//!                      [--faults SPEC] [--dir DIR] [--csv FEED.csv] [--backend float|loihi]
//!                      [--out REPORT.json] [--telemetry RUN.jsonl]
//!                      [--blackbox DUMP.json] [--lineage LEDGER.jsonl] [--status STATUS.json]
//! spikefolio scenarios run [--all | --universes a,b] [--scenarios x,y] [--seed N] [--smoke]
//!                          [--out CARD.json] [--json] [--telemetry RUN.jsonl]
//! spikefolio desk triage --dir DIR [--round N] [--full] [--json]
//! spikefolio desk-top --status STATUS.json [--interval-ms N] [--iterations N] [--raw]
//! spikefolio lineage LEDGER.jsonl [--json] [--version N]
//! spikefolio profile merge --out TRACE.json A.json B.json [...]
//! ```
//!
//! Unrecognized flags are rejected with an error rather than silently
//! ignored, so a typo like `--telemtry` cannot quietly drop a run log.

use spikefolio::experiments::{
    cost_model_ablation, encoding_comparison, rate_penalty_ablation, run_table3_with,
    run_table4_with, timestep_tradeoff, RunOptions,
};
use spikefolio::figures::{backtest_value_curves, training_reward_csv};
use spikefolio::profiling::{run_bench_workloads, run_profile_workload, WorkloadOptions};
use spikefolio::report;
use spikefolio::serving::{
    run_loadgen_smoke, run_self_bench, run_serve, run_serve_top, write_reference_checkpoint,
    BackendKind, ServeRunOptions, ServeTopOptions,
};
use spikefolio::telemetry_report::{empty_run_message, format_run_summary};
use spikefolio::{
    lineage_json, parse_fault_spec, render_ancestry, render_lineage_ledger, run_desk, run_desk_top,
    run_scenario_matrix, run_triage, DeskOptions, DeskTopOptions, ScenarioMatrixOptions, SdpConfig,
    TriageOptions,
};
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_market::stats::market_stats;
use spikefolio_scenario::Scenario;
use spikefolio_serve::{run_loadgen, LoadgenOptions, ServiceConfig};
use spikefolio_telemetry::JsonlSink;

fn medium_options(seed: u64) -> RunOptions {
    let mut config = SdpConfig::paper();
    config.state.window = 6;
    config.network.hidden = vec![64, 64];
    config.network.pop_in = 6;
    config.network.pop_out = 6;
    config.training.epochs = 10;
    config.training.steps_per_epoch = 20;
    config.training.batch_size = 32;
    config.training.learning_rate = 5e-4;
    config.training.parallelism = num_threads();
    RunOptions { config, shrink: Some((240, 60)), market_seed: seed, guard: None, sanitize: None }
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Flags a command accepts: value-taking flags consume the next argument,
/// boolean flags stand alone.
struct FlagSpec {
    value: &'static [&'static str],
    boolean: &'static [&'static str],
}

impl FlagSpec {
    /// Validates `args` against the spec, rejecting anything unknown.
    /// Returns nothing — all lookups happen through [`flag_value`] /
    /// [`has_flag`] after validation passes.
    fn check(&self, args: &[String]) {
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if self.value.contains(&a) {
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => i += 2,
                    _ => fail(&format!("flag '{a}' requires a value")),
                }
            } else if self.boolean.contains(&a) {
                i += 1;
            } else if a.starts_with("--") {
                fail(&format!("unrecognized flag '{a}'"));
            } else {
                fail(&format!("unexpected argument '{a}'"));
            }
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\nrun 'spikefolio' without arguments for usage");
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> RunOptions {
    let seed = match flag_value(args, "--seed") {
        Some(s) => {
            s.parse().unwrap_or_else(|_| fail(&format!("--seed expects an integer, got '{s}'")))
        }
        None => 2016,
    };
    let mut opts = if has_flag(args, "--full") {
        let mut opts = RunOptions::paper();
        opts.config.training.parallelism = num_threads();
        opts
    } else if has_flag(args, "--smoke") {
        RunOptions::smoke()
    } else {
        medium_options(seed)
    };
    opts.market_seed = seed;
    if has_flag(args, "--guard") {
        opts.guard = Some(spikefolio_resilience::GuardConfig::default());
    }
    if has_flag(args, "--sanitize") {
        opts.sanitize = Some(spikefolio_market::SanitizeConfig::default());
    }
    opts
}

/// Opens the `--telemetry` sink if requested, runs `f` with it (or a
/// no-op recorder), prints the report, and closes the log.
fn run_with_optional_telemetry<T>(
    args: &[String],
    run: impl FnOnce(&mut dyn spikefolio_telemetry::Recorder) -> T,
    render: impl FnOnce(&T) -> String,
) {
    match flag_value(args, "--telemetry") {
        Some(path) => {
            let mut sink = JsonlSink::create(path)
                .unwrap_or_else(|e| fail(&format!("cannot create telemetry log '{path}': {e}")));
            let out = run(&mut sink);
            print!("{}", render(&out));
            match sink.finish() {
                Ok(_) => eprintln!("telemetry log written to {path}"),
                Err(e) => fail(&format!("failed to write telemetry log '{path}': {e}")),
            }
        }
        None => {
            let out = run(&mut spikefolio_telemetry::NoopRecorder);
            print!("{}", render(&out));
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: spikefolio <command> [flags]\n\
         commands:\n  \
           table3       reproduce Table 3 (strategy performance)\n  \
           table4       reproduce Table 4 (power/performance)\n  \
           ablation <timesteps|encoding|costs|rate-penalty>\n  \
           figures      write value/reward curve CSVs\n  \
           stats        synthetic-market statistical diagnostics\n  \
           telemetry summarize <run.jsonl>   render a recorded run log\n  \
           profile      phase-profile a pinned run (--trace writes chrome-trace JSON)\n  \
           bench run    record a performance baseline (--out BENCH.json)\n  \
           bench compare <BENCH.json>        gate against a recorded baseline\n  \
           checkpoint init <PATH>            write a fresh reference checkpoint\n  \
           serve        serve a checkpoint over NDJSON/TCP (--checkpoint CKPT)\n  \
           serve-top    live metrics dashboard for a running server (--addr HOST:PORT)\n  \
           loadgen      drive a server: --smoke | --addr HOST:PORT | --self-bench\n  \
           live-desk    continuous-learning loop: train, gate, hot-swap (--faults SPEC)\n  \
           scenarios run  stress-suite matrix: universes × scenarios × strategies scorecard\n  \
           desk triage  replay a quarantined candidate's gate bitwise (--dir DIR)\n  \
           desk-top     live desk dashboard from a status file (--status PATH)\n  \
           lineage <LEDGER.jsonl>            render the model lineage ledger\n  \
           profile merge --out T.json A B    merge chrome traces onto one timeline\n\
         flags: --full | --smoke | --seed N | --out DIR | --telemetry RUN.jsonl\n        \
                --trace TRACE.json (profile) | --guard (fault-guarded SDP training)\n        \
                --sanitize (market data sanitizer)"
    );
    std::process::exit(2);
}

/// Parses the shared `--smoke` / `--seed` flags of the profile and bench
/// commands into workload options (paper-scale kernels by default).
fn workload_options(args: &[String]) -> WorkloadOptions {
    let seed = match flag_value(args, "--seed") {
        Some(s) => {
            s.parse().unwrap_or_else(|_| fail(&format!("--seed expects an integer, got '{s}'")))
        }
        None => 2016,
    };
    if has_flag(args, "--smoke") {
        WorkloadOptions::smoke(seed)
    } else {
        WorkloadOptions::full(seed)
    }
}

/// Parses a numeric `flag` from `args`, falling back to `default`.
fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        Some(s) => {
            s.parse().unwrap_or_else(|_| fail(&format!("{flag} expects a number, got '{s}'")))
        }
        None => default,
    }
}

/// Model topology for the serving commands: `--full` means paper scale,
/// anything else the smoke topology (what `checkpoint init --smoke` and
/// the CI fixtures use).
fn serve_config(args: &[String]) -> SdpConfig {
    if has_flag(args, "--full") {
        SdpConfig::paper()
    } else {
        SdpConfig::smoke()
    }
}

/// The exact `bench run` invocation that regenerates the baseline at
/// `path` with the same workload flags as the current compare.
fn bench_regen_hint(path: &str, args: &[String]) -> String {
    let mut cmd = String::from("spikefolio bench run");
    if has_flag(args, "--smoke") {
        cmd.push_str(" --smoke");
    } else if has_flag(args, "--full") {
        cmd.push_str(" --full");
    }
    if let Some(seed) = flag_value(args, "--seed") {
        cmd.push_str(&format!(" --seed {seed}"));
    }
    cmd.push_str(&format!(" --out {path}"));
    cmd
}

const RUN_FLAGS: FlagSpec =
    FlagSpec { value: &["--seed"], boolean: &["--full", "--smoke", "--guard", "--sanitize"] };
const PROFILE_FLAGS: FlagSpec =
    FlagSpec { value: &["--seed", "--trace"], boolean: &["--full", "--smoke"] };
const BENCH_FLAGS: FlagSpec =
    FlagSpec { value: &["--seed", "--out"], boolean: &["--full", "--smoke"] };
const TELEMETRY_RUN_FLAGS: FlagSpec = FlagSpec {
    value: &["--seed", "--telemetry"],
    boolean: &["--full", "--smoke", "--guard", "--sanitize"],
};
const FIGURES_FLAGS: FlagSpec = FlagSpec {
    value: &["--seed", "--out"],
    boolean: &["--full", "--smoke", "--guard", "--sanitize"],
};
const SERVE_FLAGS: FlagSpec = FlagSpec {
    value: &[
        "--checkpoint",
        "--addr",
        "--backend",
        "--assets",
        "--max-batch",
        "--max-wait-us",
        "--queue",
        "--workers",
        "--telemetry",
        "--seed",
        "--trace",
        "--trace-sample",
        "--slo-us",
    ],
    boolean: &["--full", "--smoke", "--deterministic"],
};
const SERVE_TOP_FLAGS: FlagSpec = FlagSpec {
    value: &["--addr", "--interval-ms", "--iterations", "--lineage"],
    boolean: &["--raw", "--prom"],
};
const LOADGEN_FLAGS: FlagSpec = FlagSpec {
    value: &[
        "--checkpoint",
        "--addr",
        "--requests",
        "--concurrency",
        "--open-rps",
        "--seed",
        "--deadline-ms",
        "--out",
        "--max-batch",
        "--assets",
        "--retry",
        "--backoff-ms",
    ],
    boolean: &["--full", "--smoke", "--self-bench", "--check-determinism"],
};
const LIVE_DESK_FLAGS: FlagSpec = FlagSpec {
    value: &[
        "--seed",
        "--rounds",
        "--warmup",
        "--reveal",
        "--window",
        "--epochs",
        "--val-fraction",
        "--drift-threshold",
        "--faults",
        "--dir",
        "--csv",
        "--backend",
        "--out",
        "--telemetry",
        "--blackbox",
        "--lineage",
        "--status",
    ],
    boolean: &["--full"],
};
const CHECKPOINT_FLAGS: FlagSpec =
    FlagSpec { value: &["--seed", "--assets"], boolean: &["--full", "--smoke"] };
const TRIAGE_FLAGS: FlagSpec =
    FlagSpec { value: &["--dir", "--round"], boolean: &["--full", "--json"] };
const DESK_TOP_FLAGS: FlagSpec =
    FlagSpec { value: &["--status", "--interval-ms", "--iterations"], boolean: &["--raw"] };
const LINEAGE_FLAGS: FlagSpec = FlagSpec { value: &["--version"], boolean: &["--json"] };
const SCENARIOS_FLAGS: FlagSpec = FlagSpec {
    value: &["--seed", "--universes", "--scenarios", "--out", "--telemetry"],
    boolean: &["--all", "--smoke", "--json"],
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "table3" => {
            TELEMETRY_RUN_FLAGS.check(&args[1..]);
            let opts = parse_options(&args[1..]);
            run_with_optional_telemetry(
                &args[1..],
                |rec| run_table3_with(&opts, rec),
                |outcomes| report::format_table3(outcomes),
            );
        }
        "table4" => {
            TELEMETRY_RUN_FLAGS.check(&args[1..]);
            let opts = parse_options(&args[1..]);
            run_with_optional_telemetry(
                &args[1..],
                |rec| run_table4_with(&opts, rec),
                |outcomes| report::format_table4(outcomes),
            );
        }
        "ablation" => {
            let Some(which) = args.get(1) else { usage() };
            RUN_FLAGS.check(&args[2..]);
            let opts = parse_options(&args[2..]);
            match which.as_str() {
                "timesteps" => {
                    let pts = timestep_tradeoff(&opts, &[1, 2, 5, 10, 20]);
                    print!("{}", report::format_timestep_tradeoff(&pts));
                }
                "encoding" => {
                    let pts = encoding_comparison(&opts);
                    print!("{}", report::format_encoding_comparison(&pts));
                }
                "costs" => {
                    let pts = cost_model_ablation(&opts);
                    print!("{}", report::format_cost_ablation(&pts));
                }
                "rate-penalty" => {
                    let pts = rate_penalty_ablation(&opts, &[0.0, 0.5, 2.0, 10.0]);
                    print!("{}", report::format_rate_penalty(&pts));
                }
                other => fail(&format!("unknown ablation '{other}'")),
            }
        }
        "figures" => {
            FIGURES_FLAGS.check(&args[1..]);
            let opts = parse_options(&args[1..]);
            let out = flag_value(&args[1..], "--out").unwrap_or("target/figures").to_owned();
            let dir = std::path::Path::new(&out);
            std::fs::create_dir_all(dir).expect("create output directory");
            for (i, preset) in ExperimentPreset::all().into_iter().enumerate() {
                let (curves, log) = backtest_value_curves(&opts, preset);
                std::fs::write(dir.join(format!("experiment{}_value_curves.csv", i + 1)), curves)
                    .expect("write curves");
                std::fs::write(
                    dir.join(format!("experiment{}_sdp_reward.csv", i + 1)),
                    training_reward_csv(&log),
                )
                .expect("write rewards");
                println!("experiment {} → {}", i + 1, dir.display());
            }
        }
        "stats" => {
            RUN_FLAGS.check(&args[1..]);
            let opts = parse_options(&args[1..]);
            for preset in ExperimentPreset::all() {
                let market = match opts.shrink {
                    Some((a, b)) => preset.clone().shrunk(a, b).generate(opts.market_seed),
                    None => preset.generate(opts.market_seed),
                };
                let s = market_stats(&market);
                println!(
                    "{}: mean corr {:.3}, vol clustering {:.3}, vol range {:.2}–{:.2}, kurtosis range {:.1}–{:.1}",
                    preset.name,
                    s.mean_correlation,
                    s.mean_vol_clustering,
                    s.annual_volatility.iter().cloned().fold(f64::INFINITY, f64::min),
                    s.annual_volatility.iter().cloned().fold(0.0, f64::max),
                    s.excess_kurtosis.iter().cloned().fold(f64::INFINITY, f64::min),
                    s.excess_kurtosis.iter().cloned().fold(0.0, f64::max),
                );
            }
        }
        "telemetry" => {
            match args.get(1).map(String::as_str) {
                Some("summarize") => {}
                Some(other) => fail(&format!("unknown telemetry subcommand '{other}'")),
                None => usage(),
            }
            let Some(path) = args.get(2) else {
                fail("telemetry summarize expects a run-log path");
            };
            if let Some(extra) = args.get(3) {
                fail(&format!("unexpected argument '{extra}'"));
            }
            let summary = spikefolio_telemetry::summarize_file(path)
                .unwrap_or_else(|e| fail(&format!("cannot read run log '{path}': {e}")));
            // An empty or header-only log gets one clear message and a
            // clean exit instead of a bare record count that looks like a
            // rendering bug.
            if let Some(msg) = empty_run_message(path, &summary) {
                println!("{msg}");
                return;
            }
            print!("{}", format_run_summary(&summary));
        }
        "profile" if args.get(1).map(String::as_str) == Some("merge") => {
            // `profile merge --out T.json A.json B.json ...` takes
            // positional trace paths, so it parses its own arguments
            // instead of going through FlagSpec.
            let a = &args[2..];
            let mut out: Option<&str> = None;
            let mut inputs: Vec<&str> = Vec::new();
            let mut i = 0;
            while i < a.len() {
                match a[i].as_str() {
                    "--out" => match a.get(i + 1) {
                        Some(v) if !v.starts_with("--") => {
                            out = Some(v);
                            i += 2;
                        }
                        _ => fail("flag '--out' requires a value"),
                    },
                    s if s.starts_with("--") => fail(&format!("unrecognized flag '{s}'")),
                    s => {
                        inputs.push(s);
                        i += 1;
                    }
                }
            }
            let Some(out) = out else { fail("profile merge requires --out TRACE.json") };
            if inputs.len() < 2 {
                fail("profile merge expects at least two input trace files");
            }
            let docs: Vec<(String, String)> = inputs
                .iter()
                .map(|p| {
                    let text = std::fs::read_to_string(p)
                        .unwrap_or_else(|e| fail(&format!("cannot read trace '{p}': {e}")));
                    let label = std::path::Path::new(p)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_else(|| (*p).to_owned());
                    (label, text)
                })
                .collect();
            let mut merged =
                spikefolio_profile::merge_chrome_traces(&docs).unwrap_or_else(|e| fail(&e));
            merged.push('\n');
            std::fs::write(out, merged)
                .unwrap_or_else(|e| fail(&format!("cannot write trace '{out}': {e}")));
            println!("merged {} traces into {out} (load in Perfetto)", inputs.len());
        }
        "profile" => {
            PROFILE_FLAGS.check(&args[1..]);
            let opts = workload_options(&args[1..]);
            let report = run_profile_workload(&opts);
            if let Some(path) = flag_value(&args[1..], "--trace") {
                // Self-validate before writing: a trace Perfetto cannot
                // parse is worse than no trace.
                if let Err(e) = spikefolio_telemetry::value::parse(&report.trace_json) {
                    fail(&format!("generated chrome trace is not valid JSON: {e}"));
                }
                std::fs::write(path, &report.trace_json)
                    .unwrap_or_else(|e| fail(&format!("cannot write trace '{path}': {e}")));
                eprintln!("chrome trace written to {path} (load in Perfetto or chrome://tracing)");
            }
            print!("{}", report.phase_tree);
            print!("{}", report.cost.render());
            if let Some(s) = report.train_sparsity {
                println!("training effective sparsity (last epoch): {:.1}%", s * 100.0);
            }
        }
        "bench" => match args.get(1).map(String::as_str) {
            Some("run") => {
                BENCH_FLAGS.check(&args[2..]);
                let opts = workload_options(&args[2..]);
                let baseline = run_bench_workloads(&opts);
                let out = match flag_value(&args[2..], "--out") {
                    Some(p) => p.to_owned(),
                    None => format!("BENCH_{}.json", baseline.created_unix),
                };
                let mut json = baseline.to_json();
                json.push('\n');
                std::fs::write(&out, json)
                    .unwrap_or_else(|e| fail(&format!("cannot write baseline '{out}': {e}")));
                for e in &baseline.entries {
                    println!("{:<16} {:>12.6}s  (best of {})", e.name, e.wall_s, e.reps);
                }
                println!("bench baseline written to {out}");
            }
            Some("compare") => {
                let Some(path) = args.get(2) else {
                    fail("bench compare expects a baseline path");
                };
                BENCH_FLAGS.check(&args[3..]);
                let opts = workload_options(&args[3..]);
                let regen = bench_regen_hint(path, &args[3..]);
                let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    fail(&format!("cannot read baseline '{path}': {e}\nrecord one with: {regen}"))
                });
                let baseline = spikefolio_profile::BenchBaseline::parse(&raw).unwrap_or_else(|e| {
                    fail(&format!("invalid baseline '{path}': {e}\nre-record it with: {regen}"))
                });
                let current = run_bench_workloads(&opts);
                let report = spikefolio_profile::compare(
                    &baseline,
                    &current,
                    &spikefolio_profile::CompareThresholds::default(),
                );
                print!("{}", report.render());
                if !report.passed() {
                    if report.suspects_stale_baseline() {
                        eprintln!(
                            "baseline '{path}' looks stale (current run is anomalously fast \
                             against it)\nre-record it with: {regen}"
                        );
                    }
                    std::process::exit(1);
                }
            }
            Some(other) => fail(&format!("unknown bench subcommand '{other}'")),
            None => usage(),
        },
        "checkpoint" => {
            match args.get(1).map(String::as_str) {
                Some("init") => {}
                Some(other) => fail(&format!("unknown checkpoint subcommand '{other}'")),
                None => usage(),
            }
            let Some(path) = args.get(2) else {
                fail("checkpoint init expects an output path");
            };
            CHECKPOINT_FLAGS.check(&args[3..]);
            let a = &args[3..];
            let config = serve_config(a);
            let assets = parsed_flag(a, "--assets", 5usize);
            let seed = parsed_flag(a, "--seed", 2016u64);
            write_reference_checkpoint(path, &config, assets, seed).unwrap_or_else(|e| fail(&e));
            println!("reference checkpoint written to {path} (assets {assets}, seed {seed})");
        }
        "serve" => {
            SERVE_FLAGS.check(&args[1..]);
            let a = &args[1..];
            let Some(checkpoint) = flag_value(a, "--checkpoint") else {
                fail("serve requires --checkpoint PATH (see 'spikefolio checkpoint init')");
            };
            let backend: BackendKind = flag_value(a, "--backend")
                .unwrap_or("float")
                .parse()
                .unwrap_or_else(|e: String| fail(&e));
            let mut service = ServiceConfig::default();
            service.batch.max_batch = parsed_flag(a, "--max-batch", service.batch.max_batch);
            service.batch.max_wait_us = parsed_flag(a, "--max-wait-us", service.batch.max_wait_us);
            service.queue_capacity = parsed_flag(a, "--queue", service.queue_capacity);
            service.workers = parsed_flag(a, "--workers", num_threads().min(4));
            service.deterministic = has_flag(a, "--deterministic");
            let opts = ServeRunOptions {
                addr: flag_value(a, "--addr").unwrap_or("127.0.0.1:7878").to_owned(),
                checkpoint: checkpoint.to_owned(),
                config: serve_config(a),
                num_assets: parsed_flag(a, "--assets", 5usize),
                backend,
                service,
                telemetry: flag_value(a, "--telemetry").map(str::to_owned),
                trace: flag_value(a, "--trace").map(str::to_owned),
                trace_sample: parsed_flag(a, "--trace-sample", 0u64),
                slo_us: flag_value(a, "--slo-us").map(|s| {
                    s.parse()
                        .unwrap_or_else(|_| fail(&format!("--slo-us expects a number, got '{s}'")))
                }),
            };
            run_serve(&opts).unwrap_or_else(|e| fail(&e));
        }
        "serve-top" => {
            SERVE_TOP_FLAGS.check(&args[1..]);
            let a = &args[1..];
            let Some(addr) = flag_value(a, "--addr") else {
                fail("serve-top requires --addr HOST:PORT");
            };
            let opts = ServeTopOptions {
                addr: addr.to_owned(),
                interval_ms: parsed_flag(a, "--interval-ms", 1000u64),
                iterations: parsed_flag(a, "--iterations", 0usize),
                raw: has_flag(a, "--raw"),
                prometheus: has_flag(a, "--prom"),
                lineage: flag_value(a, "--lineage").map(str::to_owned),
            };
            run_serve_top(&opts).unwrap_or_else(|e| fail(&e));
        }
        "loadgen" => {
            LOADGEN_FLAGS.check(&args[1..]);
            let a = &args[1..];
            let seed = parsed_flag(a, "--seed", 2016u64);
            if has_flag(a, "--self-bench") {
                let Some(checkpoint) = flag_value(a, "--checkpoint") else {
                    fail("loadgen --self-bench requires --checkpoint PATH");
                };
                // 2048 requests: long enough that steady-state full
                // batches dominate the warm-up's partial ones.
                let load = LoadgenOptions {
                    requests: parsed_flag(a, "--requests", 2048usize),
                    concurrency: parsed_flag(a, "--concurrency", 32usize),
                    seed,
                    ..Default::default()
                };
                let mut service = ServiceConfig::default();
                service.batch.max_batch = parsed_flag(a, "--max-batch", service.batch.max_batch);
                // One worker on both sides: the bench isolates what the
                // micro-batcher buys, not worker-level parallelism (which
                // would mask it by scaling the unbatched side too).
                service.workers = 1;
                let config = serve_config(a);
                let assets = parsed_flag(a, "--assets", 5usize);
                let (batching, unbatched) =
                    run_self_bench(checkpoint, &config, assets, &load, service)
                        .unwrap_or_else(|e| fail(&e));
                println!("-- batching (max_batch {}) --", service.batch.max_batch.max(2));
                print!("{}", batching.render());
                println!("-- unbatched (max_batch 1) --");
                print!("{}", unbatched.render());
                let ratio = if unbatched.throughput_rps > 0.0 {
                    batching.throughput_rps / unbatched.throughput_rps
                } else {
                    f64::INFINITY
                };
                println!("batching speedup: {ratio:.2}x");
            } else if has_flag(a, "--smoke") {
                let outcome = run_loadgen_smoke(flag_value(a, "--checkpoint"), seed)
                    .unwrap_or_else(|e| fail(&e));
                print!("{}", outcome.report.render());
                if outcome.passed() {
                    println!("serve smoke: PASS (deterministic double-run, clean shutdown)");
                } else {
                    eprintln!(
                        "serve smoke: FAIL (clean_shutdown {}, deterministic {:?}, \
                         served {}/{}, shed {}+{}, errors {})",
                        outcome.clean_shutdown,
                        outcome.report.deterministic,
                        outcome.report.served,
                        outcome.report.requests,
                        outcome.report.shed_queue_full,
                        outcome.report.shed_deadline,
                        outcome.report.errors,
                    );
                    std::process::exit(1);
                }
            } else {
                let Some(addr) = flag_value(a, "--addr") else {
                    fail("loadgen expects --smoke, --self-bench, or --addr HOST:PORT");
                };
                let load = LoadgenOptions {
                    requests: parsed_flag(a, "--requests", 256usize),
                    concurrency: parsed_flag(a, "--concurrency", 8usize),
                    open_rps: flag_value(a, "--open-rps").map(|s| {
                        s.parse().unwrap_or_else(|_| {
                            fail(&format!("--open-rps expects a number, got '{s}'"))
                        })
                    }),
                    seed,
                    deadline_ms: flag_value(a, "--deadline-ms").map(|s| {
                        s.parse().unwrap_or_else(|_| {
                            fail(&format!("--deadline-ms expects a number, got '{s}'"))
                        })
                    }),
                    runs: if has_flag(a, "--check-determinism") { 2 } else { 1 },
                    connect_retries: parsed_flag(a, "--retry", 0u32),
                    connect_backoff_ms: parsed_flag(a, "--backoff-ms", 50u64),
                };
                let report = run_loadgen(addr, &load).unwrap_or_else(|e| fail(&e));
                print!("{}", report.render());
                if let Some(out) = flag_value(a, "--out") {
                    let mut json = report.to_json();
                    json.push('\n');
                    std::fs::write(out, json)
                        .unwrap_or_else(|e| fail(&format!("cannot write report '{out}': {e}")));
                    eprintln!("loadgen report written to {out}");
                }
                if report.deterministic == Some(false) {
                    eprintln!("determinism check FAILED: passes disagreed bitwise");
                    std::process::exit(1);
                }
            }
        }
        "scenarios" => match args.get(1).map(String::as_str) {
            Some("run") => {
                SCENARIOS_FLAGS.check(&args[2..]);
                let a = &args[2..];
                let subset = flag_value(a, "--universes").is_some()
                    || flag_value(a, "--scenarios").is_some();
                if has_flag(a, "--all") && subset {
                    fail("--all cannot be combined with --universes/--scenarios");
                }
                if !has_flag(a, "--all") && !subset {
                    fail(
                        "scenarios run expects --all (full matrix) or a subset via \
                         --universes/--scenarios",
                    );
                }
                let mut opts = ScenarioMatrixOptions::default();
                opts.seed = parsed_flag(a, "--seed", opts.seed);
                opts.smoke = has_flag(a, "--smoke");
                if let Some(list) = flag_value(a, "--universes") {
                    opts.universes = list.split(',').map(str::to_owned).collect();
                }
                if let Some(list) = flag_value(a, "--scenarios") {
                    opts.scenarios = list
                        .split(',')
                        .map(|name| {
                            Scenario::from_name(name).unwrap_or_else(|| {
                                let known: Vec<&str> =
                                    Scenario::ALL.iter().map(Scenario::name).collect();
                                fail(&format!(
                                    "unknown scenario '{name}'; known: {}",
                                    known.join(", ")
                                ))
                            })
                        })
                        .collect();
                }
                let json = has_flag(a, "--json");
                let out = flag_value(a, "--out").map(str::to_owned);
                run_with_optional_telemetry(
                    a,
                    |rec| run_scenario_matrix(&opts, rec).unwrap_or_else(|e| fail(&e)),
                    |card| {
                        if let Some(path) = &out {
                            let mut doc = card.to_json();
                            doc.push('\n');
                            std::fs::write(path, doc).unwrap_or_else(|e| {
                                fail(&format!("cannot write scorecard '{path}': {e}"))
                            });
                            eprintln!("scorecard written to {path}");
                        }
                        if json {
                            let mut doc = card.to_json();
                            doc.push('\n');
                            doc
                        } else {
                            card.render()
                        }
                    },
                );
            }
            Some(other) => fail(&format!("unknown scenarios subcommand '{other}'")),
            None => usage(),
        },
        "desk" => match args.get(1).map(String::as_str) {
            Some("triage") => {
                TRIAGE_FLAGS.check(&args[2..]);
                let a = &args[2..];
                let Some(dir) = flag_value(a, "--dir") else {
                    fail("desk triage requires --dir DIR (the live-desk working directory)");
                };
                let opts = TriageOptions {
                    config: serve_config(a),
                    dir: std::path::PathBuf::from(dir),
                    round: flag_value(a, "--round").map(|s| {
                        s.parse().unwrap_or_else(|_| {
                            fail(&format!("--round expects an integer, got '{s}'"))
                        })
                    }),
                };
                let report = run_triage(&opts).unwrap_or_else(|e| fail(&e));
                if has_flag(a, "--json") {
                    println!("{}", report.to_value().to_json());
                } else {
                    print!("{}", report.render());
                }
                if !report.reproduced() {
                    std::process::exit(1);
                }
            }
            Some(other) => fail(&format!("unknown desk subcommand '{other}'")),
            None => usage(),
        },
        "desk-top" => {
            DESK_TOP_FLAGS.check(&args[1..]);
            let a = &args[1..];
            let Some(status) = flag_value(a, "--status") else {
                fail("desk-top requires --status PATH (the desk's status file)");
            };
            let opts = DeskTopOptions {
                path: std::path::PathBuf::from(status),
                interval_ms: parsed_flag(a, "--interval-ms", 1000u64),
                iterations: parsed_flag(a, "--iterations", 0usize),
                raw: has_flag(a, "--raw"),
            };
            run_desk_top(&opts).unwrap_or_else(|e| fail(&e));
        }
        "lineage" => {
            let Some(path) = args.get(1) else {
                fail("lineage expects a ledger path");
            };
            if path.starts_with("--") {
                fail("lineage expects the ledger path first, then flags");
            }
            LINEAGE_FLAGS.check(&args[2..]);
            let a = &args[2..];
            let log = spikefolio_blackbox::read_ledger(path)
                .unwrap_or_else(|e| fail(&format!("cannot read ledger '{path}': {e}")));
            if let Some(v) = flag_value(a, "--version") {
                let version: u64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--version expects an integer, got '{v}'")));
                let chain = render_ancestry(&log, version);
                if chain.is_empty() {
                    println!("v{version} has no promotion trail in {path}");
                } else {
                    println!("{chain}");
                }
            } else if has_flag(a, "--json") {
                println!("{}", lineage_json(&log));
            } else {
                print!("{}", render_lineage_ledger(&log));
            }
        }
        "live-desk" => {
            LIVE_DESK_FLAGS.check(&args[1..]);
            let a = &args[1..];
            let dir =
                std::path::PathBuf::from(flag_value(a, "--dir").unwrap_or("target/live-desk"));
            // The observability sidecar is on by default, filed under the
            // desk directory; flags repoint the individual outputs.
            let blackbox = flag_value(a, "--blackbox")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| dir.join("blackbox.json"));
            let lineage = flag_value(a, "--lineage")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| dir.join("lineage.jsonl"));
            let status = flag_value(a, "--status")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| dir.join("desk-top.json"));
            let mut opts = DeskOptions::smoke(dir);
            opts.blackbox = Some(blackbox);
            opts.lineage = Some(lineage);
            opts.status = Some(status);
            if has_flag(a, "--full") {
                opts.config = SdpConfig::paper();
                opts.config.training.parallelism = num_threads();
            }
            opts.seed = parsed_flag(a, "--seed", opts.seed);
            opts.rounds = parsed_flag(a, "--rounds", opts.rounds);
            opts.warmup = parsed_flag(a, "--warmup", opts.warmup);
            opts.reveal_per_round = parsed_flag(a, "--reveal", opts.reveal_per_round);
            opts.window = parsed_flag(a, "--window", opts.window);
            opts.config.training.epochs = parsed_flag(a, "--epochs", opts.config.training.epochs);
            opts.val_fraction = parsed_flag(a, "--val-fraction", opts.val_fraction);
            opts.drift_threshold = parsed_flag(a, "--drift-threshold", opts.drift_threshold);
            opts.csv = flag_value(a, "--csv").map(std::path::PathBuf::from);
            opts.backend = flag_value(a, "--backend")
                .unwrap_or("float")
                .parse()
                .unwrap_or_else(|e: String| fail(&e));
            if let Some(spec) = flag_value(a, "--faults") {
                opts.faults = parse_fault_spec(spec, opts.seed).unwrap_or_else(|e| fail(&e));
            }
            let out = flag_value(a, "--out").map(str::to_owned);
            run_with_optional_telemetry(
                a,
                |rec| run_desk(opts.clone(), rec).unwrap_or_else(|e| fail(&e)),
                |report| {
                    if let Some(path) = &out {
                        let mut json = report.to_json();
                        json.push('\n');
                        std::fs::write(path, json).unwrap_or_else(|e| {
                            fail(&format!("cannot write report '{path}': {e}"))
                        });
                        eprintln!("desk report written to {path}");
                    }
                    report.render()
                },
            );
        }
        other => fail(&format!("unknown command '{other}'")),
    }
}
