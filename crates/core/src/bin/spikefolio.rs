//! `spikefolio` command-line interface: run any of the paper's experiments
//! from one binary.
//!
//! ```sh
//! spikefolio table3 [--full|--smoke] [--seed N]
//! spikefolio table4 [--smoke] [--seed N]
//! spikefolio ablation timesteps|encoding|costs|rate-penalty
//! spikefolio figures [--out DIR]
//! spikefolio stats            # synthetic-market diagnostics
//! ```

use spikefolio::experiments::{
    cost_model_ablation, encoding_comparison, rate_penalty_ablation, run_table3, run_table4,
    timestep_tradeoff, RunOptions,
};
use spikefolio::figures::{backtest_value_curves, training_reward_csv};
use spikefolio::report;
use spikefolio::SdpConfig;
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_market::stats::market_stats;

fn medium_options(seed: u64) -> RunOptions {
    let mut config = SdpConfig::paper();
    config.state.window = 6;
    config.network.hidden = vec![64, 64];
    config.network.pop_in = 6;
    config.network.pop_out = 6;
    config.training.epochs = 10;
    config.training.steps_per_epoch = 20;
    config.training.batch_size = 32;
    config.training.learning_rate = 5e-4;
    config.training.parallelism = num_threads();
    RunOptions { config, shrink: Some((240, 60)), market_seed: seed }
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn parse_options(args: &[String]) -> RunOptions {
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);
    if args.iter().any(|a| a == "--full") {
        let mut opts = RunOptions::paper();
        opts.market_seed = seed;
        opts.config.training.parallelism = num_threads();
        opts
    } else if args.iter().any(|a| a == "--smoke") {
        let mut opts = RunOptions::smoke();
        opts.market_seed = seed;
        opts
    } else {
        medium_options(seed)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: spikefolio <command> [flags]\n\
         commands:\n  \
           table3       reproduce Table 3 (strategy performance)\n  \
           table4       reproduce Table 4 (power/performance)\n  \
           ablation <timesteps|encoding|costs|rate-penalty>\n  \
           figures      write value/reward curve CSVs\n  \
           stats        synthetic-market statistical diagnostics\n\
         flags: --full | --smoke | --seed N | --out DIR"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let opts = parse_options(&args);
    match cmd.as_str() {
        "table3" => {
            let outcomes = run_table3(&opts);
            print!("{}", report::format_table3(&outcomes));
        }
        "table4" => {
            let outcomes = run_table4(&opts);
            print!("{}", report::format_table4(&outcomes));
        }
        "ablation" => match args.get(1).map(String::as_str) {
            Some("timesteps") => {
                let pts = timestep_tradeoff(&opts, &[1, 2, 5, 10, 20]);
                print!("{}", report::format_timestep_tradeoff(&pts));
            }
            Some("encoding") => {
                let pts = encoding_comparison(&opts);
                print!("{}", report::format_encoding_comparison(&pts));
            }
            Some("costs") => {
                let pts = cost_model_ablation(&opts);
                print!("{}", report::format_cost_ablation(&pts));
            }
            Some("rate-penalty") => {
                let pts = rate_penalty_ablation(&opts, &[0.0, 0.5, 2.0, 10.0]);
                print!("{}", report::format_rate_penalty(&pts));
            }
            _ => usage(),
        },
        "figures" => {
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "target/figures".to_owned());
            let dir = std::path::Path::new(&out);
            std::fs::create_dir_all(dir).expect("create output directory");
            for (i, preset) in ExperimentPreset::all().into_iter().enumerate() {
                let (curves, log) = backtest_value_curves(&opts, preset);
                std::fs::write(dir.join(format!("experiment{}_value_curves.csv", i + 1)), curves)
                    .expect("write curves");
                std::fs::write(
                    dir.join(format!("experiment{}_sdp_reward.csv", i + 1)),
                    training_reward_csv(&log),
                )
                .expect("write rewards");
                println!("experiment {} → {}", i + 1, dir.display());
            }
        }
        "stats" => {
            for preset in ExperimentPreset::all() {
                let market = match opts.shrink {
                    Some((a, b)) => preset.clone().shrunk(a, b).generate(opts.market_seed),
                    None => preset.generate(opts.market_seed),
                };
                let s = market_stats(&market);
                println!(
                    "{}: mean corr {:.3}, vol clustering {:.3}, vol range {:.2}–{:.2}, kurtosis range {:.1}–{:.1}",
                    preset.name,
                    s.mean_correlation,
                    s.mean_vol_clustering,
                    s.annual_volatility.iter().cloned().fold(f64::INFINITY, f64::min),
                    s.annual_volatility.iter().cloned().fold(0.0, f64::max),
                    s.excess_kurtosis.iter().cloned().fold(f64::INFINITY, f64::min),
                    s.excess_kurtosis.iter().cloned().fold(0.0, f64::max),
                );
            }
        }
        _ => usage(),
    }
}
