//! Hyperparameter bundles (Table 2) and run-scale presets.

use serde::{Deserialize, Serialize};
use spikefolio_env::{BacktestConfig, StateConfig};
use spikefolio_snn::network::SdpNetworkConfig;
use spikefolio_snn::neuron::AdaptiveParams;
use spikefolio_snn::{LifParams, Surrogate};

/// Training-loop hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Passes over the training data (each epoch runs
    /// `steps_per_epoch` minibatches).
    pub epochs: usize,
    /// Minibatches per epoch.
    pub steps_per_epoch: usize,
    /// Minibatch size (Table 2: 128).
    pub batch_size: usize,
    /// Learning rate (Table 2 lists `10e-5`).
    pub learning_rate: f64,
    /// Geometric bias toward recent samples when drawing minibatch
    /// periods (Jiang's sampling scheme); 0 = uniform.
    pub recency_bias: f64,
    /// Global-norm gradient clip.
    pub max_grad_norm: f64,
    /// Spike-rate regularization strength `λ` (0 = off). Penalizes hidden
    /// firing rates to trade backtest quality for on-chip energy; see
    /// [`spikefolio_snn::stbp::backward_with_rate_penalty`].
    pub rate_penalty: f64,
    /// Worker threads for minibatch gradient computation. Minibatches are
    /// split into fixed-size micro-batches ([`Self::micro_batch`]) that
    /// are assigned round-robin to workers, so epoch rewards and trained
    /// parameters are identical for any `parallelism >= 1`.
    pub parallelism: usize,
    /// Samples per batched SNN execution
    /// ([`spikefolio_snn::SdpNetwork::forward_batch`]). Work units are
    /// fixed-size micro-batches regardless of thread count, which is what
    /// keeps training thread-count invariant. Larger values amortize more
    /// weight-matrix traffic per GEMM; smaller values balance better
    /// across workers.
    pub micro_batch: usize,
}

impl TrainingConfig {
    /// Paper-faithful values (Table 2) with a practical epoch budget.
    pub fn paper() -> Self {
        Self {
            epochs: 30,
            steps_per_epoch: 50,
            batch_size: 128,
            learning_rate: 1e-4,
            recency_bias: 5e-3,
            max_grad_norm: 10.0,
            rate_penalty: 0.0,
            parallelism: 1,
            micro_batch: 16,
        }
    }

    /// Tiny budget for unit/integration tests.
    pub fn smoke() -> Self {
        Self {
            epochs: 3,
            steps_per_epoch: 8,
            batch_size: 16,
            learning_rate: 1e-3,
            recency_bias: 5e-3,
            max_grad_norm: 10.0,
            rate_penalty: 0.0,
            parallelism: 1,
            micro_batch: 4,
        }
    }
}

/// Everything needed to build and train one SDP (or DRL baseline) agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdpConfig {
    /// State feature layout (observation window, channels, weights).
    pub state: StateConfig,
    /// SDP network shape and neuron parameters.
    pub network: NetworkShape,
    /// Training-loop hyperparameters.
    pub training: TrainingConfig,
    /// Backtest settings (cost model, risk-free rate).
    pub backtest: BacktestConfig,
    /// Base RNG seed for weight init and encoding.
    pub seed: u64,
}

/// Network-shape subset of the configuration (state/action dims are
/// derived from the market at agent construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkShape {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Encoder neurons per state dimension.
    pub pop_in: usize,
    /// Output-population neurons per action.
    pub pop_out: usize,
    /// Simulation length `T`.
    pub timesteps: usize,
    /// LIF neuron parameters.
    pub lif: LifParams,
    /// Surrogate gradient.
    pub surrogate: Surrogate,
    /// Encoder value range lower edge.
    pub value_lo: f64,
    /// Encoder value range upper edge.
    pub value_hi: f64,
    /// Probabilistic instead of deterministic encoding.
    pub probabilistic_encoding: bool,
    /// Adaptive thresholds (ALIF) on the hidden layers. Networks trained
    /// with adaptation cannot be deployed on the chip model (plain-LIF
    /// only, as in the paper) but train and backtest normally.
    pub adaptation: Option<AdaptiveParams>,
}

impl NetworkShape {
    /// Table 2 shape: hidden `[128, 128]`, `T = 5`.
    pub fn paper() -> Self {
        Self {
            hidden: vec![128, 128],
            pop_in: 10,
            pop_out: 10,
            timesteps: 5,
            lif: LifParams::paper(),
            surrogate: Surrogate::paper_rectangular(),
            value_lo: 0.0,
            value_hi: 1.6,
            probabilistic_encoding: false,
            adaptation: None,
        }
    }

    /// Reduced shape for tests.
    pub fn smoke() -> Self {
        Self { hidden: vec![24], pop_in: 4, pop_out: 4, ..Self::paper() }
    }
}

impl SdpConfig {
    /// The paper's full configuration (Tables 1–2 scale).
    pub fn paper() -> Self {
        Self {
            state: StateConfig { window: 8, include_open: true, include_weights: true },
            network: NetworkShape::paper(),
            training: TrainingConfig::paper(),
            backtest: BacktestConfig::default(),
            seed: 20220314,
        }
    }

    /// A minutes-scale configuration for CI and examples.
    pub fn smoke() -> Self {
        Self {
            state: StateConfig { window: 4, include_open: false, include_weights: true },
            network: NetworkShape::smoke(),
            training: TrainingConfig::smoke(),
            backtest: BacktestConfig::default(),
            seed: 20220314,
        }
    }

    /// Instantiates the [`SdpNetworkConfig`] for a market with
    /// `num_assets` risky assets.
    pub fn network_config(&self, num_assets: usize) -> SdpNetworkConfig {
        use spikefolio_env::StateBuilder;
        use spikefolio_snn::encoder::{Encoding, PopulationEncoderConfig};
        use spikefolio_snn::neuron::SpikeFn;
        let sb = StateBuilder::new(self.state);
        SdpNetworkConfig {
            state_dim: sb.state_dim(num_assets),
            action_dim: num_assets + 1,
            encoder: PopulationEncoderConfig {
                pop_size: self.network.pop_in,
                sigma: 0.0,
                value_lo: self.network.value_lo,
                value_hi: self.network.value_hi,
                encoding: if self.network.probabilistic_encoding {
                    Encoding::Probabilistic
                } else {
                    Encoding::Deterministic
                },
                epsilon: 0.05,
            },
            hidden: self.network.hidden.clone(),
            pop_out: self.network.pop_out,
            timesteps: self.network.timesteps,
            lif: self.network.lif,
            spike_fn: SpikeFn::Hard { surrogate: self.network.surrogate },
            adaptation: self.network.adaptation,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn paper_defaults_match_table2() {
        let c = SdpConfig::paper();
        assert_eq!(c.network.hidden, vec![128, 128]);
        assert_eq!(c.network.timesteps, 5);
        assert_eq!(c.network.lif, LifParams::paper());
        assert_eq!(c.training.batch_size, 128);
        assert_eq!(c.network.surrogate, Surrogate::paper_rectangular());
    }

    #[test]
    fn network_config_derives_dims() {
        let c = SdpConfig::paper();
        let nc = c.network_config(11);
        // window 8 × 4 channels × 11 assets + 12 weights.
        assert_eq!(nc.state_dim, 8 * 4 * 11 + 12);
        assert_eq!(nc.action_dim, 12);
        assert!(nc.validate().is_ok());
    }

    #[test]
    fn smoke_config_is_smaller_than_paper() {
        let p = SdpConfig::paper();
        let s = SdpConfig::smoke();
        assert!(s.network.hidden.iter().sum::<usize>() < p.network.hidden.iter().sum::<usize>());
        assert!(s.training.epochs < p.training.epochs);
        assert!(s.network_config(11).validate().is_ok());
    }

    #[test]
    fn probabilistic_flag_switches_encoding() {
        use spikefolio_snn::encoder::Encoding;
        let mut c = SdpConfig::smoke();
        c.network.probabilistic_encoding = true;
        assert_eq!(c.network_config(3).encoder.encoding, Encoding::Probabilistic);
    }
}
