//! "Figure" data regeneration: portfolio value curves and training reward
//! curves as CSV, ready for any plotting tool.
//!
//! The paper's figures are architecture diagrams (Figs. 1–2), so the
//! quantitative curves behind the evaluation — accumulated portfolio value
//! over the backtest and the training reward trajectory — are what a
//! reproduction can regenerate. These drivers produce them for every
//! strategy of Table 3.

use crate::agent::SdpAgent;
use crate::drl::DrlAgent;
use crate::experiments::RunOptions;
use crate::training::{Trainer, TrainingLog};
use spikefolio_baselines::{Anticor, BestStock, Ons, Ucrp, M0};
use spikefolio_env::analysis::value_curves_csv;
use spikefolio_env::{Backtester, Policy};
use spikefolio_market::experiments::ExperimentPreset;

/// CSV of the per-epoch training reward curve (`epoch,reward`).
pub fn training_reward_csv(log: &TrainingLog) -> String {
    let mut s = String::from("epoch,mean_log_return\n");
    for (i, r) in log.epoch_rewards.iter().enumerate() {
        s.push_str(&format!("{},{:.10}\n", i + 1, r));
    }
    s
}

/// Trains the RL agents on `preset` and returns the CSV of *all seven*
/// Table 3 strategies' portfolio value curves over the backtest range
/// (`period,SDP,DRL,ONS,BestStock,ANTICOR,M0,UCRP`), together with the
/// SDP training log.
pub fn backtest_value_curves(opts: &RunOptions, base: ExperimentPreset) -> (String, TrainingLog) {
    let preset = match opts.shrink {
        Some((train, test)) => base.shrunk(train, test),
        None => base,
    };
    let (train, test) = preset.generate_split(opts.market_seed);
    let trainer = Trainer::new(&opts.config);

    let mut sdp = SdpAgent::new(&opts.config, train.num_assets(), opts.config.seed);
    let sdp_log = trainer.train_sdp(&mut sdp, &train);
    let mut drl = DrlAgent::new(&opts.config, train.num_assets(), opts.config.seed);
    let _ = trainer.train_drl(&mut drl, &train);

    let anticor_window = 15.min((test.num_periods() / 2).saturating_sub(1)).max(2);
    let backtester = Backtester::new(opts.config.backtest);
    let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
    let mut run = |policy: &mut dyn Policy| {
        let r = backtester.run(policy, &test);
        curves.push((r.policy_name.clone(), r.values));
    };
    run(&mut sdp);
    run(&mut drl);
    run(&mut Ons::new());
    run(&mut BestStock::new());
    run(&mut Anticor::with_window(anticor_window));
    run(&mut M0::new());
    run(&mut Ucrp::new());

    let refs: Vec<(&str, &[f64])> =
        curves.iter().map(|(n, v)| (n.as_str(), v.as_slice())).collect();
    (value_curves_csv(&refs), sdp_log)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn tiny_opts() -> RunOptions {
        let mut opts = RunOptions::smoke();
        opts.shrink = Some((25, 8));
        opts.config.training.epochs = 2;
        opts.config.training.steps_per_epoch = 2;
        opts.config.training.batch_size = 4;
        opts
    }

    #[test]
    fn reward_csv_is_one_line_per_epoch() {
        let log = TrainingLog {
            epoch_rewards: vec![0.1, 0.2, 0.15],
            steps: 30,
            ..TrainingLog::default()
        };
        let csv = training_reward_csv(&log);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "epoch,mean_log_return");
        assert!(lines[2].starts_with("2,0.2"));
    }

    #[test]
    fn value_curve_csv_contains_all_strategies() {
        let (csv, log) = backtest_value_curves(&tiny_opts(), ExperimentPreset::experiment1());
        let header = csv.lines().next().unwrap();
        for name in ["SDP", "DRL[Jiang]", "ONS", "Best Stock", "ANTICOR", "M0", "UCRP"] {
            assert!(header.contains(name), "missing {name} in header {header:?}");
        }
        // All rows start at value 1.0.
        let first_row = csv.lines().nth(1).unwrap();
        assert!(first_row.starts_with("0,1.0"));
        assert_eq!(log.epoch_rewards.len(), 2);
    }
}
