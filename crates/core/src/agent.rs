//! The SDP agent: policy network + state builder, usable as an
//! [`env Policy`](spikefolio_env::Policy).

use crate::config::SdpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_env::{DecisionContext, Policy, StateBuilder};
use spikefolio_market::MarketData;
use spikefolio_snn::network::{SdpNetwork, SpikeStats};

/// A trained (or trainable) spiking deterministic policy agent.
///
/// Wraps the [`SdpNetwork`] with the feature pipeline so it can be driven
/// directly by the [`Backtester`](spikefolio_env::Backtester).
#[derive(Debug, Clone)]
pub struct SdpAgent {
    /// The policy network (public so trainers and the deployment pipeline
    /// can reach the parameters).
    pub network: SdpNetwork,
    state_builder: StateBuilder,
    rng: StdRng,
}

impl SdpAgent {
    /// Builds an agent for a market with `num_assets` risky assets.
    ///
    /// # Panics
    ///
    /// Panics if the derived network configuration is invalid.
    pub fn new(config: &SdpConfig, num_assets: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let network = SdpNetwork::new(config.network_config(num_assets), &mut rng);
        Self { network, state_builder: StateBuilder::new(config.state), rng }
    }

    /// The state feature builder in force.
    pub fn state_builder(&self) -> &StateBuilder {
        &self.state_builder
    }

    /// Builds the state vector at period `t` of `market`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the observation window.
    pub fn state(&self, market: &MarketData, t: usize, prev_weights: &[f64]) -> Vec<f64> {
        self.state_builder.build(market, t, prev_weights)
    }

    /// Runs inference on an explicit state vector.
    pub fn act(&mut self, state: &[f64]) -> Vec<f64> {
        self.network.act(state, &mut self.rng)
    }

    /// Inference with event counters (for the energy model).
    pub fn act_with_stats(&mut self, state: &[f64]) -> (Vec<f64>, SpikeStats) {
        self.network.act_with_stats(state, &mut self.rng)
    }

    /// Mutable access to the agent's RNG (used by the trainer so the
    /// training stream stays reproducible).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl Policy for SdpAgent {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let state = self.state_builder.build(ctx.market, ctx.t, ctx.prev_weights);
        self.network.act(&state, &mut self.rng)
    }

    fn warmup_periods(&self) -> usize {
        self.state_builder.min_period()
    }

    fn name(&self) -> &str {
        "SDP"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::simplex::is_on_simplex;

    #[test]
    fn untrained_agent_backtests_cleanly() {
        let market = ExperimentPreset::experiment1().shrunk(30, 10).generate(5);
        let mut agent = SdpAgent::new(&SdpConfig::smoke(), market.num_assets(), 1);
        let r = Backtester::default().run(&mut agent, &market);
        assert_eq!(r.policy_name, "SDP");
        for w in &r.weights {
            assert!(is_on_simplex(w, 1e-9));
        }
        assert!(r.fapv() > 0.0);
    }

    #[test]
    fn warmup_equals_observation_window() {
        let agent = SdpAgent::new(&SdpConfig::smoke(), 11, 1);
        assert_eq!(agent.warmup_periods(), 3); // window 4 → min period 3
    }

    #[test]
    fn same_seed_same_actions() {
        let market = ExperimentPreset::experiment1().shrunk(20, 5).generate(5);
        let cfg = SdpConfig::smoke();
        let mut a = SdpAgent::new(&cfg, market.num_assets(), 7);
        let mut b = SdpAgent::new(&cfg, market.num_assets(), 7);
        let w = vec![1.0 / 12.0; 12];
        let s = a.state(&market, 5, &w);
        assert_eq!(a.act(&s), b.act(&s));
    }

    #[test]
    fn different_seed_different_network() {
        let cfg = SdpConfig::smoke();
        let a = SdpAgent::new(&cfg, 11, 1);
        let b = SdpAgent::new(&cfg, 11, 2);
        assert_ne!(
            spikefolio_snn::stbp::flat_params(&a.network),
            spikefolio_snn::stbp::flat_params(&b.network)
        );
    }
}
