//! The scenario matrix runner: (universe × scenario × strategy) →
//! [`Scorecard`].
//!
//! For every selected universe the runner generates the seeded market,
//! trains the four learned agents (SDP, DRL\[Jiang\], EIIE, DDPG) once on
//! the *clean* training window, then backtests each trained agent — plus
//! the classical [`scenario_baselines`] roster — on every stress overlay
//! of the test window. Training never sees the stress: the matrix
//! measures how policies fit on ordinary regimes survive tails they were
//! not shown.
//!
//! Determinism contract: the scorecard depends only on `(options, seed)`.
//! Per-cell wall-clock goes to telemetry `scenario_cell` records, never
//! into the scorecard document.

use crate::agent::SdpAgent;
use crate::config::SdpConfig;
use crate::ddpg::DdpgAgent;
use crate::drl::DrlAgent;
use crate::eiie::EiieAgent;
use crate::training::Trainer;
use spikefolio_baselines::scenario_baselines;
use spikefolio_env::{BacktestConfig, Backtester, CostModel, Policy};
use spikefolio_market::{UniverseGrid, UniverseSpec};
use spikefolio_scenario::{Scenario, Scorecard, ScorecardCell};
use spikefolio_telemetry::{Record, Recorder};
use std::time::Instant;

/// Options for one `scenarios run`.
#[derive(Debug, Clone)]
pub struct ScenarioMatrixOptions {
    /// Master seed: market generation, agent init, and training all derive
    /// from it.
    pub seed: u64,
    /// Universe names to include (empty = the whole
    /// [`UniverseSpec::standard_set`]).
    pub universes: Vec<String>,
    /// Scenarios to include (empty = [`Scenario::ALL`]).
    pub scenarios: Vec<Scenario>,
    /// Use the minutes-scale smoke grid and training budget (CI scale).
    pub smoke: bool,
    /// Cost model applied in every cell (training and evaluation).
    pub costs: CostModel,
}

impl Default for ScenarioMatrixOptions {
    fn default() -> Self {
        Self {
            seed: 20220314,
            universes: Vec::new(),
            scenarios: Vec::new(),
            smoke: false,
            costs: CostModel::realistic_frictions(),
        }
    }
}

/// Short human-readable tag for the scorecard's `cost_model` field.
fn describe_costs(costs: &CostModel) -> String {
    match *costs {
        CostModel::Free => "free".to_owned(),
        CostModel::Proportional { rate } => format!("proportional(rate={rate})"),
        CostModel::Iterative { buy, sell } => format!("iterative(buy={buy}, sell={sell})"),
        CostModel::Frictional { commission, half_spread, impact, depth } => {
            format!("frictional(c={commission}, s={half_spread}, k={impact}, d={depth})")
        }
    }
}

/// Resolves the universe specs for `opts`, validating requested names.
fn select_universes(opts: &ScenarioMatrixOptions) -> Result<Vec<UniverseSpec>, String> {
    let grid = if opts.smoke { UniverseGrid::smoke() } else { UniverseGrid::standard() };
    let all = UniverseSpec::standard_set(grid);
    if opts.universes.is_empty() {
        return Ok(all);
    }
    let known: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
    let mut picked = Vec::new();
    for name in &opts.universes {
        match all.iter().find(|s| &s.name == name) {
            Some(spec) => picked.push(spec.clone()),
            None => return Err(format!("unknown universe {name:?}; known: {}", known.join(", "))),
        }
    }
    Ok(picked)
}

/// The training/evaluation configuration for one universe of the matrix.
fn matrix_config(opts: &ScenarioMatrixOptions) -> SdpConfig {
    let mut cfg = SdpConfig::smoke();
    if !opts.smoke {
        cfg.training.epochs = 6;
        cfg.training.steps_per_epoch = 16;
        cfg.training.batch_size = 32;
    }
    cfg.backtest.costs = opts.costs;
    cfg.seed = opts.seed;
    cfg
}

/// Runs the full matrix, emitting one telemetry `scenario_cell` record per
/// evaluated cell (with wall-clock) and returning the scorecard (without
/// wall-clock — the document is bitwise-deterministic under a pinned
/// seed).
///
/// # Errors
///
/// Returns an error for an unknown universe name.
pub fn run_scenario_matrix(
    opts: &ScenarioMatrixOptions,
    rec: &mut dyn Recorder,
) -> Result<Scorecard, String> {
    let specs = select_universes(opts)?;
    let scenarios: Vec<Scenario> =
        if opts.scenarios.is_empty() { Scenario::ALL.to_vec() } else { opts.scenarios.clone() };
    let cfg = matrix_config(opts);
    let backtester = Backtester::new(BacktestConfig {
        costs: opts.costs,
        risk_free_per_period: cfg.backtest.risk_free_per_period,
    });

    let mut card =
        Scorecard { seed: opts.seed, cost_model: describe_costs(&opts.costs), cells: Vec::new() };
    for (u_idx, spec) in specs.iter().enumerate() {
        let (train, test) = spec.generate_split(opts.seed);
        // Per-universe agent seed: distinct streams per universe, all
        // derived from the master seed.
        let agent_seed = opts.seed.wrapping_add(u_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut ucfg = cfg.clone();
        ucfg.seed = agent_seed;
        let trainer = Trainer::new(&ucfg);

        let mut sdp = SdpAgent::new(&ucfg, train.num_assets(), agent_seed);
        trainer.train_sdp_with(&mut sdp, &train, rec);
        let mut drl = DrlAgent::new(&ucfg, train.num_assets(), agent_seed ^ 0xd71);
        trainer.train_drl_with(&mut drl, &train, rec);
        let mut eiie = EiieAgent::new(&ucfg, train.num_assets(), agent_seed ^ 0xe11e);
        trainer.train_eiie_with(&mut eiie, &train, rec);
        let mut ddpg = DdpgAgent::new(&ucfg, train.num_assets(), agent_seed ^ 0xddb6);
        trainer.train_ddpg_with(&mut ddpg, &train, rec);

        for scenario in &scenarios {
            let stressed = scenario.apply(&test);
            let mut roster: Vec<Box<dyn Policy>> = vec![
                Box::new(sdp.clone()),
                Box::new(drl.clone()),
                Box::new(eiie.clone()),
                Box::new(ddpg.clone()),
            ];
            roster.extend(scenario_baselines());
            for mut policy in roster {
                let t0 = Instant::now();
                let result = backtester.run(policy.as_mut(), &stressed);
                let wall_s = t0.elapsed().as_secs_f64();
                let cell = ScorecardCell {
                    universe: spec.name.clone(),
                    scenario: scenario.name().to_owned(),
                    strategy: result.policy_name.clone(),
                    reward: result.log_returns.iter().sum(),
                    sharpe: result.metrics.sharpe,
                    max_drawdown: result.metrics.mdd,
                    turnover: result.turnover,
                    cost_drag: result.cost_drag(),
                    final_value: result.fapv(),
                };
                if rec.enabled() {
                    rec.emit(
                        Record::new("scenario_cell")
                            .field("universe", cell.universe.as_str())
                            .field("scenario", cell.scenario.as_str())
                            .field("strategy", cell.strategy.as_str())
                            .field("reward", cell.reward)
                            .field("sharpe", cell.sharpe)
                            .field("max_drawdown", cell.max_drawdown)
                            .field("turnover", cell.turnover)
                            .field("cost_drag", cell.cost_drag)
                            .field("final_value", cell.final_value)
                            .field("wall_s", wall_s),
                    );
                }
                card.cells.push(cell);
            }
        }
    }
    Ok(card)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_telemetry::{NoopRecorder, Value};

    fn smoke_opts() -> ScenarioMatrixOptions {
        ScenarioMatrixOptions {
            seed: 7,
            universes: vec!["crypto".into()],
            scenarios: vec![Scenario::Calm, Scenario::FlashCrash],
            smoke: true,
            costs: CostModel::realistic_frictions(),
        }
    }

    #[test]
    fn unknown_universe_is_rejected_with_known_names() {
        let mut opts = smoke_opts();
        opts.universes = vec!["moonbase".into()];
        let err = run_scenario_matrix(&opts, &mut NoopRecorder).unwrap_err();
        assert!(err.contains("moonbase") && err.contains("crypto"), "{err}");
    }

    #[test]
    fn matrix_covers_every_cell_and_emits_telemetry() {
        let opts = smoke_opts();
        let mut rec = spikefolio_telemetry::MemoryRecorder::new();
        let card = run_scenario_matrix(&opts, &mut rec).unwrap();
        // 1 universe × 2 scenarios × (4 learned + 4 classical) strategies.
        assert_eq!(card.cells.len(), 2 * 8);
        assert_eq!(card.universes(), vec!["crypto"]);
        assert_eq!(card.scenarios(), vec!["calm", "flash-crash"]);
        let strategies = card.strategies();
        for expected in ["SDP", "DRL[Jiang]", "EIIE", "DDPG", "ONS", "Buy and Hold"] {
            assert!(strategies.contains(&expected), "missing {expected}");
        }
        // Telemetry carries wall-clock; the scorecard does not.
        let scenario_records: Vec<_> =
            rec.records().iter().filter(|r| r.kind() == "scenario_cell").collect();
        assert_eq!(scenario_records.len(), 16);
        assert!(scenario_records.iter().all(|r| r.get("wall_s").and_then(Value::as_f64).is_some()));
        assert!(!card.to_json().contains("wall_s"));
    }

    #[test]
    fn scorecard_replays_bitwise_under_the_same_seed() {
        let opts = ScenarioMatrixOptions {
            scenarios: vec![Scenario::Calm],
            universes: vec!["fx".into()],
            ..smoke_opts()
        };
        let a = run_scenario_matrix(&opts, &mut NoopRecorder).unwrap();
        let b = run_scenario_matrix(&opts, &mut NoopRecorder).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }
}
