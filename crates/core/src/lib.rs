//! # spikefolio
//!
//! A from-scratch Rust reproduction of *"A Novel Neuromorphic Processors
//! Realization of Spiking Deep Reinforcement Learning for Portfolio
//! Management"* (DATE 2022): a spiking deterministic policy (SDP) trained
//! with spatio-temporal backpropagation to allocate a cryptocurrency
//! portfolio, deployed on a behavioural Intel Loihi simulator, and compared
//! against the DRL\[Jiang\] dense baseline and five classical strategies.
//!
//! The workspace layering (each its own crate):
//!
//! * [`spikefolio_tensor`] — dense linear algebra + optimizers,
//! * [`spikefolio_market`] — synthetic crypto market generator (Table 1),
//! * [`spikefolio_env`] — portfolio environment, costs, metrics, backtester,
//! * [`spikefolio_snn`] — population coding, dual-state LIF, STBP,
//! * [`spikefolio_ann`] — dense MLP substrate for the DRL baseline,
//! * [`spikefolio_baselines`] — ONS, ANTICOR, Best Stock, M0, UCRP,
//! * [`spikefolio_loihi`] — eq. (14) quantization, fixed-point chip model,
//!   energy/device models (Table 4),
//! * this crate — the agents, training loops, deployment pipeline, and the
//!   drivers that regenerate every table of the paper.
//!
//! # Quickstart
//!
//! ```
//! use spikefolio::agent::SdpAgent;
//! use spikefolio::config::SdpConfig;
//! use spikefolio::training::Trainer;
//! use spikefolio_env::Backtester;
//! use spikefolio_market::experiments::ExperimentPreset;
//!
//! // A deliberately tiny run: see examples/ for full-scale scripts.
//! let preset = ExperimentPreset::experiment1().shrunk(60, 15);
//! let (train, test) = preset.generate_split(7);
//! let mut config = SdpConfig::smoke();
//! let mut agent = SdpAgent::new(&config, train.num_assets(), 99);
//! let log = Trainer::new(&config).train_sdp(&mut agent, &train);
//! let result = Backtester::new(config.backtest).run(&mut agent, &test);
//! assert!(result.fapv() > 0.0);
//! # let _ = log;
//! # config.training.epochs = 1;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod agent;
pub mod checkpoint;
pub mod config;
pub mod ddpg;
pub mod deploy;
pub mod desk;
pub mod desk_top;
pub mod drl;
pub mod eiie;
pub mod experiments;
pub mod figures;
pub mod guarded;
pub mod online;
pub mod profiling;
pub mod report;
pub mod scenarios;
pub mod serving;
pub mod sweep;
pub mod telemetry_report;
pub mod training;
pub mod triage;
pub mod validation;

pub use agent::SdpAgent;
pub use config::SdpConfig;
pub use ddpg::DdpgAgent;
pub use deploy::LoihiDeployment;
pub use desk::{parse_fault_spec, run_desk, run_desk_quiet, DeskOptions, DeskReport, RoundRecord};
pub use desk_top::{
    lineage_json, render_ancestry, render_desk_top, render_lineage_ledger, run_desk_top,
    DeskTopOptions,
};
pub use drl::DrlAgent;
pub use guarded::{train_sdp_guarded, GuardedOutcome, ResilienceOptions};
pub use scenarios::{run_scenario_matrix, ScenarioMatrixOptions};
pub use training::{Trainer, TrainingLog};
pub use triage::{run_triage, TriageOptions, TriageReport};
