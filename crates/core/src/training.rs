//! Deterministic policy-gradient training (Jiang-style) for both the
//! spiking SDP agent and the dense DRL baseline.
//!
//! The objective is eq. (1): maximize the mean log portfolio return over
//! minibatches of market periods drawn from the training range. Following
//! Jiang et al., a **portfolio vector memory** (PVM) stores the weights
//! last chosen at every period so that transaction costs enter the reward
//! with realistic previous positions, and minibatch periods are sampled
//! with a geometric bias toward recent data.
//!
//! For each sampled decision period `t`:
//!
//! 1. drift the PVM weights of `t−1` through the period-`t` price move,
//! 2. build the state (window + drifted weights) and run the policy,
//! 3. reward `r = ln(μ_t(a, w′) · (y_{t+1} · a))`,
//! 4. ascend `∂r/∂a` through STBP (spiking) or plain backprop (dense),
//! 5. write `a` back into the PVM.

use crate::agent::SdpAgent;
use crate::config::SdpConfig;
use crate::ddpg::DdpgAgent;
use crate::drl::DrlAgent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use spikefolio_env::CostModel;
use spikefolio_market::MarketData;
use spikefolio_snn::network::SpikeStats;
use spikefolio_snn::stbp;
use spikefolio_snn::{BatchNetworkTrace, BatchWorkspace, SdpNetwork};
use spikefolio_telemetry::{
    labels, MemoryRecorder, NoopRecorder, Record, Recorder, Stopwatch, Value,
};
use spikefolio_tensor::optim::Adam;
use spikefolio_tensor::vector::dot;
use spikefolio_tensor::Matrix;
use std::time::Instant;

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingLog {
    /// Mean minibatch reward (eq. 1 summand) per epoch.
    pub epoch_rewards: Vec<f64>,
    /// Wall-clock seconds each epoch took.
    pub epoch_wall_s: Vec<f64>,
    /// Mean global gradient L2 norm (pre-clipping) over each epoch's
    /// steps.
    pub epoch_grad_norms: Vec<f64>,
    /// Number of gradient steps taken.
    pub steps: usize,
}

impl TrainingLog {
    /// An empty log with vectors sized for `epochs`.
    pub fn with_capacity(epochs: usize) -> Self {
        Self {
            epoch_rewards: Vec::with_capacity(epochs),
            epoch_wall_s: Vec::with_capacity(epochs),
            epoch_grad_norms: Vec::with_capacity(epochs),
            steps: 0,
        }
    }

    /// Appends one epoch's diagnostics, keeping the series aligned.
    pub fn push_epoch(&mut self, stats: &EpochStats) {
        self.epoch_rewards.push(stats.reward);
        self.epoch_wall_s.push(stats.wall_s);
        self.epoch_grad_norms.push(stats.grad_norm);
    }

    /// Mean reward of the final epoch (0.0 if empty).
    pub fn final_reward(&self) -> f64 {
        self.epoch_rewards.last().copied().unwrap_or(0.0)
    }

    /// Whether the final epoch beat the first one.
    ///
    /// `false` for an empty log; a single epoch trivially "improves" on
    /// itself. Any NaN reward at either end compares `false`.
    pub fn improved(&self) -> bool {
        match (self.epoch_rewards.first(), self.epoch_rewards.last()) {
            (Some(a), Some(b)) => b >= a,
            _ => false,
        }
    }
}

/// Diagnostics of one training epoch, as returned by
/// [`SdpTrainingSession::run_epoch_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean sample reward (eq. 1 summand).
    pub reward: f64,
    /// Wall-clock seconds the epoch took.
    pub wall_s: f64,
    /// Mean global gradient L2 norm (pre-clipping) over the epoch's
    /// steps.
    pub grad_norm: f64,
}

/// The portfolio vector memory of Jiang et al.
#[derive(Debug, Clone)]
struct Pvm {
    weights: Vec<Vec<f64>>,
}

impl Pvm {
    fn new(periods: usize, n: usize) -> Self {
        let uniform = vec![1.0 / n as f64; n];
        Self { weights: vec![uniform; periods] }
    }

    fn get(&self, t: usize) -> &[f64] {
        &self.weights[t]
    }

    fn set(&mut self, t: usize, w: Vec<f64>) {
        self.weights[t] = w;
    }
}

/// Drifts weights `w` through the price-relative vector `y`:
/// `w′ = (y ⊙ w) / (y · w)`.
fn drift(w: &[f64], y: &[f64]) -> Vec<f64> {
    let growth = dot(w, y).max(1e-12);
    w.iter().zip(y).map(|(&wi, &yi)| wi * yi / growth).collect()
}

/// Reward and its gradient with respect to the action.
///
/// Returns `(r, ∂r/∂a)` with
/// `r = ln(μ(a, w′)) + ln(y · a)` and the cost term differentiated through
/// the proportional turnover model (the iterative model uses its combined
/// rate as a first-order approximation — the standard treatment).
fn reward_and_grad(
    action: &[f64],
    y_next: &[f64],
    w_drifted: &[f64],
    costs: &CostModel,
) -> (f64, Vec<f64>) {
    let mu = costs.shrink_factor(action, w_drifted);
    let growth = dot(y_next, action).max(1e-12);
    let r = (mu * growth).ln();
    // Linear cost rate: the iterative model's combined rate and the
    // frictional model's commission + half-spread are both first-order
    // approximations (impact is second-order in trade size).
    let rate = costs.linear_rate();
    let grad: Vec<f64> = action
        .iter()
        .zip(y_next.iter().zip(w_drifted))
        .enumerate()
        .map(|(i, (&ai, (&yi, &wi)))| {
            let mut g = yi / growth;
            if i > 0 && rate > 0.0 {
                // ∂μ/∂a_i = −rate · sign(a_i − w′_i) (risky legs only);
                // subgradient 0 at the kink (f64::signum(0.0) is 1, so an
                // explicit comparison is needed).
                let d = ai - wi;
                let sign = if d > 0.0 {
                    1.0
                } else if d < 0.0 {
                    -1.0
                } else {
                    0.0
                };
                g -= rate * sign / mu;
            }
            g
        })
        .collect();
    (r, grad)
}

/// One sampled training example, prepared sequentially in phase 1 of a
/// minibatch step.
struct SampleItem {
    t: usize,
    w_drifted: Vec<f64>,
    state: Vec<f64>,
    seed: u64,
}

/// Reusable batched-execution buffers, one entry per micro-batch size
/// encountered so far. Each worker slot owns one cache so the hot loop
/// stays allocation-free across steps and epochs.
type BatchCache = Vec<(usize, BatchWorkspace, BatchNetworkTrace)>;

/// Observation-only measurements taken inside a worker while it processed
/// one micro-batch. Collected per micro-batch (workers cannot share the
/// caller's recorder) and folded into the epoch's telemetry on the main
/// thread. `None` unless a recorder is enabled.
struct MicroTelemetry {
    /// Seconds spent in the batched forward pass.
    forward_s: f64,
    /// Seconds spent in the batched STBP backward pass.
    backward_s: f64,
    /// Seconds of the forward pass spent population-encoding states.
    encode_s: f64,
    /// Seconds of the forward pass spent in the LIF timestep loop.
    lif_s: f64,
    /// Seconds spent inside the STBP recurrences (excludes caller glue).
    stbp_s: f64,
    /// Spike/synop event counters of the forward pass.
    stats: SpikeStats,
    /// Spikes emitted per LIF layer.
    layer_spikes: Vec<u64>,
}

/// Per-sample `(period, action, reward)` rows plus the summed gradients of
/// one processed micro-batch, and its measurements when observing.
type MicroBatchResult = (Vec<(usize, Vec<f64>, f64)>, stbp::SdpGradients, Option<MicroTelemetry>);

/// Runs one micro-batch through the batched SNN engine: forward all
/// samples together, differentiate the reward per sample, then one
/// batched STBP backward pass. Returns `(t, action, reward)` per sample
/// (in item order) and the micro-batch's summed gradients.
///
/// `observe` requests timing + spike-counter capture; it must not change
/// any computed value (the observe-only telemetry contract).
fn process_micro_batch(
    network: &SdpNetwork,
    market: &MarketData,
    costs: &CostModel,
    rate_penalty: f64,
    items: &[SampleItem],
    cache: &mut BatchCache,
    observe: bool,
) -> MicroBatchResult {
    let bsz = items.len();
    let state_dim = items[0].state.len();
    let slot = match cache.iter().position(|(n, _, _)| *n == bsz) {
        Some(i) => i,
        None => {
            cache.push((
                bsz,
                BatchWorkspace::new(network, bsz),
                BatchNetworkTrace::new(network, bsz),
            ));
            cache.len() - 1
        }
    };
    let (_, ws, trace) = &mut cache[slot];
    let states = Matrix::from_fn(bsz, state_dim, |b, d| items[b].state[d]);
    let mut rngs: Vec<StdRng> = items.iter().map(|item| StdRng::seed_from_u64(item.seed)).collect();
    // Workers cannot share the caller's `&mut dyn Recorder`, so profiled
    // sub-phase spans are captured into a local recorder per micro-batch
    // and folded into the epoch telemetry on the main thread.
    let mut micro_rec = observe.then(MemoryRecorder::new);
    let t0 = observe.then(Instant::now);
    match micro_rec.as_mut() {
        Some(m) => network.forward_batch_recorded(&states, &mut rngs, ws, trace, m),
        None => network.forward_batch(&states, &mut rngs, ws, trace),
    }
    let forward_s = t0.map_or(0.0, |t| t.elapsed().as_secs_f64());

    let action_dim = trace.actions.shape().1;
    let mut d_actions = Matrix::zeros(bsz, action_dim);
    let mut samples = Vec::with_capacity(bsz);
    for (b, item) in items.iter().enumerate() {
        let action = trace.action(b).to_vec();
        let y_next = market.price_relatives_with_cash(item.t + 1);
        let (r, dr) = reward_and_grad(&action, &y_next, &item.w_drifted, costs);
        // Gradient *descent* on L = −r (+ optional rate penalty).
        for (o, g) in d_actions.row_mut(b).iter_mut().zip(&dr) {
            *o = -g;
        }
        samples.push((item.t, action, r));
    }
    let t1 = observe.then(Instant::now);
    let grads = match micro_rec.as_mut() {
        Some(m) => stbp::backward_batch_recorded(network, trace, &d_actions, rate_penalty, ws, m),
        None => stbp::backward_batch(network, trace, &d_actions, rate_penalty, ws),
    };
    let telemetry = t1.map(|t| {
        // `observe` implies `micro_rec` above; an empty fallback keeps the
        // fold total-safe either way.
        let span = |label| micro_rec.as_ref().map_or(0.0, |m| m.span_total(label).0);
        MicroTelemetry {
            forward_s,
            backward_s: t.elapsed().as_secs_f64(),
            encode_s: span(labels::SPAN_PROFILE_SNN_ENCODE),
            lif_s: span(labels::SPAN_PROFILE_SNN_LIF),
            stbp_s: span(labels::SPAN_PROFILE_SNN_STBP),
            stats: trace.stats,
            layer_spikes: trace.layer_spikes.clone(),
        }
    });
    (samples, grads, telemetry)
}

/// Samples a decision period in `[min_t, max_t]` with geometric bias
/// `lambda` toward `max_t` (0 = uniform).
fn sample_period(rng: &mut StdRng, min_t: usize, max_t: usize, lambda: f64) -> usize {
    debug_assert!(min_t <= max_t);
    if lambda <= 0.0 {
        return rng.gen_range(min_t..=max_t);
    }
    for _ in 0..64 {
        // Exponential sample via inverse CDF.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let back = (-u.ln() / lambda) as usize;
        if max_t - min_t >= back {
            return max_t - back;
        }
    }
    rng.gen_range(min_t..=max_t)
}

/// Trainer for the SDP agent and the DRL baseline.
///
/// See the [crate docs](crate) for a quickstart.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: SdpConfig,
}

/// Persistent state of an in-progress SDP training run: the optimizer
/// moments, portfolio-vector memory, and RNG streams survive between
/// epochs so that epoch-at-a-time drivers (early stopping, curricula)
/// behave identically to one long [`Trainer::train_sdp`] call.
#[derive(Debug)]
pub struct SdpTrainingSession<'m> {
    market: &'m MarketData,
    pvm: Pvm,
    trainer: stbp::SdpTrainer<Adam>,
    sample_rng: StdRng,
    min_t: usize,
    max_t: usize,
    tc: crate::config::TrainingConfig,
    costs: CostModel,
    step_counter: u64,
    epochs_run: u64,
    worker_caches: Vec<BatchCache>,
}

/// Point-in-time copy of everything that determines an SDP session's
/// future: network parameters, optimizer moments, portfolio-vector
/// memory, sampling RNG, and the step/epoch counters. Restoring a
/// snapshot and re-running an epoch reproduces it bit for bit — the
/// mechanism behind the guarded trainer's rollback recovery
/// (see [`crate::guarded`]). Worker scratch buffers are excluded; they
/// carry no training state.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    params: Vec<f64>,
    trainer: stbp::SdpTrainer<Adam>,
    pvm: Pvm,
    sample_rng: StdRng,
    step_counter: u64,
    epochs_run: u64,
}

impl SessionSnapshot {
    /// The flat network parameters captured in this snapshot.
    pub fn params(&self) -> &[f64] {
        &self.params
    }
}

impl SdpTrainingSession<'_> {
    /// Captures the full training state (including `agent`'s parameters).
    pub fn snapshot(&self, agent: &SdpAgent) -> SessionSnapshot {
        SessionSnapshot {
            params: stbp::flat_params(&agent.network),
            trainer: self.trainer.clone(),
            pvm: self.pvm.clone(),
            sample_rng: self.sample_rng.clone(),
            step_counter: self.step_counter,
            epochs_run: self.epochs_run,
        }
    }

    /// Restores the session and `agent` to a captured state. Subsequent
    /// epochs replay bit-for-bit what would have run from that point.
    ///
    /// # Panics
    ///
    /// Panics if `agent`'s network shape differs from the snapshot's.
    pub fn restore(&mut self, agent: &mut SdpAgent, snap: &SessionSnapshot) {
        stbp::set_flat_params(&mut agent.network, &snap.params);
        self.trainer = snap.trainer.clone();
        self.pvm = snap.pvm.clone();
        self.sample_rng = snap.sample_rng.clone();
        self.step_counter = snap.step_counter;
        self.epochs_run = snap.epochs_run;
    }

    /// Epochs completed so far (rolled-back epochs excluded).
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// The current global-norm gradient clip (None = unclipped).
    pub fn max_grad_norm(&self) -> Option<f64> {
        self.trainer.max_grad_norm
    }

    /// Overrides the global-norm gradient clip — the guarded trainer's
    /// `Clip` recovery tightens this before retrying an epoch.
    pub fn set_max_grad_norm(&mut self, clip: Option<f64>) {
        self.trainer.max_grad_norm = clip;
    }

    /// Runs one epoch (`steps_per_epoch` minibatches) of STBP training on
    /// `agent`, returning the epoch's mean sample reward.
    ///
    /// Every minibatch runs on the batched SNN engine
    /// ([`SdpNetwork::forward_batch`] / [`stbp::backward_batch`]):
    ///
    /// 1. **Phase 1 (sequential):** sample periods, read the PVM, build
    ///    states, and assign each sample a seed derived from
    ///    `(step, sample index)`.
    /// 2. **Phase 2 (parallel):** split the minibatch into fixed-size
    ///    micro-batches of `training.micro_batch` samples, assigned
    ///    round-robin to `training.parallelism` workers. Each micro-batch
    ///    is one batched forward + reward gradient + batched STBP
    ///    backward, reusing the worker's cached workspace.
    /// 3. **Phase 3 (sequential):** accumulate micro-batch gradients in
    ///    micro-batch index order, write actions back into the PVM, and
    ///    apply the Adam step.
    ///
    /// Because the work units (micro-batches) and the per-sample encoder
    /// seeds are independent of the worker count, epoch rewards and
    /// trained parameters are identical for any `parallelism >= 1`
    /// (`parallelism == 1` runs the same micro-batches inline without
    /// spawning threads).
    ///
    /// # Panics
    ///
    /// Panics if `agent` does not match the session's market shape.
    pub fn run_epoch(&mut self, agent: &mut SdpAgent) -> f64 {
        self.run_epoch_with(agent, &mut NoopRecorder).reward
    }

    /// [`run_epoch`](Self::run_epoch) with telemetry: phase spans, queue
    /// gauges, and one `"epoch"` record flow into `rec` when it is
    /// enabled. With a [`NoopRecorder`] this is exactly `run_epoch` — all
    /// measurement (clock reads, spike-counter clones, per-layer norm
    /// sums) is skipped and every computed value is bitwise identical
    /// either way.
    ///
    /// # Panics
    ///
    /// Panics if `agent` does not match the session's market shape.
    pub fn run_epoch_with(&mut self, agent: &mut SdpAgent, rec: &mut dyn Recorder) -> EpochStats {
        let observe = rec.enabled();
        let epoch_watch = Stopwatch::start(rec);
        let epoch_t0 = Instant::now();
        let tc = self.tc;
        let workers = tc.parallelism.max(1);
        let micro = tc.micro_batch.max(1);
        if self.worker_caches.len() < workers {
            self.worker_caches.resize_with(workers, Vec::new);
        }
        let mut epoch_reward = 0.0;
        let mut epoch_samples = 0usize;
        let mut grad_norm_sum = 0.0;
        // Observation-only accumulators (filled when `observe`).
        let mut layer_grad_norm_sums: Vec<f64> = Vec::new();
        let mut update_mag_sum = 0.0;
        let mut epoch_spikes = SpikeStats::default();
        let mut epoch_layer_spikes: Vec<u64> = vec![0; agent.network.layers.len()];
        for _step in 0..tc.steps_per_epoch {
            self.step_counter += 1;
            // Phase 1 (sequential): sample periods, read the PVM, build
            // states, fix per-sample encoder seeds.
            let sample_watch = Stopwatch::start(rec);
            let items: Vec<SampleItem> = (0..tc.batch_size)
                .map(|i| {
                    let t = sample_period(
                        &mut self.sample_rng,
                        self.min_t,
                        self.max_t,
                        tc.recency_bias,
                    );
                    let y_t = self.market.price_relatives_with_cash(t);
                    let w_drifted = drift(self.pvm.get(t - 1), &y_t);
                    let state = agent.state(self.market, t, &w_drifted);
                    SampleItem {
                        t,
                        w_drifted,
                        state,
                        seed: self
                            .step_counter
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add(i as u64),
                    }
                })
                .collect();
            sample_watch.stop(rec, labels::SPAN_TRAIN_SAMPLE);

            // Phase 2: batched forward/backward over micro-batches.
            let network = &agent.network;
            let market = self.market;
            let costs = self.costs;
            let rate_penalty = tc.rate_penalty;
            let chunks: Vec<&[SampleItem]> = items.chunks(micro).collect();
            let mut results: Vec<Option<MicroBatchResult>> =
                (0..chunks.len()).map(|_| None).collect();
            if observe {
                rec.gauge(labels::GAUGE_QUEUE_MICRO_BATCHES, chunks.len() as f64);
                rec.gauge(labels::GAUGE_QUEUE_WORKERS, workers as f64);
                rec.gauge(labels::GAUGE_QUEUE_OCCUPANCY, chunks.len() as f64 / workers as f64);
            }
            if workers == 1 {
                let cache = &mut self.worker_caches[0];
                for (slot, chunk) in results.iter_mut().zip(&chunks) {
                    *slot = Some(process_micro_batch(
                        network,
                        market,
                        &costs,
                        rate_penalty,
                        chunk,
                        cache,
                        observe,
                    ));
                }
            } else {
                let chunks = &chunks;
                let outs: Vec<(usize, _)> = std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(workers);
                    for (w, cache) in self.worker_caches.iter_mut().take(workers).enumerate() {
                        handles.push(scope.spawn(move || {
                            chunks
                                .iter()
                                .enumerate()
                                .skip(w)
                                .step_by(workers)
                                .map(|(mb, chunk)| {
                                    (
                                        mb,
                                        process_micro_batch(
                                            network,
                                            market,
                                            &costs,
                                            rate_penalty,
                                            chunk,
                                            cache,
                                            observe,
                                        ),
                                    )
                                })
                                .collect::<Vec<_>>()
                        }));
                    }
                    handles
                        .into_iter()
                        .flat_map(|h| {
                            // join() only fails if the worker panicked;
                            // propagating that panic is the correct response.
                            #[allow(clippy::expect_used)]
                            h.join().expect("worker thread panicked")
                        })
                        .collect()
                });
                for (mb, out) in outs {
                    results[mb] = Some(out);
                }
            }

            // Phase 3 (sequential, micro-batch index order): accumulate
            // gradients, write the PVM.
            let apply_watch = Stopwatch::start(rec);
            let mut grads = stbp::SdpGradients::zeros_like(&agent.network);
            let mut batch_reward = 0.0;
            let mut forward_s = 0.0;
            let mut backward_s = 0.0;
            let mut encode_s = 0.0;
            let mut lif_s = 0.0;
            let mut stbp_s = 0.0;
            for out in results {
                // Every micro-batch slot is filled by exactly one worker
                // above; an empty slot is a scheduler bug worth a panic.
                #[allow(clippy::expect_used)]
                let (samples, g, telemetry) = out.expect("micro-batch result missing");
                grads.accumulate(&g);
                for (t, action, r) in samples {
                    self.pvm.set(t, action);
                    batch_reward += r;
                }
                if let Some(mt) = telemetry {
                    forward_s += mt.forward_s;
                    backward_s += mt.backward_s;
                    encode_s += mt.encode_s;
                    lif_s += mt.lif_s;
                    stbp_s += mt.stbp_s;
                    epoch_spikes.encoder_spikes += mt.stats.encoder_spikes;
                    epoch_spikes.neuron_spikes += mt.stats.neuron_spikes;
                    epoch_spikes.synops += mt.stats.synops;
                    epoch_spikes.neuron_updates += mt.stats.neuron_updates;
                    for (total, n) in epoch_layer_spikes.iter_mut().zip(&mt.layer_spikes) {
                        *total += n;
                    }
                }
            }
            grads.scale(1.0 / tc.batch_size as f64);
            grad_norm_sum += grads.global_norm();
            if observe {
                rec.span(labels::SPAN_TRAIN_FORWARD, forward_s);
                rec.span(labels::SPAN_TRAIN_BACKWARD, backward_s);
                rec.span(labels::SPAN_PROFILE_SNN_ENCODE, encode_s);
                rec.span(labels::SPAN_PROFILE_SNN_LIF, lif_s);
                rec.span(labels::SPAN_PROFILE_SNN_STBP, stbp_s);
                if layer_grad_norm_sums.len() < grads.layers.len() {
                    layer_grad_norm_sums.resize(grads.layers.len(), 0.0);
                }
                for (sum, lg) in layer_grad_norm_sums.iter_mut().zip(&grads.layers) {
                    let sq: f64 = lg.d_weights.as_slice().iter().map(|g| g * g).sum::<f64>()
                        + lg.d_bias.iter().map(|g| g * g).sum::<f64>();
                    *sum += sq.sqrt();
                }
                let before = stbp::flat_params(&agent.network);
                self.trainer.apply(&mut agent.network, &grads);
                let after = stbp::flat_params(&agent.network);
                update_mag_sum +=
                    before.iter().zip(&after).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            } else {
                self.trainer.apply(&mut agent.network, &grads);
            }
            apply_watch.stop(rec, labels::SPAN_TRAIN_APPLY);
            epoch_reward += batch_reward;
            epoch_samples += tc.batch_size;
        }
        self.epochs_run += 1;
        let steps = tc.steps_per_epoch.max(1) as f64;
        let stats = EpochStats {
            reward: epoch_reward / epoch_samples.max(1) as f64,
            wall_s: epoch_t0.elapsed().as_secs_f64(),
            grad_norm: grad_norm_sum / steps,
        };
        epoch_watch.stop(rec, labels::SPAN_TRAIN_EPOCH);
        if observe {
            let net = &agent.network;
            let samples = epoch_samples as u64;
            // Op-level cost model: dense MACs an equivalent ANN would have
            // executed for this epoch's forwards vs the spike-driven synops
            // actually performed (counted in the forward pass).
            let dense_macs = net
                .layers
                .iter()
                .map(|l| spikefolio_tensor::gemm::dense_mac_count(l.in_dim(), l.out_dim(), 1))
                .fold(0u64, |acc, m| acc.saturating_add(m))
                .saturating_mul(net.config().timesteps as u64)
                .saturating_mul(samples);
            rec.counter(labels::COUNTER_OPS_DENSE_MACS, dense_macs);
            rec.counter(labels::COUNTER_OPS_SYNOPS, epoch_spikes.synops);
            if dense_macs > 0 {
                rec.gauge(
                    labels::GAUGE_OPS_SPARSITY,
                    1.0 - epoch_spikes.synops as f64 / dense_macs as f64,
                );
            }
            rec.emit(
                Record::new("epoch")
                    .field("agent", "sdp")
                    .field("epoch", self.epochs_run - 1)
                    .field("reward", stats.reward)
                    .field("wall_s", stats.wall_s)
                    .field("grad_norm", stats.grad_norm)
                    .field(
                        "grad_norms",
                        layer_grad_norm_sums.iter().map(|s| s / steps).collect::<Vec<f64>>(),
                    )
                    .field("update_mag", update_mag_sum / steps)
                    .field("samples", samples)
                    .field("timesteps", net.config().timesteps as u64)
                    .field("firing_rates", net.layer_firing_rates(&epoch_layer_spikes, samples))
                    .field(
                        "encoder_rate",
                        net.encoder_spike_rate(epoch_spikes.encoder_spikes, samples),
                    )
                    .field(
                        "spikes",
                        Value::Map(vec![
                            ("encoder".into(), Value::U64(epoch_spikes.encoder_spikes)),
                            ("neuron".into(), Value::U64(epoch_spikes.neuron_spikes)),
                            ("synops".into(), Value::U64(epoch_spikes.synops)),
                            ("updates".into(), Value::U64(epoch_spikes.neuron_updates)),
                        ]),
                    ),
            );
        }
        stats
    }
}

impl Trainer {
    /// Creates a trainer from the shared configuration.
    pub fn new(config: &SdpConfig) -> Self {
        Self { config: config.clone() }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &SdpConfig {
        &self.config
    }

    fn bounds(&self, market: &MarketData, window_min: usize) -> (usize, usize) {
        let n = market.num_periods();
        let min_t = window_min.max(1);
        let max_t = n.saturating_sub(2);
        assert!(
            min_t <= max_t,
            "market too short for training: {n} periods, window needs t ≥ {min_t}"
        );
        (min_t, max_t)
    }

    /// Creates a persistent SDP training session (optimizer state, PVM,
    /// RNG streams) over `market`. Used directly for epoch-at-a-time
    /// control (see [`crate::validation`]); [`Trainer::train_sdp`] is the
    /// plain loop on top of it.
    ///
    /// # Panics
    ///
    /// Panics if the market is shorter than the observation window + 2.
    pub fn sdp_session<'m>(
        &self,
        agent: &SdpAgent,
        market: &'m MarketData,
    ) -> SdpTrainingSession<'m> {
        let tc = self.config.training;
        let (min_t, max_t) = self.bounds(market, agent.state_builder().min_period());
        let mut trainer = stbp::SdpTrainer::new(&agent.network, Adam::new(tc.learning_rate));
        trainer.max_grad_norm = Some(tc.max_grad_norm);
        SdpTrainingSession {
            market,
            pvm: Pvm::new(market.num_periods(), market.num_assets() + 1),
            trainer,
            sample_rng: StdRng::seed_from_u64(self.config.seed ^ 0x5d_u64),
            min_t,
            max_t,
            tc,
            costs: self.config.backtest.costs,
            step_counter: 0,
            epochs_run: 0,
            worker_caches: Vec::new(),
        }
    }

    /// Trains the spiking agent in place on `market`, returning the log.
    ///
    /// # Panics
    ///
    /// Panics if the market is shorter than the observation window + 2.
    pub fn train_sdp(&self, agent: &mut SdpAgent, market: &MarketData) -> TrainingLog {
        self.train_sdp_with(agent, market, &mut NoopRecorder)
    }

    /// [`train_sdp`](Self::train_sdp) with telemetry: emits one `"epoch"`
    /// record per epoch into `rec` (see
    /// [`SdpTrainingSession::run_epoch_with`]). Training results are
    /// bitwise identical with any recorder.
    ///
    /// # Panics
    ///
    /// Panics if the market is shorter than the observation window + 2.
    pub fn train_sdp_with(
        &self,
        agent: &mut SdpAgent,
        market: &MarketData,
        rec: &mut dyn Recorder,
    ) -> TrainingLog {
        let tc = self.config.training;
        let mut session = self.sdp_session(agent, market);
        let mut log = TrainingLog::with_capacity(tc.epochs);
        for _epoch in 0..tc.epochs {
            let stats = session.run_epoch_with(agent, rec);
            log.steps += tc.steps_per_epoch;
            log.push_epoch(&stats);
        }
        log
    }

    /// Trains the EIIE (convolutional Jiang) baseline in place on
    /// `market` — same deterministic policy gradient, PVM, and sampling
    /// as the other agents.
    ///
    /// # Panics
    ///
    /// Panics if the market is shorter than the observation window + 2.
    pub fn train_eiie(
        &self,
        agent: &mut crate::eiie::EiieAgent,
        market: &MarketData,
    ) -> TrainingLog {
        self.train_eiie_with(agent, market, &mut NoopRecorder)
    }

    /// [`train_eiie`](Self::train_eiie) with telemetry: emits one
    /// `"epoch"` record (agent `"eiie"`) per epoch into `rec`.
    ///
    /// # Panics
    ///
    /// Panics if the market is shorter than the observation window + 2.
    pub fn train_eiie_with(
        &self,
        agent: &mut crate::eiie::EiieAgent,
        market: &MarketData,
        rec: &mut dyn Recorder,
    ) -> TrainingLog {
        let tc = self.config.training;
        let costs = self.config.backtest.costs;
        let n_assets = market.num_assets();
        let (min_t, max_t) = self.bounds(market, agent.window() - 1);
        let mut pvm = Pvm::new(market.num_periods(), n_assets + 1);
        let mut trainer =
            spikefolio_ann::EiieTrainer::new(&agent.network, Adam::new(tc.learning_rate));
        trainer.max_grad_norm = Some(tc.max_grad_norm);
        let mut sample_rng = StdRng::seed_from_u64(self.config.seed ^ 0xe11e_u64);

        let mut log = TrainingLog::with_capacity(tc.epochs);
        for epoch in 0..tc.epochs {
            let epoch_t0 = Instant::now();
            let mut epoch_reward = 0.0;
            let mut epoch_samples = 0usize;
            let mut grad_norm_sum = 0.0;
            for _step in 0..tc.steps_per_epoch {
                let mut grads: Option<spikefolio_ann::eiie::EiieGradients> = None;
                let mut batch_reward = 0.0;
                for _ in 0..tc.batch_size {
                    let t = sample_period(&mut sample_rng, min_t, max_t, tc.recency_bias);
                    let y_t = market.price_relatives_with_cash(t);
                    let w_drifted = drift(pvm.get(t - 1), &y_t);
                    let windows = agent.windows(market, t);
                    let trace = agent.network.forward(&windows, &w_drifted);
                    let action = trace.action().to_vec();
                    let y_next = market.price_relatives_with_cash(t + 1);
                    let (r, dr) = reward_and_grad(&action, &y_next, &w_drifted, &costs);
                    let d_action: Vec<f64> = dr.iter().map(|g| -g).collect();
                    let g = agent.network.backward(&trace, &d_action);
                    match grads.as_mut() {
                        Some(acc) => acc.accumulate(&g),
                        None => grads = Some(g),
                    }
                    pvm.set(t, action);
                    batch_reward += r;
                }
                if let Some(mut g) = grads {
                    g.scale(1.0 / tc.batch_size as f64);
                    grad_norm_sum += g.global_norm();
                    trainer.apply(&mut agent.network, &g);
                }
                log.steps += 1;
                epoch_reward += batch_reward;
                epoch_samples += tc.batch_size;
            }
            let stats = EpochStats {
                reward: epoch_reward / epoch_samples.max(1) as f64,
                wall_s: epoch_t0.elapsed().as_secs_f64(),
                grad_norm: grad_norm_sum / tc.steps_per_epoch.max(1) as f64,
            };
            log.push_epoch(&stats);
            emit_dense_epoch(rec, "eiie", epoch, &stats, epoch_samples);
        }
        log
    }

    /// Trains the dense DRL baseline in place on `market`.
    ///
    /// # Panics
    ///
    /// Panics if the market is shorter than the observation window + 2.
    pub fn train_drl(&self, agent: &mut DrlAgent, market: &MarketData) -> TrainingLog {
        self.train_drl_with(agent, market, &mut NoopRecorder)
    }

    /// [`train_drl`](Self::train_drl) with telemetry: emits one `"epoch"`
    /// record (agent `"drl"`) per epoch into `rec`.
    ///
    /// # Panics
    ///
    /// Panics if the market is shorter than the observation window + 2.
    pub fn train_drl_with(
        &self,
        agent: &mut DrlAgent,
        market: &MarketData,
        rec: &mut dyn Recorder,
    ) -> TrainingLog {
        let tc = self.config.training;
        let costs = self.config.backtest.costs;
        let n_assets = market.num_assets();
        let (min_t, max_t) = self.bounds(market, agent.state_builder().min_period());
        let mut pvm = Pvm::new(market.num_periods(), n_assets + 1);
        let mut trainer =
            spikefolio_ann::MlpTrainer::new(&agent.network, Adam::new(tc.learning_rate));
        trainer.max_grad_norm = Some(tc.max_grad_norm);
        let mut sample_rng = StdRng::seed_from_u64(self.config.seed ^ 0xd71_u64);

        let mut log = TrainingLog::with_capacity(tc.epochs);
        for epoch in 0..tc.epochs {
            let epoch_t0 = Instant::now();
            let mut epoch_reward = 0.0;
            let mut epoch_samples = 0usize;
            let mut grad_norm_sum = 0.0;
            for _step in 0..tc.steps_per_epoch {
                let mut grads: Option<spikefolio_ann::MlpGradients> = None;
                let mut batch_reward = 0.0;
                for _ in 0..tc.batch_size {
                    let t = sample_period(&mut sample_rng, min_t, max_t, tc.recency_bias);
                    let y_t = market.price_relatives_with_cash(t);
                    let w_drifted = drift(pvm.get(t - 1), &y_t);
                    let state = agent.state(market, t, &w_drifted);
                    let trace = agent.network.forward(&state);
                    let action = trace.action().to_vec();
                    let y_next = market.price_relatives_with_cash(t + 1);
                    let (r, dr) = reward_and_grad(&action, &y_next, &w_drifted, &costs);
                    let d_action: Vec<f64> = dr.iter().map(|g| -g).collect();
                    let g = agent.network.backward(&trace, &d_action);
                    match grads.as_mut() {
                        Some(acc) => acc.accumulate(&g),
                        None => grads = Some(g),
                    }
                    pvm.set(t, action);
                    batch_reward += r;
                }
                if let Some(mut g) = grads {
                    g.scale(1.0 / tc.batch_size as f64);
                    grad_norm_sum += g.global_norm();
                    trainer.apply(&mut agent.network, &g);
                }
                log.steps += 1;
                epoch_reward += batch_reward;
                epoch_samples += tc.batch_size;
            }
            let stats = EpochStats {
                reward: epoch_reward / epoch_samples.max(1) as f64,
                wall_s: epoch_t0.elapsed().as_secs_f64(),
                grad_norm: grad_norm_sum / tc.steps_per_epoch.max(1) as f64,
            };
            log.push_epoch(&stats);
            emit_dense_epoch(rec, "drl", epoch, &stats, epoch_samples);
        }
        log
    }

    /// Trains the DDPG-style actor-critic baseline in place on `market`.
    ///
    /// # Panics
    ///
    /// Panics if the market is shorter than the observation window + 2.
    pub fn train_ddpg(&self, agent: &mut DdpgAgent, market: &MarketData) -> TrainingLog {
        self.train_ddpg_with(agent, market, &mut NoopRecorder)
    }

    /// [`train_ddpg`](Self::train_ddpg) with telemetry: emits one
    /// `"epoch"` record (agent `"ddpg"`) per epoch into `rec`.
    ///
    /// Unlike the SDP/DRL/EIIE loops, the reward gradient here is
    /// *indirect*: the critic regresses `Q(s, a)` toward the immediate
    /// eq. (1) reward (the objective is additive, so the myopic target is
    /// exact in expectation), and the actor ascends the critic's action
    /// gradient `∂Q/∂a` — the defining DDPG update.
    ///
    /// # Panics
    ///
    /// Panics if the market is shorter than the observation window + 2.
    pub fn train_ddpg_with(
        &self,
        agent: &mut DdpgAgent,
        market: &MarketData,
        rec: &mut dyn Recorder,
    ) -> TrainingLog {
        let tc = self.config.training;
        let costs = self.config.backtest.costs;
        let n_assets = market.num_assets();
        let (min_t, max_t) = self.bounds(market, agent.state_builder().min_period());
        let mut pvm = Pvm::new(market.num_periods(), n_assets + 1);
        let mut actor_trainer =
            spikefolio_ann::MlpTrainer::new(&agent.actor, Adam::new(tc.learning_rate));
        actor_trainer.max_grad_norm = Some(tc.max_grad_norm);
        let mut critic_trainer =
            crate::ddpg::CriticTrainer::new(&agent.critic, Adam::new(tc.learning_rate));
        critic_trainer.max_grad_norm = Some(tc.max_grad_norm);
        let mut sample_rng = StdRng::seed_from_u64(self.config.seed ^ 0xddb6_u64);

        let mut log = TrainingLog::with_capacity(tc.epochs);
        for epoch in 0..tc.epochs {
            let epoch_t0 = Instant::now();
            let mut epoch_reward = 0.0;
            let mut epoch_samples = 0usize;
            let mut grad_norm_sum = 0.0;
            for _step in 0..tc.steps_per_epoch {
                let mut actor_grads: Option<spikefolio_ann::MlpGradients> = None;
                let mut critic_grads: Option<crate::ddpg::CriticGradients> = None;
                let mut batch_reward = 0.0;
                for _ in 0..tc.batch_size {
                    let t = sample_period(&mut sample_rng, min_t, max_t, tc.recency_bias);
                    let y_t = market.price_relatives_with_cash(t);
                    let w_drifted = drift(pvm.get(t - 1), &y_t);
                    let state = agent.state(market, t, &w_drifted);
                    let trace = agent.actor.forward(&state);
                    let action = trace.action().to_vec();
                    let y_next = market.price_relatives_with_cash(t + 1);
                    let (r, _dr) = reward_and_grad(&action, &y_next, &w_drifted, &costs);
                    let mut sa = Vec::with_capacity(state.len() + action.len());
                    sa.extend_from_slice(&state);
                    sa.extend_from_slice(&action);
                    let (ctrace, q) = agent.critic.forward(&sa);
                    // Critic: descend ½(Q − r)².
                    let (cg, _) = agent.critic.backward(&ctrace, q - r);
                    match critic_grads.as_mut() {
                        Some(acc) => acc.accumulate(&cg),
                        None => critic_grads = Some(cg),
                    }
                    // Actor: ascend Q, i.e. descend −Q through ∂Q/∂a.
                    let (_, d_input) = agent.critic.backward(&ctrace, 1.0);
                    let d_action: Vec<f64> = d_input[state.len()..].iter().map(|g| -g).collect();
                    let ag = agent.actor.backward(&trace, &d_action);
                    match actor_grads.as_mut() {
                        Some(acc) => acc.accumulate(&ag),
                        None => actor_grads = Some(ag),
                    }
                    pvm.set(t, action);
                    batch_reward += r;
                }
                if let Some(mut g) = critic_grads {
                    g.scale(1.0 / tc.batch_size as f64);
                    critic_trainer.apply(&mut agent.critic, &g);
                }
                if let Some(mut g) = actor_grads {
                    g.scale(1.0 / tc.batch_size as f64);
                    grad_norm_sum += g.global_norm();
                    actor_trainer.apply(&mut agent.actor, &g);
                }
                log.steps += 1;
                epoch_reward += batch_reward;
                epoch_samples += tc.batch_size;
            }
            let stats = EpochStats {
                reward: epoch_reward / epoch_samples.max(1) as f64,
                wall_s: epoch_t0.elapsed().as_secs_f64(),
                grad_norm: grad_norm_sum / tc.steps_per_epoch.max(1) as f64,
            };
            log.push_epoch(&stats);
            emit_dense_epoch(rec, "ddpg", epoch, &stats, epoch_samples);
        }
        log
    }
}

/// Emits a dense-baseline epoch record (no spike fields) when `rec` is
/// enabled.
fn emit_dense_epoch(
    rec: &mut dyn Recorder,
    agent: &str,
    epoch: usize,
    stats: &EpochStats,
    samples: usize,
) {
    if !rec.enabled() {
        return;
    }
    rec.emit(
        Record::new("epoch")
            .field("agent", agent)
            .field("epoch", epoch as u64)
            .field("reward", stats.reward)
            .field("wall_s", stats.wall_s)
            .field("grad_norm", stats.grad_norm)
            .field("samples", samples as u64),
    );
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_env::{BacktestConfig, Backtester};
    use spikefolio_market::{Candle, Date};

    /// A market where asset 1 steadily gains and the rest decay: any
    /// reward-ascending learner must shift weight onto asset 1.
    fn trending_market(periods: usize) -> MarketData {
        let mut candles = Vec::new();
        let mut up = 100.0;
        let mut down = 100.0;
        for _ in 0..periods {
            let nu = up * 1.015;
            let nd = down * 0.995;
            candles.push(Candle::new(up, nu, up, nu, 1.0));
            candles.push(Candle::new(down, down, nd, nd, 1.0));
            candles.push(Candle::new(down, down, nd, nd, 1.0));
            up = nu;
            down = nd;
        }
        MarketData::new(
            vec!["UP".into(), "D1".into(), "D2".into()],
            Date::new(2020, 1, 1),
            4,
            3,
            candles,
        )
    }

    #[test]
    fn reward_grad_matches_finite_difference() {
        let costs = CostModel::Proportional { rate: 0.0025 };
        let a = [0.1, 0.5, 0.4];
        let y = [1.0, 1.1, 0.9];
        let w = [0.3, 0.3, 0.4];
        let (_, g) = reward_and_grad(&a, &y, &w, &costs);
        let eps = 1e-7;
        for i in 0..3 {
            let mut ap = a;
            ap[i] += eps;
            let mut am = a;
            am[i] -= eps;
            let (rp, _) = reward_and_grad(&ap, &y, &w, &costs);
            let (rm, _) = reward_and_grad(&am, &y, &w, &costs);
            let num = (rp - rm) / (2.0 * eps);
            assert!((g[i] - num).abs() < 1e-5, "component {i}: {} vs {num}", g[i]);
        }
    }

    #[test]
    fn drift_preserves_simplex() {
        let w = [0.2, 0.5, 0.3];
        let y = [1.0, 1.2, 0.8];
        let d = drift(&w, &y);
        assert!(spikefolio_tensor::simplex::is_on_simplex(&d, 1e-12));
        // Winner gains share.
        assert!(d[1] > w[1]);
        assert!(d[2] < w[2]);
    }

    #[test]
    fn sample_period_respects_bounds_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut late = 0;
        for _ in 0..2000 {
            let t = sample_period(&mut rng, 10, 100, 0.05);
            assert!((10..=100).contains(&t));
            if t > 80 {
                late += 1;
            }
        }
        // With λ=0.05 the mean offset from the end is 20, so most samples
        // land in the last fifth of the range.
        assert!(late > 1000, "only {late}/2000 samples were recent");
        // Uniform mode covers the range.
        let t_min = (0..500).map(|_| sample_period(&mut rng, 10, 100, 0.0)).min().unwrap();
        assert!(t_min < 25);
    }

    #[test]
    fn sdp_training_learns_trending_market() {
        let market = trending_market(120);
        let mut cfg = SdpConfig::smoke();
        cfg.training.epochs = 6;
        cfg.training.steps_per_epoch = 10;
        cfg.training.batch_size = 12;
        cfg.training.learning_rate = 2e-3;
        let mut agent = SdpAgent::new(&cfg, market.num_assets(), 3);
        let log = Trainer::new(&cfg).train_sdp(&mut agent, &market);
        assert_eq!(log.epoch_rewards.len(), 6);
        assert!(
            log.final_reward() > log.epoch_rewards[0],
            "reward did not improve: {:?}",
            log.epoch_rewards
        );
        // The trained policy should allocate heavily to the winning asset.
        let r = Backtester::new(BacktestConfig::default()).run(&mut agent, &market);
        let mean_up: f64 = r.weights.iter().map(|w| w[1]).sum::<f64>() / r.weights.len() as f64;
        assert!(mean_up > 0.4, "mean weight on winner only {mean_up}");
    }

    #[test]
    fn drl_training_learns_trending_market() {
        let market = trending_market(120);
        let mut cfg = SdpConfig::smoke();
        cfg.training.epochs = 10;
        cfg.training.steps_per_epoch = 10;
        cfg.training.batch_size = 12;
        cfg.training.learning_rate = 5e-3;
        let mut agent = DrlAgent::new(&cfg, market.num_assets(), 3);
        let log = Trainer::new(&cfg).train_drl(&mut agent, &market);
        assert!(log.improved(), "rewards: {:?}", log.epoch_rewards);
        let r = Backtester::new(BacktestConfig::default()).run(&mut agent, &market);
        let mean_up: f64 = r.weights.iter().map(|w| w[1]).sum::<f64>() / r.weights.len() as f64;
        assert!(mean_up > 0.4, "mean weight on winner only {mean_up}");
    }

    #[test]
    fn eiie_training_learns_trending_market() {
        let market = trending_market(120);
        let mut cfg = SdpConfig::smoke();
        cfg.state.window = 5;
        cfg.training.epochs = 24;
        cfg.training.steps_per_epoch = 12;
        cfg.training.batch_size = 12;
        cfg.training.learning_rate = 8e-3;
        let mut agent = crate::eiie::EiieAgent::new(&cfg, market.num_assets(), 3);
        let log = Trainer::new(&cfg).train_eiie(&mut agent, &market);
        assert!(log.improved(), "rewards: {:?}", log.epoch_rewards);
        let r = Backtester::new(BacktestConfig::default()).run(&mut agent, &market);
        let mean_up: f64 = r.weights.iter().map(|w| w[1]).sum::<f64>() / r.weights.len() as f64;
        assert!(mean_up > 0.35, "mean weight on winner only {mean_up}");
    }

    #[test]
    fn ddpg_training_is_deterministic_and_finite() {
        let market = trending_market(120);
        let mut cfg = SdpConfig::smoke();
        cfg.training.epochs = 4;
        cfg.training.steps_per_epoch = 8;
        cfg.training.batch_size = 8;
        let run = || {
            let mut agent = DdpgAgent::new(&cfg, market.num_assets(), 3);
            let log = Trainer::new(&cfg).train_ddpg(&mut agent, &market);
            (agent, log)
        };
        let (a1, log1) = run();
        let (a2, log2) = run();
        assert_eq!(log1.epoch_rewards.len(), 4);
        assert!(log1.epoch_rewards.iter().all(|r| r.is_finite()));
        assert!(log1.epoch_grad_norms.iter().all(|g| g.is_finite() && *g >= 0.0));
        // Same seed → bitwise-identical training trajectory and weights.
        assert_eq!(log1.epoch_rewards, log2.epoch_rewards);
        assert_eq!(a1.actor.flat_params(), a2.actor.flat_params());
        // The trained actor still backtests on the simplex.
        let (mut agent, _) = run();
        let r = Backtester::new(BacktestConfig::default()).run(&mut agent, &market);
        assert_eq!(r.policy_name, "DDPG");
        for w in &r.weights {
            assert!(spikefolio_tensor::simplex::is_on_simplex(w, 1e-9));
        }
    }

    #[test]
    fn ddpg_critic_learns_the_reward_scale() {
        // After training, the critic's Q for the actor's own action should
        // sit near the realized immediate rewards (myopic target), not at
        // its random init.
        let market = trending_market(120);
        let mut cfg = SdpConfig::smoke();
        cfg.training.epochs = 8;
        cfg.training.steps_per_epoch = 10;
        cfg.training.batch_size = 12;
        let mut agent = DdpgAgent::new(&cfg, market.num_assets(), 3);
        Trainer::new(&cfg).train_ddpg(&mut agent, &market);
        let t = 20;
        let w = vec![0.25; 4];
        let state = agent.state(&market, t, &w);
        let action = agent.act(&state);
        let q = agent.q_value(&state, &action);
        // Period log returns in this market are on the order of 1e-2;
        // an untrained critic sits at O(1e-1..1) from Xavier init.
        assert!(q.abs() < 0.05, "critic Q {q} far from reward scale");
    }

    #[test]
    fn parallel_training_learns_and_is_thread_count_invariant() {
        let market = trending_market(120);
        let mut cfg = SdpConfig::smoke();
        cfg.training.epochs = 4;
        cfg.training.steps_per_epoch = 8;
        cfg.training.batch_size = 12;
        cfg.training.learning_rate = 2e-3;

        let run = |threads: usize| {
            let mut c = cfg.clone();
            c.training.parallelism = threads;
            let mut agent = SdpAgent::new(&c, market.num_assets(), 3);
            let log = Trainer::new(&c).train_sdp(&mut agent, &market);
            (spikefolio_snn::stbp::flat_params(&agent.network), log)
        };
        let (p2, log2) = run(2);
        let (p4, log4) = run(4);
        // Per-sample seeding makes results independent of the thread count.
        assert_eq!(log2.epoch_rewards, log4.epoch_rewards);
        assert_eq!(p2, p4);
        // And it still learns the trending market.
        assert!(
            log2.final_reward() > 0.0,
            "parallel training failed to learn: {:?}",
            log2.epoch_rewards
        );
    }

    #[test]
    fn training_log_edge_cases() {
        // Empty log: no reward, no improvement.
        let empty = TrainingLog::default();
        assert_eq!(empty.final_reward(), 0.0);
        assert!(!empty.improved());

        // Single epoch: it is its own first and last, so it "improved".
        let single = TrainingLog { epoch_rewards: vec![0.4], steps: 5, ..TrainingLog::default() };
        assert_eq!(single.final_reward(), 0.4);
        assert!(single.improved());

        // NaN at either end compares false.
        let nan_last = TrainingLog { epoch_rewards: vec![0.1, f64::NAN], ..TrainingLog::default() };
        assert!(nan_last.final_reward().is_nan());
        assert!(!nan_last.improved());
        let nan_first =
            TrainingLog { epoch_rewards: vec![f64::NAN, 0.1], ..TrainingLog::default() };
        assert!(!nan_first.improved());
    }

    #[test]
    fn training_log_series_stay_aligned() {
        let market = trending_market(60);
        let mut cfg = SdpConfig::smoke();
        cfg.training.epochs = 3;
        cfg.training.steps_per_epoch = 2;
        cfg.training.batch_size = 4;
        let mut agent = SdpAgent::new(&cfg, market.num_assets(), 3);
        let log = Trainer::new(&cfg).train_sdp(&mut agent, &market);
        assert_eq!(log.epoch_rewards.len(), 3);
        assert_eq!(log.epoch_wall_s.len(), 3);
        assert_eq!(log.epoch_grad_norms.len(), 3);
        assert!(log.epoch_wall_s.iter().all(|&s| s >= 0.0));
        assert!(log.epoch_grad_norms.iter().all(|&g| g.is_finite() && g >= 0.0));
    }

    #[test]
    fn telemetry_recording_does_not_change_training() {
        let market = trending_market(80);
        let mut cfg = SdpConfig::smoke();
        cfg.training.epochs = 2;
        cfg.training.steps_per_epoch = 4;
        cfg.training.batch_size = 8;
        cfg.training.parallelism = 2;

        let mut plain = SdpAgent::new(&cfg, market.num_assets(), 3);
        let log_plain = Trainer::new(&cfg).train_sdp(&mut plain, &market);

        let mut observed = SdpAgent::new(&cfg, market.num_assets(), 3);
        let mut rec = spikefolio_telemetry::MemoryRecorder::new();
        let log_observed = Trainer::new(&cfg).train_sdp_with(&mut observed, &market, &mut rec);

        // Observe-only contract: rewards, grad norms, and every trained
        // parameter are bitwise identical with a recorder attached.
        assert_eq!(log_plain.epoch_rewards, log_observed.epoch_rewards);
        assert_eq!(log_plain.epoch_grad_norms, log_observed.epoch_grad_norms);
        assert_eq!(stbp::flat_params(&plain.network), stbp::flat_params(&observed.network));

        // And the recorder saw the run: one record per epoch plus spans.
        assert_eq!(rec.records().len(), 2);
        let epoch0 = &rec.records()[0];
        assert_eq!(epoch0.get("agent").and_then(Value::as_str), Some("sdp"));
        assert!(epoch0.get("reward").and_then(Value::as_f64).is_some());
        assert!(epoch0.get("firing_rates").is_some());
        let (fwd_s, fwd_n) = rec.span_total(labels::SPAN_TRAIN_FORWARD);
        assert_eq!(fwd_n, 8, "one forward span per step");
        assert!(fwd_s > 0.0);

        // Profiled SNN sub-phases fold to one span per step, and the
        // encode + LIF sections cannot exceed the whole forward pass.
        let (enc_s, enc_n) = rec.span_total(labels::SPAN_PROFILE_SNN_ENCODE);
        let (lif_s, lif_n) = rec.span_total(labels::SPAN_PROFILE_SNN_LIF);
        let (stbp_s, stbp_n) = rec.span_total(labels::SPAN_PROFILE_SNN_STBP);
        assert_eq!((enc_n, lif_n, stbp_n), (8, 8, 8), "one profile span per step");
        assert!(enc_s + lif_s <= fwd_s, "sub-phases exceed forward total");
        assert!(stbp_s > 0.0);

        // Op-level cost counters: dense MACs bound synops from above.
        let dense = rec.counter_total(labels::COUNTER_OPS_DENSE_MACS);
        let synops = rec.counter_total(labels::COUNTER_OPS_SYNOPS);
        assert!(dense > 0);
        assert!(synops > 0);
        assert!(synops <= dense, "synops {synops} exceed dense MACs {dense}");
        let sparsity = rec.gauge_value(labels::GAUGE_OPS_SPARSITY).expect("sparsity gauge");
        assert!((0.0..=1.0).contains(&sparsity), "sparsity {sparsity} out of range");
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn training_rejects_tiny_market() {
        let market = trending_market(2);
        let cfg = SdpConfig::smoke();
        let mut agent = SdpAgent::new(&cfg, market.num_assets(), 3);
        let _ = Trainer::new(&cfg).train_sdp(&mut agent, &market);
    }
}
