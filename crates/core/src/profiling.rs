//! Pinned profiling and bench workloads behind the `spikefolio profile`
//! and `spikefolio bench` subcommands.
//!
//! The bench matrix exercises the two kernels that dominate training —
//! the batched SNN forward pass and the batched STBP backward pass — at
//! batch sizes 1/8/32, plus one seeded end-to-end Table 3 slice. Every
//! workload is fully pinned (network seed, state fill, per-sample encoder
//! seeds), so the op counts in a [`BenchBaseline`] are deterministic and
//! the regression comparator can gate them tightly while wall-clock gets
//! a wide two-sided ratio gate.
//!
//! The profile workload trains a small agent single-worker under a
//! [`ChromeTraceRecorder`], deploys it to the Loihi chip model, and
//! derives the op-level [`CostReport`] from one traced forward pass —
//! producing a Perfetto-loadable timeline, a terminal phase tree, and the
//! dense-vs-synop cost table from one run.

use crate::agent::SdpAgent;
use crate::config::SdpConfig;
use crate::deploy::LoihiDeployment;
use crate::experiments::{run_experiment_with, RunOptions};
use crate::training::Trainer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_loihi::quantize::QuantizeOptions;
use spikefolio_loihi::LoihiChip;
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_profile::trace::render_phase_tree;
use spikefolio_profile::{BenchBaseline, BenchEntry, ChromeTraceRecorder, CostReport};
use spikefolio_snn::network::SdpNetworkConfig;
use spikefolio_snn::{stbp, BatchNetworkTrace, BatchWorkspace, SdpNetwork};
use spikefolio_telemetry::{labels, MemoryRecorder};
use spikefolio_tensor::{gemm, Matrix};
use std::collections::BTreeMap;
use std::time::Instant;

/// Batch sizes of the kernel bench matrix.
pub const BENCH_BATCHES: [usize; 3] = [1, 8, 32];

/// Scale/seed options shared by the bench and profile workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadOptions {
    /// Small network + fewer reps (CI smoke) instead of the paper-scale
    /// kernel shapes.
    pub smoke: bool,
    /// Seed pinning the network weights, state fill, and market slice.
    pub seed: u64,
}

impl WorkloadOptions {
    /// CI-scale workload: small network, quick reps.
    pub fn smoke(seed: u64) -> Self {
        Self { smoke: true, seed }
    }

    /// Paper-scale kernel shapes (Experiment-1 state/action dims).
    pub fn full(seed: u64) -> Self {
        Self { smoke: false, seed }
    }

    fn kernel_network(&self) -> SdpNetwork {
        let cfg = if self.smoke {
            SdpNetworkConfig::small(16, 4)
        } else {
            SdpNetworkConfig::paper(364, 12)
        };
        SdpNetwork::new(cfg, &mut StdRng::seed_from_u64(self.seed))
    }

    fn kernel_reps(&self) -> u64 {
        if self.smoke {
            3
        } else {
            5
        }
    }
}

/// The pinned state fill shared with the criterion benches: smooth values
/// around 1.0, deterministic in `(row, col)`.
fn bench_states(batch: usize, dim: usize) -> Matrix {
    Matrix::from_fn(batch, dim, |b, d| 0.85 + 0.001 * ((b * dim + d) % 300) as f64)
}

fn per_sample_rngs(seed: u64, batch: usize) -> Vec<StdRng> {
    (0..batch).map(|b| StdRng::seed_from_u64(seed ^ (0x5eed_0000 + b as u64))).collect()
}

/// Dense MACs of one batched forward pass of `net` at `batch` samples.
fn forward_dense_macs(net: &SdpNetwork, batch: usize) -> u64 {
    net.layers
        .iter()
        .map(|l| gemm::dense_mac_count(l.in_dim(), l.out_dim(), 1))
        .fold(0u64, |acc, m| acc.saturating_add(m))
        .saturating_mul(net.config().timesteps as u64)
        .saturating_mul(batch as u64)
}

/// Runs the full bench matrix and returns the baseline (creation stamp in
/// unix seconds). Deterministic op counts, best-of-reps wall clock.
pub fn run_bench_workloads(opts: &WorkloadOptions) -> BenchBaseline {
    let net = opts.kernel_network();
    let reps = opts.kernel_reps();
    let mut entries = Vec::new();

    for batch in BENCH_BATCHES {
        let states = bench_states(batch, net.config().state_dim);
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut trace = BatchNetworkTrace::new(&net, batch);

        let mut wall_fwd = f64::INFINITY;
        for _ in 0..reps {
            // Fresh seeded RNGs per rep keep every rep (and its op
            // counts) identical.
            let mut rngs = per_sample_rngs(opts.seed, batch);
            let t0 = Instant::now();
            net.forward_batch(&states, &mut rngs, &mut ws, &mut trace);
            wall_fwd = wall_fwd.min(t0.elapsed().as_secs_f64());
        }
        let mut ops = BTreeMap::new();
        ops.insert("dense_macs".to_owned(), forward_dense_macs(&net, batch));
        ops.insert("synops".to_owned(), trace.stats.synops);
        ops.insert("encoder_spikes".to_owned(), trace.stats.encoder_spikes);

        // Kernel-side event tally from the sparse drive itself; the cost
        // model's `synops` above is recomputed independently from the
        // dense rasters. CI asserts the two are identical so the kernels
        // and the accounting cannot drift apart.
        let mut fwd_ops = ops.clone();
        fwd_ops.insert("sparse_events".to_owned(), trace.kernel_events);

        entries.push(BenchEntry {
            name: format!("forward/b{batch}"),
            wall_s: wall_fwd,
            reps,
            ops: fwd_ops,
        });

        // The backward pass consumes the forward trace above, so its op
        // counts are the same workload's.
        let action_dim = net.config().action_dim;
        let d_actions = Matrix::from_fn(batch, action_dim, |_, a| 0.1 - 0.01 * a as f64);
        let mut wall_bwd = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let _ = stbp::backward_batch(&net, &trace, &d_actions, 0.0, &mut ws);
            wall_bwd = wall_bwd.min(t0.elapsed().as_secs_f64());
        }
        entries.push(BenchEntry {
            name: format!("backward/b{batch}"),
            wall_s: wall_bwd,
            reps,
            ops,
        });
    }

    entries.push(table3_slice(opts));

    BenchBaseline { created_unix: unix_now(), entries }
}

/// One seeded end-to-end Table 3 slice (smoke scale in both modes so the
/// bench stays seconds-scale); op counts come from the run's own
/// `profile/ops/*` counters.
fn table3_slice(opts: &WorkloadOptions) -> BenchEntry {
    let mut ropts = RunOptions::smoke();
    ropts.market_seed = opts.seed;
    let mut rec = MemoryRecorder::new();
    let t0 = Instant::now();
    let _ = run_experiment_with(&ropts, ExperimentPreset::experiment1(), &mut rec);
    let wall_s = t0.elapsed().as_secs_f64();
    let mut ops = BTreeMap::new();
    ops.insert("dense_macs".to_owned(), rec.counter_total(labels::COUNTER_OPS_DENSE_MACS));
    ops.insert("synops".to_owned(), rec.counter_total(labels::COUNTER_OPS_SYNOPS));
    BenchEntry { name: "table3/slice".to_owned(), wall_s, reps: 1, ops }
}

fn unix_now() -> u64 {
    std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).map_or(0, |d| d.as_secs())
}

/// Everything `spikefolio profile` reports for one profiled run.
#[derive(Debug)]
pub struct ProfileReport {
    /// Chrome-trace JSON of the whole run (training + Loihi deploy).
    pub trace_json: String,
    /// Terminal phase tree of the recorded span totals.
    pub phase_tree: String,
    /// Op-level cost model from one traced forward pass of the trained
    /// network.
    pub cost: CostReport,
    /// Effective sparsity observed during training (last epoch's gauge).
    pub train_sparsity: Option<f64>,
    /// Records the run emitted (epochs, quantization, …).
    pub num_records: usize,
}

/// Trains a pinned small agent single-worker under a
/// [`ChromeTraceRecorder`], deploys it to the Loihi chip model (quantize
/// plus a few inferences), and derives the cost model from one traced
/// forward pass.
///
/// Single-worker on purpose: folded spans are recorded on the emitting
/// thread, so the reconstructed timeline nests correctly.
pub fn run_profile_workload(opts: &WorkloadOptions) -> ProfileReport {
    let mut cfg = SdpConfig::smoke();
    cfg.seed = opts.seed;
    cfg.training.parallelism = 1;
    if !opts.smoke {
        cfg.training.epochs = 4;
        cfg.training.steps_per_epoch = 12;
    }
    let (train_days, test_days) = if opts.smoke { (60, 20) } else { (120, 30) };
    let (train, _test) =
        ExperimentPreset::experiment1().shrunk(train_days, test_days).generate_split(opts.seed);

    let mut rec = ChromeTraceRecorder::new();
    let mut agent = SdpAgent::new(&cfg, train.num_assets(), cfg.seed);
    let _log = Trainer::new(&cfg).train_sdp_with(&mut agent, &train, &mut rec);
    let train_sparsity = rec.gauge_value(labels::GAUGE_OPS_SPARSITY);

    // Loihi deployment: quantize span + encode/infer spans and chip
    // counters for a few pinned inferences.
    let chip = LoihiChip::default();
    if let Ok(mut deployment) =
        LoihiDeployment::new_recorded(&agent, &chip, &QuantizeOptions::default(), &mut rec)
    {
        let n = train.num_assets();
        let w = vec![1.0 / (n + 1) as f64; n + 1];
        let t = agent.state_builder().min_period().max(1);
        let state = agent.state(&train, t, &w);
        for _ in 0..3 {
            let _ = deployment.act_recorded(&state, &mut rec);
        }
    }

    // Cost model: one pinned traced forward at batch 8.
    let net = &agent.network;
    let batch = 8;
    let states = bench_states(batch, net.config().state_dim);
    let mut ws = BatchWorkspace::new(net, batch);
    let mut trace = BatchNetworkTrace::new(net, batch);
    let mut rngs = per_sample_rngs(opts.seed, batch);
    net.forward_batch_recorded(&states, &mut rngs, &mut ws, &mut trace, &mut rec);
    let shapes: Vec<(usize, usize)> =
        net.layers.iter().map(|l| (l.in_dim(), l.out_dim())).collect();
    let cost = CostReport::from_workload(
        &shapes,
        net.config().timesteps,
        batch,
        trace.stats.encoder_spikes,
        &trace.layer_spikes,
    );

    ProfileReport {
        trace_json: rec.to_chrome_json(),
        phase_tree: render_phase_tree(rec.spans()),
        cost,
        train_sparsity,
        num_records: rec.records().len(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_profile::{compare, CompareThresholds};
    use spikefolio_telemetry::value::{parse, Value};

    #[test]
    fn bench_workloads_cover_the_matrix_with_deterministic_ops() {
        let opts = WorkloadOptions::smoke(7);
        let base = run_bench_workloads(&opts);
        for batch in BENCH_BATCHES {
            for kind in ["forward", "backward"] {
                let e = base.entry(&format!("{kind}/b{batch}")).expect("matrix entry");
                assert!(e.wall_s >= 0.0);
                assert!(e.ops["dense_macs"] > 0);
                assert!(e.ops["synops"] <= e.ops["dense_macs"]);
            }
            // The kernel-tallied event count must equal the cost model's
            // independently derived synops at every batch size.
            let fwd = base.entry(&format!("forward/b{batch}")).unwrap();
            assert_eq!(fwd.ops["sparse_events"], fwd.ops["synops"], "forward/b{batch}");
        }
        assert!(base.entry("table3/slice").is_some());
        // Re-running the same seed reproduces every op count.
        let again = run_bench_workloads(&opts);
        for e in &base.entries {
            assert_eq!(again.entry(&e.name).unwrap().ops, e.ops, "{}", e.name);
        }
    }

    #[test]
    fn bench_self_compare_passes_and_inflated_baseline_fails() {
        let base = run_bench_workloads(&WorkloadOptions::smoke(7));
        let thresholds = CompareThresholds::default();
        let selfcheck = compare(&base, &base, &thresholds);
        assert!(selfcheck.passed(), "{}", selfcheck.render());

        let mut inflated = base.clone();
        for e in &mut inflated.entries {
            e.wall_s *= 2.0;
        }
        let report = compare(&inflated, &base, &thresholds);
        assert!(!report.passed(), "2x-inflated baseline must fail the two-sided gate");
    }

    #[test]
    fn profile_workload_produces_valid_nested_trace_and_cost_model() {
        let report = run_profile_workload(&WorkloadOptions::smoke(11));
        let doc = parse(&report.trace_json).expect("chrome trace is valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_list).expect("traceEvents");
        assert!(!events.is_empty());

        // The training phase spans must nest inside an epoch span.
        let span_of = |name: &str| {
            events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("X")
                        && e.get("name").and_then(Value::as_str) == Some(name)
                })
                .map(|e| {
                    let ts = e.get("ts").and_then(Value::as_f64).unwrap();
                    let dur = e.get("dur").and_then(Value::as_f64).unwrap();
                    (ts, ts + dur)
                })
                .collect::<Vec<_>>()
        };
        let epochs = span_of(labels::SPAN_TRAIN_EPOCH);
        assert!(!epochs.is_empty(), "no epoch spans in trace");
        for phase in [
            labels::SPAN_TRAIN_SAMPLE,
            labels::SPAN_TRAIN_FORWARD,
            labels::SPAN_TRAIN_BACKWARD,
            labels::SPAN_TRAIN_APPLY,
        ] {
            let spans = span_of(phase);
            assert!(!spans.is_empty(), "no {phase} spans in trace");
            for (t0, t1) in spans {
                assert!(
                    epochs.iter().any(|&(e0, e1)| e0 <= t0 && t1 <= e1 + 1e-6),
                    "{phase} span [{t0},{t1}] not inside any epoch span"
                );
            }
        }

        assert!(report.phase_tree.contains("epoch"));
        assert!(!report.cost.layers.is_empty());
        assert!(report.cost.total_dense_macs() > 0);
        assert!((0.0..=1.0).contains(&report.cost.sparsity()));
        assert!(report.num_records > 0, "epoch records should be in the trace");
    }
}
