//! Drivers that regenerate the paper's tables: Table 3 (strategy
//! performance), Table 4 (power/performance across hardware), and the
//! discussion-section ablations (timestep sweep, encoding comparison).

use crate::agent::SdpAgent;
use crate::config::SdpConfig;
use crate::deploy::LoihiDeployment;
use crate::drl::DrlAgent;
use crate::guarded::{train_sdp_guarded, ResilienceOptions};
use crate::training::{Trainer, TrainingLog};
use serde::{Deserialize, Serialize};
use spikefolio_baselines::{Anticor, BestStock, Ons, Ucrp, M0};
use spikefolio_env::{Backtester, Metrics, Policy};
use spikefolio_loihi::device::DeviceModel;
use spikefolio_loihi::energy::{EnergyReport, LoihiEnergyModel};
use spikefolio_loihi::LoihiChip;
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_market::{sanitize_market, MarketData, SanitizeConfig};
use spikefolio_resilience::GuardConfig;
use spikefolio_telemetry::{labels, NoopRecorder, Record, Recorder};

/// The paper's measured Loihi energy per inference at `T = 5`
/// (Table 4, SDP-Exp1 row) — the calibration endpoint of the energy model.
pub const PAPER_LOIHI_NJ_PER_INF: f64 = 15.81;

/// Scale/seed options for an experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Agent/network/training configuration.
    pub config: SdpConfig,
    /// If set, shrink each preset to `(train_days, test_days)` — used by
    /// tests and quick demos. `None` runs the full Table 1 ranges.
    pub shrink: Option<(i64, i64)>,
    /// Market generation seed.
    pub market_seed: u64,
    /// If set, SDP training runs under the fault guard (per-epoch health
    /// checks + recovery policy) instead of the plain loop. With no
    /// injected faults and a healthy run the results are bitwise
    /// identical, so this is safe to leave on.
    pub guard: Option<GuardConfig>,
    /// If set, generated market data is sanitized before training and
    /// backtesting; repairs are counted under `sanitize/repairs`.
    /// Generated markets are clean by construction, so this is a no-op
    /// guardrail unless the data was mutated (fault injection, external
    /// CSV loads).
    pub sanitize: Option<SanitizeConfig>,
}

impl RunOptions {
    /// Full paper-scale run (minutes per experiment).
    pub fn paper() -> Self {
        Self {
            config: SdpConfig::paper(),
            shrink: None,
            market_seed: 2016,
            guard: None,
            sanitize: None,
        }
    }

    /// Seconds-scale run for tests and CI.
    pub fn smoke() -> Self {
        Self {
            config: SdpConfig::smoke(),
            shrink: Some((60, 20)),
            market_seed: 2016,
            guard: None,
            sanitize: None,
        }
    }

    fn preset(&self, base: ExperimentPreset) -> ExperimentPreset {
        match self.shrink {
            Some((train, test)) => base.shrunk(train, test),
            None => base,
        }
    }
}

/// Sanitizes one market split in place per the run options; counts
/// repairs under [`labels::COUNTER_SANITIZE_REPAIRS`].
///
/// # Panics
///
/// Panics when the sanitizer runs with [`RepairPolicy::Reject`]
/// (spikefolio_market::RepairPolicy) and the data has defects — an
/// experiment cannot proceed on rejected data.
fn sanitize_split(opts: &RunOptions, market: &mut MarketData, rec: &mut dyn Recorder) {
    let Some(cfg) = opts.sanitize else { return };
    match sanitize_market(market, &cfg) {
        Ok(report) => {
            let repairs = report.repairs() as u64;
            if repairs > 0 {
                rec.counter(labels::COUNTER_SANITIZE_REPAIRS, repairs);
            }
        }
        Err(e) => panic!("market data rejected by sanitizer: {e}"),
    }
}

/// Trains the SDP agent for one experiment, guarded or plain per the run
/// options.
fn train_sdp_for(
    opts: &RunOptions,
    trainer: &Trainer,
    sdp: &mut SdpAgent,
    train: &MarketData,
    rec: &mut dyn Recorder,
) -> TrainingLog {
    match opts.guard {
        Some(guard) => {
            let mut ropts = ResilienceOptions { guard, ..Default::default() };
            train_sdp_guarded(trainer, sdp, train, &mut ropts, rec).log
        }
        None => trainer.train_sdp_with(sdp, train, rec),
    }
}

/// One strategy's row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// Strategy display name.
    pub strategy: String,
    /// Metric bundle over the backtest.
    pub metrics: Metrics,
}

/// One experiment's block of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// Experiment display name ("Experiment 1" …).
    pub experiment: String,
    /// Strategy rows in the paper's order.
    pub rows: Vec<StrategyOutcome>,
    /// SDP training diagnostics.
    pub sdp_log: TrainingLog,
    /// DRL baseline training diagnostics.
    pub drl_log: TrainingLog,
}

impl ExperimentOutcome {
    /// Looks up a strategy row by name.
    pub fn row(&self, strategy: &str) -> Option<&StrategyOutcome> {
        self.rows.iter().find(|r| r.strategy == strategy)
    }
}

fn backtest_row(
    config: &SdpConfig,
    policy: &mut dyn Policy,
    market: &MarketData,
    rec: &mut dyn Recorder,
) -> StrategyOutcome {
    let result = Backtester::new(config.backtest).run_recorded(policy, market, rec);
    StrategyOutcome { strategy: result.policy_name.clone(), metrics: result.metrics }
}

/// Trains the two RL agents on one experiment's training range and
/// backtests all seven Table 3 strategies on the held-out range.
pub fn run_experiment(opts: &RunOptions, base: ExperimentPreset) -> ExperimentOutcome {
    run_experiment_with(opts, base, &mut NoopRecorder)
}

/// [`run_experiment`] with telemetry: training epochs and every
/// strategy's backtest steps flow into `rec`. Results are identical with
/// any recorder.
pub fn run_experiment_with(
    opts: &RunOptions,
    base: ExperimentPreset,
    rec: &mut dyn Recorder,
) -> ExperimentOutcome {
    let preset = opts.preset(base);
    let (mut train, mut test) = preset.generate_split(opts.market_seed);
    sanitize_split(opts, &mut train, rec);
    sanitize_split(opts, &mut test, rec);
    let trainer = Trainer::new(&opts.config);

    let mut sdp = SdpAgent::new(&opts.config, train.num_assets(), opts.config.seed);
    let sdp_log = train_sdp_for(opts, &trainer, &mut sdp, &train, rec);
    let mut drl = DrlAgent::new(&opts.config, train.num_assets(), opts.config.seed);
    let drl_log = trainer.train_drl_with(&mut drl, &train, rec);

    // ANTICOR's customary window is 15 periods; shrink it when the
    // backtest range is too short for the double-window warmup.
    let anticor_window = 15.min((test.num_periods() / 2).saturating_sub(1)).max(2);

    let rows = vec![
        backtest_row(&opts.config, &mut sdp, &test, rec),
        backtest_row(&opts.config, &mut drl, &test, rec),
        backtest_row(&opts.config, &mut Ons::new(), &test, rec),
        backtest_row(&opts.config, &mut BestStock::new(), &test, rec),
        backtest_row(&opts.config, &mut Anticor::with_window(anticor_window), &test, rec),
        backtest_row(&opts.config, &mut M0::new(), &test, rec),
        backtest_row(&opts.config, &mut Ucrp::new(), &test, rec),
    ];

    ExperimentOutcome { experiment: preset.name.to_owned(), rows, sdp_log, drl_log }
}

/// Regenerates Table 3: all three experiments, all seven strategies.
pub fn run_table3(opts: &RunOptions) -> Vec<ExperimentOutcome> {
    run_table3_with(opts, &mut NoopRecorder)
}

/// [`run_table3`] with telemetry threaded through every experiment.
pub fn run_table3_with(opts: &RunOptions, rec: &mut dyn Recorder) -> Vec<ExperimentOutcome> {
    ExperimentPreset::all().into_iter().map(|p| run_experiment_with(opts, p, rec)).collect()
}

/// One experiment's block of Table 4 (three device rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerOutcome {
    /// Experiment display name.
    pub experiment: String,
    /// DRL-on-CPU, DRL-on-GPU, SDP-on-Loihi rows (paper order).
    pub rows: Vec<EnergyReport>,
}

impl PowerOutcome {
    /// The Loihi row.
    pub fn loihi(&self) -> &EnergyReport {
        &self.rows[2]
    }

    /// Energy advantage of Loihi over the CPU row (paper headline: ≥186×).
    pub fn cpu_advantage(&self) -> f64 {
        self.loihi().energy_advantage(&self.rows[0])
    }

    /// Energy advantage of Loihi over the GPU row (paper headline: ≥516×).
    pub fn gpu_advantage(&self) -> f64 {
        self.loihi().energy_advantage(&self.rows[1])
    }
}

/// Regenerates Table 4.
///
/// For each experiment, the SDP agent is trained, quantized, deployed on
/// the chip model, and run over the backtest range to collect its mean
/// per-inference event counts. The Loihi energy model is calibrated once,
/// on experiment 1's event profile, to the paper's measured
/// 15.81 nJ/inference; experiments 2–3 then use the *same* constants, so
/// their rows are genuine model extrapolations. The CPU/GPU rows cost the
/// DRL baseline's FLOPs on the fitted device models.
pub fn run_table4(opts: &RunOptions) -> Vec<PowerOutcome> {
    run_table4_with(opts, &mut NoopRecorder)
}

/// [`run_table4`] with telemetry: SDP training epochs and the deployed
/// backtests flow into `rec`, and each deployment's accumulated event
/// counts are recorded under the `loihi/*` counters — the exact inputs of
/// the energy model, so the Table 4 energy rows can be recomputed from
/// the run log alone.
pub fn run_table4_with(opts: &RunOptions, rec: &mut dyn Recorder) -> Vec<PowerOutcome> {
    let trainer = Trainer::new(&opts.config);
    let chip = LoihiChip::default();
    let mut outcomes = Vec::with_capacity(3);
    let mut energy_model: Option<LoihiEnergyModel> = None;

    for base in ExperimentPreset::all() {
        let preset = opts.preset(base);
        let (mut train, mut test) = preset.generate_split(opts.market_seed);
        sanitize_split(opts, &mut train, rec);
        sanitize_split(opts, &mut test, rec);

        let mut sdp = SdpAgent::new(&opts.config, train.num_assets(), opts.config.seed);
        let _ = train_sdp_for(opts, &trainer, &mut sdp, &train, rec);
        let mut deployed = match LoihiDeployment::new_recorded(
            &sdp,
            &chip,
            &spikefolio_loihi::QuantizeOptions::default(),
            rec,
        ) {
            Ok(d) => d,
            Err(e) => panic!("paper-scale network must deploy on one chip: {e}"),
        };
        let _ = Backtester::new(opts.config.backtest).run_recorded(&mut deployed, &test, rec);
        spikefolio_loihi::telemetry::record_run_stats(
            rec,
            &deployed.total_stats,
            deployed.inferences,
        );
        let mean_stats = deployed.mean_stats().to_spike_stats();

        let model = *energy_model.get_or_insert_with(|| {
            LoihiEnergyModel::calibrated(&mean_stats, PAPER_LOIHI_NJ_PER_INF)
        });
        let t = opts.config.network.timesteps;
        let exp_no = preset.name.chars().last().unwrap_or('?');
        let loihi_row = model.report(&format!("SDP-Exp{exp_no} / Loihi (T={t})"), &mean_stats, t);
        if rec.enabled() {
            rec.emit(
                Record::new("energy_report")
                    .field("label", loihi_row.label.as_str())
                    .field("nj_per_inf", loihi_row.nj_per_inf)
                    .field("inf_per_s", loihi_row.inf_per_s)
                    .field("dyn_w", loihi_row.dyn_w),
            );
        }

        let drl = DrlAgent::new(&opts.config, train.num_assets(), opts.config.seed);
        let flops = DeviceModel::mlp_flops(&drl.network);
        // Energy constants re-anchored at the configured network scale so
        // the rows reproduce the paper's published endpoints regardless of
        // the run scale; the latency model extrapolates with FLOPs.
        let cpu = DeviceModel::cpu_corei7_7500()
            .calibrated_to(spikefolio_loihi::device::PAPER_CPU_NJ_PER_INF, flops);
        let gpu = DeviceModel::gpu_tesla_k80()
            .calibrated_to(spikefolio_loihi::device::PAPER_GPU_NJ_PER_INF, flops);
        let cpu_row = cpu.report(&format!("DRL-Exp{exp_no} / CPU"), flops);
        let gpu_row = gpu.report(&format!("DRL-Exp{exp_no} / GPU"), flops);

        outcomes.push(PowerOutcome {
            experiment: preset.name.to_owned(),
            rows: vec![cpu_row, gpu_row, loihi_row],
        });
    }
    outcomes
}

/// One point of the timestep trade-off ablation (§III.B discussion).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimestepPoint {
    /// Simulation length `T`.
    pub timesteps: usize,
    /// Dynamic energy per inference, nanojoules.
    pub nj_per_inf: f64,
    /// Inference latency, seconds.
    pub latency_s: f64,
    /// Backtest metrics of the trained policy at this `T`.
    pub metrics: Metrics,
}

/// Sweeps the simulation length `T`, retraining and redeploying at each
/// point — the paper's "trade-off for performance cost between SNNs with
/// different timesteps".
pub fn timestep_tradeoff(opts: &RunOptions, timesteps: &[usize]) -> Vec<TimestepPoint> {
    let preset = opts.preset(ExperimentPreset::experiment1());
    let (train, test) = preset.generate_split(opts.market_seed);
    let chip = LoihiChip::default();
    let mut points = Vec::with_capacity(timesteps.len());
    let mut energy_model: Option<LoihiEnergyModel> = None;

    for &t in timesteps {
        let mut config = opts.config.clone();
        config.network.timesteps = t;
        let trainer = Trainer::new(&config);
        let mut sdp = SdpAgent::new(&config, train.num_assets(), config.seed);
        let _ = trainer.train_sdp(&mut sdp, &train);
        // Ablations have no error channel; every preset network fits one
        // chip by construction.
        #[allow(clippy::expect_used)]
        let mut deployed = LoihiDeployment::new(&sdp, &chip).expect("network fits");
        let result = Backtester::new(config.backtest).run(&mut deployed, &test);
        let stats = deployed.mean_stats().to_spike_stats();
        let model = *energy_model
            .get_or_insert_with(|| LoihiEnergyModel::calibrated(&stats, PAPER_LOIHI_NJ_PER_INF));
        points.push(TimestepPoint {
            timesteps: t,
            nj_per_inf: model.dynamic_energy(&stats) * 1e9,
            latency_s: model.latency(t),
            metrics: result.metrics,
        });
    }
    points
}

/// Outcome of the encoding-mode ablation (§II.B): deterministic vs
/// probabilistic population coding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodingPoint {
    /// `"deterministic"` or `"probabilistic"`.
    pub encoding: String,
    /// Backtest metrics.
    pub metrics: Metrics,
    /// Final training reward.
    pub final_reward: f64,
}

/// Trains and backtests one agent per encoding mode on experiment 1.
pub fn encoding_comparison(opts: &RunOptions) -> Vec<EncodingPoint> {
    let preset = opts.preset(ExperimentPreset::experiment1());
    let (train, test) = preset.generate_split(opts.market_seed);
    let mut points = Vec::with_capacity(2);
    for probabilistic in [false, true] {
        let mut config = opts.config.clone();
        config.network.probabilistic_encoding = probabilistic;
        let trainer = Trainer::new(&config);
        let mut sdp = SdpAgent::new(&config, train.num_assets(), config.seed);
        let log = trainer.train_sdp(&mut sdp, &train);
        let result = Backtester::new(config.backtest).run(&mut sdp, &test);
        points.push(EncodingPoint {
            encoding: if probabilistic { "probabilistic" } else { "deterministic" }.to_owned(),
            metrics: result.metrics,
            final_reward: log.final_reward(),
        });
    }
    points
}

/// One row of the transaction-cost-model ablation (Ablation D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostAblationPoint {
    /// Cost model label.
    pub model: String,
    /// Backtest metrics of the (same) trained SDP under this cost model.
    pub metrics: Metrics,
    /// Total one-way turnover of the run.
    pub turnover: f64,
}

/// Ablation D: trains one SDP agent on experiment 1, then backtests it
/// under the zero-cost, proportional, and Jiang-iterative cost models.
pub fn cost_model_ablation(opts: &RunOptions) -> Vec<CostAblationPoint> {
    use spikefolio_env::{BacktestConfig, CostModel};
    let preset = opts.preset(ExperimentPreset::experiment1());
    let (train, test) = preset.generate_split(opts.market_seed);
    let mut sdp = SdpAgent::new(&opts.config, train.num_assets(), opts.config.seed);
    let _ = Trainer::new(&opts.config).train_sdp(&mut sdp, &train);

    let models: [(&str, CostModel); 3] = [
        ("free", CostModel::Free),
        ("proportional 25bp", CostModel::Proportional { rate: 0.0025 }),
        ("iterative 25bp/25bp", CostModel::Iterative { buy: 0.0025, sell: 0.0025 }),
    ];
    models
        .into_iter()
        .map(|(label, costs)| {
            let result = Backtester::new(BacktestConfig {
                costs,
                risk_free_per_period: opts.config.backtest.risk_free_per_period,
            })
            .run(&mut sdp.clone(), &test);
            CostAblationPoint {
                model: label.to_owned(),
                metrics: result.metrics,
                turnover: result.turnover,
            }
        })
        .collect()
}

/// One point of the spike-rate-penalty ablation: energy vs quality as the
/// regularization strength `λ` grows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatePenaltyPoint {
    /// Regularization strength.
    pub lambda: f64,
    /// Mean on-chip spikes per inference after training.
    pub spikes_per_inference: u64,
    /// Mean synops per inference after training.
    pub synops_per_inference: u64,
    /// Dynamic energy per inference under the physical (Davies-2018)
    /// constants, nanojoules.
    pub physical_nj_per_inf: f64,
    /// Backtest metrics of the trained, deployed policy.
    pub metrics: Metrics,
}

/// Sweeps the spike-rate penalty `λ`: trains, deploys, and measures the
/// on-chip event counts and backtest quality at each strength. Expected
/// shape: spike counts fall monotonically-ish with `λ` while quality
/// degrades gracefully — the energy/accuracy dial the paper's energy
/// discussion implies.
pub fn rate_penalty_ablation(opts: &RunOptions, lambdas: &[f64]) -> Vec<RatePenaltyPoint> {
    let preset = opts.preset(ExperimentPreset::experiment1());
    let (train, test) = preset.generate_split(opts.market_seed);
    let chip = LoihiChip::default();
    let physical = LoihiEnergyModel::davies2018();
    lambdas
        .iter()
        .map(|&lambda| {
            let mut config = opts.config.clone();
            config.training.rate_penalty = lambda;
            let mut sdp = SdpAgent::new(&config, train.num_assets(), config.seed);
            let _ = Trainer::new(&config).train_sdp(&mut sdp, &train);
            // Same invariant as the timestep sweep: preset networks always
            // fit one chip.
            #[allow(clippy::expect_used)]
            let mut deployed = LoihiDeployment::new(&sdp, &chip).expect("network fits");
            let result = Backtester::new(config.backtest).run(&mut deployed, &test);
            let stats = deployed.mean_stats().to_spike_stats();
            RatePenaltyPoint {
                lambda,
                spikes_per_inference: stats.total_spikes(),
                synops_per_inference: stats.synops,
                physical_nj_per_inf: physical.dynamic_energy(&stats) * 1e9,
                metrics: result.metrics,
            }
        })
        .collect()
}

/// One row of the neuron-model ablation: plain LIF vs adaptive-threshold
/// (ALIF) hidden layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuronModelPoint {
    /// `"lif"` or `"alif"`.
    pub model: String,
    /// Final training reward.
    pub final_reward: f64,
    /// Backtest metrics (float policy — ALIF cannot deploy on the chip
    /// model).
    pub metrics: Metrics,
    /// Mean spikes per inference of the trained float policy.
    pub spikes_per_inference: u64,
}

/// Ablation F: trains one agent per neuron model on experiment 1 and
/// compares training reward, backtest quality, and spiking activity.
pub fn neuron_model_ablation(opts: &RunOptions) -> Vec<NeuronModelPoint> {
    use spikefolio_snn::neuron::AdaptiveParams;
    let preset = opts.preset(ExperimentPreset::experiment1());
    let (train, test) = preset.generate_split(opts.market_seed);
    [("lif", None), ("alif", Some(AdaptiveParams::new()))]
        .into_iter()
        .map(|(name, adaptation)| {
            let mut config = opts.config.clone();
            config.network.adaptation = adaptation;
            let mut sdp = SdpAgent::new(&config, train.num_assets(), config.seed);
            let log = Trainer::new(&config).train_sdp(&mut sdp, &train);
            let result = Backtester::new(config.backtest).run(&mut sdp, &test);
            // Measure spiking on a handful of held-out states.
            let sb = *sdp.state_builder();
            let w = vec![1.0 / (train.num_assets() + 1) as f64; train.num_assets() + 1];
            let mut spikes = 0_u64;
            let probes = 10.min(test.num_periods() - sb.min_period());
            for i in 0..probes {
                let s = sb.build(&test, sb.min_period() + i, &w);
                let (_, stats) = sdp.act_with_stats(&s);
                spikes += stats.total_spikes();
            }
            NeuronModelPoint {
                model: name.to_owned(),
                final_reward: log.final_reward(),
                metrics: result.metrics,
                spikes_per_inference: spikes / probes.max(1) as u64,
            }
        })
        .collect()
}

/// Extended comparison: the Table 3 roster plus EG, PAMR, OLMAR, and
/// buy-and-hold on one experiment.
pub fn run_extended_comparison(opts: &RunOptions, base: ExperimentPreset) -> ExperimentOutcome {
    use spikefolio_baselines::{BuyAndHold, Eg, Olmar, Pamr};
    let mut outcome = run_experiment(opts, base.clone());
    let preset = opts.preset(base);
    let (train, test) = preset.generate_split(opts.market_seed);
    // The architecture-faithful Jiang baseline (convolutional EIIE).
    let mut eiie = crate::eiie::EiieAgent::new(&opts.config, train.num_assets(), opts.config.seed);
    let _ = Trainer::new(&opts.config).train_eiie(&mut eiie, &train);
    outcome.rows.push(backtest_row(&opts.config, &mut eiie, &test, &mut NoopRecorder));
    outcome.rows.push(backtest_row(&opts.config, &mut Eg::new(), &test, &mut NoopRecorder));
    outcome.rows.push(backtest_row(&opts.config, &mut Pamr::new(), &test, &mut NoopRecorder));
    let olmar_window = 5.min(test.num_periods().saturating_sub(2)).max(2);
    outcome.rows.push(backtest_row(
        &opts.config,
        &mut Olmar::with_params(olmar_window, 10.0),
        &test,
        &mut NoopRecorder,
    ));
    outcome.rows.push(backtest_row(&opts.config, &mut BuyAndHold::new(), &test, &mut NoopRecorder));
    outcome
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn tiny_opts() -> RunOptions {
        let mut opts = RunOptions::smoke();
        opts.shrink = Some((25, 8));
        opts.config.training.epochs = 1;
        opts.config.training.steps_per_epoch = 2;
        opts.config.training.batch_size = 4;
        opts
    }

    #[test]
    fn experiment_outcome_has_all_seven_strategies() {
        let out = run_experiment(&tiny_opts(), ExperimentPreset::experiment1());
        let names: Vec<&str> = out.rows.iter().map(|r| r.strategy.as_str()).collect();
        assert_eq!(names, vec!["SDP", "DRL[Jiang]", "ONS", "Best Stock", "ANTICOR", "M0", "UCRP"]);
        assert!(out.row("SDP").is_some());
        assert!(out.row("nope").is_none());
        for r in &out.rows {
            assert!(r.metrics.fapv > 0.0 && r.metrics.fapv.is_finite());
            assert!((0.0..1.0).contains(&r.metrics.mdd));
        }
    }

    #[test]
    fn table4_rows_have_expected_shape() {
        let outs = run_table4(&tiny_opts());
        assert_eq!(outs.len(), 3);
        for out in &outs {
            assert_eq!(out.rows.len(), 3);
            assert!(out.rows[0].label.contains("CPU"));
            assert!(out.rows[1].label.contains("GPU"));
            assert!(out.rows[2].label.contains("Loihi"));
            // The headline shape: Loihi orders of magnitude more efficient.
            assert!(out.cpu_advantage() > 50.0, "cpu advantage {}", out.cpu_advantage());
            assert!(out.gpu_advantage() > 100.0, "gpu advantage {}", out.gpu_advantage());
        }
        // Experiment 1 is the calibration point.
        assert!(
            (outs[0].loihi().nj_per_inf - PAPER_LOIHI_NJ_PER_INF).abs() < 1e-6,
            "calibration missed: {}",
            outs[0].loihi().nj_per_inf
        );
    }

    #[test]
    fn timestep_sweep_energy_increases_with_t() {
        let pts = timestep_tradeoff(&tiny_opts(), &[2, 8]);
        assert_eq!(pts.len(), 2);
        assert!(pts[1].nj_per_inf > pts[0].nj_per_inf, "{pts:?}");
        assert!(pts[1].latency_s > pts[0].latency_s);
    }

    #[test]
    fn encoding_comparison_runs_both_modes() {
        let pts = encoding_comparison(&tiny_opts());
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].encoding, "deterministic");
        assert_eq!(pts[1].encoding, "probabilistic");
    }

    #[test]
    fn cost_ablation_orders_as_expected() {
        let pts = cost_model_ablation(&tiny_opts());
        assert_eq!(pts.len(), 3);
        // Costs can only hurt: free ≥ proportional and free ≥ iterative.
        assert!(pts[0].metrics.fapv >= pts[1].metrics.fapv - 1e-12);
        assert!(pts[0].metrics.fapv >= pts[2].metrics.fapv - 1e-12);
        // Same policy, same decisions — turnover identical across models
        // only if the weight paths coincide; at minimum it is finite.
        assert!(pts.iter().all(|p| p.turnover.is_finite()));
    }

    #[test]
    fn rate_penalty_sweep_produces_monotone_ish_energy() {
        let pts = rate_penalty_ablation(&tiny_opts(), &[0.0, 10.0]);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].synops_per_inference <= pts[0].synops_per_inference,
            "penalized net should not produce more synops: {pts:?}"
        );
        assert!(pts.iter().all(|p| p.physical_nj_per_inf.is_finite()));
    }

    #[test]
    fn neuron_model_ablation_covers_both_models() {
        let pts = neuron_model_ablation(&tiny_opts());
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].model, "lif");
        assert_eq!(pts[1].model, "alif");
        assert!(pts.iter().all(|p| p.metrics.fapv.is_finite()));
        assert!(pts.iter().all(|p| p.spikes_per_inference > 0));
    }

    #[test]
    fn extended_comparison_adds_five_rows() {
        let out = run_extended_comparison(&tiny_opts(), ExperimentPreset::experiment1());
        assert_eq!(out.rows.len(), 12);
        let names: Vec<&str> = out.rows.iter().map(|r| r.strategy.as_str()).collect();
        for extra in ["EIIE", "EG", "PAMR", "OLMAR", "Buy and Hold"] {
            assert!(names.contains(&extra), "missing {extra}");
        }
    }
}
