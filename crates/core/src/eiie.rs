//! The EIIE agent: Jiang et al.'s convolutional policy as a second,
//! architecture-faithful variant of the DRL baseline.

use crate::config::SdpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_ann::{Eiie, EiieConfig};
use spikefolio_env::{DecisionContext, Policy};
use spikefolio_market::MarketData;
use spikefolio_tensor::Matrix;

/// Jiang's EIIE (convolutional, weight-shared) policy wrapped for the
/// spikefolio environment.
///
/// Where [`DrlAgent`](crate::drl::DrlAgent) is the capacity-matched MLP
/// variant of the DRL baseline, `EiieAgent` is the architecture-faithful
/// one: identical independent evaluators over each asset's OHLC window,
/// with the previous weight injected before the scoring layer and a
/// learned cash bias.
#[derive(Debug, Clone)]
pub struct EiieAgent {
    /// The convolutional policy network.
    pub network: Eiie,
    window: usize,
    include_open: bool,
    #[allow(dead_code)]
    rng: StdRng,
}

impl EiieAgent {
    /// Builds the agent from the shared configuration (the state window
    /// and channel layout are taken from `config.state`).
    pub fn new(config: &SdpConfig, _num_assets: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let channels = config.state.channels();
        let network = Eiie::new(EiieConfig::jiang(channels, config.state.window), &mut rng);
        Self { network, window: config.state.window, include_open: config.state.include_open, rng }
    }

    /// Observation window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Builds the per-asset price windows at period `t`: one
    /// `channels × window` matrix per asset, normalized by each asset's
    /// latest close (the same normalization as the flat state builder).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the observation window.
    pub fn windows(&self, market: &MarketData, t: usize) -> Vec<Matrix> {
        assert!(t + 1 >= self.window, "period {t} has no full window");
        let channels = if self.include_open { 4 } else { 3 };
        (0..market.num_assets())
            .map(|a| {
                let latest = market.close(t, a);
                Matrix::from_fn(channels, self.window, |ch, k| {
                    let c = market.candle(t - k, a);
                    let px = match ch {
                        0 => c.close,
                        1 => c.high,
                        2 => c.low,
                        _ => c.open,
                    };
                    px / latest
                })
            })
            .collect()
    }

    /// Inference at period `t` of `market` with previous weights
    /// `prev_weights`.
    pub fn act(&self, market: &MarketData, t: usize, prev_weights: &[f64]) -> Vec<f64> {
        self.network.act(&self.windows(market, t), prev_weights)
    }
}

impl Policy for EiieAgent {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        self.act(ctx.market, ctx.t, ctx.prev_weights)
    }

    fn warmup_periods(&self) -> usize {
        self.window - 1
    }

    fn name(&self) -> &str {
        "EIIE"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::simplex::is_on_simplex;

    #[test]
    fn untrained_eiie_backtests_cleanly() {
        let market = ExperimentPreset::experiment1().shrunk(30, 10).generate(5);
        let mut agent = EiieAgent::new(&SdpConfig::smoke(), market.num_assets(), 1);
        let r = Backtester::default().run(&mut agent, &market);
        assert_eq!(r.policy_name, "EIIE");
        for w in &r.weights {
            assert!(is_on_simplex(w, 1e-9));
        }
    }

    #[test]
    fn windows_are_normalized_by_latest_close() {
        let market = ExperimentPreset::experiment1().shrunk(20, 5).generate(5);
        let agent = EiieAgent::new(&SdpConfig::smoke(), market.num_assets(), 1);
        let ws = agent.windows(&market, 10);
        assert_eq!(ws.len(), market.num_assets());
        for w in &ws {
            // Channel 0 (close), lag 0 → exactly 1.
            assert!((w[(0, 0)] - 1.0).abs() < 1e-12);
            // High channel dominates low channel everywhere.
            for k in 0..w.cols() {
                assert!(w[(1, k)] >= w[(2, k)]);
            }
        }
    }

    #[test]
    fn channel_count_follows_state_config() {
        let market = ExperimentPreset::experiment1().shrunk(20, 5).generate(5);
        let mut cfg = SdpConfig::smoke();
        cfg.state.include_open = true;
        let agent = EiieAgent::new(&cfg, market.num_assets(), 1);
        assert_eq!(agent.windows(&market, 10)[0].rows(), 4);
    }
}
