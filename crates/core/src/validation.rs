//! Validation-based early stopping for SDP training.
//!
//! The paper notes (§I) that deep policy networks stop improving with more
//! training time; the practical guard in the Jiang-style setting is to
//! hold out the tail of the training range, evaluate the policy on it
//! after every epoch, and keep the parameters of the best epoch.

use crate::agent::SdpAgent;
use crate::training::{Trainer, TrainingLog};
use serde::{Deserialize, Serialize};
use spikefolio_env::Backtester;
use spikefolio_market::MarketData;
use spikefolio_snn::stbp::{flat_params, set_flat_params};

/// Early-stopping configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationConfig {
    /// Fraction of the training range held out for validation (taken from
    /// the *end*, preserving temporal order).
    pub val_fraction: f64,
    /// Epochs without a new best validation reward before stopping.
    pub patience: usize,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        Self { val_fraction: 0.15, patience: 5 }
    }
}

/// Outcome of a validated training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidatedTrainingLog {
    /// Per-epoch training rewards (as in [`TrainingLog`]).
    pub training: TrainingLog,
    /// Per-epoch validation rewards (mean log return of a backtest on the
    /// held-out range).
    pub val_rewards: Vec<f64>,
    /// Epoch (0-based) whose parameters were kept.
    pub best_epoch: usize,
    /// Whether patience ran out before the epoch budget.
    pub stopped_early: bool,
}

/// Trains `agent` with early stopping; on return the agent carries the
/// parameters of the best validation epoch.
///
/// # Panics
///
/// Panics if `val_fraction` is outside `(0, 0.9]`, or the resulting
/// fit/validation splits are too short to train or evaluate on.
pub fn train_sdp_validated(
    trainer: &Trainer,
    agent: &mut SdpAgent,
    market: &MarketData,
    vcfg: ValidationConfig,
) -> ValidatedTrainingLog {
    assert!(
        vcfg.val_fraction > 0.0 && vcfg.val_fraction <= 0.9,
        "val_fraction {} out of range",
        vcfg.val_fraction
    );
    let n = market.num_periods();
    let split = ((n as f64) * (1.0 - vcfg.val_fraction)) as usize;
    let fit = market.slice(0, split);
    // The validation slice keeps an observation window of history so the
    // first evaluated decision has a full state.
    let val_from = split.saturating_sub(agent.state_builder().min_period());
    let val = market.slice(val_from, n);

    let epochs = trainer.config().training.epochs;
    let backtester = Backtester::new(trainer.config().backtest);
    let mut session = trainer.sdp_session(agent, &fit);

    let mut log = ValidatedTrainingLog {
        training: TrainingLog::with_capacity(epochs),
        val_rewards: Vec::with_capacity(epochs),
        best_epoch: 0,
        stopped_early: false,
    };
    let mut best_reward = f64::NEG_INFINITY;
    let mut best_params = flat_params(&agent.network);
    let mut since_best = 0usize;

    for epoch in 0..epochs {
        let epoch_stats = session.run_epoch_with(agent, &mut spikefolio_telemetry::NoopRecorder);
        log.training.push_epoch(&epoch_stats);
        log.training.steps += trainer.config().training.steps_per_epoch;

        let result = backtester.run(agent, &val);
        let val_reward = result.metrics.mean_log_return;
        log.val_rewards.push(val_reward);

        if val_reward > best_reward {
            best_reward = val_reward;
            best_params = flat_params(&agent.network);
            log.best_epoch = epoch;
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= vcfg.patience {
                log.stopped_early = true;
                break;
            }
        }
    }
    set_flat_params(&mut agent.network, &best_params);
    log
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::config::SdpConfig;
    use spikefolio_market::experiments::ExperimentPreset;

    fn setup() -> (Trainer, SdpAgent, MarketData) {
        let mut cfg = SdpConfig::smoke();
        cfg.training.epochs = 6;
        cfg.training.steps_per_epoch = 4;
        cfg.training.batch_size = 8;
        cfg.training.learning_rate = 1e-3;
        let market = ExperimentPreset::experiment1().shrunk(80, 0).generate(31);
        let agent = SdpAgent::new(&cfg, market.num_assets(), cfg.seed);
        (Trainer::new(&cfg), agent, market)
    }

    #[test]
    fn validated_training_produces_consistent_log() {
        let (trainer, mut agent, market) = setup();
        let log = train_sdp_validated(&trainer, &mut agent, &market, ValidationConfig::default());
        assert_eq!(log.training.epoch_rewards.len(), log.val_rewards.len());
        assert!(log.best_epoch < log.val_rewards.len());
        assert!(log.val_rewards.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn agent_carries_best_epoch_parameters() {
        let (trainer, mut agent, market) = setup();
        let vcfg = ValidationConfig { val_fraction: 0.2, patience: 100 };
        let log = train_sdp_validated(&trainer, &mut agent, &market, vcfg);
        // Re-evaluating the restored agent on the validation slice must
        // reproduce the best recorded reward.
        let n = market.num_periods();
        let split = ((n as f64) * 0.8) as usize;
        let val_from = split - agent.state_builder().min_period();
        let val = market.slice(val_from, n);
        let result = Backtester::new(trainer.config().backtest).run(&mut agent, &val);
        let best = log.val_rewards[log.best_epoch];
        assert!(
            (result.metrics.mean_log_return - best).abs() < 1e-9,
            "restored agent gives {}, log says {best}",
            result.metrics.mean_log_return
        );
    }

    #[test]
    fn zero_patience_like_config_stops_quickly() {
        let (trainer, mut agent, market) = setup();
        let vcfg = ValidationConfig { val_fraction: 0.2, patience: 1 };
        let log = train_sdp_validated(&trainer, &mut agent, &market, vcfg);
        // With patience 1, the run either stops early or the validation
        // reward improved on its second-to-last epoch every time.
        if log.stopped_early {
            assert!(log.val_rewards.len() < trainer.config().training.epochs);
        }
    }

    #[test]
    #[should_panic(expected = "val_fraction")]
    fn bad_fraction_rejected() {
        let (trainer, mut agent, market) = setup();
        let vcfg = ValidationConfig { val_fraction: 0.0, patience: 2 };
        let _ = train_sdp_validated(&trainer, &mut agent, &market, vcfg);
    }
}
