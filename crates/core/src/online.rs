//! Walk-forward (online) retraining — the deployment mode the paper's
//! real-time motivation implies.
//!
//! Instead of one train/backtest split, the agent is periodically retrained
//! on a trailing window and then trades the next block of periods with
//! frozen weights, walking forward through the data:
//!
//! ```text
//! [── train window ──][ trade ]
//!        [── train window ──][ trade ]
//!               [── train window ──][ trade ] …
//! ```
//!
//! Portfolio value compounds across blocks (positions persist through the
//! retraining boundary; only the policy parameters refresh).

use crate::agent::SdpAgent;
use crate::config::SdpConfig;
use crate::training::Trainer;
use serde::{Deserialize, Serialize};
use spikefolio_env::{CostModel, Metrics, PortfolioState};
use spikefolio_market::MarketData;

/// Walk-forward schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WalkForwardConfig {
    /// Trailing training-window length, in periods.
    pub train_window: usize,
    /// Periods traded between retrainings.
    pub trade_window: usize,
    /// Retrain from scratch (`true`) or continue from the current weights
    /// (`false` — warm start).
    pub retrain_from_scratch: bool,
}

impl Default for WalkForwardConfig {
    fn default() -> Self {
        Self { train_window: 500, trade_window: 100, retrain_from_scratch: false }
    }
}

/// Outcome of a walk-forward run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalkForwardResult {
    /// Compounded portfolio value curve over all traded periods.
    pub values: Vec<f64>,
    /// Metric bundle over the full curve.
    pub metrics: Metrics,
    /// Number of retraining events.
    pub retrainings: usize,
    /// Final training reward of each retraining.
    pub block_rewards: Vec<f64>,
}

/// Runs walk-forward retraining of an SDP agent over `market`.
///
/// The first `train_window` periods are pure history (no trading); each
/// subsequent block of `trade_window` periods is traded with the policy
/// trained on the window that precedes it.
///
/// # Panics
///
/// Panics if the market is shorter than `train_window + trade_window + 2`
/// or the windows are smaller than the observation window.
pub fn walk_forward(
    config: &SdpConfig,
    wf: WalkForwardConfig,
    market: &MarketData,
    seed: u64,
) -> WalkForwardResult {
    let n = market.num_periods();
    assert!(
        n >= wf.train_window + wf.trade_window + 2,
        "market has {n} periods; walk-forward needs at least {}",
        wf.train_window + wf.trade_window + 2
    );
    let trainer = Trainer::new(config);
    let mut agent = SdpAgent::new(config, market.num_assets(), seed);
    let window_min = agent.state_builder().min_period();
    assert!(wf.train_window > window_min + 2, "train window too small for the state window");

    let costs: CostModel = config.backtest.costs;
    let mut portfolio = PortfolioState::new(market.num_assets() + 1);
    let mut values = vec![1.0];
    let mut block_rewards = Vec::new();
    let mut retrainings = 0;

    let mut block_start = wf.train_window;
    while block_start + 1 < n {
        // Retrain on the trailing window.
        let train_slice = market.slice(block_start - wf.train_window, block_start);
        if wf.retrain_from_scratch {
            agent =
                SdpAgent::new(config, market.num_assets(), seed.wrapping_add(retrainings as u64));
        }
        let log = trainer.train_sdp(&mut agent, &train_slice);
        block_rewards.push(log.final_reward());
        retrainings += 1;

        // Trade the next block with frozen weights.
        let block_end = (block_start + wf.trade_window).min(n - 1);
        for t in block_start..block_end {
            let state = agent.state(market, t, portfolio.weights());
            let target = agent.act(&state);
            let y = market.price_relatives_with_cash(t + 1);
            let _ = portfolio.step(&target, &y, &costs);
            values.push(portfolio.value());
        }
        block_start = block_end;
    }

    let metrics = Metrics::from_values(&values, market.periods_per_year(), 0.0);
    WalkForwardResult { values, metrics, retrainings, block_rewards }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_market::experiments::ExperimentPreset;

    fn config() -> SdpConfig {
        let mut cfg = SdpConfig::smoke();
        cfg.training.epochs = 2;
        cfg.training.steps_per_epoch = 3;
        cfg.training.batch_size = 6;
        cfg
    }

    #[test]
    fn walk_forward_covers_the_whole_tail() {
        let market = ExperimentPreset::experiment1().shrunk(80, 0).generate(41);
        let wf =
            WalkForwardConfig { train_window: 60, trade_window: 25, retrain_from_scratch: false };
        let result = walk_forward(&config(), wf, &market, 7);
        // 160 periods total, first 60 are history → 99 traded periods.
        assert_eq!(result.values.len(), market.num_periods() - 60);
        assert_eq!(result.retrainings, 4); // ceil(99 / 25)
        assert_eq!(result.block_rewards.len(), 4);
        assert!(result.metrics.fapv > 0.0);
        assert!(result.values.iter().all(|&v| v > 0.0 && v.is_finite()));
    }

    #[test]
    fn scratch_and_warm_start_both_run() {
        let market = ExperimentPreset::experiment1().shrunk(60, 0).generate(42);
        for scratch in [false, true] {
            let wf = WalkForwardConfig {
                train_window: 50,
                trade_window: 40,
                retrain_from_scratch: scratch,
            };
            let result = walk_forward(&config(), wf, &market, 7);
            assert!(result.retrainings >= 1, "scratch={scratch}");
        }
    }

    #[test]
    #[should_panic(expected = "walk-forward needs")]
    fn too_short_market_rejected() {
        let market = ExperimentPreset::experiment1().shrunk(10, 0).generate(1);
        let _ = walk_forward(&config(), WalkForwardConfig::default(), &market, 1);
    }
}
