//! Fault-tolerant SDP training: per-epoch health checks, recovery
//! policies, and hardened checkpoint IO.
//!
//! [`train_sdp_guarded`] wraps the epoch-at-a-time
//! [`SdpTrainingSession`](crate::training::SdpTrainingSession) with a
//! guard loop. Before every epoch it snapshots the full training state
//! (parameters, Adam moments, PVM, sampling RNG, counters); after the
//! epoch it runs [`check_epoch`] over the epoch statistics and the
//! post-update parameters. A healthy epoch is committed — appended to the
//! log, checkpointed to disk (format v2, atomic write, bounded
//! retry/backoff on transient IO errors) — and training moves on. An
//! unhealthy epoch triggers the configured [`GuardPolicy`]: discard and
//! move on (`Skip`), restore and retry with a tightened gradient clip
//! (`Clip`), or restore the last-good state and retry as-is (`Rollback`,
//! which also probes the on-disk checkpoint and rewrites it when the CRC
//! says it rotted). Retries are bounded by
//! [`GuardConfig::max_retries`]; exhausting them restores the last-good
//! state and returns with [`GuardedOutcome::aborted`] set rather than
//! shipping poisoned weights.
//!
//! Everything is deterministic: snapshots capture the RNG streams, so a
//! retried epoch replays bit-for-bit, and a faulted run whose faults are
//! all recovered produces the **same final weights** as a fault-free run
//! — the strongest assertion in the chaos suite
//! (`tests/fault_injection.rs`).
//!
//! Faults come from a scripted, seeded
//! [`FaultPlan`](spikefolio_resilience::FaultPlan): gradient-level faults
//! are applied to the session between epoch and health check, IO faults
//! inside the checkpoint save/load seams, and market faults via
//! [`apply_market_faults`] before training starts. An empty plan (the
//! default) injects nothing and leaves training bitwise identical to the
//! unguarded loop.

use crate::agent::SdpAgent;
use crate::checkpoint::{self, LoadCheckpointError};
use crate::training::{EpochStats, Trainer, TrainingLog};
use spikefolio_market::{Candle, MarketData};
use spikefolio_resilience::io::retry_io;
use spikefolio_resilience::{
    check_epoch, FaultPlan, GradFault, GuardConfig, GuardPolicy, MarketFault, MarketFaultKind,
};
use spikefolio_snn::stbp;
use spikefolio_telemetry::{labels, NoopRecorder, Record, Recorder, Stopwatch};
use std::path::PathBuf;

/// Configuration of one guarded training run.
#[derive(Debug, Clone, Default)]
pub struct ResilienceOptions {
    /// Health-check thresholds and recovery policy.
    pub guard: GuardConfig,
    /// Where to persist the last-good checkpoint (v2 format, atomic
    /// writes). `None` trains without touching disk; rollback then uses
    /// the in-memory snapshot alone.
    pub checkpoint_path: Option<PathBuf>,
    /// Scripted fault schedule. [`FaultPlan::default`] injects nothing.
    pub faults: FaultPlan,
}

/// What a guarded training run did, beyond the ordinary log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GuardedOutcome {
    /// Per-epoch diagnostics of the committed (healthy) epochs.
    pub log: TrainingLog,
    /// Unhealthy epochs that were retried to a healthy result.
    pub recoveries: u64,
    /// Epochs discarded under [`GuardPolicy::Skip`].
    pub epochs_skipped: u64,
    /// Transient checkpoint IO failures absorbed by retry/backoff.
    pub io_retries: u64,
    /// Corrupted/unreadable checkpoints detected (and rewritten) during
    /// rollback.
    pub corruption_detected: u64,
    /// Training stopped early: an epoch stayed unhealthy through the
    /// whole retry budget. The agent holds the last-good parameters.
    pub aborted: bool,
}

fn policy_label(p: GuardPolicy) -> &'static str {
    match p {
        GuardPolicy::Skip => "skip",
        GuardPolicy::Clip => "clip",
        GuardPolicy::Rollback => "rollback",
    }
}

/// Applies a scheduled gradient fault to the just-finished epoch,
/// producing the observable aftermath of a poisoned gradient: non-finite
/// statistics and (for NaN/Inf) non-finite parameters the optimizer
/// would have written.
fn apply_grad_fault(agent: &mut SdpAgent, fault: GradFault, stats: &mut EpochStats) {
    match fault {
        GradFault::NaN => {
            let mut params = stbp::flat_params(&agent.network);
            if let Some(p) = params.first_mut() {
                *p = f64::NAN;
            }
            stbp::set_flat_params(&mut agent.network, &params);
            stats.grad_norm = f64::NAN;
        }
        GradFault::Inf => {
            let mut params = stbp::flat_params(&agent.network);
            if let Some(p) = params.first_mut() {
                *p = f64::INFINITY;
            }
            stbp::set_flat_params(&mut agent.network, &params);
            stats.grad_norm = f64::INFINITY;
        }
        GradFault::Explode => {
            stats.grad_norm *= 1e12;
        }
    }
}

/// Plants the plan's market faults into `market` (NaN candles,
/// non-positive prices, outlier spikes) via the unchecked candle seam.
/// Out-of-range coordinates are ignored, so one plan works across market
/// sizes.
pub fn apply_market_faults(market: &mut MarketData, faults: &[MarketFault]) {
    for f in faults {
        if f.period >= market.num_periods() || f.asset >= market.num_assets() {
            continue;
        }
        let c = market.candle(f.period, f.asset);
        let bad = match f.kind {
            MarketFaultKind::DropNan => Candle {
                open: f64::NAN,
                high: f64::NAN,
                low: f64::NAN,
                close: f64::NAN,
                volume: c.volume,
            },
            MarketFaultKind::NonPositive => Candle { close: -c.close.abs(), ..c },
            MarketFaultKind::Outlier(factor) => {
                let close = c.close * factor;
                Candle {
                    open: c.open,
                    high: c.high.max(close),
                    low: c.low.min(close),
                    close,
                    volume: c.volume,
                }
            }
        };
        market.set_candle_unchecked(f.period, f.asset, bad);
    }
}

/// Writes the current agent parameters to the checkpoint path with
/// bounded retry/backoff, routing injected IO faults through the plan.
/// Returns whether the write ultimately succeeded.
fn write_checkpoint(
    agent: &SdpAgent,
    path: &PathBuf,
    guard: &GuardConfig,
    faults: &mut FaultPlan,
    outcome: &mut GuardedOutcome,
    rec: &mut dyn Recorder,
) -> bool {
    let watch = Stopwatch::start(rec);
    let attempt = retry_io(guard.io_retries, guard.backoff_base_ms, || {
        checkpoint::save_sdp_faulted(agent, path, Some(faults))
    });
    if attempt.retries > 0 {
        outcome.io_retries += attempt.retries as u64;
        rec.counter(labels::COUNTER_RESILIENCE_IO_RETRIES, attempt.retries as u64);
    }
    let ok = match attempt.result {
        Ok(()) => true,
        Err(e) => {
            // Training can proceed without the checkpoint; record the
            // failure so the run log shows the degraded durability.
            if rec.enabled() {
                rec.emit(
                    Record::new("health")
                        .field("event", "checkpoint_write_failed")
                        .field("error", e.to_string()),
                );
            }
            false
        }
    };
    watch.stop(rec, labels::SPAN_TRAIN_CHECKPOINT);
    ok
}

/// Rollback recovery: probe the on-disk checkpoint for integrity, then
/// restore the in-memory last-good snapshot (which also carries optimizer
/// moments and RNG streams that no checkpoint holds). A checkpoint that
/// fails its CRC is counted and rewritten from the snapshot, so the disk
/// copy heals as part of the recovery.
fn rollback_via_checkpoint(
    agent: &mut SdpAgent,
    path: &PathBuf,
    guard: &GuardConfig,
    faults: &mut FaultPlan,
    outcome: &mut GuardedOutcome,
    rec: &mut dyn Recorder,
) -> bool {
    let attempt = retry_io(guard.io_retries, guard.backoff_base_ms, || {
        match checkpoint::load_sdp_faulted(agent, path, Some(faults)) {
            Ok(()) => Ok(true),
            // Transient read errors are worth retrying; anything else
            // (corruption, syntax, shape) is a damaged file.
            Err(LoadCheckpointError::Io(e)) => Err(e),
            Err(_) => Ok(false),
        }
    });
    if attempt.retries > 0 {
        outcome.io_retries += attempt.retries as u64;
        rec.counter(labels::COUNTER_RESILIENCE_IO_RETRIES, attempt.retries as u64);
    }
    matches!(attempt.result, Ok(true))
}

/// Trains the SDP agent with per-epoch health checks and recovery. See
/// the [module docs](self) for the full protocol. With default options
/// (no faults, no checkpoint path) and a healthy run this is bitwise
/// identical to [`Trainer::train_sdp_with`].
///
/// # Panics
///
/// Panics if the market is shorter than the observation window + 2.
pub fn train_sdp_guarded(
    trainer: &Trainer,
    agent: &mut SdpAgent,
    market: &MarketData,
    opts: &mut ResilienceOptions,
    rec: &mut dyn Recorder,
) -> GuardedOutcome {
    let guard = opts.guard;
    let path = opts.checkpoint_path.clone();
    let tc = trainer.config().training;
    let mut session = trainer.sdp_session(agent, market);
    let base_clip = session.max_grad_norm();
    let mut outcome =
        GuardedOutcome { log: TrainingLog::with_capacity(tc.epochs), ..Default::default() };
    let mut best_reward: Option<f64> = None;

    // The initial state is the first "last good": persist it so rollback
    // has a disk copy to probe even before the first healthy epoch.
    if let Some(p) = &path {
        write_checkpoint(agent, p, &guard, &mut opts.faults, &mut outcome, rec);
    }

    for epoch in 0..tc.epochs {
        let snap = session.snapshot(agent);
        let mut attempts = 0u32;
        loop {
            let mut stats = session.run_epoch_with(agent, rec);
            if let Some(fault) = opts.faults.take_grad_fault(epoch as u64) {
                apply_grad_fault(agent, fault, &mut stats);
            }
            let params = stbp::flat_params(&agent.network);
            let health = check_epoch(stats.reward, stats.grad_norm, &params, best_reward, &guard);
            if health.healthy() {
                if attempts > 0 {
                    outcome.recoveries += 1;
                    rec.counter(labels::COUNTER_RESILIENCE_RECOVERIES, 1);
                }
                session.set_max_grad_norm(base_clip);
                outcome.log.push_epoch(&stats);
                outcome.log.steps += tc.steps_per_epoch;
                best_reward = Some(best_reward.map_or(stats.reward, |b| b.max(stats.reward)));
                if let Some(p) = &path {
                    write_checkpoint(agent, p, &guard, &mut opts.faults, &mut outcome, rec);
                }
                break;
            }

            if rec.enabled() {
                let issues: Vec<String> =
                    health.issues.iter().map(|i| i.label().to_owned()).collect();
                rec.emit(
                    Record::new("health")
                        .field("event", "unhealthy_epoch")
                        .field("epoch", epoch as u64)
                        .field("attempt", attempts as u64)
                        .field("policy", policy_label(guard.policy))
                        .field("issues", issues.join(",")),
                );
            }

            attempts += 1;
            if attempts > guard.max_retries {
                // Out of budget: hand back the last-good state instead of
                // poisoned weights.
                session.restore(agent, &snap);
                session.set_max_grad_norm(base_clip);
                outcome.aborted = true;
                if rec.enabled() {
                    rec.emit(
                        Record::new("health")
                            .field("event", "aborted")
                            .field("epoch", epoch as u64)
                            .field("retries", guard.max_retries as u64),
                    );
                }
                return outcome;
            }

            match guard.policy {
                GuardPolicy::Skip => {
                    session.restore(agent, &snap);
                    outcome.epochs_skipped += 1;
                    rec.counter(labels::COUNTER_RESILIENCE_EPOCHS_SKIPPED, 1);
                    break;
                }
                GuardPolicy::Clip => {
                    session.restore(agent, &snap);
                    let tightened = session.max_grad_norm().unwrap_or(10.0) * 0.5;
                    session.set_max_grad_norm(Some(tightened));
                }
                GuardPolicy::Rollback => {
                    if let Some(p) = &path {
                        let intact = rollback_via_checkpoint(
                            agent,
                            p,
                            &guard,
                            &mut opts.faults,
                            &mut outcome,
                            rec,
                        );
                        if !intact {
                            outcome.corruption_detected += 1;
                            rec.counter(labels::COUNTER_RESILIENCE_CORRUPTIONS, 1);
                        }
                    }
                    // The snapshot is the authoritative last-good state
                    // (it also holds optimizer moments and RNG streams);
                    // restoring it heals the agent either way.
                    session.restore(agent, &snap);
                    if let Some(p) = &path {
                        // Rewrite the checkpoint so the disk copy is clean
                        // again after detected corruption.
                        if outcome.corruption_detected > 0 {
                            write_checkpoint(agent, p, &guard, &mut opts.faults, &mut outcome, rec);
                        }
                    }
                }
            }
        }
    }
    outcome
}

/// [`train_sdp_guarded`] without telemetry.
///
/// # Panics
///
/// Panics if the market is shorter than the observation window + 2.
pub fn train_sdp_guarded_quiet(
    trainer: &Trainer,
    agent: &mut SdpAgent,
    market: &MarketData,
    opts: &mut ResilienceOptions,
) -> GuardedOutcome {
    train_sdp_guarded(trainer, agent, market, opts, &mut NoopRecorder)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::config::SdpConfig;
    use spikefolio_market::Date;

    fn trending_market(periods: usize) -> MarketData {
        let mut candles = Vec::new();
        let mut up = 100.0;
        let mut down = 100.0;
        for _ in 0..periods {
            let nu = up * 1.015;
            let nd = down * 0.995;
            candles.push(Candle::new(up, nu, up, nu, 1.0));
            candles.push(Candle::new(down, down, nd, nd, 1.0));
            up = nu;
            down = nd;
        }
        MarketData::new(vec!["UP".into(), "DN".into()], Date::new(2020, 1, 1), 4, 2, candles)
    }

    fn tiny_cfg() -> SdpConfig {
        let mut cfg = SdpConfig::smoke();
        cfg.training.epochs = 3;
        cfg.training.steps_per_epoch = 2;
        cfg.training.batch_size = 4;
        cfg
    }

    #[test]
    fn faultless_guarded_run_matches_plain_training() {
        let market = trending_market(80);
        let cfg = tiny_cfg();
        let trainer = Trainer::new(&cfg);

        let mut plain = SdpAgent::new(&cfg, market.num_assets(), 3);
        let plain_log = trainer.train_sdp(&mut plain, &market);

        let mut guarded = SdpAgent::new(&cfg, market.num_assets(), 3);
        let mut opts = ResilienceOptions::default();
        let outcome = train_sdp_guarded_quiet(&trainer, &mut guarded, &market, &mut opts);

        assert!(!outcome.aborted);
        assert_eq!(outcome.recoveries, 0);
        assert_eq!(outcome.log.epoch_rewards, plain_log.epoch_rewards);
        assert_eq!(stbp::flat_params(&plain.network), stbp::flat_params(&guarded.network));
    }

    #[test]
    fn nan_fault_recovers_to_faultfree_weights() {
        let market = trending_market(80);
        let cfg = tiny_cfg();
        let trainer = Trainer::new(&cfg);

        let mut clean = SdpAgent::new(&cfg, market.num_assets(), 3);
        let _ = trainer.train_sdp(&mut clean, &market);

        let mut faulted = SdpAgent::new(&cfg, market.num_assets(), 3);
        let mut opts = ResilienceOptions {
            faults: FaultPlan::new(1).grad_fault_at(1, GradFault::NaN),
            ..Default::default()
        };
        let outcome = train_sdp_guarded_quiet(&trainer, &mut faulted, &market, &mut opts);
        assert!(!outcome.aborted);
        assert_eq!(outcome.recoveries, 1);
        // One-shot fault + bit-exact rollback: the recovered run equals
        // the fault-free run.
        assert_eq!(stbp::flat_params(&clean.network), stbp::flat_params(&faulted.network));
    }

    #[test]
    fn persistent_fault_exhausts_retries_and_aborts_cleanly() {
        let market = trending_market(80);
        let cfg = tiny_cfg();
        let trainer = Trainer::new(&cfg);
        let mut agent = SdpAgent::new(&cfg, market.num_assets(), 3);
        // Schedule more NaN faults on epoch 0 than the retry budget by
        // reusing the epoch key (take_grad_fault consumes one per retry).
        let mut plan = FaultPlan::new(9);
        for _ in 0..10 {
            plan = plan.grad_fault_at(0, GradFault::NaN);
        }
        let mut opts = ResilienceOptions {
            guard: GuardConfig { max_retries: 2, ..GuardConfig::default() },
            faults: plan,
            ..Default::default()
        };
        let before = stbp::flat_params(&agent.network);
        let outcome = train_sdp_guarded_quiet(&trainer, &mut agent, &market, &mut opts);
        assert!(outcome.aborted);
        assert!(outcome.log.epoch_rewards.is_empty());
        // Last-good state: the initial parameters, all finite.
        assert_eq!(stbp::flat_params(&agent.network), before);
    }

    #[test]
    fn skip_policy_discards_the_epoch() {
        let market = trending_market(80);
        let cfg = tiny_cfg();
        let trainer = Trainer::new(&cfg);
        let mut agent = SdpAgent::new(&cfg, market.num_assets(), 3);
        let mut opts = ResilienceOptions {
            guard: GuardConfig { policy: GuardPolicy::Skip, ..GuardConfig::default() },
            faults: FaultPlan::new(2).grad_fault_at(1, GradFault::Inf),
            ..Default::default()
        };
        let outcome = train_sdp_guarded_quiet(&trainer, &mut agent, &market, &mut opts);
        assert!(!outcome.aborted);
        assert_eq!(outcome.epochs_skipped, 1);
        assert_eq!(outcome.recoveries, 0);
        // One epoch discarded: only epochs-1 committed.
        assert_eq!(outcome.log.epoch_rewards.len(), cfg.training.epochs - 1);
        assert!(stbp::flat_params(&agent.network).iter().all(|p| p.is_finite()));
    }

    #[test]
    fn clip_policy_tightens_and_recovers_from_explosion() {
        let market = trending_market(80);
        let cfg = tiny_cfg();
        let trainer = Trainer::new(&cfg);
        let mut agent = SdpAgent::new(&cfg, market.num_assets(), 3);
        let mut opts = ResilienceOptions {
            guard: GuardConfig { policy: GuardPolicy::Clip, ..GuardConfig::default() },
            faults: FaultPlan::new(3).grad_fault_at(0, GradFault::Explode),
            ..Default::default()
        };
        let outcome = train_sdp_guarded_quiet(&trainer, &mut agent, &market, &mut opts);
        assert!(!outcome.aborted);
        assert_eq!(outcome.recoveries, 1);
        assert_eq!(outcome.log.epoch_rewards.len(), cfg.training.epochs);
    }

    #[test]
    fn market_faults_land_on_the_grid() {
        let mut market = trending_market(40);
        let faults = [
            MarketFault { period: 3, asset: 0, kind: MarketFaultKind::DropNan },
            MarketFault { period: 5, asset: 1, kind: MarketFaultKind::NonPositive },
            MarketFault { period: 7, asset: 0, kind: MarketFaultKind::Outlier(1000.0) },
            MarketFault { period: 9999, asset: 0, kind: MarketFaultKind::DropNan }, // ignored
        ];
        apply_market_faults(&mut market, &faults);
        assert!(market.candle(3, 0).close.is_nan());
        assert!(market.candle(5, 1).close < 0.0);
        let spike = market.candle(7, 0);
        assert!(spike.close > 1000.0 && spike.high >= spike.close);
    }
}
