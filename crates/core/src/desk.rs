//! The live desk: a chaos-hardened continuous-learning loop.
//!
//! `spikefolio live-desk` runs the full production shape of the paper's
//! pipeline as one supervised loop: market data arrives incrementally (a
//! seeded generator revealing periods round by round, or a CSV feed
//! tailed with [`CsvTail`]), a guarded trainer
//! ([`train_sdp_guarded`](crate::guarded::train_sdp_guarded)) fine-tunes
//! the incumbent policy on a sliding window, and every candidate must
//! pass a three-stage validation gate before the serving [`ModelStore`]
//! hot-swaps it in:
//!
//! 1. **integrity** — the candidate checkpoint on disk round-trips
//!    through `load_sdp` (CRC + shape validation); a rotted file is
//!    healed from the in-memory candidate and re-probed once,
//! 2. **validation** — the candidate's out-of-sample reward (mean log
//!    return of a backtest on the held-out tail of the window) must not
//!    fall below the incumbent's on the same slice,
//! 3. **drift** — the relative drift of the candidate's output-weight
//!    entropy (the PR-7 health-monitor baseline probe) against the
//!    incumbent's must stay under a bound.
//!
//! A candidate that fails any stage is **quarantined** — copied to
//! `quarantine/round-N-<kind>.ckpt` with the reason recorded on the
//! store ([`ModelStore::record_rejection`]) — and serving continues on
//! the last-good model. The desk therefore maintains one invariant above
//! all: *the serving model's out-of-sample reward never decreases*.
//!
//! Faults come from the pipeline schedule of a seeded
//! [`FaultPlan`] ([`PipelineFaultKind`]): trainer NaN epochs and worker
//! panics, corrupted candidate checkpoints, poisoned validation slices,
//! swap-time IO failures, and stalled feeds. Every recovery path is
//! deterministic and converges to the fault-free outcome, so a desk run
//! whose faults were all absorbed finishes with **bitwise identical
//! weights** to a fault-free run of the same seed — asserted by
//! `tests/live_desk.rs` via [`DeskReport::final_weights_crc`].

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spikefolio_blackbox::{install_panic_dump, FlightRecorder, LineageEntry};
use spikefolio_env::Backtester;
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_market::{Candle, CsvTail, Date, MarketData};
use spikefolio_resilience::io::{atomic_write_faulted, retry_io};
use spikefolio_resilience::{crc32, FaultPlan, GradFault, GuardConfig, PipelineFaultKind};
use spikefolio_serve::metrics::{probe_baseline, HealthConfig};
use spikefolio_serve::ModelStore;
use spikefolio_snn::stbp::flat_params;
use spikefolio_telemetry::value::Value;
use spikefolio_telemetry::{labels, NoopRecorder, Record, Recorder};

use crate::agent::SdpAgent;
use crate::checkpoint;
use crate::config::SdpConfig;
use crate::guarded::{train_sdp_guarded, ResilienceOptions};
use crate::serving::{BackendKind, CheckpointBackendLoader, FloatPolicyBackend};
use crate::training::Trainer;

/// IO-fault label of the serving-checkpoint swap write; schedule
/// [`FaultPlan::fail_writes`] against it (the desk does this itself for
/// [`PipelineFaultKind::SwapIo`]).
pub const DESK_SWAP_IO_LABEL: &str = "desk/swap";

/// Configuration of one live-desk run.
#[derive(Debug, Clone)]
pub struct DeskOptions {
    /// Model + training topology (shared by trainer and serving loader).
    pub config: SdpConfig,
    /// Master seed: generator market, warmup agent init, fault plans.
    pub seed: u64,
    /// Continuous-learning rounds after warmup.
    pub rounds: usize,
    /// Periods delivered before the first incumbent is trained.
    pub warmup: usize,
    /// New periods revealed per round (generator mode).
    pub reveal_per_round: usize,
    /// Sliding-window length in periods the trainer sees; `0` grows the
    /// window unboundedly (train on everything delivered so far).
    pub window: usize,
    /// Fraction of the window held out (from the end) as the
    /// out-of-sample validation slice.
    pub val_fraction: f64,
    /// Gate 3 bound: maximum relative entropy drift of a candidate vs
    /// the incumbent.
    pub drift_threshold: f64,
    /// Guard thresholds + IO retry budget shared by the trainer and the
    /// swap write.
    pub guard: GuardConfig,
    /// Scripted pipeline faults (see [`parse_fault_spec`]).
    pub faults: FaultPlan,
    /// Serving backend the store loads candidates into.
    pub backend: BackendKind,
    /// Working directory: `serving.ckpt`, `candidate.ckpt`, and the
    /// `quarantine/` subdirectory live here.
    pub dir: PathBuf,
    /// Tail this CSV feed instead of the seeded generator.
    pub csv: Option<PathBuf>,
    /// Feed polls without new data before a round is declared stalled
    /// and the desk stops.
    pub max_stall_polls: u32,
    /// Base of the capped exponential backoff between feed polls,
    /// milliseconds (`0` disables sleeping — used by tests).
    pub backoff_base_ms: u64,
    /// Flight-recorder dump path. `Some` arms the blackbox: pipeline
    /// events are ring-buffered and flushed here atomically on panic (a
    /// chained process hook), on every faulted round, and at run end.
    pub blackbox: Option<PathBuf>,
    /// Lineage-ledger path (`spikefolio.lineage.v1` JSONL, CRC-framed
    /// per line). `Some` appends one entry per completed round.
    pub lineage: Option<PathBuf>,
    /// Desk-top status-file path. `Some` atomically rewrites a
    /// `spikefolio.deskstatus.v1` snapshot after every round, which the
    /// `desk-top` dashboard polls.
    pub status: Option<PathBuf>,
}

impl DeskOptions {
    /// A fast, deterministic configuration for tests and the CI smoke:
    /// smoke-sized model, four rounds of six periods over a 40-period
    /// warmup, no sleeps.
    pub fn smoke(dir: PathBuf) -> Self {
        Self {
            config: SdpConfig::smoke(),
            seed: 20220314,
            rounds: 4,
            warmup: 40,
            reveal_per_round: 6,
            window: 0,
            val_fraction: 0.25,
            drift_threshold: 0.75,
            guard: GuardConfig { backoff_base_ms: 0, ..GuardConfig::default() },
            faults: FaultPlan::default(),
            backend: BackendKind::Float,
            dir,
            csv: None,
            max_stall_polls: 8,
            backoff_base_ms: 0,
            blackbox: None,
            lineage: None,
            status: None,
        }
    }
}

/// What one desk round did.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Periods delivered by the feed when the round trained.
    pub revealed: usize,
    /// `promoted`, `rejected:<integrity|validation|drift>`,
    /// `swap_failed`, or `stalled`.
    pub outcome: String,
    /// Labels of the pipeline faults scheduled for this round.
    pub faults: Vec<String>,
    /// Candidate out-of-sample reward (NaN when training never produced
    /// an evaluable candidate).
    pub candidate_reward: f64,
    /// Incumbent out-of-sample reward on the same validation slice.
    pub incumbent_reward: f64,
    /// Out-of-sample reward of whatever is serving after the round —
    /// the candidate's if promoted, otherwise the incumbent's. By the
    /// gate's reward floor this is always `>= incumbent_reward`.
    pub serving_reward: f64,
    /// Store version serving after the round.
    pub served_version: u64,
    /// Relative entropy drift of the candidate vs the incumbent.
    pub entropy_drift: f64,
    /// Faults absorbed this round (trainer retries, heals, swap-IO
    /// retries, stall re-polls, poisoned-validation rebuilds).
    pub recoveries: u64,
    /// Whether the round ended with an unrecovered fault (serving
    /// continues on last-good, but the desk is degraded).
    pub degraded: bool,
}

/// Outcome of a whole desk run ([`run_desk`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeskReport {
    /// Master seed of the run.
    pub seed: u64,
    /// Per-round records in order.
    pub rounds: Vec<RoundRecord>,
    /// Candidates that passed the gate and were hot-swapped in.
    pub promotions: u64,
    /// Candidates quarantined (gate rejections + unrecovered faults).
    pub quarantines: u64,
    /// Total faults absorbed across all rounds.
    pub recoveries: u64,
    /// Feed polls that returned no new data.
    pub feed_stalls: u64,
    /// Store version serving when the desk stopped.
    pub final_version: u64,
    /// CRC-32 over the little-endian bytes of the final incumbent
    /// parameters — the cheap bitwise-reproducibility witness.
    pub final_weights_crc: u32,
    /// Every version that ever served: 1 (warmup) plus each promotion.
    /// Anything served outside this list would be a gate bypass.
    pub gate_passed_versions: Vec<u64>,
    /// Whether the *last* round ended degraded (an unrecovered fault
    /// with nothing after it to clear the flag).
    pub degraded: bool,
    /// The feed ran dry or stalled past the watchdog budget before all
    /// rounds completed.
    pub ended_early: bool,
}

impl DeskReport {
    /// The report as a `spikefolio.desk.v1` [`Value`] tree.
    pub fn to_value(&self) -> Value {
        let rounds = self
            .rounds
            .iter()
            .map(|r| {
                Value::Map(vec![
                    ("round".to_string(), Value::U64(r.round as u64)),
                    ("revealed".to_string(), Value::U64(r.revealed as u64)),
                    ("outcome".to_string(), Value::Str(r.outcome.clone())),
                    (
                        "faults".to_string(),
                        Value::List(r.faults.iter().cloned().map(Value::Str).collect()),
                    ),
                    ("candidate_reward".to_string(), Value::F64(r.candidate_reward)),
                    ("incumbent_reward".to_string(), Value::F64(r.incumbent_reward)),
                    ("serving_reward".to_string(), Value::F64(r.serving_reward)),
                    ("served_version".to_string(), Value::U64(r.served_version)),
                    ("entropy_drift".to_string(), Value::F64(r.entropy_drift)),
                    ("recoveries".to_string(), Value::U64(r.recoveries)),
                    ("degraded".to_string(), Value::Bool(r.degraded)),
                ])
            })
            .collect();
        Value::Map(vec![
            ("schema".to_string(), Value::Str("spikefolio.desk.v1".to_string())),
            ("seed".to_string(), Value::U64(self.seed)),
            ("promotions".to_string(), Value::U64(self.promotions)),
            ("quarantines".to_string(), Value::U64(self.quarantines)),
            ("recoveries".to_string(), Value::U64(self.recoveries)),
            ("feed_stalls".to_string(), Value::U64(self.feed_stalls)),
            ("final_version".to_string(), Value::U64(self.final_version)),
            ("final_weights_crc".to_string(), Value::U64(self.final_weights_crc as u64)),
            (
                "gate_passed_versions".to_string(),
                Value::List(self.gate_passed_versions.iter().map(|&v| Value::U64(v)).collect()),
            ),
            ("degraded".to_string(), Value::Bool(self.degraded)),
            ("ended_early".to_string(), Value::Bool(self.ended_early)),
            ("rounds".to_string(), Value::List(rounds)),
        ])
    }

    /// The report as one-line JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "live-desk seed {}: {} rounds, {} promoted, {} quarantined, {} recoveries, \
             {} feed stalls",
            self.seed,
            self.rounds.len(),
            self.promotions,
            self.quarantines,
            self.recoveries,
            self.feed_stalls,
        );
        for r in &self.rounds {
            let _ = writeln!(
                out,
                "  round {:>2}  {:<20} v{}  inc {:+.5}  cand {:+.5}  serve {:+.5}  \
                 drift {:.3}  recov {}{}{}",
                r.round,
                r.outcome,
                r.served_version,
                r.incumbent_reward,
                r.candidate_reward,
                r.serving_reward,
                r.entropy_drift,
                r.recoveries,
                if r.faults.is_empty() {
                    String::new()
                } else {
                    format!("  [{}]", r.faults.join(","))
                },
                if r.degraded { "  DEGRADED" } else { "" },
            );
        }
        let _ = writeln!(
            out,
            "final: serving v{} (weights crc 0x{:08x}), health {}{}",
            self.final_version,
            self.final_weights_crc,
            if self.degraded { "DEGRADED" } else { "ok" },
            if self.ended_early { ", ended early (feed stalled)" } else { "" },
        );
        out
    }
}

/// Where new periods come from.
enum Feed {
    /// Pre-generated seeded market revealed `reveal_per_round` periods
    /// at a time — the deterministic chaos-test mode.
    Generator {
        /// The full market; rounds see `slice(0, revealed)`.
        market: MarketData,
    },
    /// A CSV feed tailed from disk; partially written final lines and
    /// incomplete trailing periods are held back by [`CsvTail`].
    Csv {
        /// The tail follower.
        tail: CsvTail,
        /// Most recent complete snapshot.
        last: Option<MarketData>,
    },
}

impl Feed {
    fn open(opts: &DeskOptions) -> Result<Self, String> {
        match &opts.csv {
            Some(path) => {
                Ok(Self::Csv { tail: CsvTail::new(path, Date::new(2016, 1, 1), 2), last: None })
            }
            None => {
                let total = opts.warmup + opts.rounds * opts.reveal_per_round;
                // The shrunk presets emit 2 periods per day; over-generate
                // by a day so the last round never runs dry.
                let days = (total / 2 + 2) as i64;
                let market = ExperimentPreset::experiment1().shrunk(days, 0).generate(opts.seed);
                Ok(Self::Generator { market })
            }
        }
    }

    /// Blocks (with capped exponential backoff) until at least `target`
    /// periods are available; `Ok(None)` means the watchdog budget ran
    /// out (generator exhausted or CSV feed stalled).
    fn advance_to(
        &mut self,
        target: usize,
        injected_stalls: u32,
        opts: &DeskOptions,
        stalls: &mut u64,
        rec: &mut dyn Recorder,
    ) -> Result<Option<MarketData>, String> {
        // Injected stalls model a feed that goes quiet for a few
        // watchdog ticks and then resumes: count them, back off, carry on.
        for k in 0..injected_stalls {
            *stalls += 1;
            rec.counter(labels::COUNTER_DESK_FEED_STALLS, 1);
            sleep_backoff(opts.backoff_base_ms, k);
        }
        match self {
            Self::Generator { market } => {
                if target > market.num_periods() {
                    return Ok(None);
                }
                Ok(Some(market.slice(0, target)))
            }
            Self::Csv { tail, last } => {
                let mut polls = 0u32;
                loop {
                    if let Some(data) = tail.poll().map_err(|e| format!("feed: {e}"))? {
                        *last = Some(data);
                    }
                    for warning in tail.take_warnings() {
                        rec.counter(labels::COUNTER_DESK_FEED_WARNINGS, 1);
                        if rec.enabled() {
                            rec.emit(
                                Record::new("desk_feed_warning")
                                    .field("kind", warning.kind())
                                    .field("line", warning.line()),
                            );
                        }
                    }
                    if let Some(data) = last {
                        if data.num_periods() >= target {
                            return Ok(Some(data.clone()));
                        }
                    }
                    if polls >= opts.max_stall_polls {
                        return Ok(None);
                    }
                    *stalls += 1;
                    rec.counter(labels::COUNTER_DESK_FEED_STALLS, 1);
                    sleep_backoff(opts.backoff_base_ms, polls);
                    polls += 1;
                }
            }
        }
    }
}

/// Sleeps `base << k` milliseconds, shift capped at 10 (matching
/// [`retry_io`]'s cap); `base == 0` never sleeps.
fn sleep_backoff(base_ms: u64, k: u32) {
    if base_ms > 0 {
        std::thread::sleep(Duration::from_millis(base_ms << k.min(10)));
    }
}

/// Splits the training window into a fit slice and an out-of-sample
/// validation slice; the validation slice keeps `min_period` periods of
/// history so its first decision has a full state. Returns
/// `(fit, val, val_from)` — `val_from` lets callers re-extract a
/// pristine validation slice after detecting poisoned data.
pub(crate) fn fit_val_split(
    window: &MarketData,
    val_fraction: f64,
    min_period: usize,
) -> (MarketData, MarketData, usize) {
    let n = window.num_periods();
    let split = ((n as f64) * (1.0 - val_fraction)) as usize;
    let val_from = split.saturating_sub(min_period);
    (window.slice(0, split), window.slice(val_from, n), val_from)
}

/// Out-of-sample reward of `agent` on `val`: mean log return of a
/// backtest. Evaluates a clone, so the agent under test is never
/// perturbed — promotions depend only on training, not on how often the
/// gate looked.
pub(crate) fn out_of_sample_reward(trainer: &Trainer, agent: &SdpAgent, val: &MarketData) -> f64 {
    let mut probe = agent.clone();
    Backtester::new(trainer.config().backtest).run(&mut probe, val).metrics.mean_log_return
}

/// Every candle finite with a positive close — the precondition for an
/// evaluable validation slice.
fn market_is_finite(m: &MarketData) -> bool {
    (0..m.num_periods()).all(|p| {
        (0..m.num_assets()).all(|a| {
            let c = m.candle(p, a);
            c.open.is_finite()
                && c.high.is_finite()
                && c.low.is_finite()
                && c.close.is_finite()
                && c.close > 0.0
        })
    })
}

/// Deterministic entropy probe of a policy: the PR-7 serving-health
/// baseline ([`probe_baseline`]) run against a float backend built from
/// the agent's network. Both sides of the drift gate use the float
/// probe, so the gate measures the *policy*, not quantization noise.
pub(crate) fn policy_entropy(agent: &SdpAgent) -> f64 {
    let backend = FloatPolicyBackend::new(agent.network.clone(), *agent.state_builder());
    probe_baseline(&backend, &HealthConfig::default(), 0).entropy
}

/// CRC-32 over the little-endian bytes of the agent's flat parameters.
fn weights_crc(agent: &SdpAgent) -> u32 {
    let bytes: Vec<u8> = flat_params(&agent.network).iter().flat_map(|p| p.to_le_bytes()).collect();
    crc32(&bytes)
}

fn fault_label(kind: PipelineFaultKind) -> String {
    match kind {
        PipelineFaultKind::TrainerNan => "nan".to_string(),
        PipelineFaultKind::TrainerPanic => "panic".to_string(),
        PipelineFaultKind::CorruptCandidate => "corrupt".to_string(),
        PipelineFaultKind::ValData => "val".to_string(),
        PipelineFaultKind::SwapIo => "swapio".to_string(),
        PipelineFaultKind::FeedStall(k) => format!("stall x{k}"),
        PipelineFaultKind::Crash => "crash".to_string(),
    }
}

/// Parses a fault-schedule spec into a [`FaultPlan`] of pipeline
/// faults: comma-separated `<kind>@<round>` tokens where kind is one of
/// `nan`, `panic`, `corrupt`, `val`, `swapio`, `crash`, or `stall`
/// (optionally `stall@<round>x<ticks>`). `crash` panics the whole desk
/// process mid-round — it has no recovery path and exists to exercise
/// the flight recorder's crash dump. Example: `"corrupt@1,nan@2,swapio@3"`.
///
/// # Errors
///
/// A message naming the offending token.
pub fn parse_fault_spec(spec: &str, seed: u64) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new(seed);
    for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let (name, at) =
            tok.split_once('@').ok_or_else(|| format!("fault {tok:?}: expected <kind>@<round>"))?;
        let (round_str, kind) = match name {
            "nan" => (at, PipelineFaultKind::TrainerNan),
            "panic" => (at, PipelineFaultKind::TrainerPanic),
            "corrupt" => (at, PipelineFaultKind::CorruptCandidate),
            "val" => (at, PipelineFaultKind::ValData),
            "swapio" => (at, PipelineFaultKind::SwapIo),
            "crash" => (at, PipelineFaultKind::Crash),
            "stall" => match at.split_once('x') {
                Some((r, ticks)) => {
                    let t: u32 = ticks
                        .parse()
                        .map_err(|_| format!("fault {tok:?}: bad stall tick count {ticks:?}"))?;
                    (r, PipelineFaultKind::FeedStall(t))
                }
                None => (at, PipelineFaultKind::FeedStall(1)),
            },
            other => {
                return Err(format!(
                    "fault {tok:?}: unknown kind {other:?} \
                     (expected nan|panic|corrupt|val|swapio|crash|stall)"
                ))
            }
        };
        let round: u64 =
            round_str.parse().map_err(|_| format!("fault {tok:?}: bad round {round_str:?}"))?;
        plan = plan.pipeline_fault(round, kind);
    }
    Ok(plan)
}

/// Flips a few bits of the candidate checkpoint on disk through the
/// plan's deterministic corruptor.
fn corrupt_file(path: &PathBuf, faults: &mut FaultPlan) -> Result<(), String> {
    let mut bytes = std::fs::read(path).map_err(|e| format!("corrupt {}: {e}", path.display()))?;
    faults.corrupt_bytes(&mut bytes);
    std::fs::write(path, &bytes).map_err(|e| format!("corrupt {}: {e}", path.display()))
}

/// Loads the candidate checkpoint into a fresh skeleton — the same
/// full validation ([`checkpoint::load_sdp`]: CRC, syntax, shape) the
/// serving loader applies.
fn probe_checkpoint(opts: &DeskOptions, num_assets: usize, path: &PathBuf) -> bool {
    let mut probe = SdpAgent::new(&opts.config, num_assets, 0);
    checkpoint::load_sdp(&mut probe, path).is_ok()
}

/// The desk's on-disk layout inside [`DeskOptions::dir`].
struct DeskPaths {
    serving: PathBuf,
    candidate: PathBuf,
    quarantine_dir: PathBuf,
}

/// Schema tag of the desk-top status file ([`DeskOptions::status`]).
pub const DESK_STATUS_SCHEMA: &str = "spikefolio.deskstatus.v1";

/// Schema tag of the per-quarantine triage manifest written next to
/// every quarantined checkpoint.
pub const TRIAGE_MANIFEST_SCHEMA: &str = "spikefolio.triage.v1";

/// The desk's observability sidecar: flight recorder, lineage ledger,
/// and desk-top status file. Everything here is observe-only and
/// best-effort — a failing disk degrades the evidence, never the desk.
struct Observatory {
    flight: Option<(Arc<FlightRecorder>, PathBuf)>,
    lineage: Option<PathBuf>,
    status: Option<PathBuf>,
    seed: u64,
    rounds_total: usize,
    /// Quarantine tally by typed reason, for the status file.
    quarantines_by_kind: BTreeMap<String, u64>,
    /// Per-round `(reward margin, entropy drift)` history for the
    /// desk-top sparklines (NaN margin = round never reached the gate).
    margins: Vec<(f64, f64)>,
    /// Monotone status-file revision, so pollers can detect staleness.
    status_seq: u64,
}

impl Observatory {
    fn new(opts: &DeskOptions) -> Self {
        Self {
            flight: opts
                .blackbox
                .as_ref()
                .map(|path| (Arc::new(FlightRecorder::new(256)), path.clone())),
            lineage: opts.lineage.clone(),
            status: opts.status.clone(),
            seed: opts.seed,
            rounds_total: opts.rounds,
            quarantines_by_kind: BTreeMap::new(),
            margins: Vec::new(),
            status_seq: 0,
        }
    }

    /// Records one flight-recorder event (no-op when the blackbox is
    /// unarmed).
    fn event(&self, stage: &str, fields: Vec<(String, Value)>) {
        if let Some((flight, _)) = &self.flight {
            flight.record(stage, fields);
        }
    }

    /// Flushes the flight recorder to its dump path, best-effort.
    fn dump(&self) {
        if let Some((flight, path)) = &self.flight {
            let _ = flight.dump(path);
        }
    }

    /// Appends one lineage entry, best-effort.
    fn lineage_append(&self, entry: &LineageEntry) {
        if let Some(path) = &self.lineage {
            let _ = entry.append(path);
        }
    }

    /// Atomically rewrites the desk-top status snapshot, best-effort.
    fn write_status(&mut self, report: &DeskReport, served_version: u64, done: bool) {
        let Some(path) = &self.status else { return };
        self.status_seq += 1;
        let last = report.rounds.last();
        let by_kind =
            self.quarantines_by_kind.iter().map(|(k, &n)| (k.clone(), Value::U64(n))).collect();
        let margins = self
            .margins
            .iter()
            .map(|&(m, d)| Value::List(vec![Value::F64(m), Value::F64(d)]))
            .collect();
        let v = Value::Map(vec![
            ("schema".to_string(), Value::Str(DESK_STATUS_SCHEMA.to_string())),
            ("seq".to_string(), Value::U64(self.status_seq)),
            ("seed".to_string(), Value::U64(self.seed)),
            ("rounds_total".to_string(), Value::U64(self.rounds_total as u64)),
            ("rounds_done".to_string(), Value::U64(report.rounds.len() as u64)),
            ("done".to_string(), Value::Bool(done)),
            ("served_version".to_string(), Value::U64(served_version)),
            ("promotions".to_string(), Value::U64(report.promotions)),
            ("quarantines".to_string(), Value::U64(report.quarantines)),
            ("quarantines_by_kind".to_string(), Value::Map(by_kind)),
            ("recoveries".to_string(), Value::U64(report.recoveries)),
            ("feed_stalls".to_string(), Value::U64(report.feed_stalls)),
            ("degraded".to_string(), Value::Bool(report.degraded)),
            ("last_round".to_string(), last.map_or(Value::Null, |r| Value::U64(r.round as u64))),
            (
                "last_outcome".to_string(),
                last.map_or(Value::Null, |r| Value::Str(r.outcome.clone())),
            ),
            (
                "last_revealed".to_string(),
                last.map_or(Value::Null, |r| Value::U64(r.revealed as u64)),
            ),
            (
                "last_candidate_reward".to_string(),
                last.map_or(Value::Null, |r| Value::F64(r.candidate_reward)),
            ),
            (
                "last_incumbent_reward".to_string(),
                last.map_or(Value::Null, |r| Value::F64(r.incumbent_reward)),
            ),
            ("last_drift".to_string(), last.map_or(Value::Null, |r| Value::F64(r.entropy_drift))),
            ("margins".to_string(), Value::List(margins)),
        ]);
        let _ = spikefolio_resilience::atomic_write(path, v.to_json().as_bytes());
    }
}

/// Identity of one round for the record helper.
struct RoundInfo {
    round: usize,
    revealed: usize,
    faults: Vec<String>,
    /// Store version of the incumbent the round fine-tuned from.
    parent_version: u64,
    /// First period index of this round's training window.
    window_from: usize,
    /// Asset count of the feed (for the triage manifest).
    num_assets: usize,
    /// Fine-tune wall seconds (0 when the round never trained).
    fine_tune_wall_s: f64,
    /// When the round started, for the whole-round trace span.
    started: Instant,
}

/// Gate-side numbers of a finished round, plus which stages actually
/// ran — the triage manifest records this so a replay knows what is
/// reproducible and what was never computed.
struct GateNumbers {
    candidate_reward: f64,
    incumbent_reward: f64,
    entropy_drift: f64,
    recoveries: u64,
    degraded: bool,
    /// Integrity probe result; `None` = the probe never ran.
    integrity: Option<bool>,
    /// Whether the out-of-sample rewards were computed.
    reward_evaluated: bool,
    /// Whether the entropy-drift stage ran.
    drift_evaluated: bool,
}

/// How a round ended (the stalled case is handled at the feed).
enum RoundDecision {
    Promoted(GateNumbers),
    Quarantined { kind: &'static str, reason: String, g: GateNumbers },
    SwapFailed(GateNumbers),
}

/// Read-only round context shared by the record helper.
struct DeskCtx<'a> {
    store: &'a ModelStore,
    paths: &'a DeskPaths,
    opts: &'a DeskOptions,
}

/// Writes the `spikefolio.triage.v1` manifest next to a quarantined
/// checkpoint: everything `desk triage` needs to bitwise-replay the
/// gate (feed geometry, gate knobs, and the recorded numbers both as
/// floats and as raw f64 bits), plus the incumbent bytes it was judged
/// against. Best-effort — forensics must never fail the desk.
fn write_triage_manifest(
    ctx: &DeskCtx,
    info: &RoundInfo,
    kind: &str,
    reason: &str,
    g: &GateNumbers,
) {
    let opts = ctx.opts;
    let stem = format!("round-{}-{kind}", info.round);
    let incumbent_name = format!("{stem}.incumbent.ckpt");
    // The serving checkpoint is exactly the incumbent's bytes (it only
    // changes on promotion); snapshot it before later rounds advance it.
    let _ = std::fs::copy(&ctx.paths.serving, ctx.paths.quarantine_dir.join(&incumbent_name));
    let bits = |x: f64| Value::U64(x.to_bits());
    let v = Value::Map(vec![
        ("schema".to_string(), Value::Str(TRIAGE_MANIFEST_SCHEMA.to_string())),
        ("seed".to_string(), Value::U64(opts.seed)),
        ("round".to_string(), Value::U64(info.round as u64)),
        ("kind".to_string(), Value::Str(kind.to_string())),
        ("reason".to_string(), Value::Str(reason.to_string())),
        ("revealed".to_string(), Value::U64(info.revealed as u64)),
        ("window_from".to_string(), Value::U64(info.window_from as u64)),
        ("num_assets".to_string(), Value::U64(info.num_assets as u64)),
        (
            "feed_periods".to_string(),
            Value::U64((opts.warmup + opts.rounds * opts.reveal_per_round) as u64),
        ),
        ("val_fraction".to_string(), Value::F64(opts.val_fraction)),
        ("drift_threshold".to_string(), Value::F64(opts.drift_threshold)),
        (
            "csv".to_string(),
            opts.csv.as_ref().map_or(Value::Null, |p| Value::Str(p.to_string_lossy().into_owned())),
        ),
        (
            "integrity".to_string(),
            g.integrity
                .map_or(Value::Null, |ok| Value::Str(if ok { "pass" } else { "fail" }.to_string())),
        ),
        ("reward_evaluated".to_string(), Value::Bool(g.reward_evaluated)),
        ("drift_evaluated".to_string(), Value::Bool(g.drift_evaluated)),
        ("candidate_reward".to_string(), Value::F64(g.candidate_reward)),
        ("candidate_reward_bits".to_string(), bits(g.candidate_reward)),
        ("incumbent_reward".to_string(), Value::F64(g.incumbent_reward)),
        ("incumbent_reward_bits".to_string(), bits(g.incumbent_reward)),
        ("entropy_drift".to_string(), Value::F64(g.entropy_drift)),
        ("entropy_drift_bits".to_string(), bits(g.entropy_drift)),
        ("candidate_ckpt".to_string(), Value::Str(format!("{stem}.ckpt"))),
        ("incumbent_ckpt".to_string(), Value::Str(incumbent_name)),
    ]);
    let _ = spikefolio_resilience::atomic_write(
        ctx.paths.quarantine_dir.join(format!("{stem}.json")),
        v.to_json().as_bytes(),
    );
}

/// Books a finished round: quarantine side effects (forensic copy,
/// triage manifest, store rejection, counters), the `desk_round`
/// telemetry record and trace spans, the lineage-ledger entry, the
/// desk-top status snapshot, the report row, and the rolling
/// degraded/recovery totals.
fn finish_round(
    report: &mut DeskReport,
    rec: &mut dyn Recorder,
    obs: &mut Observatory,
    ctx: &DeskCtx,
    info: RoundInfo,
    decision: RoundDecision,
) {
    let (outcome, quarantine, serving_reward, g) = match decision {
        RoundDecision::Promoted(g) => ("promoted".to_string(), None, g.candidate_reward, g),
        RoundDecision::Quarantined { kind, reason, g } => {
            let qpath = ctx.paths.quarantine_dir.join(format!("round-{}-{kind}.ckpt", info.round));
            // Keep the rejected bytes for forensics; a missing candidate
            // file (trainer abort) is fine.
            let _ = std::fs::copy(&ctx.paths.candidate, &qpath);
            write_triage_manifest(ctx, &info, kind, &reason, &g);
            ctx.store.record_rejection(kind, &reason);
            rec.counter(labels::COUNTER_SERVE_SWAP_REJECTED, 1);
            rec.counter(labels::COUNTER_DESK_QUARANTINES, 1);
            report.quarantines += 1;
            *obs.quarantines_by_kind.entry(kind.to_string()).or_insert(0) += 1;
            if rec.enabled() {
                rec.emit(
                    Record::new("desk_quarantine")
                        .field("round", info.round as u64)
                        .field("kind", kind)
                        .field("reason", reason.as_str()),
                );
            }
            (format!("rejected:{kind}"), Some((kind, reason)), g.incumbent_reward, g)
        }
        RoundDecision::SwapFailed(g) => ("swap_failed".to_string(), None, g.incumbent_reward, g),
    };
    let served_version = ctx.store.version();
    if rec.enabled() {
        rec.span(&format!("desk/round/{:03}/fine_tune", info.round), info.fine_tune_wall_s);
        rec.span(&format!("desk/round/{:03}", info.round), info.started.elapsed().as_secs_f64());
        rec.emit(
            Record::new("desk_round")
                .field("round", info.round as u64)
                .field("revealed", info.revealed as u64)
                .field("outcome", outcome.as_str())
                .field("served_version", served_version)
                .field("incumbent_reward", g.incumbent_reward)
                .field("candidate_reward", g.candidate_reward)
                .field("serving_reward", serving_reward)
                .field("recoveries", g.recoveries)
                .field("degraded", g.degraded)
                .field("wall_s", info.fine_tune_wall_s),
        );
    }
    obs.event(
        "round/outcome",
        vec![
            ("round".to_string(), Value::U64(info.round as u64)),
            ("outcome".to_string(), Value::Str(outcome.clone())),
            ("served_version".to_string(), Value::U64(served_version)),
            ("candidate_reward".to_string(), Value::F64(g.candidate_reward)),
            ("incumbent_reward".to_string(), Value::F64(g.incumbent_reward)),
            ("entropy_drift".to_string(), Value::F64(g.entropy_drift)),
        ],
    );
    let (kind, reason) = match &quarantine {
        Some((kind, reason)) => (Some((*kind).to_string()), Some(reason.clone())),
        None => (None, None),
    };
    obs.lineage_append(&LineageEntry {
        round: info.round as u64,
        parent_version: info.parent_version,
        promoted_version: (outcome == "promoted").then_some(served_version),
        served_version,
        window_from: info.window_from as u64,
        revealed: info.revealed as u64,
        integrity_ok: g.integrity.unwrap_or(false),
        candidate_reward: g.candidate_reward,
        incumbent_reward: g.incumbent_reward,
        entropy_drift: g.entropy_drift,
        drift_bound: ctx.opts.drift_threshold,
        outcome: match outcome.as_str() {
            "promoted" => "promoted".to_string(),
            "swap_failed" => "swap_failed".to_string(),
            _ => "quarantined".to_string(),
        },
        kind,
        reason,
    });
    obs.margins.push((g.candidate_reward - g.incumbent_reward, g.entropy_drift));
    report.rounds.push(RoundRecord {
        round: info.round,
        revealed: info.revealed,
        outcome,
        faults: info.faults,
        candidate_reward: g.candidate_reward,
        incumbent_reward: g.incumbent_reward,
        serving_reward,
        served_version,
        entropy_drift: g.entropy_drift,
        recoveries: g.recoveries,
        degraded: g.degraded,
    });
    report.degraded = g.degraded;
    report.recoveries += g.recoveries;
    obs.write_status(report, served_version, false);
    if quarantine.is_some() || g.recoveries > 0 {
        // A faulted round is a dump trigger: flush the evidence while
        // it is fresh (a later hard crash must not cost us this round).
        obs.dump();
    }
}

/// Runs the live desk. See the [module docs](self) for the protocol.
///
/// # Errors
///
/// Unrecoverable environment failures as a message: working directory
/// not creatable, feed never delivering the warmup window, the initial
/// serving checkpoint unwritable. Pipeline faults are *not* errors —
/// they are absorbed or quarantined and show up in the report.
pub fn run_desk(mut opts: DeskOptions, rec: &mut dyn Recorder) -> Result<DeskReport, String> {
    let paths = DeskPaths {
        serving: opts.dir.join("serving.ckpt"),
        candidate: opts.dir.join("candidate.ckpt"),
        quarantine_dir: opts.dir.join("quarantine"),
    };
    std::fs::create_dir_all(&paths.quarantine_dir)
        .map_err(|e| format!("create {}: {e}", paths.quarantine_dir.display()))?;
    let serving_str = paths.serving.to_string_lossy().into_owned();
    let mut faults = std::mem::take(&mut opts.faults);
    let mut obs = Observatory::new(&opts);
    if let Some((flight, path)) = &obs.flight {
        // Crash safety: a panic anywhere in this process (injected crash
        // faults included) flushes the ring before the default hook runs.
        install_panic_dump(Arc::clone(flight), path.clone());
    }

    let mut report = DeskReport {
        seed: opts.seed,
        rounds: Vec::with_capacity(opts.rounds),
        promotions: 0,
        quarantines: 0,
        recoveries: 0,
        feed_stalls: 0,
        final_version: 0,
        final_weights_crc: 0,
        gate_passed_versions: vec![1],
        degraded: false,
        ended_early: false,
    };

    // Warmup: train the first incumbent on the initial window and open
    // the store on it (version 1).
    let mut feed = Feed::open(&opts)?;
    let data = feed
        .advance_to(opts.warmup, 0, &opts, &mut report.feed_stalls, rec)?
        .ok_or_else(|| format!("feed never delivered the {}-period warmup window", opts.warmup))?;
    let num_assets = data.num_assets();
    let trainer = Trainer::new(&opts.config);
    let mut incumbent = SdpAgent::new(&opts.config, num_assets, opts.seed);
    let min_period = incumbent.state_builder().min_period();
    {
        let (fit, _, _) = fit_val_split(&data, opts.val_fraction, min_period);
        let mut topts = ResilienceOptions { guard: opts.guard, ..Default::default() };
        let outcome = train_sdp_guarded(&trainer, &mut incumbent, &fit, &mut topts, rec);
        if outcome.aborted {
            return Err("warmup training aborted (unhealthy without injected faults)".to_string());
        }
    }
    checkpoint::save_sdp(&incumbent, &paths.serving)
        .map_err(|e| format!("write {}: {e}", paths.serving.display()))?;
    let loader = CheckpointBackendLoader::new(opts.config.clone(), num_assets, opts.backend);
    let store = ModelStore::open(Box::new(loader), &serving_str)?;
    obs.event(
        "warmup",
        vec![
            ("revealed".to_string(), Value::U64(data.num_periods() as u64)),
            ("version".to_string(), Value::U64(store.version())),
        ],
    );
    let ctx = DeskCtx { store: &store, paths: &paths, opts: &opts };

    for round in 0..opts.rounds {
        let round_started = Instant::now();
        let parent_version = store.version();
        rec.counter(labels::COUNTER_DESK_ROUNDS, 1);
        let scheduled = faults.take_pipeline_faults(round as u64);
        let fault_labels: Vec<String> = scheduled.iter().map(|&k| fault_label(k)).collect();
        let mut recoveries = 0u64;

        // 1. Feed: wait for this round's data through the stall watchdog.
        let injected_stalls: u32 = scheduled
            .iter()
            .map(|k| match k {
                PipelineFaultKind::FeedStall(n) => *n,
                _ => 0,
            })
            .sum();
        if injected_stalls > 0 {
            // A stall the watchdog rode out is an absorbed fault.
            recoveries += 1;
            rec.counter(labels::COUNTER_DESK_RECOVERIES, 1);
        }
        let target = opts.warmup + (round + 1) * opts.reveal_per_round;
        let Some(data) =
            feed.advance_to(target, injected_stalls, &opts, &mut report.feed_stalls, rec)?
        else {
            report.rounds.push(RoundRecord {
                round,
                revealed: 0,
                outcome: "stalled".to_string(),
                faults: fault_labels,
                candidate_reward: f64::NAN,
                incumbent_reward: f64::NAN,
                serving_reward: f64::NAN,
                served_version: store.version(),
                entropy_drift: 0.0,
                recoveries,
                degraded: true,
            });
            report.recoveries += recoveries;
            report.ended_early = true;
            report.degraded = true;
            obs.event(
                "feed/stalled",
                vec![
                    ("round".to_string(), Value::U64(round as u64)),
                    ("target".to_string(), Value::U64(target as u64)),
                ],
            );
            obs.write_status(&report, store.version(), false);
            obs.dump();
            break;
        };
        let revealed = data.num_periods();
        obs.event(
            "feed",
            vec![
                ("round".to_string(), Value::U64(round as u64)),
                ("revealed".to_string(), Value::U64(revealed as u64)),
                ("stalls".to_string(), Value::U64(u64::from(injected_stalls))),
            ],
        );
        if scheduled.contains(&PipelineFaultKind::Crash) {
            // A scripted hard crash: flush what we have (belt) and let
            // the chained panic hook append the panic event (suspenders).
            obs.event("fault/crash", vec![("round".to_string(), Value::U64(round as u64))]);
            obs.dump();
            panic!("injected crash fault (round {round})");
        }
        let from = if opts.window > 0 { revealed.saturating_sub(opts.window) } else { 0 };
        let window = data.slice(from, revealed);
        let (fit, mut val, val_from) = fit_val_split(&window, opts.val_fraction, min_period);

        // 2. Train the candidate under the epoch guard. A scheduled NaN
        // epoch is recovered inside `train_sdp_guarded` (bit-exact
        // rollback + replay); a scheduled panic loses the whole attempt,
        // so the desk discards it and retrains from the incumbent —
        // training is deterministic, so the retry converges on the
        // fault-free result.
        let fine_tune_started = Instant::now();
        let nan_scheduled = scheduled.contains(&PipelineFaultKind::TrainerNan);
        let panics = scheduled.iter().filter(|k| **k == PipelineFaultKind::TrainerPanic).count();
        for _ in 0..panics {
            let mut scratch = incumbent.clone();
            let mut topts = ResilienceOptions { guard: opts.guard, ..Default::default() };
            let _ = train_sdp_guarded(&trainer, &mut scratch, &fit, &mut topts, rec);
            drop(scratch); // the panicked worker's half-finished state
            recoveries += 1;
            rec.counter(labels::COUNTER_DESK_RECOVERIES, 1);
            if rec.enabled() {
                rec.emit(
                    Record::new("desk_fault")
                        .field("round", round as u64)
                        .field("fault", "trainer_panic")
                        .field("action", "retrain"),
                );
            }
        }
        let train_plan = if nan_scheduled {
            FaultPlan::new(opts.seed ^ round as u64).grad_fault_at(0, GradFault::NaN)
        } else {
            FaultPlan::default()
        };
        let mut candidate = incumbent.clone();
        let mut topts =
            ResilienceOptions { guard: opts.guard, faults: train_plan, ..Default::default() };
        let outcome = train_sdp_guarded(&trainer, &mut candidate, &fit, &mut topts, rec);
        recoveries += outcome.recoveries;
        if outcome.recoveries > 0 {
            rec.counter(labels::COUNTER_DESK_RECOVERIES, outcome.recoveries);
        }
        let fine_tune_wall_s = fine_tune_started.elapsed().as_secs_f64();
        obs.event(
            "fine_tune",
            vec![
                ("round".to_string(), Value::U64(round as u64)),
                ("parent_version".to_string(), Value::U64(parent_version)),
                ("recoveries".to_string(), Value::U64(recoveries)),
                ("aborted".to_string(), Value::Bool(outcome.aborted)),
            ],
        );

        // 3. Validation data: a poisoned slice is detected by the
        // finiteness scan and rebuilt from the pristine window before
        // any reward is computed, so fault and fault-free runs evaluate
        // identical slices.
        if scheduled.contains(&PipelineFaultKind::ValData) {
            let p = val.num_periods() / 2;
            let c = val.candle(p, 0);
            val.set_candle_unchecked(
                p,
                0,
                Candle {
                    open: f64::NAN,
                    high: f64::NAN,
                    low: f64::NAN,
                    close: f64::NAN,
                    volume: c.volume,
                },
            );
        }
        if !market_is_finite(&val) {
            val = window.slice(val_from, window.num_periods());
            recoveries += 1;
            rec.counter(labels::COUNTER_DESK_RECOVERIES, 1);
        }

        let info = RoundInfo {
            round,
            revealed,
            faults: fault_labels,
            parent_version,
            window_from: from,
            num_assets,
            fine_tune_wall_s,
            started: round_started,
        };
        if !market_is_finite(&val) {
            // Even the pristine window is unevaluable: refuse to gate on
            // garbage, keep serving last-good.
            let g = GateNumbers {
                candidate_reward: f64::NAN,
                incumbent_reward: f64::NAN,
                entropy_drift: 0.0,
                recoveries,
                degraded: true,
                integrity: None,
                reward_evaluated: false,
                drift_evaluated: false,
            };
            let reason = "validation slice non-finite even after rebuild".to_string();
            let decision = RoundDecision::Quarantined { kind: "validation", reason, g };
            finish_round(&mut report, rec, &mut obs, &ctx, info, decision);
            continue;
        }
        let incumbent_reward = out_of_sample_reward(&trainer, &incumbent, &val);
        if outcome.aborted {
            let g = GateNumbers {
                candidate_reward: f64::NAN,
                incumbent_reward,
                entropy_drift: 0.0,
                recoveries,
                degraded: true,
                integrity: None,
                reward_evaluated: false,
                drift_evaluated: false,
            };
            let reason =
                "trainer aborted: epoch stayed unhealthy through the retry budget".to_string();
            let decision = RoundDecision::Quarantined { kind: "integrity", reason, g };
            finish_round(&mut report, rec, &mut obs, &ctx, info, decision);
            continue;
        }
        let candidate_reward = out_of_sample_reward(&trainer, &candidate, &val);

        // 4. Gate stage 1 — integrity. Persist the candidate and prove
        // the on-disk bytes round-trip. A corrupted file is healed from
        // the in-memory candidate and re-probed once; corruption that
        // persists through the heal quarantines the candidate.
        if let Err(e) = checkpoint::save_sdp(&candidate, &paths.candidate) {
            let g = GateNumbers {
                candidate_reward,
                incumbent_reward,
                entropy_drift: 0.0,
                recoveries,
                degraded: true,
                integrity: Some(false),
                reward_evaluated: true,
                drift_evaluated: false,
            };
            let reason = format!("candidate write failed: {e}");
            let decision = RoundDecision::Quarantined { kind: "integrity", reason, g };
            finish_round(&mut report, rec, &mut obs, &ctx, info, decision);
            continue;
        }
        let mut corruptions =
            scheduled.iter().filter(|k| **k == PipelineFaultKind::CorruptCandidate).count();
        if corruptions > 0 {
            corrupt_file(&paths.candidate, &mut faults)?;
            corruptions -= 1;
        }
        let mut integrity_ok = probe_checkpoint(&opts, num_assets, &paths.candidate);
        if !integrity_ok {
            rec.counter(labels::COUNTER_RESILIENCE_CORRUPTIONS, 1);
            let healed = checkpoint::heal_sdp(&candidate, &paths.candidate)
                .map_err(|e| format!("heal {}: {e}", paths.candidate.display()))?;
            if healed {
                recoveries += 1;
                rec.counter(labels::COUNTER_DESK_RECOVERIES, 1);
            }
            if corruptions > 0 {
                // A persistent corruptor (e.g. bad disk) re-rots the file.
                corrupt_file(&paths.candidate, &mut faults)?;
            }
            integrity_ok = probe_checkpoint(&opts, num_assets, &paths.candidate);
        }
        obs.event(
            "gate/integrity",
            vec![
                ("round".to_string(), Value::U64(round as u64)),
                ("ok".to_string(), Value::Bool(integrity_ok)),
            ],
        );
        if !integrity_ok {
            let g = GateNumbers {
                candidate_reward,
                incumbent_reward,
                entropy_drift: 0.0,
                recoveries,
                degraded: true,
                integrity: Some(false),
                reward_evaluated: true,
                drift_evaluated: false,
            };
            let reason =
                "candidate checkpoint failed its integrity probe even after healing".to_string();
            let decision = RoundDecision::Quarantined { kind: "integrity", reason, g };
            finish_round(&mut report, rec, &mut obs, &ctx, info, decision);
            continue;
        }

        // 5. Gate stage 2 — reward floor: never swap in a model that is
        // out-of-sample worse than what is serving.
        obs.event(
            "gate/reward",
            vec![
                ("round".to_string(), Value::U64(round as u64)),
                ("candidate".to_string(), Value::F64(candidate_reward)),
                ("incumbent".to_string(), Value::F64(incumbent_reward)),
            ],
        );
        if !candidate_reward.is_finite() || candidate_reward < incumbent_reward {
            let g = GateNumbers {
                candidate_reward,
                incumbent_reward,
                entropy_drift: 0.0,
                recoveries,
                degraded: false,
                integrity: Some(true),
                reward_evaluated: true,
                drift_evaluated: false,
            };
            let reason = format!(
                "candidate reward {candidate_reward:.6} below incumbent \
                 {incumbent_reward:.6} on the held-out slice"
            );
            let decision = RoundDecision::Quarantined { kind: "validation", reason, g };
            finish_round(&mut report, rec, &mut obs, &ctx, info, decision);
            continue;
        }

        // 6. Gate stage 3 — drift bound on the entropy baseline probe.
        let inc_entropy = policy_entropy(&incumbent);
        let cand_entropy = policy_entropy(&candidate);
        let entropy_drift = (cand_entropy - inc_entropy).abs() / inc_entropy.abs().max(1e-6);
        obs.event(
            "gate/drift",
            vec![
                ("round".to_string(), Value::U64(round as u64)),
                ("drift".to_string(), Value::F64(entropy_drift)),
                ("bound".to_string(), Value::F64(opts.drift_threshold)),
            ],
        );
        if !entropy_drift.is_finite() || entropy_drift > opts.drift_threshold {
            let g = GateNumbers {
                candidate_reward,
                incumbent_reward,
                entropy_drift,
                recoveries,
                degraded: false,
                integrity: Some(true),
                reward_evaluated: true,
                drift_evaluated: true,
            };
            let reason =
                format!("entropy drift {entropy_drift:.4} over bound {:.4}", opts.drift_threshold);
            let decision = RoundDecision::Quarantined { kind: "drift", reason, g };
            finish_round(&mut report, rec, &mut obs, &ctx, info, decision);
            continue;
        }

        // 7. Swap: republish the gate-passed bytes at the serving path
        // (atomic write, bounded retry; scheduled SwapIo faults fail the
        // first attempts) and hot-swap the store.
        if scheduled.contains(&PipelineFaultKind::SwapIo) {
            faults = faults.fail_writes(DESK_SWAP_IO_LABEL, 2);
        }
        let bytes = std::fs::read(&paths.candidate)
            .map_err(|e| format!("read {}: {e}", paths.candidate.display()))?;
        let attempt = retry_io(opts.guard.io_retries, opts.guard.backoff_base_ms, || {
            atomic_write_faulted(&paths.serving, &bytes, DESK_SWAP_IO_LABEL, Some(&mut faults))
        });
        if attempt.retries > 0 {
            recoveries += attempt.retries as u64;
            rec.counter(labels::COUNTER_RESILIENCE_IO_RETRIES, attempt.retries as u64);
            rec.counter(labels::COUNTER_DESK_RECOVERIES, attempt.retries as u64);
        }
        // A reload error keeps last-good; the store counted the failure.
        let swap_started = Instant::now();
        let swapped = match attempt.result {
            Ok(()) => store.reload(&serving_str).ok(),
            Err(_) => None,
        };
        obs.event(
            "swap",
            vec![
                ("round".to_string(), Value::U64(round as u64)),
                ("version".to_string(), swapped.map_or(Value::Null, Value::U64)),
                ("retries".to_string(), Value::U64(attempt.retries as u64)),
            ],
        );
        match swapped {
            Some(version) => {
                incumbent = candidate;
                report.gate_passed_versions.push(version);
                report.promotions += 1;
                rec.counter(labels::COUNTER_DESK_PROMOTIONS, 1);
                if rec.enabled() {
                    // The version-tagged swap span is the trace key that
                    // joins a desk round to the serving model it shipped
                    // (and onward to `serve/req/*` request tracks).
                    rec.span(
                        &format!("desk/round/{round:03}/swap/v{version}"),
                        swap_started.elapsed().as_secs_f64(),
                    );
                }
                let g = GateNumbers {
                    candidate_reward,
                    incumbent_reward,
                    entropy_drift,
                    recoveries,
                    degraded: false,
                    integrity: Some(true),
                    reward_evaluated: true,
                    drift_evaluated: true,
                };
                finish_round(&mut report, rec, &mut obs, &ctx, info, RoundDecision::Promoted(g));
            }
            None => {
                // The swap write/reload stayed broken through the retry
                // budget: serving continues on last-good, desk degraded.
                let g = GateNumbers {
                    candidate_reward,
                    incumbent_reward,
                    entropy_drift,
                    recoveries,
                    degraded: true,
                    integrity: Some(true),
                    reward_evaluated: true,
                    drift_evaluated: true,
                };
                finish_round(&mut report, rec, &mut obs, &ctx, info, RoundDecision::SwapFailed(g));
            }
        }
    }

    // Serving evidence: drive one deterministic probe batch through the
    // store's current backend — the exact model answering requests.
    let model = store.current();
    let _ = probe_baseline(model.backend.as_ref(), &HealthConfig::default(), model.version);
    report.final_version = model.version;
    report.final_weights_crc = weights_crc(&incumbent);
    obs.event("serve/probe", vec![("version".to_string(), Value::U64(model.version))]);
    obs.write_status(&report, model.version, true);
    obs.dump();
    Ok(report)
}

/// [`run_desk`] without telemetry.
///
/// # Errors
///
/// As [`run_desk`].
pub fn run_desk_quiet(opts: DeskOptions) -> Result<DeskReport, String> {
    run_desk(opts, &mut NoopRecorder)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spikefolio_desk_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fast_opts(name: &str) -> DeskOptions {
        let mut opts = DeskOptions::smoke(tmp_dir(name));
        opts.config.training.epochs = 2;
        opts.config.training.steps_per_epoch = 2;
        opts.config.training.batch_size = 4;
        opts.rounds = 2;
        opts
    }

    #[test]
    fn fault_spec_parses_every_kind() {
        let plan = parse_fault_spec("nan@0, panic@1,corrupt@2,val@3,swapio@4,stall@5x3,crash@6", 7)
            .expect("spec parses");
        let kinds: Vec<_> = plan.pipeline_faults().iter().map(|f| (f.round, f.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (0, PipelineFaultKind::TrainerNan),
                (1, PipelineFaultKind::TrainerPanic),
                (2, PipelineFaultKind::CorruptCandidate),
                (3, PipelineFaultKind::ValData),
                (4, PipelineFaultKind::SwapIo),
                (5, PipelineFaultKind::FeedStall(3)),
                (6, PipelineFaultKind::Crash),
            ]
        );
        assert_eq!(
            parse_fault_spec("stall@2", 7).expect("bare stall").pipeline_faults()[0].kind,
            PipelineFaultKind::FeedStall(1),
        );
    }

    #[test]
    fn fault_spec_rejects_garbage() {
        assert!(parse_fault_spec("nan", 0).is_err(), "missing @round");
        assert!(parse_fault_spec("frobnicate@2", 0).is_err(), "unknown kind");
        assert!(parse_fault_spec("nan@x", 0).is_err(), "bad round");
        assert!(parse_fault_spec("stall@1xq", 0).is_err(), "bad tick count");
        assert!(parse_fault_spec("", 0).expect("empty spec").is_empty());
    }

    #[test]
    fn faultfree_desk_never_regresses_and_serves_gated_versions() {
        let opts = fast_opts("clean");
        let dir = opts.dir.clone();
        let report = run_desk_quiet(opts).expect("desk runs");
        assert_eq!(report.rounds.len(), 2);
        assert!(!report.ended_early);
        assert!(!report.degraded);
        for r in &report.rounds {
            assert!(
                r.serving_reward >= r.incumbent_reward,
                "round {}: serving {} regressed below incumbent {}",
                r.round,
                r.serving_reward,
                r.incumbent_reward
            );
            assert!(
                report.gate_passed_versions.contains(&r.served_version),
                "round {} served v{} which never passed the gate",
                r.round,
                r.served_version
            );
            assert!(!r.degraded);
        }
        assert_eq!(report.promotions + report.quarantines, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn desk_reports_are_deterministic() {
        let a = run_desk_quiet(fast_opts("det_a")).expect("run a");
        let b = {
            let mut opts = fast_opts("det_b");
            opts.dir = tmp_dir("det_b");
            run_desk_quiet(opts).expect("run b")
        };
        assert_eq!(a.final_weights_crc, b.final_weights_crc);
        assert_eq!(a.to_json(), b.to_json());
        let _ = std::fs::remove_dir_all(tmp_dir("det_a"));
        let _ = std::fs::remove_dir_all(tmp_dir("det_b"));
    }

    #[test]
    fn report_value_tree_carries_schema_and_rounds() {
        let report = DeskReport {
            seed: 9,
            rounds: vec![RoundRecord {
                round: 0,
                revealed: 46,
                outcome: "promoted".to_string(),
                faults: vec!["nan".to_string()],
                candidate_reward: 0.01,
                incumbent_reward: 0.005,
                serving_reward: 0.01,
                served_version: 2,
                entropy_drift: 0.02,
                recoveries: 1,
                degraded: false,
            }],
            promotions: 1,
            quarantines: 0,
            recoveries: 1,
            feed_stalls: 0,
            final_version: 2,
            final_weights_crc: 0xdead_beef,
            gate_passed_versions: vec![1, 2],
            degraded: false,
            ended_early: false,
        };
        let v = report.to_value();
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("spikefolio.desk.v1"));
        assert_eq!(v.get("promotions").and_then(Value::as_u64), Some(1));
        let rounds = v.get("rounds").and_then(Value::as_list).expect("rounds list");
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].get("outcome").and_then(Value::as_str), Some("promoted"));
        let text = report.render();
        assert!(text.contains("promoted"));
        assert!(text.contains("0xdeadbeef"));
    }
}
