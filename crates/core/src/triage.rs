//! Quarantine triage: bitwise gate replay from a triage manifest.
//!
//! Every candidate the desk quarantines leaves three artifacts in
//! `quarantine/`: the rejected checkpoint bytes, a snapshot of the
//! incumbent it was judged against, and a `spikefolio.triage.v1`
//! manifest recording the feed geometry, the gate knobs, and all three
//! gate numbers — both as display floats and as raw f64 bits.
//!
//! `spikefolio desk triage` closes the post-mortem loop: it regenerates
//! the exact validation slice from the manifest (seeded generator or CSV
//! feed), reloads both checkpoints, re-runs every gate stage that ran at
//! desk time, and prints the recorded and replayed numbers side by side.
//! Because training determinism, checkpoint round-tripping, and the
//! backtester are all bit-exact, a healthy replay reproduces the
//! recorded bits *exactly* — any mismatch means the quarantine evidence
//! is unsound (wrong config, edited artifacts, or a real
//! reproducibility bug), which is precisely what triage exists to catch.

use std::path::{Path, PathBuf};

use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_market::{CsvTail, Date, MarketData};
use spikefolio_telemetry::value::{parse, Value};

use crate::agent::SdpAgent;
use crate::checkpoint;
use crate::config::SdpConfig;
use crate::desk::{fit_val_split, out_of_sample_reward, policy_entropy, TRIAGE_MANIFEST_SCHEMA};
use crate::training::Trainer;

/// Configuration of one triage replay.
#[derive(Debug, Clone)]
pub struct TriageOptions {
    /// Model topology of the desk run that produced the quarantine —
    /// must match, or the checkpoints fail their shape validation.
    pub config: SdpConfig,
    /// The desk working directory (containing `quarantine/`).
    pub dir: PathBuf,
    /// Round to triage; `None` picks the most recent quarantine.
    pub round: Option<u64>,
}

/// One gate number recorded at desk time vs recomputed by the replay.
#[derive(Debug, Clone, PartialEq)]
pub struct GatePair {
    /// The value the desk recorded (NaN when the stage never produced one).
    pub recorded: f64,
    /// Raw bits of the recorded value, straight from the manifest.
    pub recorded_bits: u64,
    /// The replayed value; `None` when the stage cannot be replayed
    /// (e.g. the candidate checkpoint is genuinely corrupt).
    pub replayed: Option<f64>,
}

impl GatePair {
    /// Whether the replay reproduced the recorded value bit for bit.
    /// `None` when the stage was not replayable.
    pub fn bitwise_match(&self) -> Option<bool> {
        self.replayed.map(|r| r.to_bits() == self.recorded_bits)
    }
}

/// Outcome of a triage replay ([`run_triage`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TriageReport {
    /// The manifest the replay worked from.
    pub manifest: PathBuf,
    /// Quarantined round.
    pub round: u64,
    /// Gate stage that rejected the candidate.
    pub kind: String,
    /// Recorded human-readable rejection reason.
    pub reason: String,
    /// Desk seed.
    pub seed: u64,
    /// Periods revealed when the candidate trained.
    pub revealed: u64,
    /// First period of the training window.
    pub window_from: u64,
    /// Recorded integrity-probe result (`None` = the probe never ran).
    pub integrity_recorded: Option<bool>,
    /// Replayed integrity probe: did the quarantined checkpoint load?
    pub integrity_replayed: bool,
    /// Load error of the quarantined candidate, when it failed.
    pub candidate_load_error: Option<String>,
    /// Whether the reward stage ran at desk time (recorded NaNs are
    /// expected when it did not).
    pub reward_evaluated: bool,
    /// Whether the drift stage ran at desk time.
    pub drift_evaluated: bool,
    /// Gate stage 2, candidate side.
    pub candidate_reward: GatePair,
    /// Gate stage 2, incumbent side.
    pub incumbent_reward: GatePair,
    /// Gate stage 3.
    pub entropy_drift: GatePair,
}

impl TriageReport {
    /// Whether every gate stage that ran at desk time replayed bit for
    /// bit (stages that never ran, or whose candidate is unreplayable
    /// corrupt bytes, are excluded — for an integrity quarantine the
    /// *reproduction* is the load failing again).
    pub fn reproduced(&self) -> bool {
        if self.integrity_recorded == Some(false) && self.integrity_replayed {
            // The desk saw rot but the replay loads clean: the artifact
            // on disk is not the bytes the desk judged.
            return false;
        }
        let stages = [
            (self.reward_evaluated, &self.candidate_reward),
            (self.reward_evaluated, &self.incumbent_reward),
            (self.drift_evaluated, &self.entropy_drift),
        ];
        stages.iter().all(|(ran, pair)| !ran || pair.bitwise_match() != Some(false))
    }

    /// The report as a JSON-ready [`Value`] tree.
    pub fn to_value(&self) -> Value {
        let pair = |p: &GatePair| {
            Value::Map(vec![
                ("recorded".to_string(), Value::F64(p.recorded)),
                ("recorded_bits".to_string(), Value::U64(p.recorded_bits)),
                ("replayed".to_string(), p.replayed.map_or(Value::Null, Value::F64)),
                ("bitwise_match".to_string(), p.bitwise_match().map_or(Value::Null, Value::Bool)),
            ])
        };
        Value::Map(vec![
            ("schema".to_string(), Value::Str("spikefolio.triage-replay.v1".to_string())),
            ("round".to_string(), Value::U64(self.round)),
            ("kind".to_string(), Value::Str(self.kind.clone())),
            ("reason".to_string(), Value::Str(self.reason.clone())),
            ("seed".to_string(), Value::U64(self.seed)),
            ("revealed".to_string(), Value::U64(self.revealed)),
            ("window_from".to_string(), Value::U64(self.window_from)),
            (
                "integrity_recorded".to_string(),
                self.integrity_recorded.map_or(Value::Null, Value::Bool),
            ),
            ("integrity_replayed".to_string(), Value::Bool(self.integrity_replayed)),
            ("reward_evaluated".to_string(), Value::Bool(self.reward_evaluated)),
            ("drift_evaluated".to_string(), Value::Bool(self.drift_evaluated)),
            ("candidate_reward".to_string(), pair(&self.candidate_reward)),
            ("incumbent_reward".to_string(), pair(&self.incumbent_reward)),
            ("entropy_drift".to_string(), pair(&self.entropy_drift)),
            ("reproduced".to_string(), Value::Bool(self.reproduced())),
        ])
    }

    /// The recorded-vs-replayed side-by-side table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "desk triage: round {} quarantined by the {} gate",
            self.round, self.kind
        );
        let _ = writeln!(out, "  reason:   {}", self.reason);
        let _ = writeln!(
            out,
            "  manifest: {}  (seed {}, window {}..{})",
            self.manifest.display(),
            self.seed,
            self.window_from,
            self.revealed
        );
        let _ = writeln!(out, "  {:<16} {:>24} {:>24}  bitwise", "stage", "recorded", "replayed");
        let probe = |b: Option<bool>| match b {
            Some(true) => "pass",
            Some(false) => "fail",
            None => "not run",
        };
        let _ = writeln!(
            out,
            "  {:<16} {:>24} {:>24}  {}",
            "integrity",
            probe(self.integrity_recorded),
            probe(Some(self.integrity_replayed)),
            if self.integrity_recorded == Some(self.integrity_replayed) { "=" } else { "·" },
        );
        let mut row = |label: &str, ran: bool, p: &GatePair| {
            let replayed = match p.replayed {
                Some(v) => format!("{v:+.15e}"),
                None => "unreplayable".to_string(),
            };
            let mark = if !ran {
                "· (not evaluated at desk time)"
            } else {
                match p.bitwise_match() {
                    Some(true) => "=",
                    Some(false) => "MISMATCH",
                    None => "· (candidate unreplayable)",
                }
            };
            let _ = writeln!(
                out,
                "  {:<16} {:>24} {:>24}  {mark}",
                label,
                format!("{:+.15e}", p.recorded),
                replayed,
            );
        };
        row("candidate reward", self.reward_evaluated, &self.candidate_reward);
        row("incumbent reward", self.reward_evaluated, &self.incumbent_reward);
        row("entropy drift", self.drift_evaluated, &self.entropy_drift);
        if let Some(e) = &self.candidate_load_error {
            let _ = writeln!(out, "  candidate load error: {e}");
        }
        let _ = writeln!(
            out,
            "  verdict: gate decision {}",
            if self.reproduced() {
                "REPRODUCED bitwise"
            } else {
                "NOT reproduced — evidence unsound"
            },
        );
        out
    }
}

/// Required-field accessors over the manifest [`Value`] tree.
fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("manifest is missing '{key}'"))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("manifest is missing '{key}'"))
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("manifest is missing '{key}'"))
}

/// Finds the triage manifest for `round` (or the highest-round one)
/// under `quarantine/`.
fn find_manifest(dir: &Path, round: Option<u64>) -> Result<(PathBuf, Value), String> {
    let qdir = dir.join("quarantine");
    let entries = std::fs::read_dir(&qdir)
        .map_err(|e| format!("no quarantine directory at {}: {e}", qdir.display()))?;
    let mut best: Option<(u64, PathBuf, Value)> = None;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Ok(raw) = std::fs::read_to_string(&path) else { continue };
        let Ok(v) = parse(raw.trim()) else { continue };
        if v.get("schema").and_then(Value::as_str) != Some(TRIAGE_MANIFEST_SCHEMA) {
            continue;
        }
        let Some(r) = v.get("round").and_then(Value::as_u64) else { continue };
        if let Some(want) = round {
            if r != want {
                continue;
            }
        }
        if best.as_ref().is_none_or(|(b, _, _)| r >= *b) {
            best = Some((r, path, v));
        }
    }
    match best {
        Some((_, path, v)) => Ok((path, v)),
        None => Err(match round {
            Some(r) => format!("no triage manifest for round {r} under {}", qdir.display()),
            None => format!("no triage manifests under {}", qdir.display()),
        }),
    }
}

/// Rebuilds the feed exactly as the desk saw it at quarantine time: the
/// seeded generator regenerated from the manifest's geometry, or the CSV
/// feed re-read and cut back to the recorded reveal point.
fn rebuild_feed(manifest: &Value, revealed: usize) -> Result<MarketData, String> {
    let data = match manifest.get("csv") {
        Some(Value::Str(path)) => {
            let mut tail = CsvTail::new(Path::new(path), Date::new(2016, 1, 1), 2);
            tail.poll()
                .map_err(|e| format!("csv feed {path}: {e}"))?
                .ok_or_else(|| format!("csv feed {path} holds no complete periods"))?
        }
        _ => {
            let seed = req_u64(manifest, "seed")?;
            let feed_periods = req_u64(manifest, "feed_periods")? as usize;
            // Mirror the desk's generator geometry: 2 periods per day,
            // over-generated by a day so the last round never runs dry.
            let days = (feed_periods / 2 + 2) as i64;
            ExperimentPreset::experiment1().shrunk(days, 0).generate(seed)
        }
    };
    if data.num_periods() < revealed {
        return Err(format!(
            "rebuilt feed holds {} periods but the quarantine saw {revealed} — \
             feed shrank since the desk ran",
            data.num_periods()
        ));
    }
    Ok(data.slice(0, revealed))
}

/// Replays a quarantined round's gate from its triage manifest.
///
/// # Errors
///
/// Missing/corrupt manifest, a feed that can no longer be rebuilt, or an
/// incumbent snapshot that fails to load (the incumbent was serving, so
/// its snapshot must be intact — a corrupt one is an environment error,
/// not a replayable outcome).
pub fn run_triage(opts: &TriageOptions) -> Result<TriageReport, String> {
    let (manifest_path, manifest) = find_manifest(&opts.dir, opts.round)?;
    let round = req_u64(&manifest, "round")?;
    let revealed = req_u64(&manifest, "revealed")? as usize;
    let window_from = req_u64(&manifest, "window_from")? as usize;
    let num_assets = req_u64(&manifest, "num_assets")? as usize;
    let val_fraction = req_f64(&manifest, "val_fraction")?;
    let integrity_recorded = match manifest.get("integrity") {
        Some(Value::Str(s)) => Some(s == "pass"),
        _ => None,
    };
    let reward_evaluated = matches!(manifest.get("reward_evaluated"), Some(Value::Bool(true)));
    let drift_evaluated = matches!(manifest.get("drift_evaluated"), Some(Value::Bool(true)));
    let qdir = opts.dir.join("quarantine");
    let candidate_path = qdir.join(req_str(&manifest, "candidate_ckpt")?);
    let incumbent_path = qdir.join(req_str(&manifest, "incumbent_ckpt")?);

    // Rebuild the validation slice the gate judged on.
    let data = rebuild_feed(&manifest, revealed)?;
    let window = data.slice(window_from, revealed);
    let mut incumbent = SdpAgent::new(&opts.config, num_assets, 0);
    checkpoint::load_sdp(&mut incumbent, &incumbent_path)
        .map_err(|e| format!("incumbent snapshot {}: {e}", incumbent_path.display()))?;
    let min_period = incumbent.state_builder().min_period();
    let (_, val, _) = fit_val_split(&window, val_fraction, min_period);

    // Integrity replay: the same full-validation load the desk probe ran.
    let mut candidate = SdpAgent::new(&opts.config, num_assets, 0);
    let (integrity_replayed, candidate_load_error, candidate) =
        match checkpoint::load_sdp(&mut candidate, &candidate_path) {
            Ok(()) => (true, None, Some(candidate)),
            Err(e) => (false, Some(e.to_string()), None),
        };

    let trainer = Trainer::new(&opts.config);
    let incumbent_replayed = out_of_sample_reward(&trainer, &incumbent, &val);
    let candidate_replayed = candidate.as_ref().map(|c| out_of_sample_reward(&trainer, c, &val));
    let drift_replayed = candidate.as_ref().map(|c| {
        let inc_e = policy_entropy(&incumbent);
        let cand_e = policy_entropy(c);
        (cand_e - inc_e).abs() / inc_e.abs().max(1e-6)
    });

    Ok(TriageReport {
        manifest: manifest_path,
        round,
        kind: req_str(&manifest, "kind")?,
        reason: req_str(&manifest, "reason")?,
        seed: req_u64(&manifest, "seed")?,
        revealed: revealed as u64,
        window_from: window_from as u64,
        integrity_recorded,
        integrity_replayed,
        candidate_load_error,
        reward_evaluated,
        drift_evaluated,
        candidate_reward: GatePair {
            recorded: req_f64(&manifest, "candidate_reward").unwrap_or(f64::NAN),
            recorded_bits: req_u64(&manifest, "candidate_reward_bits")?,
            replayed: candidate_replayed,
        },
        incumbent_reward: GatePair {
            recorded: req_f64(&manifest, "incumbent_reward").unwrap_or(f64::NAN),
            recorded_bits: req_u64(&manifest, "incumbent_reward_bits")?,
            replayed: Some(incumbent_replayed),
        },
        entropy_drift: GatePair {
            recorded: req_f64(&manifest, "entropy_drift").unwrap_or(f64::NAN),
            recorded_bits: req_u64(&manifest, "entropy_drift_bits")?,
            replayed: drift_replayed,
        },
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn gate_pair_matches_on_bits_not_display() {
        let x = 0.1 + 0.2; // 0.30000000000000004
        let p = GatePair { recorded: x, recorded_bits: x.to_bits(), replayed: Some(x) };
        assert_eq!(p.bitwise_match(), Some(true));
        let q = GatePair { recorded: x, recorded_bits: 0.3f64.to_bits(), replayed: Some(x) };
        assert_eq!(q.bitwise_match(), Some(false));
        let r = GatePair { recorded: f64::NAN, recorded_bits: f64::NAN.to_bits(), replayed: None };
        assert_eq!(r.bitwise_match(), None);
    }

    #[test]
    fn missing_quarantine_dir_is_a_clear_error() {
        let opts = TriageOptions {
            config: SdpConfig::smoke(),
            dir: PathBuf::from("/nonexistent/spikefolio-triage"),
            round: None,
        };
        let err = run_triage(&opts).expect_err("no quarantine dir");
        assert!(err.contains("quarantine"), "{err}");
    }

    #[test]
    fn report_render_and_value_carry_the_verdict() {
        let pair = |x: f64| GatePair { recorded: x, recorded_bits: x.to_bits(), replayed: Some(x) };
        let report = TriageReport {
            manifest: PathBuf::from("q/round-1-drift.json"),
            round: 1,
            kind: "drift".to_string(),
            reason: "entropy drift 0.9 over bound 0.1".to_string(),
            seed: 7,
            revealed: 52,
            window_from: 0,
            integrity_recorded: Some(true),
            integrity_replayed: true,
            candidate_load_error: None,
            reward_evaluated: true,
            drift_evaluated: true,
            candidate_reward: pair(0.012),
            incumbent_reward: pair(0.003),
            entropy_drift: pair(0.9),
        };
        assert!(report.reproduced());
        let text = report.render();
        assert!(text.contains("REPRODUCED bitwise"), "{text}");
        assert!(text.contains("drift"), "{text}");
        let v = report.to_value();
        assert_eq!(v.get("reproduced"), Some(&Value::Bool(true)));
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("spikefolio.triage-replay.v1"));

        // One flipped mantissa bit on a replayed stage flips the verdict.
        let mut bad = report;
        bad.entropy_drift.replayed = Some(f64::from_bits(0.9f64.to_bits() ^ 1));
        assert!(!bad.reproduced());
        assert!(bad.render().contains("MISMATCH"));
    }
}
