//! The DRL\[Jiang\] baseline agent: the same deterministic policy-gradient
//! training, but with a dense (non-spiking) network.

use crate::config::SdpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_ann::{Activation, Mlp};
use spikefolio_env::{DecisionContext, Policy, StateBuilder};
use spikefolio_market::MarketData;

/// The dense deep-RL baseline of Jiang, Xu & Liang (2017) as the paper
/// compares against: identical state features, identical reward, identical
/// optimizer — only the network body differs (MLP + softmax instead of the
/// spiking encoder/LIF/decoder stack).
#[derive(Debug, Clone)]
pub struct DrlAgent {
    /// The dense policy network.
    pub network: Mlp,
    state_builder: StateBuilder,
    #[allow(dead_code)]
    rng: StdRng,
}

impl DrlAgent {
    /// Builds the baseline for a market with `num_assets` risky assets.
    ///
    /// The hidden sizes mirror the SDP configuration so the comparison is
    /// capacity-matched.
    pub fn new(config: &SdpConfig, num_assets: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sb = StateBuilder::new(config.state);
        let mut dims = vec![sb.state_dim(num_assets)];
        dims.extend(&config.network.hidden);
        dims.push(num_assets + 1);
        let network = Mlp::new(&dims, Activation::Relu, &mut rng);
        Self { network, state_builder: sb, rng }
    }

    /// The state feature builder in force.
    pub fn state_builder(&self) -> &StateBuilder {
        &self.state_builder
    }

    /// Builds the state vector at period `t` of `market`.
    pub fn state(&self, market: &MarketData, t: usize, prev_weights: &[f64]) -> Vec<f64> {
        self.state_builder.build(market, t, prev_weights)
    }

    /// Runs inference on an explicit state vector.
    pub fn act(&self, state: &[f64]) -> Vec<f64> {
        self.network.act(state)
    }
}

impl Policy for DrlAgent {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let state = self.state_builder.build(ctx.market, ctx.t, ctx.prev_weights);
        self.network.act(&state)
    }

    fn warmup_periods(&self) -> usize {
        self.state_builder.min_period()
    }

    fn name(&self) -> &str {
        "DRL[Jiang]"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::simplex::is_on_simplex;

    #[test]
    fn untrained_baseline_backtests_cleanly() {
        let market = ExperimentPreset::experiment1().shrunk(30, 10).generate(5);
        let mut agent = DrlAgent::new(&SdpConfig::smoke(), market.num_assets(), 1);
        let r = Backtester::default().run(&mut agent, &market);
        assert_eq!(r.policy_name, "DRL[Jiang]");
        for w in &r.weights {
            assert!(is_on_simplex(w, 1e-9));
        }
    }

    #[test]
    fn capacity_matches_sdp_hidden_sizes() {
        let cfg = SdpConfig::smoke();
        let agent = DrlAgent::new(&cfg, 11, 1);
        assert_eq!(agent.network.depth(), cfg.network.hidden.len() + 1);
        assert_eq!(agent.network.action_dim(), 12);
    }

    #[test]
    fn deterministic_inference() {
        let cfg = SdpConfig::smoke();
        let market = ExperimentPreset::experiment1().shrunk(20, 5).generate(3);
        let agent = DrlAgent::new(&cfg, market.num_assets(), 9);
        let w = vec![1.0 / 12.0; 12];
        let s = agent.state(&market, 5, &w);
        assert_eq!(agent.act(&s), agent.act(&s));
    }
}
