//! Event-linear energy/latency model for the Loihi chip and the
//! Table 4 report type.
//!
//! Loihi's dynamic energy is linear in event counts (Davies et al. 2018),
//! so the model is
//!
//! ```text
//! E_dyn/inference = E_synop·synops + E_spike·spikes + E_update·updates + E_io
//! t/inference     = T · t_step + t_io
//! ```
//!
//! Two constant sets are provided:
//!
//! * [`LoihiEnergyModel::davies2018`] — physically-grounded per-event
//!   energies from the Loihi paper (23.6 pJ/synop, 81 pJ/update,
//!   1.7 pJ/spike).
//! * [`LoihiEnergyModel::calibrated`] — constants rescaled so that a
//!   reference workload reproduces the paper's measured Table 4 value
//!   (15.8 nJ/inference at `T = 5`). We cannot probe real hardware, so we
//!   reproduce the paper's measurement *methodology* with its published
//!   endpoints; the model still extrapolates with event counts, which is
//!   what the timestep ablation exercises.

use serde::{Deserialize, Serialize};
use spikefolio_snn::network::SpikeStats;

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Algorithm + device label, e.g. `"SDP / Loihi (T=5)"`.
    pub label: String,
    /// Idle (static) power in watts.
    pub idle_w: f64,
    /// Dynamic power in watts while running inference.
    pub dyn_w: f64,
    /// Inference throughput, inferences per second.
    pub inf_per_s: f64,
    /// Dynamic energy per inference in nanojoules.
    pub nj_per_inf: f64,
}

impl EnergyReport {
    /// Energy ratio `other / self` on the nJ/inference column — e.g.
    /// `loihi.energy_advantage(&cpu)` ≈ 186× in the paper.
    pub fn energy_advantage(&self, other: &EnergyReport) -> f64 {
        other.nj_per_inf / self.nj_per_inf
    }

    /// Throughput ratio `self / other` — the paper's "speed-up".
    pub fn speedup(&self, other: &EnergyReport) -> f64 {
        self.inf_per_s / other.inf_per_s
    }
}

impl std::fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<22} idle {:>7.2} W  dyn {:>7.3} W  {:>12.1} inf/s  {:>10.2} nJ/inf",
            self.label, self.idle_w, self.dyn_w, self.inf_per_s, self.nj_per_inf
        )
    }
}

/// Per-event energy and latency constants of the Loihi model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoihiEnergyModel {
    /// Energy per synaptic operation, joules.
    pub e_synop: f64,
    /// Energy per spike generation, joules.
    pub e_spike: f64,
    /// Energy per compartment update, joules.
    pub e_update: f64,
    /// Fixed I/O energy per inference (spike injection/readout), joules.
    pub e_io: f64,
    /// Wall-clock per algorithmic timestep, seconds.
    pub t_step: f64,
    /// Fixed I/O latency per inference, seconds.
    pub t_io: f64,
    /// Board idle power, watts.
    pub idle_w: f64,
}

impl LoihiEnergyModel {
    /// Physically-grounded constants from Davies et al., *IEEE Micro* 2018:
    /// 23.6 pJ/synop, 81 pJ/neuron-update, 1.7 pJ/spike; ~10 µs per
    /// algorithmic timestep on multi-layer workloads.
    pub fn davies2018() -> Self {
        Self {
            e_synop: 23.6e-12,
            e_spike: 1.7e-12,
            e_update: 81.0e-12,
            e_io: 0.0,
            t_step: 10.0e-6,
            t_io: 120.0e-6,
            idle_w: 1.01,
        }
    }

    /// Rescales the Davies-2018 ratios so that `reference` event counts
    /// cost exactly `target_nj` nanojoules per inference — the calibration
    /// used to reproduce the paper's measured Table 4 endpoints.
    ///
    /// # Panics
    ///
    /// Panics if the reference workload has zero energy under the physical
    /// constants (empty event counts).
    pub fn calibrated(reference: &SpikeStats, target_nj: f64) -> Self {
        let base = Self::davies2018();
        let e_ref = base.dynamic_energy(reference);
        assert!(e_ref > 0.0, "reference workload produced no events");
        let scale = (target_nj * 1e-9) / e_ref;
        Self {
            e_synop: base.e_synop * scale,
            e_spike: base.e_spike * scale,
            e_update: base.e_update * scale,
            e_io: base.e_io * scale,
            ..base
        }
    }

    /// Dynamic energy for one inference's event counts, joules.
    pub fn dynamic_energy(&self, stats: &SpikeStats) -> f64 {
        self.e_synop * stats.synops as f64
            + self.e_spike * stats.total_spikes() as f64
            + self.e_update * stats.neuron_updates as f64
            + self.e_io
    }

    /// Wall-clock latency of one inference with `timesteps` algorithmic
    /// steps, seconds.
    pub fn latency(&self, timesteps: usize) -> f64 {
        timesteps as f64 * self.t_step + self.t_io
    }

    /// Traffic-aware latency: Loihi's barrier-synchronized timesteps
    /// stretch when spike traffic is heavy (each router can forward a
    /// bounded number of spikes per step). The per-step time grows by
    /// `t_step / 2` for every `spikes_per_step_knee` spikes routed in an
    /// average step.
    ///
    /// With light traffic this reduces to [`latency`](Self::latency).
    pub fn latency_with_traffic(&self, timesteps: usize, stats: &SpikeStats) -> f64 {
        const SPIKES_PER_STEP_KNEE: f64 = 2048.0;
        let steps = timesteps.max(1) as f64;
        let spikes_per_step = stats.total_spikes() as f64 / steps;
        let stretch = 1.0 + 0.5 * spikes_per_step / SPIKES_PER_STEP_KNEE;
        steps * self.t_step * stretch + self.t_io
    }

    /// Builds the Table 4 row for a per-inference event profile.
    ///
    /// `stats` is the (average) event count of one inference and
    /// `timesteps` its algorithmic length.
    pub fn report(&self, label: &str, stats: &SpikeStats, timesteps: usize) -> EnergyReport {
        let e = self.dynamic_energy(stats);
        let t = self.latency(timesteps);
        let inf_per_s = 1.0 / t;
        EnergyReport {
            label: label.to_owned(),
            idle_w: self.idle_w,
            dyn_w: e * inf_per_s,
            inf_per_s,
            nj_per_inf: e * 1e9,
        }
    }
}

impl Default for LoihiEnergyModel {
    fn default() -> Self {
        Self::davies2018()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn stats() -> SpikeStats {
        SpikeStats { encoder_spikes: 400, neuron_spikes: 300, synops: 60_000, neuron_updates: 700 }
    }

    #[test]
    fn energy_is_linear_in_events() {
        let m = LoihiEnergyModel::davies2018();
        let one = m.dynamic_energy(&stats());
        let double = SpikeStats {
            encoder_spikes: 800,
            neuron_spikes: 600,
            synops: 120_000,
            neuron_updates: 1400,
        };
        assert!((m.dynamic_energy(&double) - 2.0 * one).abs() < 1e-18);
    }

    #[test]
    fn calibration_hits_target_exactly() {
        let m = LoihiEnergyModel::calibrated(&stats(), 15.81);
        let e_nj = m.dynamic_energy(&stats()) * 1e9;
        assert!((e_nj - 15.81).abs() < 1e-9, "calibrated energy {e_nj}");
    }

    #[test]
    fn calibration_preserves_event_ratios() {
        let base = LoihiEnergyModel::davies2018();
        let cal = LoihiEnergyModel::calibrated(&stats(), 100.0);
        assert!((cal.e_synop / cal.e_update - base.e_synop / base.e_update).abs() < 1e-9);
    }

    #[test]
    fn latency_grows_with_timesteps() {
        let m = LoihiEnergyModel::davies2018();
        assert!(m.latency(10) > m.latency(5));
        assert!((m.latency(5) - (5.0 * 10e-6 + 120e-6)).abs() < 1e-12);
    }

    #[test]
    fn traffic_stretches_latency() {
        let m = LoihiEnergyModel::davies2018();
        let light = SpikeStats { encoder_spikes: 10, ..Default::default() };
        let heavy = SpikeStats { encoder_spikes: 100_000, ..Default::default() };
        let base = m.latency(5);
        let l_light = m.latency_with_traffic(5, &light);
        let l_heavy = m.latency_with_traffic(5, &heavy);
        assert!((l_light - base).abs() / base < 0.01, "light traffic ≈ base latency");
        assert!(l_heavy > 2.0 * base, "heavy traffic must stretch the timestep");
    }

    #[test]
    fn report_columns_are_consistent() {
        let m = LoihiEnergyModel::davies2018();
        let r = m.report("SDP / Loihi (T=5)", &stats(), 5);
        // dyn power = energy per inf × inf/s.
        assert!((r.dyn_w - r.nj_per_inf * 1e-9 * r.inf_per_s).abs() < 1e-12);
        assert_eq!(r.idle_w, 1.01);
        assert!(r.to_string().contains("SDP / Loihi"));
    }

    #[test]
    fn advantage_and_speedup_ratios() {
        let a = EnergyReport {
            label: "loihi".into(),
            idle_w: 1.0,
            dyn_w: 0.01,
            inf_per_s: 2000.0,
            nj_per_inf: 20.0,
        };
        let b = EnergyReport {
            label: "cpu".into(),
            idle_w: 8.0,
            dyn_w: 24.0,
            inf_per_s: 1000.0,
            nj_per_inf: 4000.0,
        };
        assert!((a.energy_advantage(&b) - 200.0).abs() < 1e-12);
        assert!((a.speedup(&b) - 2.0).abs() < 1e-12);
    }
}
