//! Analytic CPU/GPU device models for the DRL baseline's Table 4 rows.
//!
//! The paper runs the DRL\[Jiang\] policy on a Core i7-7500 CPU and a Tesla
//! K80 GPU and reads power from `powerstat`/`nvidia-smi`. Without the
//! hardware, we model each device with two fitted quantities:
//!
//! * **energy per inference** — an energy-per-FLOP constant
//!   (`E = e_flop · flops`), calibrated so a paper-scale policy reproduces
//!   the paper's measured nJ/inference (CPU 2 935.62 nJ, GPU 8 119.44 nJ —
//!   the rows behind the ≥186× / ≥516× headline ratios). The implied
//!   per-op energies (~20–60 pJ/FLOP) are physically plausible for
//!   sustained, batched inference on these parts.
//! * **single-stream latency** — `t = flops / eff_throughput + dispatch`,
//!   fitted so the relative speed matches the paper's *text* claims
//!   (SDP-on-Loihi ≈ 2.0× faster than the CPU and ≈ 1.3× faster than the
//!   GPU per decision).
//!
//! Note the paper's own Table 4 columns are mutually inconsistent
//! (dyn-power × latency ≠ energy/inference at the reported throughputs);
//! EXPERIMENTS.md discusses this. We reproduce each column with its own
//! calibrated model, exactly as the paper reports them, and both models
//! extrapolate with the FLOP count for other network sizes.

use crate::energy::EnergyReport;
use serde::{Deserialize, Serialize};
use spikefolio_ann::Mlp;

/// FLOPs of the paper-scale dense policy (364-128-128-12 MLP) used as the
/// calibration reference.
pub const PAPER_FLOPS_REF: u64 = 2 * (364 * 128 + 128 * 128 + 128 * 12) as u64;

/// The paper's measured CPU energy per inference (Table 4, DRL-Exp2 row,
/// the one behind the ≥186× claim), nanojoules.
pub const PAPER_CPU_NJ_PER_INF: f64 = 2935.62;

/// The paper's measured GPU energy per inference (Table 4, DRL-Exp2 row,
/// behind the ≥516× claim), nanojoules.
pub const PAPER_GPU_NJ_PER_INF: f64 = 8119.44;

/// Which physical device is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Intel Core i7-7500U-class laptop CPU.
    Cpu,
    /// NVIDIA Tesla K80 datacenter GPU.
    Gpu,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::Cpu => f.write_str("CPU (Core i7-7500)"),
            DeviceKind::Gpu => f.write_str("GPU (Tesla K80)"),
        }
    }
}

/// Analytic device model. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// The device being modelled.
    pub kind: DeviceKind,
    /// Idle power, watts (Table 4 column).
    pub idle_w: f64,
    /// Dynamic power while running inference, watts (Table 4 column).
    pub dyn_w: f64,
    /// Energy per floating-point operation, joules (fitted).
    pub e_flop: f64,
    /// Effective single-stream arithmetic throughput, FLOP/s.
    pub effective_flops: f64,
    /// Fixed per-inference dispatch overhead, seconds (syscalls, kernel
    /// launches, PCIe transfers on the GPU).
    pub dispatch_overhead_s: f64,
}

impl DeviceModel {
    /// Core i7-7500 constants, energy-calibrated to
    /// [`PAPER_CPU_NJ_PER_INF`] at [`PAPER_FLOPS_REF`].
    pub fn cpu_corei7_7500() -> Self {
        Self {
            kind: DeviceKind::Cpu,
            idle_w: 8.59,
            dyn_w: 23.41,
            e_flop: PAPER_CPU_NJ_PER_INF * 1e-9 / PAPER_FLOPS_REF as f64,
            effective_flops: 0.5e9,
            dispatch_overhead_s: 80.0e-6,
        }
    }

    /// Tesla K80 constants, energy-calibrated to [`PAPER_GPU_NJ_PER_INF`]
    /// at [`PAPER_FLOPS_REF`].
    pub fn gpu_tesla_k80() -> Self {
        Self {
            kind: DeviceKind::Gpu,
            idle_w: 102.36,
            dyn_w: 27.71,
            e_flop: PAPER_GPU_NJ_PER_INF * 1e-9 / PAPER_FLOPS_REF as f64,
            effective_flops: 6.0e9,
            dispatch_overhead_s: 200.0e-6,
        }
    }

    /// Recalibrates the energy constant so a policy of `flops_ref` FLOPs
    /// costs exactly `nj_per_inf` nanojoules — used by the Table 4 driver
    /// to anchor the rows at the configured network scale.
    ///
    /// # Panics
    ///
    /// Panics if `flops_ref == 0` or `nj_per_inf <= 0`.
    pub fn calibrated_to(mut self, nj_per_inf: f64, flops_ref: u64) -> Self {
        assert!(flops_ref > 0, "flops_ref must be positive");
        assert!(nj_per_inf > 0.0, "target energy must be positive");
        self.e_flop = nj_per_inf * 1e-9 / flops_ref as f64;
        self
    }

    /// FLOPs of one forward pass of a dense policy network
    /// (2 per multiply-accumulate, plus activation/softmax costs).
    pub fn mlp_flops(net: &Mlp) -> u64 {
        let mut flops = 0_u64;
        for l in net.layers() {
            flops += 2 * (l.in_dim() * l.out_dim()) as u64 + l.out_dim() as u64;
            flops += 4 * l.out_dim() as u64; // activation/softmax-exp cost
        }
        flops
    }

    /// Dynamic energy of one inference costing `flops`, joules.
    pub fn energy(&self, flops: u64) -> f64 {
        self.e_flop * flops as f64
    }

    /// Single-stream latency of one inference, seconds.
    pub fn latency(&self, flops: u64) -> f64 {
        flops as f64 / self.effective_flops + self.dispatch_overhead_s
    }

    /// Builds the Table 4 row for a policy costing `flops` per inference.
    ///
    /// As in the paper's published table, the energy column comes from the
    /// sustained (batched) measurement model while the throughput column
    /// is single-stream — the two are calibrated independently.
    pub fn report(&self, label: &str, flops: u64) -> EnergyReport {
        EnergyReport {
            label: label.to_owned(),
            idle_w: self.idle_w,
            dyn_w: self.dyn_w,
            inf_per_s: 1.0 / self.latency(flops),
            nj_per_inf: self.energy(flops) * 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rand::SeedableRng;
    use spikefolio_ann::Activation;

    fn paper_mlp() -> Mlp {
        // State ≈ 364 → 128 → 128 → 12: the DRL baseline at paper scale.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        Mlp::new(&[364, 128, 128, 12], Activation::Relu, &mut rng)
    }

    #[test]
    fn flop_count_matches_layer_dims() {
        let net = paper_mlp();
        let flops = DeviceModel::mlp_flops(&net);
        assert!(flops >= PAPER_FLOPS_REF);
        assert!(flops < PAPER_FLOPS_REF + 10_000);
    }

    #[test]
    fn paper_scale_energy_matches_calibration() {
        let cpu = DeviceModel::cpu_corei7_7500().report("cpu", PAPER_FLOPS_REF);
        let gpu = DeviceModel::gpu_tesla_k80().report("gpu", PAPER_FLOPS_REF);
        assert!((cpu.nj_per_inf - PAPER_CPU_NJ_PER_INF).abs() < 1e-6);
        assert!((gpu.nj_per_inf - PAPER_GPU_NJ_PER_INF).abs() < 1e-6);
    }

    #[test]
    fn recalibration_hits_any_target() {
        let dev = DeviceModel::cpu_corei7_7500().calibrated_to(1000.0, 50_000);
        assert!((dev.energy(50_000) * 1e9 - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn paper_speedup_shape_holds() {
        // Loihi at T = 5 runs one decision in ~170 µs (10 µs/step + I/O);
        // the fitted single-stream latencies put the CPU ≈ 2× and the GPU
        // ≈ 1.3× slower at paper scale — the paper's text claim.
        let loihi_latency = 5.0 * 10e-6 + 120e-6;
        let cpu = DeviceModel::cpu_corei7_7500().latency(PAPER_FLOPS_REF);
        let gpu = DeviceModel::gpu_tesla_k80().latency(PAPER_FLOPS_REF);
        let cpu_ratio = cpu / loihi_latency;
        let gpu_ratio = gpu / loihi_latency;
        assert!((1.7..2.4).contains(&cpu_ratio), "cpu ratio {cpu_ratio}");
        assert!((1.1..1.6).contains(&gpu_ratio), "gpu ratio {gpu_ratio}");
    }

    #[test]
    fn report_columns_populated() {
        let dev = DeviceModel::gpu_tesla_k80();
        let r = dev.report("DRL / GPU", 100_000);
        assert_eq!(r.idle_w, dev.idle_w);
        assert_eq!(r.dyn_w, dev.dyn_w);
        assert!(r.inf_per_s > 0.0);
        assert!(r.nj_per_inf > 0.0);
    }

    #[test]
    fn more_flops_cost_more_energy_and_time() {
        let dev = DeviceModel::gpu_tesla_k80();
        let small = dev.report("s", 10_000);
        let large = dev.report("l", 10_000_000);
        assert!(large.nj_per_inf > small.nj_per_inf);
        assert!(large.inf_per_s < small.inf_per_s);
    }

    #[test]
    fn implied_per_op_energy_is_physically_plausible() {
        // 10–100 pJ/FLOP is the right ballpark for these devices.
        for dev in [DeviceModel::cpu_corei7_7500(), DeviceModel::gpu_tesla_k80()] {
            let pj = dev.e_flop * 1e12;
            assert!((5.0..200.0).contains(&pj), "{:?}: {pj} pJ/FLOP", dev.kind);
        }
    }

    #[test]
    fn display_names() {
        assert!(DeviceKind::Cpu.to_string().contains("i7"));
        assert!(DeviceKind::Gpu.to_string().contains("K80"));
    }
}
