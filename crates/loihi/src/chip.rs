//! Fixed-point Loihi chip model: neurocore mapping plus integer LIF
//! execution with event counting.

use crate::quantize::QuantizedNetwork;
use serde::{Deserialize, Serialize};
use spikefolio_snn::network::SpikeStats;
use spikefolio_tensor::Matrix;

/// Decay factors on Loihi are 12-bit multipliers (`x · d ≈ (x · f) / 4096`).
const DECAY_BITS: u32 = 12;
const DECAY_ONE: i64 = 1 << DECAY_BITS;

/// Physical resource budget of one Loihi chip (Davies et al. 2018).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Neurocores per chip (Loihi 1: 128).
    pub cores: usize,
    /// Compartments (neurons) per core (Loihi 1: 1024).
    pub compartments_per_core: usize,
    /// Synaptic memory per core, in synapses (≈ 128k on Loihi 1 with 8-bit
    /// weights).
    pub synapses_per_core: usize,
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self { cores: 128, compartments_per_core: 1024, synapses_per_core: 128 * 1024 }
    }
}

/// Error returned when a network does not fit the chip budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapNetworkError {
    what: String,
}

impl std::fmt::Display for MapNetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "network does not fit on chip: {}", self.what)
    }
}

impl std::error::Error for MapNetworkError {}

/// Core allocation summary for a mapped network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreAllocation {
    /// Cores used per layer.
    pub cores_per_layer: Vec<usize>,
    /// Total cores used.
    pub total_cores: usize,
    /// Total compartments (neurons) placed.
    pub total_compartments: usize,
    /// Total synapses placed.
    pub total_synapses: usize,
}

/// Counters from one on-chip inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LoihiRunStats {
    /// Spikes routed into the chip (encoder spikes).
    pub input_spikes: u64,
    /// Spikes fired by on-chip neurons.
    pub neuron_spikes: u64,
    /// Synaptic operations (spike × fan-out accumulations).
    pub synops: u64,
    /// Compartment updates (neurons × timesteps).
    pub neuron_updates: u64,
    /// Algorithmic timesteps executed.
    pub timesteps: u64,
}

impl core::ops::AddAssign for LoihiRunStats {
    /// Accumulates event counts across inferences — the serving path sums
    /// per-request chip stats into a session total.
    fn add_assign(&mut self, rhs: Self) {
        self.input_spikes += rhs.input_spikes;
        self.neuron_spikes += rhs.neuron_spikes;
        self.synops += rhs.synops;
        self.neuron_updates += rhs.neuron_updates;
        self.timesteps += rhs.timesteps;
    }
}

impl LoihiRunStats {
    /// Converts to the generic [`SpikeStats`] event bundle.
    pub fn to_spike_stats(self) -> SpikeStats {
        SpikeStats {
            encoder_spikes: self.input_spikes,
            neuron_spikes: self.neuron_spikes,
            synops: self.synops,
            neuron_updates: self.neuron_updates,
        }
    }
}

/// The chip itself: owns the resource budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoihiChip {
    config: ChipConfig,
}

impl LoihiChip {
    /// A chip with the given budget.
    pub fn new(config: ChipConfig) -> Self {
        Self { config }
    }

    /// Borrow the budget.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Maps a quantized network onto the chip, checking resource limits.
    ///
    /// # Errors
    ///
    /// Returns [`MapNetworkError`] if compartments, synapses, or cores are
    /// exhausted.
    pub fn map(&self, net: QuantizedNetwork) -> Result<LoihiNetwork, MapNetworkError> {
        let mut cores_per_layer = Vec::with_capacity(net.layers.len());
        let mut total_compartments = 0;
        let mut total_synapses = 0;
        for (k, layer) in net.layers.iter().enumerate() {
            let compartment_cores = layer.out_dim.div_ceil(self.config.compartments_per_core);
            let synapses = layer.out_dim * layer.in_dim;
            let synapse_cores = synapses.div_ceil(self.config.synapses_per_core);
            let cores = compartment_cores.max(synapse_cores);
            if cores > self.config.cores {
                return Err(MapNetworkError {
                    what: format!(
                        "layer {k} alone needs {cores} cores (chip has {})",
                        self.config.cores
                    ),
                });
            }
            cores_per_layer.push(cores);
            total_compartments += layer.out_dim;
            total_synapses += synapses;
        }
        let total_cores: usize = cores_per_layer.iter().sum();
        if total_cores > self.config.cores {
            return Err(MapNetworkError {
                what: format!("needs {total_cores} cores, chip has {}", self.config.cores),
            });
        }
        let allocation =
            CoreAllocation { cores_per_layer, total_cores, total_compartments, total_synapses };
        Ok(LoihiNetwork { net, allocation })
    }
}

/// A quantized network mapped onto chip resources, ready to run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoihiNetwork {
    net: QuantizedNetwork,
    allocation: CoreAllocation,
}

impl LoihiNetwork {
    /// The core allocation chosen by the mapper.
    pub fn allocation(&self) -> &CoreAllocation {
        &self.allocation
    }

    /// The quantized network being executed.
    pub fn network(&self) -> &QuantizedNetwork {
        &self.net
    }

    /// Runs one inference over an input spike raster (`T × in_dim`, values
    /// 0/1) using integer arithmetic throughout, as the chip would.
    ///
    /// Returns the per-neuron spike sums of the last layer (for the
    /// off-chip decoder) and the event counters.
    ///
    /// # Panics
    ///
    /// Panics if the raster's shape disagrees with the network
    /// (`rows != timesteps` or `cols != first layer in_dim`).
    pub fn infer(&self, input_spikes: &Matrix) -> (Vec<f64>, LoihiRunStats) {
        let t_max = self.net.timesteps;
        assert_eq!(input_spikes.rows(), t_max, "raster timestep mismatch");
        assert_eq!(
            input_spikes.cols(),
            self.net.layers[0].in_dim,
            "raster width mismatch with first layer"
        );
        let dc = (self.net.lif.d_c * DECAY_ONE as f64).round() as i64;
        let dv = (self.net.lif.d_v * DECAY_ONE as f64).round() as i64;

        let mut stats = LoihiRunStats { timesteps: t_max as u64, ..Default::default() };
        stats.input_spikes = input_spikes.as_slice().iter().filter(|&&s| s > 0.0).count() as u64;

        // Per-layer integer state.
        let mut currents: Vec<Vec<i64>> =
            self.net.layers.iter().map(|l| vec![0_i64; l.out_dim]).collect();
        let mut voltages: Vec<Vec<i64>> =
            self.net.layers.iter().map(|l| vec![0_i64; l.out_dim]).collect();
        let mut spikes_prev: Vec<Vec<bool>> =
            self.net.layers.iter().map(|l| vec![false; l.out_dim]).collect();

        let last = self.net.layers.len() - 1;
        let mut out_sums = vec![0.0_f64; self.net.layers[last].out_dim];

        // Scratch spike buffer flowing between layers within a timestep.
        let mut spike_in: Vec<bool> = Vec::new();
        for t in 0..t_max {
            spike_in.clear();
            spike_in.extend(input_spikes.row(t).iter().map(|&s| s > 0.0));
            for (k, layer) in self.net.layers.iter().enumerate() {
                let (c, v, o_prev) = (&mut currents[k], &mut voltages[k], &mut spikes_prev[k]);
                // Current decay + synaptic accumulation.
                for (ci, &bi) in c.iter_mut().zip(&layer.bias) {
                    *ci = (*ci * dc) >> DECAY_BITS;
                    *ci += bi as i64;
                }
                for (j, &s) in spike_in.iter().enumerate() {
                    if !s {
                        continue;
                    }
                    stats.synops += layer.out_dim as u64;
                    for (i, ci) in c.iter_mut().enumerate() {
                        *ci += layer.weights[i * layer.in_dim + j] as i64;
                    }
                }
                // Voltage update with post-spike reset, then threshold.
                let mut out = vec![false; layer.out_dim];
                for i in 0..layer.out_dim {
                    let decayed = (v[i] * dv) >> DECAY_BITS;
                    v[i] = if o_prev[i] { 0 } else { decayed };
                    v[i] += c[i];
                    if v[i] > layer.v_th as i64 {
                        out[i] = true;
                        stats.neuron_spikes += 1;
                    }
                }
                stats.neuron_updates += layer.out_dim as u64;
                if k == last {
                    for (s, &o) in out_sums.iter_mut().zip(&out) {
                        if o {
                            *s += 1.0;
                        }
                    }
                }
                *o_prev = out.clone();
                spike_in = out;
            }
        }
        (out_sums, stats)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::quantize::quantize_network;
    use rand::SeedableRng;
    use spikefolio_snn::network::{SdpNetwork, SdpNetworkConfig};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    fn mapped_small() -> (SdpNetwork, LoihiNetwork) {
        let net = SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng());
        let (q, _) = quantize_network(&net);
        let mapped = LoihiChip::default().map(q).expect("small net fits");
        (net, mapped)
    }

    #[test]
    fn small_network_fits_one_core_per_layer() {
        let (_, mapped) = mapped_small();
        assert!(mapped.allocation().total_cores >= 2);
        assert!(mapped.allocation().total_cores <= 4);
        assert_eq!(mapped.allocation().total_compartments, 16 + 12);
    }

    #[test]
    fn paper_network_fits_on_one_chip() {
        // The paper's full network: state_dim = 11 assets × 8 window × 4
        // channels + 12 weights = 364 dims, 128×128 hidden, 12 actions.
        let cfg = SdpNetworkConfig::paper(364, 12);
        let net = SdpNetwork::new(cfg, &mut rng());
        let (q, _) = quantize_network(&net);
        let mapped = LoihiChip::default().map(q);
        assert!(mapped.is_ok(), "{:?}", mapped.err());
        let m = mapped.unwrap();
        assert!(m.allocation().total_cores <= 128, "cores: {}", m.allocation().total_cores);
    }

    #[test]
    fn oversized_network_is_rejected() {
        let tiny_chip = LoihiChip::new(ChipConfig {
            cores: 1,
            compartments_per_core: 4,
            synapses_per_core: 64,
        });
        let net = SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng());
        let (q, _) = quantize_network(&net);
        let err = tiny_chip.map(q).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn chip_spike_pattern_tracks_float_network() {
        // Quantization preserves behaviour: actions decoded from chip spike
        // sums should be close to the float network's.
        let (net, mapped) = mapped_small();
        let mut r = rng();
        let mut agree = 0;
        let total = 20;
        for i in 0..total {
            let s = [0.8 + 0.04 * i as f64, 1.0, 1.2 - 0.03 * i as f64, 0.9 + 0.02 * i as f64];
            let enc = net.encoder.encode(&s, net.config().timesteps, &mut r);
            let (sums, _) = mapped.infer(&enc);
            let chip_action = net.decoder.decode(&sums).action;
            let float_action = net.act(&s, &mut r);
            let same_argmax = spikefolio_tensor::vector::argmax(&chip_action)
                == spikefolio_tensor::vector::argmax(&float_action);
            if same_argmax {
                agree += 1;
            }
        }
        assert!(agree >= total * 8 / 10, "only {agree}/{total} argmax agreements");
    }

    #[test]
    fn stats_are_populated() {
        let (net, mapped) = mapped_small();
        let enc = net.encoder.encode(&[1.0, 1.0, 1.0, 1.0], 5, &mut rng());
        let (_, stats) = mapped.infer(&enc);
        assert_eq!(stats.timesteps, 5);
        assert!(stats.input_spikes > 0);
        assert_eq!(stats.neuron_updates, (16 + 12) * 5);
        assert!(stats.synops >= stats.input_spikes * 16);
        let ss = stats.to_spike_stats();
        assert_eq!(ss.encoder_spikes, stats.input_spikes);
    }

    #[test]
    fn silent_input_is_nearly_free() {
        let (_, mapped) = mapped_small();
        let silent = Matrix::zeros(5, mapped.network().layers[0].in_dim);
        let (sums, stats) = mapped.infer(&silent);
        assert_eq!(stats.input_spikes, 0);
        assert_eq!(stats.synops, 0, "no spikes → no synops (event-driven)");
        assert!(sums.iter().all(|&s| s == 0.0));
    }

    #[test]
    #[should_panic(expected = "raster")]
    fn wrong_raster_shape_panics() {
        let (_, mapped) = mapped_small();
        let bad = Matrix::zeros(3, 7);
        let _ = mapped.infer(&bad);
    }
}
