//! Multi-chip Loihi board configurations (Kapoho Bay, Nahuku) and the
//! power-trace probe used to emulate the paper's "energy probe"
//! measurement methodology.

use crate::chip::{ChipConfig, CoreAllocation, LoihiChip, LoihiNetwork, MapNetworkError};
use crate::energy::LoihiEnergyModel;
use crate::quantize::QuantizedNetwork;
use serde::{Deserialize, Serialize};
use spikefolio_snn::network::SpikeStats;

/// A board hosting one or more Loihi chips.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Board {
    /// Marketing name of the form factor.
    pub name: &'static str,
    /// Number of Loihi chips on the board.
    pub chips: usize,
    /// Per-chip resource budget.
    pub chip: ChipConfig,
    /// Idle power of the whole board, watts (replaces the single-chip
    /// default in energy reports).
    pub idle_w: f64,
}

impl Board {
    /// Kapoho Bay: the 2-chip USB form factor — the device class the
    /// paper's embedded/IoT motivation targets.
    pub fn kapoho_bay() -> Self {
        Self { name: "Kapoho Bay", chips: 2, chip: ChipConfig::default(), idle_w: 1.01 }
    }

    /// Nahuku-8: 8-chip remote-access board.
    pub fn nahuku8() -> Self {
        Self { name: "Nahuku-8", chips: 8, chip: ChipConfig::default(), idle_w: 4.0 }
    }

    /// Nahuku-32: 32-chip board.
    pub fn nahuku32() -> Self {
        Self { name: "Nahuku-32", chips: 32, chip: ChipConfig::default(), idle_w: 16.0 }
    }

    /// Total neurocores on the board.
    pub fn total_cores(&self) -> usize {
        self.chips * self.chip.cores
    }

    /// Maps a quantized network onto the board.
    ///
    /// The network still executes as a single logical core group (the chip
    /// model is functional, not timing-accurate across chip boundaries);
    /// the board check verifies the *aggregate* resource budget and
    /// reports how many chips the allocation spans.
    ///
    /// # Errors
    ///
    /// Returns [`MapNetworkError`] if even the aggregate budget is
    /// exceeded.
    pub fn map(&self, net: QuantizedNetwork) -> Result<BoardDeployment, MapNetworkError> {
        // A board-sized virtual chip carries the aggregate budget.
        let virtual_chip = LoihiChip::new(ChipConfig { cores: self.total_cores(), ..self.chip });
        let network = virtual_chip.map(net)?;
        let chips_used = network.allocation().total_cores.div_ceil(self.chip.cores);
        Ok(BoardDeployment { board: *self, network, chips_used })
    }
}

/// A network mapped onto a board.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardDeployment {
    /// The board description.
    pub board: Board,
    /// The executable mapped network.
    pub network: LoihiNetwork,
    /// Chips spanned by the core allocation.
    pub chips_used: usize,
}

impl BoardDeployment {
    /// Core allocation details.
    pub fn allocation(&self) -> &CoreAllocation {
        self.network.allocation()
    }
}

/// A time series of board power emulating the paper's energy-probe
/// measurement: one sample per inference, `idle + E_dyn/interval`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    /// Seconds between successive inferences (the decision period).
    pub interval_s: f64,
    /// Instantaneous power samples, watts.
    pub samples: Vec<f64>,
    /// Board idle power, watts.
    pub idle_w: f64,
}

impl PowerTrace {
    /// Builds a trace from per-inference event counts.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s <= 0`.
    pub fn from_stats(
        model: &LoihiEnergyModel,
        idle_w: f64,
        per_inference: &[SpikeStats],
        interval_s: f64,
    ) -> Self {
        assert!(interval_s > 0.0, "interval must be positive");
        let samples =
            per_inference.iter().map(|s| idle_w + model.dynamic_energy(s) / interval_s).collect();
        Self { interval_s, samples, idle_w }
    }

    /// Mean power over the trace (idle if empty).
    pub fn mean_power(&self) -> f64 {
        if self.samples.is_empty() {
            self.idle_w
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Mean *dynamic* power (mean power minus idle).
    pub fn mean_dynamic_power(&self) -> f64 {
        self.mean_power() - self.idle_w
    }

    /// Total energy over the trace, joules.
    pub fn total_energy(&self) -> f64 {
        self.samples.iter().sum::<f64>() * self.interval_s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::quantize::quantize_network;
    use rand::SeedableRng;
    use spikefolio_snn::network::{SdpNetwork, SdpNetworkConfig};

    fn quantized(cfg: SdpNetworkConfig) -> QuantizedNetwork {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let net = SdpNetwork::new(cfg, &mut rng);
        quantize_network(&net).0
    }

    #[test]
    fn boards_have_increasing_capacity() {
        assert!(Board::kapoho_bay().total_cores() < Board::nahuku8().total_cores());
        assert!(Board::nahuku8().total_cores() < Board::nahuku32().total_cores());
    }

    #[test]
    fn small_network_uses_one_chip() {
        let dep = Board::kapoho_bay().map(quantized(SdpNetworkConfig::small(4, 3))).unwrap();
        assert_eq!(dep.chips_used, 1);
    }

    #[test]
    fn paper_network_fits_kapoho_bay() {
        let dep = Board::kapoho_bay().map(quantized(SdpNetworkConfig::paper(364, 12)));
        assert!(dep.is_ok(), "{:?}", dep.err());
        assert!(dep.unwrap().chips_used <= 2);
    }

    #[test]
    fn network_overflowing_one_board_fits_a_bigger_one() {
        // Shrunken budgets exercise the same aggregate-capacity logic as
        // multi-megasynapse networks without the test cost.
        let tiny_chip = ChipConfig { cores: 2, compartments_per_core: 8, synapses_per_core: 64 };
        let small_board = Board { name: "tiny-2", chips: 2, chip: tiny_chip, idle_w: 1.0 };
        let big_board = Board { name: "tiny-64", chips: 64, chip: tiny_chip, idle_w: 1.0 };
        let q = quantized(SdpNetworkConfig::small(4, 3));
        assert!(small_board.map(q.clone()).is_err(), "must exceed 4 tiny cores");
        let dep = big_board.map(q).expect("fits the aggregate budget");
        assert!(dep.chips_used > 2, "spans {} chips", dep.chips_used);
    }

    #[test]
    fn power_trace_math() {
        let model = LoihiEnergyModel::davies2018();
        let stats = SpikeStats {
            encoder_spikes: 100,
            neuron_spikes: 50,
            synops: 10_000,
            neuron_updates: 600,
        };
        let trace = PowerTrace::from_stats(&model, 1.01, &[stats, stats], 0.5);
        assert_eq!(trace.samples.len(), 2);
        let e = model.dynamic_energy(&stats);
        assert!((trace.samples[0] - (1.01 + e / 0.5)).abs() < 1e-15);
        assert!((trace.mean_dynamic_power() - e / 0.5).abs() < 1e-12);
        assert!((trace.total_energy() - trace.mean_power() * 2.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_reports_idle() {
        let model = LoihiEnergyModel::davies2018();
        let trace = PowerTrace::from_stats(&model, 1.01, &[], 1.0);
        assert_eq!(trace.mean_power(), 1.01);
        assert_eq!(trace.mean_dynamic_power(), 0.0);
    }
}
