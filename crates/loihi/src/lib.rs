//! Behavioural Intel Loihi simulator for `spikefolio`.
//!
//! The paper deploys the trained SDP network on Intel's Loihi neuromorphic
//! processor (§II.D) and measures energy/latency against CPU/GPU baselines
//! (Table 4). Real Loihi hardware is not available here, so this crate
//! implements the deployment pipeline behaviourally:
//!
//! * [`quantize`] — eq. (14): per-layer rescaling of weights and thresholds
//!   to Loihi's 8-bit signed integer weights.
//! * [`chip`] — a fixed-point chip model: neurocores with compartment and
//!   fan-in budgets, integer dual-state LIF dynamics (12-bit decay
//!   arithmetic like the real chip), and spike/synop event counters.
//! * [`energy`] — an event-linear energy model
//!   `E = E_synop·synops + E_spike·spikes + E_update·updates + E_io`,
//!   with two constant sets: physically-grounded (`davies2018`) and
//!   calibrated to reproduce the paper's measured Table 4 rows.
//! * [`device`] — analytic CPU/GPU device models (FLOP counting + power
//!   envelope) for the DRL baseline's rows of Table 4.
//!
//! Loihi's published energy behaviour is linear in event counts, so an
//! event-counting simulator exercises the same pipeline a hardware
//! deployment would (quantize → map → run → read probes) and reproduces
//! the relative energy/speed picture of Table 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod board;
pub mod chip;
pub mod device;
pub mod energy;
pub mod quantize;
pub mod telemetry;

pub use board::{Board, BoardDeployment, PowerTrace};
pub use chip::{ChipConfig, LoihiChip, LoihiNetwork};
pub use device::{DeviceKind, DeviceModel};
pub use energy::{EnergyReport, LoihiEnergyModel};
pub use quantize::{
    QuantizationReport, QuantizeError, QuantizeOptions, QuantizedLayer, QuantizedNetwork,
};
