//! Bridges chip-model event counters into the run-telemetry layer.
//!
//! A deployment accumulates [`LoihiRunStats`] while trading; this module
//! records those event totals as monotonic counters under the canonical
//! `loihi/*` labels and reconstructs them from a summarized run log, so
//! [`LoihiEnergyModel::report`](crate::energy::LoihiEnergyModel::report)
//! can be fed from recorded telemetry alone (no live deployment needed).

use crate::chip::LoihiRunStats;
use spikefolio_snn::network::SpikeStats;
use spikefolio_telemetry::{labels, Recorder};

/// Records `stats` (event totals over `inferences` inferences) as
/// `loihi/*` counters on `rec`. Counters are monotonic: call this once
/// per batch of new events, not with running totals.
pub fn record_run_stats(rec: &mut dyn Recorder, stats: &LoihiRunStats, inferences: u64) {
    if !rec.enabled() {
        return;
    }
    rec.counter(labels::COUNTER_LOIHI_INPUT_SPIKES, stats.input_spikes);
    rec.counter(labels::COUNTER_LOIHI_NEURON_SPIKES, stats.neuron_spikes);
    rec.counter(labels::COUNTER_LOIHI_SYNOPS, stats.synops);
    rec.counter(labels::COUNTER_LOIHI_NEURON_UPDATES, stats.neuron_updates);
    rec.counter(labels::COUNTER_LOIHI_TIMESTEPS, stats.timesteps);
    rec.counter(labels::COUNTER_LOIHI_INFERENCES, inferences);
}

/// Reconstructs the event totals and inference count from counter totals
/// (e.g. [`RunSummary::counters`](spikefolio_telemetry::RunSummary)).
/// `get` maps a counter label to its total, 0 when absent. Returns `None`
/// when the log recorded no inferences.
pub fn run_stats_from_counters(get: impl Fn(&str) -> u64) -> Option<(LoihiRunStats, u64)> {
    let inferences = get(labels::COUNTER_LOIHI_INFERENCES);
    if inferences == 0 {
        return None;
    }
    let stats = LoihiRunStats {
        input_spikes: get(labels::COUNTER_LOIHI_INPUT_SPIKES),
        neuron_spikes: get(labels::COUNTER_LOIHI_NEURON_SPIKES),
        synops: get(labels::COUNTER_LOIHI_SYNOPS),
        neuron_updates: get(labels::COUNTER_LOIHI_NEURON_UPDATES),
        timesteps: get(labels::COUNTER_LOIHI_TIMESTEPS),
    };
    Some((stats, inferences))
}

/// Mean per-inference event bundle and timestep count from event totals —
/// the exact inputs of
/// [`LoihiEnergyModel::report`](crate::energy::LoihiEnergyModel::report).
pub fn mean_spike_stats(totals: &LoihiRunStats, inferences: u64) -> (SpikeStats, usize) {
    let n = inferences.max(1);
    let per = LoihiRunStats {
        input_spikes: totals.input_spikes / n,
        neuron_spikes: totals.neuron_spikes / n,
        synops: totals.synops / n,
        neuron_updates: totals.neuron_updates / n,
        timesteps: totals.timesteps / n,
    };
    let timesteps = per.timesteps as usize;
    (per.to_spike_stats(), timesteps)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::energy::LoihiEnergyModel;
    use spikefolio_telemetry::MemoryRecorder;

    fn totals() -> LoihiRunStats {
        LoihiRunStats {
            input_spikes: 4_000,
            neuron_spikes: 3_000,
            synops: 600_000,
            neuron_updates: 7_000,
            timesteps: 50,
        }
    }

    #[test]
    fn counters_round_trip_through_a_recorder() {
        let mut rec = MemoryRecorder::new();
        record_run_stats(&mut rec, &totals(), 10);
        let (back, inferences) = run_stats_from_counters(|label| rec.counter_total(label)).unwrap();
        assert_eq!(back, totals());
        assert_eq!(inferences, 10);
    }

    #[test]
    fn energy_report_from_recorded_counters_matches_direct_path() {
        let mut rec = MemoryRecorder::new();
        record_run_stats(&mut rec, &totals(), 10);
        let (back, inferences) = run_stats_from_counters(|label| rec.counter_total(label)).unwrap();
        let (per_inf, timesteps) = mean_spike_stats(&back, inferences);

        // The ad-hoc path a live deployment uses: mean stats directly.
        let (direct, direct_t) = mean_spike_stats(&totals(), 10);

        let model = LoihiEnergyModel::davies2018();
        let from_log = model.report("log", &per_inf, timesteps);
        let live = model.report("live", &direct, direct_t);
        assert_eq!(from_log.nj_per_inf, live.nj_per_inf);
        assert_eq!(from_log.inf_per_s, live.inf_per_s);
        assert_eq!(from_log.dyn_w, live.dyn_w);
    }

    #[test]
    fn missing_inference_counter_yields_none() {
        assert!(run_stats_from_counters(|_| 0).is_none());
    }
}
