//! Weight/threshold rescaling to Loihi's integer grid (eq. 14).
//!
//! Loihi stores synaptic weights as 8-bit integers. Eq. (14) rescales each
//! layer independently:
//!
//! ```text
//! r(k)        = w_max_loihi / max |w(k)|
//! w_loihi(k)  = round(r(k) · w(k))
//! V_th_loihi  = round(r(k) · V_th)
//! ```
//!
//! Because current, voltage, and threshold all scale by the same `r(k)`,
//! the spike pattern of the integer network matches the float network up
//! to rounding error — verified by the round-trip tests and by the
//! pipeline tests in the core crate.

use spikefolio_snn::network::SdpNetwork;
use spikefolio_snn::LifParams;

/// Largest weight magnitude representable on Loihi (8-bit signed).
pub const LOIHI_W_MAX: i32 = 127;

/// One quantized layer: integer weights/bias plus the integer threshold
/// and the rescale ratio used (eq. 14).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLayer {
    /// Integer weights, row-major `out × in`.
    pub weights: Vec<i32>,
    /// Output (row) count.
    pub out_dim: usize,
    /// Input (column) count.
    pub in_dim: usize,
    /// Integer bias (added to current each step), scaled by `ratio`.
    pub bias: Vec<i32>,
    /// Integer firing threshold `round(r · V_th)`.
    pub v_th: i32,
    /// The rescale ratio `r(k)`.
    pub ratio: f64,
}

impl QuantizedLayer {
    /// Integer weight at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn weight(&self, row: usize, col: usize) -> i32 {
        assert!(row < self.out_dim && col < self.in_dim, "index out of bounds");
        self.weights[row * self.in_dim + col]
    }

    /// Reconstructs the float weight matrix (`w_loihi / r`), for error
    /// analysis.
    pub fn dequantized(&self) -> Vec<f64> {
        self.weights.iter().map(|&w| w as f64 / self.ratio).collect()
    }
}

/// A fully quantized SDP network ready for chip mapping: integer LIF
/// layers plus the float decoder (the decoder runs off-chip on the
/// embedded x86 cores, as in the PopSAN deployments the paper follows).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedNetwork {
    /// Quantized LIF layers, input-side first.
    pub layers: Vec<QuantizedLayer>,
    /// LIF decay parameters (shared with the float network; decays are
    /// dimensionless and implemented as 12-bit multipliers on chip).
    pub lif: LifParams,
    /// Simulation length `T`.
    pub timesteps: usize,
}

/// Summary statistics of a quantization pass.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizationReport {
    /// Per-layer rescale ratios `r(k)`.
    pub ratios: Vec<f64>,
    /// Per-layer maximum absolute weight error after dequantization.
    pub max_errors: Vec<f64>,
    /// Per-layer share of weights that rounded to zero.
    pub zero_fractions: Vec<f64>,
}

/// Quantizes every LIF layer of `net` per eq. (14).
///
/// # Panics
///
/// Panics if a layer is all-zero (no finite rescale ratio exists), or if
/// the network uses adaptive thresholds (ALIF) — the chip model currently
/// deploys plain LIF only, matching the paper's Loihi configuration.
pub fn quantize_network(net: &SdpNetwork) -> (QuantizedNetwork, QuantizationReport) {
    assert!(
        net.layers.iter().all(|l| l.adaptation.is_none()),
        "chip deployment supports plain LIF only; disable ALIF before quantizing"
    );
    let mut layers = Vec::with_capacity(net.layers.len());
    let mut ratios = Vec::new();
    let mut max_errors = Vec::new();
    let mut zero_fractions = Vec::new();
    for layer in &net.layers {
        let w_max =
            layer.weights.max_abs().max(layer.bias.iter().fold(0.0_f64, |m, &b| m.max(b.abs())));
        assert!(w_max > 0.0, "cannot quantize an all-zero layer");
        let ratio = LOIHI_W_MAX as f64 / w_max;
        let weights: Vec<i32> =
            layer.weights.as_slice().iter().map(|&w| (ratio * w).round() as i32).collect();
        let bias: Vec<i32> = layer.bias.iter().map(|&b| (ratio * b).round() as i32).collect();
        let v_th = (ratio * layer.params.v_th).round().max(1.0) as i32;

        let max_err = layer
            .weights
            .as_slice()
            .iter()
            .zip(&weights)
            .map(|(&wf, &wi)| (wf - wi as f64 / ratio).abs())
            .fold(0.0_f64, f64::max);
        let zeros = weights.iter().filter(|&&w| w == 0).count() as f64 / weights.len() as f64;

        ratios.push(ratio);
        max_errors.push(max_err);
        zero_fractions.push(zeros);
        layers.push(QuantizedLayer {
            weights,
            out_dim: layer.out_dim(),
            in_dim: layer.in_dim(),
            bias,
            v_th,
            ratio,
        });
    }
    (
        QuantizedNetwork { layers, lif: net.config().lif, timesteps: net.config().timesteps },
        QuantizationReport { ratios, max_errors, zero_fractions },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spikefolio_snn::network::SdpNetworkConfig;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn net() -> SdpNetwork {
        SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng())
    }

    #[test]
    fn quantized_weights_fit_in_8_bits() {
        let (q, _) = quantize_network(&net());
        for layer in &q.layers {
            assert!(layer.weights.iter().all(|&w| (-LOIHI_W_MAX..=LOIHI_W_MAX).contains(&w)));
        }
    }

    #[test]
    fn max_weight_maps_to_full_scale() {
        let (q, _) = quantize_network(&net());
        // At least one weight (or bias) per layer reaches ±127.
        for layer in &q.layers {
            let max = layer.weights.iter().chain(&layer.bias).map(|w| w.abs()).max().unwrap();
            assert_eq!(max, LOIHI_W_MAX, "full scale must be used");
        }
    }

    #[test]
    fn dequantization_error_bounded_by_half_step() {
        let (q, report) = quantize_network(&net());
        for (layer, &err) in q.layers.iter().zip(&report.max_errors) {
            // Max error after round() is half a quantization step.
            assert!(err <= 0.5 / layer.ratio + 1e-12, "error {err} ratio {}", layer.ratio);
        }
    }

    #[test]
    fn threshold_scales_with_ratio() {
        let (q, report) = quantize_network(&net());
        for (layer, &r) in q.layers.iter().zip(&report.ratios) {
            let expect = (r * 0.5).round() as i32; // paper V_th = 0.5
            assert_eq!(layer.v_th, expect.max(1));
        }
    }

    #[test]
    fn report_shapes_match_network() {
        let n = net();
        let (q, report) = quantize_network(&n);
        assert_eq!(q.layers.len(), n.depth());
        assert_eq!(report.ratios.len(), n.depth());
        assert_eq!(report.max_errors.len(), n.depth());
        assert!(report.zero_fractions.iter().all(|&z| (0.0..=1.0).contains(&z)));
    }

    #[test]
    fn weight_accessor_and_dequantized_agree() {
        let (q, _) = quantize_network(&net());
        let layer = &q.layers[0];
        let deq = layer.dequantized();
        assert_eq!(deq.len(), layer.out_dim * layer.in_dim);
        assert_eq!(layer.weight(0, 0) as f64 / layer.ratio, deq[0]);
    }

    #[test]
    fn timesteps_carried_over() {
        let (q, _) = quantize_network(&net());
        assert_eq!(q.timesteps, 5);
        assert_eq!(q.lif, LifParams::paper());
    }
}
