//! Weight/threshold rescaling to Loihi's integer grid (eq. 14).
//!
//! Loihi stores synaptic weights as 8-bit integers. Eq. (14) rescales each
//! layer independently:
//!
//! ```text
//! r(k)        = w_max_loihi / max |w(k)|
//! w_loihi(k)  = round(r(k) · w(k))
//! V_th_loihi  = round(r(k) · V_th)
//! ```
//!
//! Because current, voltage, and threshold all scale by the same `r(k)`,
//! the spike pattern of the integer network matches the float network up
//! to rounding error — verified by the round-trip tests and by the
//! pipeline tests in the core crate.

use spikefolio_snn::network::SdpNetwork;
use spikefolio_snn::LifParams;

/// Largest weight magnitude representable on Loihi (8-bit signed).
pub const LOIHI_W_MAX: i32 = 127;

/// One quantized layer: integer weights/bias plus the integer threshold
/// and the rescale ratio used (eq. 14).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLayer {
    /// Integer weights, row-major `out × in`.
    pub weights: Vec<i32>,
    /// Output (row) count.
    pub out_dim: usize,
    /// Input (column) count.
    pub in_dim: usize,
    /// Integer bias (added to current each step), scaled by `ratio`.
    pub bias: Vec<i32>,
    /// Integer firing threshold `round(r · V_th)`.
    pub v_th: i32,
    /// The rescale ratio `r(k)`.
    pub ratio: f64,
}

impl QuantizedLayer {
    /// Integer weight at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn weight(&self, row: usize, col: usize) -> i32 {
        assert!(row < self.out_dim && col < self.in_dim, "index out of bounds");
        self.weights[row * self.in_dim + col]
    }

    /// Reconstructs the float weight matrix (`w_loihi / r`), for error
    /// analysis.
    pub fn dequantized(&self) -> Vec<f64> {
        self.weights.iter().map(|&w| w as f64 / self.ratio).collect()
    }
}

/// A fully quantized SDP network ready for chip mapping: integer LIF
/// layers plus the float decoder (the decoder runs off-chip on the
/// embedded x86 cores, as in the PopSAN deployments the paper follows).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedNetwork {
    /// Quantized LIF layers, input-side first.
    pub layers: Vec<QuantizedLayer>,
    /// LIF decay parameters (shared with the float network; decays are
    /// dimensionless and implemented as 12-bit multipliers on chip).
    pub lif: LifParams,
    /// Simulation length `T`.
    pub timesteps: usize,
}

/// Summary statistics of a quantization pass.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizationReport {
    /// Per-layer rescale ratios `r(k)`.
    pub ratios: Vec<f64>,
    /// Per-layer maximum absolute weight error after dequantization
    /// (saturated weights excluded — their error is unbounded by design).
    pub max_errors: Vec<f64>,
    /// Per-layer share of weights that rounded to zero.
    pub zero_fractions: Vec<f64>,
    /// Per-layer count of weights/biases clamped to full scale (±127).
    pub saturated_counts: Vec<usize>,
    /// Per-layer share of weights/biases clamped to full scale.
    pub saturated_fractions: Vec<f64>,
}

impl QuantizationReport {
    /// Total clamped weights/biases across all layers — the value emitted
    /// on the `loihi/saturated_weights` telemetry counter at deploy time.
    pub fn total_saturated(&self) -> u64 {
        self.saturated_counts.iter().map(|&c| c as u64).sum()
    }
}

/// Tunable knobs of the rescale pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizeOptions {
    /// Which quantile of the per-layer `|w|` distribution maps to full
    /// scale. `1.0` (the default) is the paper's eq. (14): the max maps to
    /// 127 and nothing saturates. Lower values trade resolution for
    /// outlier weights against resolution for the bulk — everything above
    /// the quantile clamps to ±127 and is counted as saturated.
    pub ratio_percentile: f64,
    /// Largest tolerable per-layer saturated fraction before quantization
    /// fails with [`QuantizeError::ExcessSaturation`].
    pub max_saturation_fraction: f64,
}

impl Default for QuantizeOptions {
    fn default() -> Self {
        Self { ratio_percentile: 1.0, max_saturation_fraction: 0.05 }
    }
}

/// Why a network could not be quantized.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantizeError {
    /// The network uses adaptive thresholds (ALIF); the chip model deploys
    /// plain LIF only, matching the paper's Loihi configuration.
    AdaptiveThresholds,
    /// A layer is all-zero, so no finite rescale ratio exists.
    AllZeroLayer {
        /// Index of the offending layer.
        layer: usize,
    },
    /// More weights clamped to full scale than the configured bound.
    ExcessSaturation {
        /// Index of the offending layer.
        layer: usize,
        /// Observed saturated fraction.
        fraction: f64,
        /// The configured [`QuantizeOptions::max_saturation_fraction`].
        limit: f64,
    },
}

impl std::fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantizeError::AdaptiveThresholds => {
                write!(f, "chip deployment supports plain LIF only; disable ALIF before quantizing")
            }
            QuantizeError::AllZeroLayer { layer } => {
                write!(f, "cannot quantize all-zero layer {layer}")
            }
            QuantizeError::ExcessSaturation { layer, fraction, limit } => write!(
                f,
                "layer {layer}: {:.2}% of weights saturate at full scale (limit {:.2}%)",
                fraction * 100.0,
                limit * 100.0
            ),
        }
    }
}

impl std::error::Error for QuantizeError {}

/// Reference magnitude that maps to full scale: the `pct`-quantile of the
/// pooled `|weights| ∪ |bias|` distribution (1.0 = max).
fn reference_magnitude(mags: &mut [f64], pct: f64) -> f64 {
    mags.sort_by(|a, b| a.total_cmp(b));
    let idx = ((mags.len() - 1) as f64 * pct.clamp(0.0, 1.0)).round() as usize;
    mags[idx]
}

/// Quantizes every LIF layer of `net` per eq. (14), with explicit options
/// and typed errors. Weights beyond full scale clamp to ±127 and are
/// counted per layer in the report.
///
/// # Errors
///
/// Returns [`QuantizeError`] if the network uses ALIF, a layer is
/// all-zero, or any layer saturates more than
/// [`QuantizeOptions::max_saturation_fraction`] of its weights.
pub fn try_quantize_network(
    net: &SdpNetwork,
    opts: &QuantizeOptions,
) -> Result<(QuantizedNetwork, QuantizationReport), QuantizeError> {
    if net.layers.iter().any(|l| l.adaptation.is_some()) {
        return Err(QuantizeError::AdaptiveThresholds);
    }
    let mut layers = Vec::with_capacity(net.layers.len());
    let mut report = QuantizationReport {
        ratios: Vec::new(),
        max_errors: Vec::new(),
        zero_fractions: Vec::new(),
        saturated_counts: Vec::new(),
        saturated_fractions: Vec::new(),
    };
    for (k, layer) in net.layers.iter().enumerate() {
        let mut mags: Vec<f64> =
            layer.weights.as_slice().iter().chain(layer.bias.iter()).map(|w| w.abs()).collect();
        let w_ref = reference_magnitude(&mut mags, opts.ratio_percentile);
        if w_ref <= 0.0 || w_ref.is_nan() {
            return Err(QuantizeError::AllZeroLayer { layer: k });
        }
        let ratio = LOIHI_W_MAX as f64 / w_ref;
        let mut saturated = 0usize;
        let mut q = |w: f64| -> i32 {
            let scaled = (ratio * w).round();
            if scaled.abs() > LOIHI_W_MAX as f64 {
                saturated += 1;
                LOIHI_W_MAX * scaled.signum() as i32
            } else {
                scaled as i32
            }
        };
        let weights: Vec<i32> = layer.weights.as_slice().iter().map(|&w| q(w)).collect();
        let bias: Vec<i32> = layer.bias.iter().map(|&b| q(b)).collect();
        let v_th = (ratio * layer.params.v_th).round().max(1.0) as i32;

        let total = weights.len() + bias.len();
        let sat_fraction = saturated as f64 / total as f64;
        if sat_fraction > opts.max_saturation_fraction {
            return Err(QuantizeError::ExcessSaturation {
                layer: k,
                fraction: sat_fraction,
                limit: opts.max_saturation_fraction,
            });
        }

        let max_err = layer
            .weights
            .as_slice()
            .iter()
            .zip(&weights)
            .filter(|(&wf, _)| wf.abs() * ratio <= LOIHI_W_MAX as f64 + 0.5)
            .map(|(&wf, &wi)| (wf - wi as f64 / ratio).abs())
            .fold(0.0_f64, f64::max);
        let zeros = weights.iter().filter(|&&w| w == 0).count() as f64 / weights.len() as f64;

        report.ratios.push(ratio);
        report.max_errors.push(max_err);
        report.zero_fractions.push(zeros);
        report.saturated_counts.push(saturated);
        report.saturated_fractions.push(sat_fraction);
        layers.push(QuantizedLayer {
            weights,
            out_dim: layer.out_dim(),
            in_dim: layer.in_dim(),
            bias,
            v_th,
            ratio,
        });
    }
    Ok((
        QuantizedNetwork { layers, lif: net.config().lif, timesteps: net.config().timesteps },
        report,
    ))
}

/// Quantizes every LIF layer of `net` per eq. (14) with default options
/// (max-abs ratio, so nothing saturates).
///
/// # Panics
///
/// Panics if a layer is all-zero (no finite rescale ratio exists), or if
/// the network uses adaptive thresholds (ALIF) — the chip model currently
/// deploys plain LIF only, matching the paper's Loihi configuration.
#[allow(clippy::expect_used)] // documented panic contract of the legacy API
pub fn quantize_network(net: &SdpNetwork) -> (QuantizedNetwork, QuantizationReport) {
    try_quantize_network(net, &QuantizeOptions::default()).expect("quantization failed")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rand::SeedableRng;
    use spikefolio_snn::network::SdpNetworkConfig;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn net() -> SdpNetwork {
        SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng())
    }

    #[test]
    fn quantized_weights_fit_in_8_bits() {
        let (q, _) = quantize_network(&net());
        for layer in &q.layers {
            assert!(layer.weights.iter().all(|&w| (-LOIHI_W_MAX..=LOIHI_W_MAX).contains(&w)));
        }
    }

    #[test]
    fn max_weight_maps_to_full_scale() {
        let (q, _) = quantize_network(&net());
        // At least one weight (or bias) per layer reaches ±127.
        for layer in &q.layers {
            let max = layer.weights.iter().chain(&layer.bias).map(|w| w.abs()).max().unwrap();
            assert_eq!(max, LOIHI_W_MAX, "full scale must be used");
        }
    }

    #[test]
    fn dequantization_error_bounded_by_half_step() {
        let (q, report) = quantize_network(&net());
        for (layer, &err) in q.layers.iter().zip(&report.max_errors) {
            // Max error after round() is half a quantization step.
            assert!(err <= 0.5 / layer.ratio + 1e-12, "error {err} ratio {}", layer.ratio);
        }
    }

    #[test]
    fn threshold_scales_with_ratio() {
        let (q, report) = quantize_network(&net());
        for (layer, &r) in q.layers.iter().zip(&report.ratios) {
            let expect = (r * 0.5).round() as i32; // paper V_th = 0.5
            assert_eq!(layer.v_th, expect.max(1));
        }
    }

    #[test]
    fn report_shapes_match_network() {
        let n = net();
        let (q, report) = quantize_network(&n);
        assert_eq!(q.layers.len(), n.depth());
        assert_eq!(report.ratios.len(), n.depth());
        assert_eq!(report.max_errors.len(), n.depth());
        assert!(report.zero_fractions.iter().all(|&z| (0.0..=1.0).contains(&z)));
    }

    #[test]
    fn weight_accessor_and_dequantized_agree() {
        let (q, _) = quantize_network(&net());
        let layer = &q.layers[0];
        let deq = layer.dequantized();
        assert_eq!(deq.len(), layer.out_dim * layer.in_dim);
        assert_eq!(layer.weight(0, 0) as f64 / layer.ratio, deq[0]);
    }

    #[test]
    fn timesteps_carried_over() {
        let (q, _) = quantize_network(&net());
        assert_eq!(q.timesteps, 5);
        assert_eq!(q.lif, LifParams::paper());
    }

    #[test]
    fn default_options_never_saturate() {
        let (_, report) = try_quantize_network(&net(), &QuantizeOptions::default()).unwrap();
        assert_eq!(report.total_saturated(), 0);
        assert!(report.saturated_fractions.iter().all(|&f| f == 0.0));
        assert_eq!(report.saturated_counts.len(), report.ratios.len());
    }

    #[test]
    fn legacy_wrapper_matches_try_with_defaults() {
        let n = net();
        let (q1, r1) = quantize_network(&n);
        let (q2, r2) = try_quantize_network(&n, &QuantizeOptions::default()).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn lower_percentile_saturates_and_counts() {
        let opts = QuantizeOptions { ratio_percentile: 0.5, max_saturation_fraction: 1.0 };
        let (q, report) = try_quantize_network(&net(), &opts).unwrap();
        assert!(report.total_saturated() > 0, "median-scaled layers must clamp outliers");
        for layer in &q.layers {
            assert!(
                layer.weights.iter().chain(&layer.bias).all(|w| w.abs() <= LOIHI_W_MAX),
                "clamped weights must stay in range"
            );
        }
        for (&count, &frac) in report.saturated_counts.iter().zip(&report.saturated_fractions) {
            assert_eq!(count > 0, frac > 0.0);
            assert!((0.0..=1.0).contains(&frac));
        }
    }

    #[test]
    fn excess_saturation_is_a_typed_error() {
        let opts = QuantizeOptions { ratio_percentile: 0.1, max_saturation_fraction: 0.01 };
        let err = try_quantize_network(&net(), &opts).unwrap_err();
        assert!(matches!(err, QuantizeError::ExcessSaturation { limit, .. } if limit == 0.01));
        assert!(err.to_string().contains("saturate"), "{err}");
    }
}
