//! Shared setup for the Criterion benches under `benches/`.
//!
//! Every kernel bench pins the same workload — a seeded paper-scale
//! network and a smooth deterministic state fill — so their numbers stay
//! comparable across benches and with the `spikefolio bench` regression
//! harness, which uses the identical fill (see
//! `spikefolio::profiling::bench_states`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_support {
    //! The pinned networks, states, and RNGs the kernel benches share.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spikefolio_snn::network::{SdpNetwork, SdpNetworkConfig};
    use spikefolio_tensor::Matrix;

    /// Paper-scale state dimension: 11 assets × window 8 × 4 channels +
    /// 12 weights.
    pub const PAPER_STATE_DIM: usize = 364;
    /// Paper-scale action dimension: 11 assets + cash.
    pub const PAPER_ACTION_DIM: usize = 12;

    /// The seeded paper-scale network (364-dim state, hidden 128 × 128,
    /// T = 5) every kernel bench runs against.
    pub fn paper_network(seed: u64) -> SdpNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        SdpNetwork::new(SdpNetworkConfig::paper(PAPER_STATE_DIM, PAPER_ACTION_DIM), &mut rng)
    }

    /// A small seeded network for smoke-scale comparison rows.
    pub fn small_network(seed: u64) -> SdpNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        SdpNetwork::new(SdpNetworkConfig::small(16, 4), &mut rng)
    }

    /// The pinned single-sample state fill: smooth values around 1.0,
    /// deterministic in the flat index.
    pub fn pinned_state(dim: usize) -> Vec<f64> {
        (0..dim).map(|i| 0.85 + 0.001 * (i % 300) as f64).collect()
    }

    /// The batched version of [`pinned_state`]: row `b` of the matrix is
    /// the same fill continued at flat offset `b * dim`.
    pub fn pinned_states(batch: usize, dim: usize) -> Matrix {
        Matrix::from_fn(batch, dim, |b, d| 0.85 + 0.001 * ((b * dim + d) % 300) as f64)
    }

    /// The pinned action-gradient batch the backward benches feed STBP.
    pub fn pinned_d_actions(batch: usize, action_dim: usize) -> Matrix {
        Matrix::from_fn(batch, action_dim, |_, a| 0.1 - 0.01 * a as f64)
    }

    /// One deterministic encoder RNG per sample, seeded by sample index.
    pub fn sample_rngs(batch: usize) -> Vec<StdRng> {
        (0..batch).map(|s| StdRng::seed_from_u64(s as u64)).collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn pinned_fills_agree_between_vector_and_matrix_forms() {
            let batch = 3;
            let m = pinned_states(batch, PAPER_STATE_DIM);
            let flat = pinned_state(batch * PAPER_STATE_DIM);
            for b in 0..batch {
                assert_eq!(m.row(b), &flat[b * PAPER_STATE_DIM..(b + 1) * PAPER_STATE_DIM]);
            }
        }

        #[test]
        fn networks_are_seed_deterministic() {
            let a = paper_network(9);
            let b = paper_network(9);
            assert_eq!(a.layers[0].weights.as_slice(), b.layers[0].weights.as_slice());
        }
    }
}
