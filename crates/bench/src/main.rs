//! `spikefolio-bench` is a bench-only crate; the real entry points are the
//! Criterion benches under `benches/` (one per table/figure of the paper).
//! This binary just points users at them.

fn main() {
    println!("spikefolio benchmark harness — run with `cargo bench`:");
    println!("  table3             Table 3 strategy backtests");
    println!("  table4             Table 4 power/performance rows");
    println!("  ablation_timesteps timestep (T) energy/quality sweep");
    println!("  ablation_encoding  deterministic vs probabilistic coding");
    println!("  ablation_surrogate pseudo-gradient shape comparison");
    println!("  snn_forward        SDP inference kernels (float + chip)");
    println!("  stbp_backward      STBP backward-pass kernels");
}
