//! Ablation B: probabilistic vs deterministic population coding (§II.B)
//! — end-to-end comparison plus raw encoder throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use spikefolio::experiments::{encoding_comparison, RunOptions};
use spikefolio::report::format_encoding_comparison;
use spikefolio_snn::encoder::{Encoding, PopulationEncoder, PopulationEncoderConfig};

fn options() -> RunOptions {
    let mut opts = RunOptions::smoke();
    opts.shrink = Some((60, 20));
    opts.config.training.epochs = 2;
    opts.config.training.steps_per_epoch = 6;
    opts.config.training.batch_size = 16;
    opts
}

fn print_comparison_once() {
    let points = encoding_comparison(&options());
    println!("\n===== Ablation: encoding mode =====\n{}", format_encoding_comparison(&points));
}

fn bench_encoders(c: &mut Criterion) {
    print_comparison_once();

    let state: Vec<f64> = (0..128).map(|i| 0.8 + 0.005 * i as f64).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("ablation/encoder");
    for (name, mode) in
        [("deterministic", Encoding::Deterministic), ("probabilistic", Encoding::Probabilistic)]
    {
        let enc = PopulationEncoder::new(
            state.len(),
            PopulationEncoderConfig { encoding: mode, ..Default::default() },
        );
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(enc.encode(&state, 5, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoders);
criterion_main!(benches);
