//! Table 3 regenerator + per-strategy backtest benchmarks.
//!
//! Running `cargo bench --bench table3` first prints the reproduced
//! Table 3 (reduced scale — set `SPIKEFOLIO_FULL=1` for the full Table 1
//! calendar), then benchmarks the per-strategy backtest cost over the
//! experiment-1 backtest range.

use criterion::{criterion_group, criterion_main, Criterion};
use spikefolio::experiments::{run_table3, RunOptions};
use spikefolio::report::format_table3;
use spikefolio::{DrlAgent, SdpAgent, SdpConfig};
use spikefolio_baselines::{Anticor, BestStock, Ons, Ucrp, M0};
use spikefolio_env::{Backtester, Policy};
use spikefolio_market::experiments::ExperimentPreset;

fn table_options() -> RunOptions {
    if std::env::var_os("SPIKEFOLIO_FULL").is_some() {
        return RunOptions::paper();
    }
    let mut opts = RunOptions::smoke();
    opts.shrink = Some((120, 40));
    opts.config.training.epochs = 4;
    opts.config.training.steps_per_epoch = 10;
    opts.config.training.batch_size = 24;
    opts.config.training.learning_rate = 1e-3;
    opts
}

fn print_table3_once() {
    let outcomes = run_table3(&table_options());
    println!("\n===== Reproduced Table 3 =====\n{}", format_table3(&outcomes));
}

fn bench_strategy_backtests(c: &mut Criterion) {
    print_table3_once();

    let market = ExperimentPreset::experiment1().shrunk(60, 0).generate(2016);
    let cfg = SdpConfig::smoke();
    let mut group = c.benchmark_group("table3/backtest");
    group.sample_size(10);

    type PolicyFactory = Box<dyn FnMut() -> Box<dyn Policy>>;
    let mut cases: Vec<(&str, PolicyFactory)> = vec![
        ("ucrp", Box::new(|| Box::new(Ucrp::new()))),
        ("ons", Box::new(|| Box::new(Ons::new()))),
        ("anticor", Box::new(|| Box::new(Anticor::with_window(8)))),
        ("best_stock", Box::new(|| Box::new(BestStock::new()))),
        ("m0", Box::new(|| Box::new(M0::new()))),
        ("sdp_untrained", Box::new(|| Box::new(SdpAgent::new(&SdpConfig::smoke(), 11, 1)))),
        ("drl_untrained", Box::new(|| Box::new(DrlAgent::new(&SdpConfig::smoke(), 11, 1)))),
    ];
    for (name, make) in cases.iter_mut() {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut policy = make();
                let r = Backtester::new(cfg.backtest).run(policy.as_mut(), &market);
                std::hint::black_box(r.fapv())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategy_backtests);
criterion_main!(benches);
