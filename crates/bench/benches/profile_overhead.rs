//! Profiler overhead on the hot forward/backward kernels.
//!
//! The acceptance bar: with a disabled recorder ([`NoopRecorder`]) the
//! recorded entry points must stay within ~2% of the plain ones — the
//! Stopwatch reads no clock when the recorder is disabled, so the two
//! rows should be statistically indistinguishable. The `memory_recorder`
//! rows show the real (enabled) cost for contrast.

use criterion::{criterion_group, criterion_main, Criterion};
use spikefolio_bench::bench_support;
use spikefolio_snn::stbp;
use spikefolio_snn::{BatchNetworkTrace, BatchWorkspace};
use spikefolio_telemetry::{MemoryRecorder, NoopRecorder};

fn bench_profile_overhead(c: &mut Criterion) {
    let net = bench_support::paper_network(9);
    let batch = 8;
    let states = bench_support::pinned_states(batch, bench_support::PAPER_STATE_DIM);
    let d_actions = bench_support::pinned_d_actions(batch, bench_support::PAPER_ACTION_DIM);
    let mut ws = BatchWorkspace::new(&net, batch);
    let mut trace = BatchNetworkTrace::new(&net, batch);

    let mut group = c.benchmark_group("profile/overhead");
    group.sample_size(20);

    group.bench_function("forward_plain_b8", |b| {
        b.iter(|| {
            let mut rngs = bench_support::sample_rngs(batch);
            net.forward_batch(&states, &mut rngs, &mut ws, &mut trace);
            std::hint::black_box(trace.action(0)[0])
        })
    });
    group.bench_function("forward_noop_recorder_b8", |b| {
        let mut rec = NoopRecorder;
        b.iter(|| {
            let mut rngs = bench_support::sample_rngs(batch);
            net.forward_batch_recorded(&states, &mut rngs, &mut ws, &mut trace, &mut rec);
            std::hint::black_box(trace.action(0)[0])
        })
    });
    group.bench_function("forward_memory_recorder_b8", |b| {
        b.iter(|| {
            let mut rec = MemoryRecorder::new();
            let mut rngs = bench_support::sample_rngs(batch);
            net.forward_batch_recorded(&states, &mut rngs, &mut ws, &mut trace, &mut rec);
            std::hint::black_box(trace.action(0)[0])
        })
    });

    // Backward rows reuse the last recorded forward trace.
    group.bench_function("backward_plain_b8", |b| {
        b.iter(|| {
            let g = stbp::backward_batch(&net, &trace, &d_actions, 0.0, &mut ws);
            std::hint::black_box(g.global_norm())
        })
    });
    group.bench_function("backward_noop_recorder_b8", |b| {
        let mut rec = NoopRecorder;
        b.iter(|| {
            let g = stbp::backward_batch_recorded(&net, &trace, &d_actions, 0.0, &mut ws, &mut rec);
            std::hint::black_box(g.global_norm())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_profile_overhead);
criterion_main!(benches);
