//! Batched STBP backward vs the looped per-sample path: one
//! `∇W = Σ_t Δc(t)ᵀ · O_in(t)` GEMM per layer instead of T·B rank-1
//! outer-product updates per sample.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_bench::bench_support;
use spikefolio_snn::stbp;
use spikefolio_snn::{BatchNetworkTrace, BatchWorkspace};

fn bench_backward_batch(c: &mut Criterion) {
    let net = bench_support::paper_network(13);

    let mut group = c.benchmark_group("stbp/backward_batch");
    group.sample_size(20);
    for &batch in &[4usize, 32] {
        let states = bench_support::pinned_states(batch, bench_support::PAPER_STATE_DIM);
        let d_actions = bench_support::pinned_d_actions(batch, bench_support::PAPER_ACTION_DIM);

        // Per-sample baseline: forward traces precomputed, backward looped.
        let traces: Vec<_> = (0..batch)
            .map(|s| {
                let mut r = StdRng::seed_from_u64(s as u64);
                net.forward(states.row(s), &mut r).1
            })
            .collect();
        group.bench_function(format!("looped_per_sample_b{batch}"), |b| {
            b.iter(|| {
                let mut acc = stbp::SdpGradients::zeros_like(&net);
                for (s, trace) in traces.iter().enumerate() {
                    let g = stbp::backward_with_rate_penalty(&net, trace, d_actions.row(s), 0.0);
                    acc.accumulate(&g);
                }
                std::hint::black_box(acc.global_norm())
            })
        });

        // Batched path: one forward_batch fills the trace, backward reuses it.
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut trace = BatchNetworkTrace::new(&net, batch);
        let mut rngs = bench_support::sample_rngs(batch);
        net.forward_batch(&states, &mut rngs, &mut ws, &mut trace);
        group.bench_function(format!("batched_b{batch}"), |b| {
            b.iter(|| {
                let g = stbp::backward_batch(&net, &trace, &d_actions, 0.0, &mut ws);
                std::hint::black_box(g.global_norm())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backward_batch);
criterion_main!(benches);
