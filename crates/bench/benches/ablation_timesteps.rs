//! Ablation A: simulation-length (`T`) sweep — the §III.B trade-off
//! between energy cost and backtest quality — plus forward-pass latency
//! scaling in `T`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use spikefolio::experiments::{timestep_tradeoff, RunOptions};
use spikefolio::report::format_timestep_tradeoff;
use spikefolio_snn::network::{SdpNetwork, SdpNetworkConfig};

fn options() -> RunOptions {
    let mut opts = RunOptions::smoke();
    opts.shrink = Some((60, 20));
    opts.config.training.epochs = 2;
    opts.config.training.steps_per_epoch = 6;
    opts.config.training.batch_size = 16;
    opts
}

fn print_sweep_once() {
    let points = timestep_tradeoff(&options(), &[1, 2, 5, 10, 20]);
    println!("\n===== Ablation: timestep trade-off =====\n{}", format_timestep_tradeoff(&points));
}

fn bench_forward_scaling(c: &mut Criterion) {
    print_sweep_once();

    let mut group = c.benchmark_group("ablation/forward_vs_T");
    for t in [1usize, 2, 5, 10, 20] {
        let mut cfg = SdpNetworkConfig::small(16, 12);
        cfg.timesteps = t;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let net = SdpNetwork::new(cfg, &mut rng);
        let state: Vec<f64> = (0..16).map(|i| 0.9 + 0.02 * i as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| std::hint::black_box(net.act(&state, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward_scaling);
criterion_main!(benches);
