//! Hardened checkpoint IO benchmarks: v2 encode + CRC + atomic write,
//! load + verify, and the guarded training loop's overhead over the
//! plain one on a fault-free run.

use criterion::{criterion_group, criterion_main, Criterion};
use spikefolio::checkpoint::{load_sdp, save_sdp};
use spikefolio::guarded::{train_sdp_guarded_quiet, ResilienceOptions};
use spikefolio::training::Trainer;
use spikefolio::{SdpAgent, SdpConfig};
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_resilience::crc32;

fn medium_agent() -> SdpAgent {
    let mut cfg = SdpConfig::smoke();
    cfg.network.hidden = vec![64, 64];
    SdpAgent::new(&cfg, 11, 7)
}

fn bench_checkpoint_io(c: &mut Criterion) {
    let agent = medium_agent();
    let path = std::env::temp_dir().join(format!("spikefolio-bench-{}.ckpt", std::process::id()));

    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(20);
    group.bench_function("save_v2_atomic", |b| {
        b.iter(|| save_sdp(&agent, &path).expect("save"));
    });
    save_sdp(&agent, &path).expect("save");
    group.bench_function("load_v2_verify", |b| {
        let mut target = medium_agent();
        b.iter(|| load_sdp(&mut target, &path).expect("load"));
    });
    let bytes = std::fs::read(&path).expect("read checkpoint");
    group.bench_function("crc32_checkpoint_bytes", |b| {
        b.iter(|| crc32(&bytes));
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

fn bench_guarded_overhead(c: &mut Criterion) {
    let market = ExperimentPreset::experiment1().shrunk(30, 0).generate(2016);
    let mut cfg = SdpConfig::smoke();
    cfg.training.epochs = 2;
    cfg.training.steps_per_epoch = 2;
    cfg.training.batch_size = 8;
    let trainer = Trainer::new(&cfg);

    let mut group = c.benchmark_group("guarded_training");
    group.sample_size(10);
    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut agent = SdpAgent::new(&cfg, market.num_assets(), 3);
            trainer.train_sdp(&mut agent, &market)
        });
    });
    group.bench_function("guarded_no_faults", |b| {
        b.iter(|| {
            let mut agent = SdpAgent::new(&cfg, market.num_assets(), 3);
            let mut opts = ResilienceOptions::default();
            train_sdp_guarded_quiet(&trainer, &mut agent, &market, &mut opts)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint_io, bench_guarded_overhead);
criterion_main!(benches);
