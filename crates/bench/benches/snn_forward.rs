//! Forward-pass (Algorithm 1) kernels at paper scale and smoke scale,
//! float vs fixed-point chip execution — the latency side of Fig. 2.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use spikefolio_bench::bench_support;
use spikefolio_loihi::quantize::quantize_network;
use spikefolio_loihi::LoihiChip;

fn bench_forward(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);

    // Paper scale: 364-dim state (11 assets × window 8 × 4 channels + 12
    // weights), hidden 128 × 128, T = 5.
    let paper_net = bench_support::paper_network(9);
    let paper_state = bench_support::pinned_state(bench_support::PAPER_STATE_DIM);

    let small_net = bench_support::small_network(9);
    let small_state: Vec<f64> = (0..16).map(|i| 0.9 + 0.02 * i as f64).collect();

    let (q, _) = quantize_network(&paper_net);
    let chip_net = LoihiChip::default().map(q).expect("paper net fits");

    let mut group = c.benchmark_group("snn/forward");
    group.sample_size(20);
    group.bench_function("paper_scale_float", |b| {
        b.iter(|| std::hint::black_box(paper_net.act(&paper_state, &mut rng)))
    });
    group.bench_function("small_float", |b| {
        b.iter(|| std::hint::black_box(small_net.act(&small_state, &mut rng)))
    });
    group.bench_function("paper_scale_with_trace", |b| {
        b.iter(|| std::hint::black_box(paper_net.forward(&paper_state, &mut rng)))
    });
    group.bench_function("paper_scale_chip_fixed_point", |b| {
        let raster = paper_net.encoder.encode(&paper_state, 5, &mut rng);
        b.iter(|| std::hint::black_box(chip_net.infer(&raster)))
    });
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
