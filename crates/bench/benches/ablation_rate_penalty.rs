//! Ablation E: spike-rate regularization — the energy/quality dial.
//! Prints the λ sweep (spikes, synops, physical energy, backtest metrics)
//! and benchmarks the penalized vs plain backward pass.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use spikefolio::experiments::{rate_penalty_ablation, RunOptions};
use spikefolio_snn::network::{SdpNetwork, SdpNetworkConfig};
use spikefolio_snn::stbp;

fn options() -> RunOptions {
    let mut opts = RunOptions::smoke();
    opts.shrink = Some((60, 20));
    opts.config.training.epochs = 2;
    opts.config.training.steps_per_epoch = 6;
    opts.config.training.batch_size = 16;
    opts
}

fn print_sweep_once() {
    let pts = rate_penalty_ablation(&options(), &[0.0, 0.5, 2.0, 10.0]);
    println!("\n===== Ablation: spike-rate penalty =====");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>10} {:>10}",
        "lambda", "spikes/inf", "synops/inf", "nJ/inf(phys)", "fAPV", "Sharpe"
    );
    for p in &pts {
        println!(
            "{:>8.2} {:>12} {:>12} {:>14.2} {:>10.4} {:>10.3}",
            p.lambda,
            p.spikes_per_inference,
            p.synops_per_inference,
            p.physical_nj_per_inf,
            p.metrics.fapv,
            p.metrics.sharpe
        );
    }
}

fn bench_penalized_backward(c: &mut Criterion) {
    print_sweep_once();

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let net = SdpNetwork::new(SdpNetworkConfig::small(16, 12), &mut rng);
    let state: Vec<f64> = (0..16).map(|i| 0.9 + 0.02 * i as f64).collect();
    let (_, trace) = net.forward(&state, &mut rng);
    let d_action = vec![1.0 / 12.0; 12];

    let mut group = c.benchmark_group("ablation/rate_penalty_backward");
    group.bench_function("plain", |b| {
        b.iter(|| std::hint::black_box(stbp::backward(&net, &trace, &d_action)))
    });
    group.bench_function("penalized", |b| {
        b.iter(|| {
            std::hint::black_box(stbp::backward_with_rate_penalty(&net, &trace, &d_action, 1.0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_penalized_backward);
criterion_main!(benches);
