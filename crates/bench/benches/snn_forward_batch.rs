//! Batched forward engine vs the looped per-sample path: the throughput
//! case for `SdpNetwork::forward_batch` at paper scale (one GEMM per
//! layer per timestep instead of B matvec sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_bench::bench_support;
use spikefolio_snn::{BatchNetworkTrace, BatchWorkspace};

fn bench_forward_batch(c: &mut Criterion) {
    // Paper scale: 364-dim state, hidden 128 × 128, T = 5.
    let net = bench_support::paper_network(9);

    let mut group = c.benchmark_group("snn/forward_batch");
    group.sample_size(20);
    for &batch in &[4usize, 32] {
        let st = bench_support::pinned_states(batch, bench_support::PAPER_STATE_DIM);
        group.bench_function(format!("looped_per_sample_b{batch}"), |b| {
            b.iter(|| {
                for s in 0..batch {
                    let mut r = StdRng::seed_from_u64(s as u64);
                    std::hint::black_box(net.forward(st.row(s), &mut r));
                }
            })
        });
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut trace = BatchNetworkTrace::new(&net, batch);
        group.bench_function(format!("batched_b{batch}"), |b| {
            b.iter(|| {
                let mut rngs = bench_support::sample_rngs(batch);
                net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
                std::hint::black_box(trace.action(0)[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward_batch);
criterion_main!(benches);
