//! Batched forward engine vs the looped per-sample path: the throughput
//! case for `SdpNetwork::forward_batch` at paper scale (one GEMM per
//! layer per timestep instead of B matvec sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikefolio_snn::network::{SdpNetwork, SdpNetworkConfig};
use spikefolio_snn::{BatchNetworkTrace, BatchWorkspace};
use spikefolio_tensor::Matrix;

fn states(batch: usize, dim: usize) -> Matrix {
    Matrix::from_fn(batch, dim, |b, d| 0.85 + 0.001 * ((b * dim + d) % 300) as f64)
}

fn bench_forward_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    // Paper scale: 364-dim state, hidden 128 × 128, T = 5.
    let net = SdpNetwork::new(SdpNetworkConfig::paper(364, 12), &mut rng);

    let mut group = c.benchmark_group("snn/forward_batch");
    group.sample_size(20);
    for &batch in &[4usize, 32] {
        let st = states(batch, 364);
        group.bench_function(format!("looped_per_sample_b{batch}"), |b| {
            b.iter(|| {
                for s in 0..batch {
                    let mut r = StdRng::seed_from_u64(s as u64);
                    std::hint::black_box(net.forward(st.row(s), &mut r));
                }
            })
        });
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut trace = BatchNetworkTrace::new(&net, batch);
        group.bench_function(format!("batched_b{batch}"), |b| {
            b.iter(|| {
                let mut rngs: Vec<StdRng> =
                    (0..batch).map(|s| StdRng::seed_from_u64(s as u64)).collect();
                net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
                std::hint::black_box(trace.action(0)[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward_batch);
criterion_main!(benches);
