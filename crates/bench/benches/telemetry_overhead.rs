//! Telemetry overhead: one SDP training epoch with the zero-cost
//! [`NoopRecorder`] vs a live [`JsonlSink`] (written to an in-memory
//! buffer). The noop path is the observe-only guarantee's perf half —
//! it must track the pre-telemetry baseline, while the sink path shows
//! the true cost of recording a run log.

use criterion::{criterion_group, criterion_main, Criterion};
use spikefolio::agent::SdpAgent;
use spikefolio::config::SdpConfig;
use spikefolio::training::Trainer;
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_telemetry::{JsonlSink, NoopRecorder, Recorder};

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut config = SdpConfig::smoke();
    config.training.epochs = 1;
    config.training.steps_per_epoch = 8;
    let market = ExperimentPreset::experiment1().shrunk(60, 15).generate(7);
    let trainer = Trainer::new(&config);

    let mut group = c.benchmark_group("telemetry/epoch");
    group.sample_size(20);
    group.bench_function("noop_recorder", |b| {
        b.iter(|| {
            let mut agent = SdpAgent::new(&config, market.num_assets(), 3);
            let log = trainer.train_sdp_with(&mut agent, &market, &mut NoopRecorder);
            std::hint::black_box(log.final_reward())
        })
    });
    group.bench_function("jsonl_sink", |b| {
        b.iter(|| {
            let mut agent = SdpAgent::new(&config, market.num_assets(), 3);
            let mut sink = JsonlSink::new(Vec::with_capacity(64 * 1024));
            let log = trainer.train_sdp_with(&mut agent, &market, &mut sink);
            std::hint::black_box((log.final_reward(), sink.records_written()))
        })
    });
    group.finish();

    // The raw dispatch cost a disabled recorder adds to a hot call site.
    let mut group = c.benchmark_group("telemetry/noop_dispatch");
    group.bench_function("counter_call", |b| {
        let rec: &mut dyn Recorder = &mut NoopRecorder;
        b.iter(|| {
            for _ in 0..1000 {
                rec.counter(std::hint::black_box("loihi/synops"), 1);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
