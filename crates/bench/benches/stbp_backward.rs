//! STBP backward-pass (eqs. 11–13) kernels: full gradient computation and
//! one complete minibatch-style training step at paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use spikefolio_bench::bench_support;
use spikefolio_snn::stbp::{self, SdpTrainer};
use spikefolio_tensor::optim::Adam;

fn bench_backward(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let net = bench_support::paper_network(13);
    let state = bench_support::pinned_state(bench_support::PAPER_STATE_DIM);
    let (_, trace) = net.forward(&state, &mut rng);
    let d_action = vec![0.1; bench_support::PAPER_ACTION_DIM];

    let mut group = c.benchmark_group("stbp");
    group.sample_size(20);
    group.bench_function("backward_paper_scale", |b| {
        b.iter(|| std::hint::black_box(stbp::backward(&net, &trace, &d_action)))
    });
    group.bench_function("forward_backward_apply", |b| {
        let mut train_net = net.clone();
        let mut trainer = SdpTrainer::new(&train_net, Adam::new(1e-4));
        b.iter(|| {
            let (_, tr) = train_net.forward(&state, &mut rng);
            let grads = stbp::backward(&train_net, &tr, &d_action);
            trainer.apply(&mut train_net, &grads);
        })
    });
    group.bench_function("gradient_accumulate_scale", |b| {
        let g = stbp::backward(&net, &trace, &d_action);
        b.iter(|| {
            let mut acc = stbp::SdpGradients::zeros_like(&net);
            acc.accumulate(&g);
            acc.scale(0.5);
            std::hint::black_box(acc.global_norm())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_backward);
criterion_main!(benches);
