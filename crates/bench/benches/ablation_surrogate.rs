//! Ablation C: pseudo-gradient shape (§II.C). The paper reports the
//! rectangular window as experimentally best; this bench trains a small
//! SDP with each surrogate on the same trending workload and prints the
//! resulting reward, then measures the backward-pass cost per shape.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use spikefolio::agent::SdpAgent;
use spikefolio::config::SdpConfig;
use spikefolio::training::Trainer;
use spikefolio_market::experiments::ExperimentPreset;
use spikefolio_snn::network::{SdpNetwork, SdpNetworkConfig};
use spikefolio_snn::neuron::SpikeFn;
use spikefolio_snn::{stbp, Surrogate};

fn surrogates() -> Vec<(&'static str, Surrogate)> {
    vec![
        ("rectangular (paper)", Surrogate::paper_rectangular()),
        ("triangular", Surrogate::Triangular { amplitude: 0.9, window: 0.4 }),
        ("sigmoid", Surrogate::SigmoidDerivative { amplitude: 0.9, temperature: 0.25 }),
    ]
}

fn print_training_comparison_once() {
    let (train, _) = ExperimentPreset::experiment1().shrunk(60, 15).generate_split(2016);
    println!("\n===== Ablation: surrogate gradient shape =====");
    println!("{:<22} {:>16}", "surrogate", "final reward");
    for (name, s) in surrogates() {
        let mut cfg = SdpConfig::smoke();
        cfg.network.surrogate = s;
        cfg.training.epochs = 3;
        cfg.training.steps_per_epoch = 8;
        cfg.training.batch_size = 16;
        cfg.training.learning_rate = 1e-3;
        let mut agent = SdpAgent::new(&cfg, train.num_assets(), cfg.seed);
        let log = Trainer::new(&cfg).train_sdp(&mut agent, &train);
        println!("{:<22} {:>16.6}", name, log.final_reward());
    }
}

fn bench_backward_per_surrogate(c: &mut Criterion) {
    print_training_comparison_once();

    let mut group = c.benchmark_group("ablation/stbp_backward");
    for (name, s) in surrogates() {
        let mut cfg = SdpNetworkConfig::small(16, 12);
        cfg.spike_fn = SpikeFn::Hard { surrogate: s };
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let net = SdpNetwork::new(cfg, &mut rng);
        let state: Vec<f64> = (0..16).map(|i| 0.9 + 0.02 * i as f64).collect();
        let (_, trace) = net.forward(&state, &mut rng);
        let d_action = vec![1.0 / 12.0; 12];
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(stbp::backward(&net, &trace, &d_action)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backward_per_surrogate);
criterion_main!(benches);
