//! Table 4 regenerator + single-inference latency benchmarks.
//!
//! Prints the reproduced power/performance table, then measures the actual
//! host-side cost of one inference for each implementation (float SDP,
//! fixed-point chip model, dense DRL baseline) — the quantities behind the
//! paper's "Inf/s" column.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use spikefolio::experiments::{run_table4, RunOptions};
use spikefolio::report::format_table4;
use spikefolio::{DrlAgent, LoihiDeployment, SdpAgent, SdpConfig};
use spikefolio_loihi::LoihiChip;

fn options() -> RunOptions {
    let mut opts = RunOptions::smoke();
    opts.shrink = Some((60, 20));
    opts.config.training.epochs = 2;
    opts.config.training.steps_per_epoch = 6;
    opts.config.training.batch_size = 16;
    opts
}

fn print_table4_once() {
    let outcomes = run_table4(&options());
    println!("\n===== Reproduced Table 4 =====\n{}", format_table4(&outcomes));
}

fn bench_inference_kernels(c: &mut Criterion) {
    print_table4_once();

    let cfg = SdpConfig::smoke();
    let mut sdp = SdpAgent::new(&cfg, 11, 1);
    let mut deployed = LoihiDeployment::new(&sdp, &LoihiChip::default()).unwrap();
    let drl = DrlAgent::new(&cfg, 11, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let state: Vec<f64> =
        (0..sdp.state_builder().state_dim(11)).map(|i| 0.9 + 0.01 * (i % 20) as f64).collect();

    let mut group = c.benchmark_group("table4/inference");
    group.bench_function("sdp_float", |b| b.iter(|| std::hint::black_box(sdp.act(&state))));
    group.bench_function("sdp_chip_fixed_point", |b| {
        b.iter(|| std::hint::black_box(deployed.act(&state)))
    });
    group.bench_function("drl_dense", |b| b.iter(|| std::hint::black_box(drl.act(&state))));
    group.bench_function("sdp_float_with_stats", |b| {
        b.iter(|| std::hint::black_box(sdp.network.act_with_stats(&state, &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_inference_kernels);
criterion_main!(benches);
