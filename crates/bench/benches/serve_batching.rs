//! Serving-path throughput: the float policy backend's `infer_batch` at
//! batch 1 vs batch 32 — the kernel-level headroom the micro-batcher in
//! `spikefolio-serve` converts into request throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use spikefolio::config::SdpConfig;
use spikefolio::serving::FloatPolicyBackend;
use spikefolio::SdpAgent;
use spikefolio_env::StateBuilder;
use spikefolio_serve::InferenceBackend;

fn backend() -> FloatPolicyBackend {
    let config = SdpConfig::smoke();
    let num_assets = 5;
    let agent = SdpAgent::new(&config, num_assets, 7);
    FloatPolicyBackend::new(agent.network.clone(), StateBuilder::new(config.state))
}

fn flat_states(dim: usize, batch: usize) -> Vec<f64> {
    (0..batch * dim).map(|i| 0.85 + 0.3 * ((i % 13) as f64 / 13.0)).collect()
}

fn bench_serve_batching(c: &mut Criterion) {
    let backend = backend();
    let dim = backend.state_dim();
    let mut group = c.benchmark_group("serve/infer_batch");
    for batch in [1usize, 8, 32] {
        let states = flat_states(dim, batch);
        let seeds: Vec<u64> = (0..batch as u64).collect();
        group.bench_function(format!("b{batch}"), |b| {
            b.iter(|| std::hint::black_box(backend.infer_batch(&states, &seeds)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_batching);
criterion_main!(benches);
