//! Weight initializers for network layers.

use crate::Matrix;
use rand::Rng;

/// Weight-initialization schemes for dense and spiking layers.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use spikefolio_tensor::init::Init;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let w = Init::XavierUniform.matrix(64, 32, &mut rng);
/// assert_eq!(w.shape(), (64, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (used for biases).
    Zeros,
    /// Constant value.
    Constant(f64),
    /// Uniform in `[-a, a]`.
    Uniform(f64),
    /// Xavier/Glorot uniform: `U(-√(6/(fan_in+fan_out)), +…)`.
    XavierUniform,
    /// Kaiming/He-style uniform scaled by `√(1/fan_in)`, the PyTorch default
    /// for `nn.Linear` and a good fit for rate-coded spiking layers.
    KaimingUniform,
}

impl Init {
    /// Samples a `rows × cols` weight matrix (`rows` = fan-out,
    /// `cols` = fan-in).
    pub fn matrix<R: Rng + ?Sized>(self, rows: usize, cols: usize, rng: &mut R) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(rows, cols),
            Init::Constant(v) => Matrix::filled(rows, cols, v),
            Init::Uniform(a) => {
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a.abs()..=a.abs()))
            }
            Init::XavierUniform => {
                let a = (6.0 / (rows + cols) as f64).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
            }
            Init::KaimingUniform => {
                let a = (1.0 / cols.max(1) as f64).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
            }
        }
    }

    /// Samples a bias vector of length `n` (fan-in taken as `fan_in` for the
    /// scaled schemes).
    pub fn vector<R: Rng + ?Sized>(self, n: usize, fan_in: usize, rng: &mut R) -> Vec<f64> {
        match self {
            Init::Zeros => vec![0.0; n],
            Init::Constant(v) => vec![v; n],
            Init::Uniform(a) => (0..n).map(|_| rng.gen_range(-a.abs()..=a.abs())).collect(),
            Init::XavierUniform => {
                let a = (6.0 / (n + fan_in) as f64).sqrt();
                (0..n).map(|_| rng.gen_range(-a..=a)).collect()
            }
            Init::KaimingUniform => {
                let a = (1.0 / fan_in.max(1) as f64).sqrt();
                (0..n).map(|_| rng.gen_range(-a..=a)).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn zeros_and_constant() {
        let mut r = rng();
        assert_eq!(Init::Zeros.matrix(2, 3, &mut r), Matrix::zeros(2, 3));
        assert_eq!(Init::Constant(1.5).vector(3, 1, &mut r), vec![1.5; 3]);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut r = rng();
        let w = Init::XavierUniform.matrix(10, 20, &mut r);
        let bound = (6.0 / 30.0f64).sqrt();
        assert!(w.max_abs() <= bound + 1e-12);
        // With 200 samples the spread should actually use the range.
        assert!(w.max_abs() > bound * 0.5);
    }

    #[test]
    fn kaiming_respects_bound() {
        let mut r = rng();
        let w = Init::KaimingUniform.matrix(8, 16, &mut r);
        assert!(w.max_abs() <= 0.25 + 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = rng();
        let mut r2 = rng();
        let a = Init::Uniform(0.3).matrix(4, 4, &mut r1);
        let b = Init::Uniform(0.3).matrix(4, 4, &mut r2);
        assert_eq!(a, b);
    }
}
