//! Event-driven sparse spike kernels and the compact spike-set
//! representation behind them.
//!
//! A spike raster is mostly zeros: at paper scale roughly one in five
//! synapses sees an event per timestep (the committed bench baseline
//! measured ~518k synops against ~2.49M dense MACs at batch 1). The dense
//! GEMM kernels in [`crate::gemm`] already *skip* zero entries, but they
//! still **scan** every entry — once per output tile — to find the active
//! ones. The kernels here invert that: a [`SpikeSet`] records the active
//! column indices of every raster row once, and the compute kernels touch
//! only those columns.
//!
//! # Determinism contract
//!
//! In [`SparseMode::Bitwise`] (the default) every kernel reproduces the
//! dense reference **bitwise**:
//!
//! * [`spike_drive`] accumulates `out[b][j] += x_k · wt[k][j]` with `k`
//!   ascending over the active set — the same additions, in the same
//!   order, as the k-ascending zero-skipping dot products of
//!   [`crate::gemm::gemm_nt`]. Each output element is one accumulator
//!   chain; the 4-wide inner lanes run *across* independent `j` chains and
//!   never reassociate within one.
//! * [`spike_outer_acc`] applies rank-1 updates row-ascending with the
//!   `(alpha · a) · b` evaluation order of
//!   [`crate::gemm::gemm_tn_acc`]. Skipping zero `b` columns cannot flip
//!   an accumulator bit: a `±0.0` addend only matters when the running sum
//!   is `-0.0`, which a sum of non-`-0.0` addends never produces under
//!   round-to-nearest.
//!
//! [`SparseMode::FastMath`] is the opt-in throughput mode: it may
//! reassociate the per-element reductions (active events are consumed in
//! pairs, halving the loop-carried dependence chain). Results then match
//! the dense reference only to tolerance (`≤ 1e-6` relative — covered by
//! the equivalence suite in `tests/sparse_kernels.rs`), so it must be
//! requested explicitly, either per call or process-wide via the
//! `SPIKEFOLIO_FAST_MATH=1` environment flag consumed by
//! [`default_mode`].

use crate::Matrix;

/// Reduction-ordering contract of the sparse kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparseMode {
    /// Fixed accumulation order: outputs are bitwise identical to the
    /// dense reference kernels. The default everywhere.
    #[default]
    Bitwise,
    /// May reorder reductions (pairwise event accumulation) for
    /// throughput; equals the dense reference to `≤ 1e-6` relative error.
    FastMath,
}

/// The process-wide default [`SparseMode`]: [`SparseMode::FastMath`] when
/// the environment variable `SPIKEFOLIO_FAST_MATH` is set to `1` at first
/// call, [`SparseMode::Bitwise`] otherwise. Read once and cached.
pub fn default_mode() -> SparseMode {
    static MODE: std::sync::OnceLock<SparseMode> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("SPIKEFOLIO_FAST_MATH") {
        Ok(v) if v == "1" => SparseMode::FastMath,
        _ => SparseMode::Bitwise,
    })
}

/// Compact event representation of a spike raster or stacked spike
/// matrix: per row, the ascending column indices of the non-zero entries
/// (CSR without values — values stay in the dense matrix, which batch
/// drivers keep anyway for the backward pass, so graded "soft" spikes are
/// handled transparently).
///
/// Iteration order is fully deterministic: rows in push order, indices
/// ascending within a row — the exact traversal order of the dense
/// zero-skipping kernels, which is what makes the sparse kernels bitwise
/// reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpikeSet {
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes `indices` for row `r`.
    row_ptr: Vec<u32>,
    /// Active column indices, ascending within each row.
    indices: Vec<u32>,
}

impl SpikeSet {
    /// An empty set over `cols` columns (no rows yet).
    ///
    /// # Panics
    ///
    /// Panics if `cols` exceeds `u32::MAX` (indices are stored as `u32`).
    pub fn new(cols: usize) -> Self {
        assert!(cols <= u32::MAX as usize, "SpikeSet supports at most 2^32-1 columns");
        Self { cols, row_ptr: vec![0], indices: Vec::new() }
    }

    /// Builds the set of one dense matrix (every `!= 0.0` entry is an
    /// event).
    pub fn from_matrix(m: &Matrix) -> Self {
        let mut set = Self::new(m.cols());
        for r in 0..m.rows() {
            set.push_row(m.row(r));
        }
        set
    }

    /// Drops all rows (capacity is kept for reuse across calls).
    pub fn clear(&mut self) {
        self.row_ptr.clear();
        self.row_ptr.push(0);
        self.indices.clear();
    }

    /// Clears and rebuilds the set from `m` in one pass, reusing the
    /// existing allocations. Afterwards `self == SpikeSet::from_matrix(m)`.
    pub fn rebuild_from(&mut self, m: &Matrix) {
        assert!(m.cols() <= u32::MAX as usize, "SpikeSet supports at most 2^32-1 columns");
        self.cols = m.cols();
        self.clear();
        for r in 0..m.rows() {
            self.push_row(m.row(r));
        }
    }

    /// Appends one row: records the ascending indices of every non-zero
    /// entry of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` disagrees with the set's column count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "push_row: row length {} != {}", row.len(), self.cols);
        // Branchless compaction: writing the candidate index
        // unconditionally and bumping the cursor by the 0/1 comparison
        // keeps the scan free of data-dependent branches — raster
        // occupancy is ~50% during training, the worst case for the
        // branch predictor.
        let start = self.indices.len();
        self.indices.resize(start + row.len(), 0);
        let buf = &mut self.indices[start..];
        let mut len = 0usize;
        for (k, &x) in row.iter().enumerate() {
            buf[len] = k as u32;
            len += usize::from(x != 0.0);
        }
        self.indices.truncate(start + len);
        let end = u32::try_from(self.indices.len()).expect("SpikeSet event count overflows u32");
        self.row_ptr.push(end);
    }

    /// Number of recorded rows.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Column count the set was built for.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of events (non-zero entries) across all rows.
    pub fn nnz(&self) -> u64 {
        self.indices.len() as u64
    }

    /// The ascending active column indices of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[u32] {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        &self.indices[lo..hi]
    }

    /// Reconstructs the 0/1 occupancy matrix of the recorded events
    /// (`1.0` where an event was pushed). Round-trip check:
    /// `SpikeSet::from_matrix(m).occupancy()` marks exactly the non-zero
    /// entries of `m`.
    pub fn occupancy(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows(), self.cols);
        for r in 0..self.rows() {
            let row = m.row_mut(r);
            for &k in self.row(r) {
                row[k as usize] = 1.0;
            }
        }
        m
    }
}

/// `out[b][j] += x · w[j]` across four independent `j` lanes. Each `out[j]`
/// is its own accumulator chain, so the unrolling changes instruction-level
/// parallelism (and lets the autovectorizer emit SIMD mul+add) without
/// reordering any chain — bitwise identical to the naive loop.
///
/// Always inlined: at small fan-out (the final population layer is ~a
/// dozen outputs) a real call per event would cost as much as the madds.
#[inline(always)]
fn axpy_lanes(x: f64, w: &[f64], out: &mut [f64]) {
    debug_assert_eq!(w.len(), out.len());
    let lanes = out.len() & !7;
    let (o8, o_tail) = out.split_at_mut(lanes);
    let (w8, w_tail) = w.split_at(lanes);
    for (o, wv) in o8.chunks_exact_mut(8).zip(w8.chunks_exact(8)) {
        o[0] += x * wv[0];
        o[1] += x * wv[1];
        o[2] += x * wv[2];
        o[3] += x * wv[3];
        o[4] += x * wv[4];
        o[5] += x * wv[5];
        o[6] += x * wv[6];
        o[7] += x * wv[7];
    }
    for (o, &wv) in o_tail.iter_mut().zip(w_tail) {
        *o += x * wv;
    }
}

/// `out[b][j] += x0·w0[j] + x1·w1[j]`: two events folded per pass. The
/// pairwise add reassociates each `out[j]` chain — FastMath only.
#[inline(always)]
fn axpy2_lanes(x0: f64, w0: &[f64], x1: f64, w1: &[f64], out: &mut [f64]) {
    for ((o, &a), &b) in out.iter_mut().zip(w0).zip(w1) {
        *o += x0 * a + x1 * b;
    }
}

/// Event-driven synaptic drive: `out[bsz × n] = vals[bsz × k] · wt[k × n]`
/// where only the columns recorded in `set` (stack rows
/// `row0..row0 + bsz`) are touched. `wt` is the **transposed** weight
/// matrix (`in_dim × out_dim`), so each event streams one contiguous row.
///
/// In [`SparseMode::Bitwise`] the result is bitwise identical to
/// [`crate::gemm::gemm_nt`]`(vals, w, out, bsz, k, n)` with `w` the
/// untransposed `n × k` weights (see the [module docs](self)). `out` is
/// fully overwritten.
///
/// Returns the synaptic-operation count actually performed:
/// `events · n`, the event-driven cost-model quantity. Callers compare it
/// against the cost model's independently derived synops so kernels and
/// accounting cannot drift apart.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions, or the set
/// does not cover `row0 + bsz` rows of width `k`.
#[allow(clippy::too_many_arguments)] // mirrors the gemm kernel signature shape
pub fn spike_drive(
    vals: &[f64],
    set: &SpikeSet,
    row0: usize,
    wt: &[f64],
    out: &mut [f64],
    bsz: usize,
    k: usize,
    n: usize,
    mode: SparseMode,
) -> u64 {
    assert_eq!(vals.len(), bsz * k, "spike_drive: vals length {} != {bsz}x{k}", vals.len());
    assert_eq!(wt.len(), k * n, "spike_drive: wt length {} != {k}x{n}", wt.len());
    assert_eq!(out.len(), bsz * n, "spike_drive: out length {} != {bsz}x{n}", out.len());
    assert_eq!(set.cols(), k, "spike_drive: set width {} != {k}", set.cols());
    assert!(
        row0 + bsz <= set.rows(),
        "spike_drive: set has {} rows, need {}",
        set.rows(),
        row0 + bsz
    );
    out.iter_mut().for_each(|v| *v = 0.0);
    let mut events = 0u64;
    // Strategy: the per-sample event walk is branch-free (the event list
    // IS the iteration space) and optimal while the transposed weights
    // stay cache-resident. Once `wt` overflows the fast caches, walking
    // it per sample re-streams the whole matrix `bsz` times — there the
    // column-major merge below pulls each `wt` row through the cache once
    // per timestep instead. Both orders apply every sample's events with
    // `k` ascending, so they are bitwise interchangeable.
    const KMAJOR_MIN_WT_BYTES: usize = 1 << 20;
    let kmajor = bsz >= 4 && core::mem::size_of_val(wt) > KMAJOR_MIN_WT_BYTES;
    if !kmajor {
        for b in 0..bsz {
            let active = set.row(row0 + b);
            events += active.len() as u64;
            let vrow = &vals[b * k..(b + 1) * k];
            let orow = &mut out[b * n..(b + 1) * n];
            match mode {
                SparseMode::Bitwise => {
                    for &ki in active {
                        let ki = ki as usize;
                        axpy_lanes(vrow[ki], &wt[ki * n..(ki + 1) * n], orow);
                    }
                }
                SparseMode::FastMath => {
                    let mut pairs = active.chunks_exact(2);
                    for pair in pairs.by_ref() {
                        let (k0, k1) = (pair[0] as usize, pair[1] as usize);
                        axpy2_lanes(
                            vrow[k0],
                            &wt[k0 * n..(k0 + 1) * n],
                            vrow[k1],
                            &wt[k1 * n..(k1 + 1) * n],
                            orow,
                        );
                    }
                    for &ki in pairs.remainder() {
                        let ki = ki as usize;
                        axpy_lanes(vrow[ki], &wt[ki * n..(ki + 1) * n], orow);
                    }
                }
            }
        }
        return events.saturating_mul(n as u64);
    }
    // Column-major merge: every sample's row is ascending, so walking a
    // shared `ki` front with one cursor per sample applies each sample's
    // events in exactly the per-sample order.
    let active: Vec<&[u32]> = (0..bsz).map(|b| set.row(row0 + b)).collect();
    let mut cur = vec![0usize; bsz];
    // FastMath defers odd events per sample so they still fold in pairs.
    let mut pending: Vec<(u32, f64)> = Vec::new();
    if mode == SparseMode::FastMath {
        pending = vec![(u32::MAX, 0.0); bsz];
    }
    for ki in 0..k {
        let kw = ki as u32;
        let wrow = &wt[ki * n..(ki + 1) * n];
        for b in 0..bsz {
            let row = active[b];
            let c = cur[b];
            if c >= row.len() || row[c] != kw {
                continue;
            }
            cur[b] = c + 1;
            events += 1;
            let x = vals[b * k + ki];
            let orow = &mut out[b * n..(b + 1) * n];
            match mode {
                SparseMode::Bitwise => axpy_lanes(x, wrow, orow),
                SparseMode::FastMath => {
                    let (k0, x0) = pending[b];
                    if k0 == u32::MAX {
                        pending[b] = (kw, x);
                    } else {
                        axpy2_lanes(x0, &wt[k0 as usize * n..(k0 as usize + 1) * n], x, wrow, orow);
                        pending[b].0 = u32::MAX;
                    }
                }
            }
        }
    }
    if mode == SparseMode::FastMath {
        for (b, &(k0, x0)) in pending.iter().enumerate() {
            if k0 != u32::MAX {
                let k0 = k0 as usize;
                axpy_lanes(x0, &wt[k0 * n..(k0 + 1) * n], &mut out[b * n..(b + 1) * n]);
            }
        }
    }
    events.saturating_mul(n as u64)
}

/// Event-driven weight-gradient accumulation:
/// `out[m × n] += alpha · a[rows × m]ᵀ · b[rows × n]`, touching only the
/// `b` columns recorded in `set` — the sparse counterpart of
/// [`crate::gemm::gemm_tn_acc`] with `b` the stacked input spikes.
///
/// Bitwise identical to the dense kernel in **both** modes: each output
/// element receives its contributions in the same row-ascending order, and
/// per-element there is no reduction to reorder (one contribution per
/// row), so FastMath has nothing to reassociate here.
///
/// Returns the multiply–accumulates actually performed
/// (`Σ_r nonzero(a_r) · active(b_r)`).
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions or the set does
/// not describe `b` (`rows × n`).
#[allow(clippy::too_many_arguments)]
pub fn spike_outer_acc(
    alpha: f64,
    a: &[f64],
    b_vals: &[f64],
    set: &SpikeSet,
    out: &mut [f64],
    rows: usize,
    m: usize,
    n: usize,
) -> u64 {
    assert_eq!(a.len(), rows * m, "spike_outer_acc: a length {} != {rows}x{m}", a.len());
    assert_eq!(b_vals.len(), rows * n, "spike_outer_acc: b length {} != {rows}x{n}", b_vals.len());
    assert_eq!(out.len(), m * n, "spike_outer_acc: out length {} != {m}x{n}", out.len());
    assert_eq!(set.cols(), n, "spike_outer_acc: set width {} != {n}", set.cols());
    assert_eq!(set.rows(), rows, "spike_outer_acc: set has {} rows, need {rows}", set.rows());
    // Below this occupancy the indexed gather (scalar, but touching only
    // active columns) beats streaming the whole row; above it the full
    // contiguous update vectorizes and wins. Both accumulate the same
    // per-element contributions in the same order — the extra `coef·0.0`
    // addends of the full-row form cannot flip an accumulator bit (see
    // the module docs' signed-zero argument).
    const GATHER_MAX_EIGHTHS: usize = 1;
    let mut macs = 0u64;
    for r in 0..rows {
        let active = set.row(r);
        if active.is_empty() {
            continue;
        }
        let gather = active.len() * 8 <= n * GATHER_MAX_EIGHTHS;
        let arow = &a[r * m..(r + 1) * m];
        let brow = &b_vals[r * n..(r + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            macs += active.len() as u64;
            let coef = alpha * av;
            let orow = &mut out[i * n..(i + 1) * n];
            if gather {
                for &idx in active {
                    let idx = idx as usize;
                    orow[idx] += coef * brow[idx];
                }
            } else {
                // Same inner form as `gemm_tn_acc`: the whole row,
                // SIMD-friendly contiguous.
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += coef * bv;
                }
            }
        }
    }
    macs
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::gemm;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let x = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((r * cols + c + 1) as u64)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9);
            ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    /// A raster-like 0/1 matrix with deterministic ~30% density.
    fn raster(rows: usize, cols: usize, seed: u64) -> Matrix {
        mat(rows, cols, seed).map(|v| if v > 0.2 { 1.0 } else { 0.0 })
    }

    #[test]
    fn spike_set_round_trips_occupancy() {
        let m = raster(7, 13, 3);
        let set = SpikeSet::from_matrix(&m);
        assert_eq!(set.rows(), 7);
        assert_eq!(set.cols(), 13);
        assert_eq!(set.occupancy(), m, "0/1 raster must round-trip exactly");
        let nonzero = m.as_slice().iter().filter(|&&x| x != 0.0).count() as u64;
        assert_eq!(set.nnz(), nonzero);
    }

    #[test]
    fn spike_set_indices_ascend_deterministically() {
        let m = raster(5, 24, 9);
        let set = SpikeSet::from_matrix(&m);
        for r in 0..set.rows() {
            let row = set.row(r);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {r} not strictly ascending");
        }
        // Rebuilding from the same matrix is bit-for-bit identical.
        let mut again = SpikeSet::new(1);
        again.rebuild_from(&m);
        assert_eq!(again, set);
    }

    #[test]
    fn spike_set_handles_empty_and_full_rows() {
        let mut m = Matrix::zeros(3, 6);
        m.row_mut(1).iter_mut().for_each(|v| *v = 1.0);
        let set = SpikeSet::from_matrix(&m);
        assert!(set.row(0).is_empty());
        assert_eq!(set.row(1), &[0, 1, 2, 3, 4, 5]);
        assert!(set.row(2).is_empty());
        assert_eq!(set.nnz(), 6);
    }

    #[test]
    fn clear_keeps_width_and_resets_rows() {
        let mut set = SpikeSet::from_matrix(&raster(4, 5, 1));
        set.clear();
        assert_eq!(set.rows(), 0);
        assert_eq!(set.cols(), 5);
        assert_eq!(set.nnz(), 0);
        set.push_row(&[0.0, 2.0, 0.0, -1.0, 0.0]);
        assert_eq!(set.row(0), &[1, 3]);
    }

    #[test]
    fn spike_drive_matches_gemm_nt_bitwise() {
        let (bsz, k, n) = (5, 17, 11);
        let a = raster(bsz, k, 4);
        let w = mat(n, k, 5); // out × in, the gemm_nt layout
        let wt = w.transposed();
        let set = SpikeSet::from_matrix(&a);
        let mut dense = vec![0.0; bsz * n];
        gemm::gemm_nt(a.as_slice(), w.as_slice(), &mut dense, bsz, k, n);
        let mut sparse = vec![f64::NAN; bsz * n];
        let synops = spike_drive(
            a.as_slice(),
            &set,
            0,
            wt.as_slice(),
            &mut sparse,
            bsz,
            k,
            n,
            SparseMode::Bitwise,
        );
        assert_eq!(sparse, dense, "bitwise mode must equal the dense kernel exactly");
        assert_eq!(synops, set.nnz() * n as u64);
    }

    #[test]
    fn spike_drive_handles_graded_soft_spikes() {
        // Non-binary "soft" spike values must flow through the value path.
        let (bsz, k, n) = (3, 9, 7);
        let a = mat(bsz, k, 8).map(|v| if v > 0.0 { v } else { 0.0 });
        let w = mat(n, k, 9);
        let set = SpikeSet::from_matrix(&a);
        let mut dense = vec![0.0; bsz * n];
        gemm::gemm_nt(a.as_slice(), w.as_slice(), &mut dense, bsz, k, n);
        let mut sparse = vec![0.0; bsz * n];
        spike_drive(
            a.as_slice(),
            &set,
            0,
            w.transposed().as_slice(),
            &mut sparse,
            bsz,
            k,
            n,
            SparseMode::Bitwise,
        );
        assert_eq!(sparse, dense);
    }

    #[test]
    fn spike_drive_fast_math_is_close_not_necessarily_bitwise() {
        let (bsz, k, n) = (4, 33, 13);
        let a = raster(bsz, k, 10);
        let w = mat(n, k, 11);
        let set = SpikeSet::from_matrix(&a);
        let mut dense = vec![0.0; bsz * n];
        gemm::gemm_nt(a.as_slice(), w.as_slice(), &mut dense, bsz, k, n);
        let mut fast = vec![0.0; bsz * n];
        spike_drive(
            a.as_slice(),
            &set,
            0,
            w.transposed().as_slice(),
            &mut fast,
            bsz,
            k,
            n,
            SparseMode::FastMath,
        );
        for (f, d) in fast.iter().zip(&dense) {
            let rel = (f - d).abs() / (1.0 + d.abs());
            assert!(rel <= 1e-6, "fast-math drifted: {f} vs {d}");
        }
    }

    #[test]
    fn spike_drive_overwrites_stale_output_rows() {
        let (bsz, k, n) = (2, 6, 4);
        let a = Matrix::zeros(bsz, k); // silent input: drive must be all zero
        let set = SpikeSet::from_matrix(&a);
        let w = mat(n, k, 12);
        let mut out = vec![42.0; bsz * n];
        let synops = spike_drive(
            a.as_slice(),
            &set,
            0,
            w.transposed().as_slice(),
            &mut out,
            bsz,
            k,
            n,
            SparseMode::Bitwise,
        );
        assert!(out.iter().all(|&v| v == 0.0));
        assert_eq!(synops, 0);
    }

    #[test]
    fn spike_drive_addresses_row_blocks_of_a_stack() {
        // A (T·B) stack: the kernel must read the right row block.
        let (t_max, bsz, k, n) = (3, 2, 8, 5);
        let stack = raster(t_max * bsz, k, 13);
        let w = mat(n, k, 14);
        let set = SpikeSet::from_matrix(&stack);
        for t in 0..t_max {
            let block = &stack.as_slice()[t * bsz * k..(t + 1) * bsz * k];
            let mut dense = vec![0.0; bsz * n];
            gemm::gemm_nt(block, w.as_slice(), &mut dense, bsz, k, n);
            let mut sparse = vec![0.0; bsz * n];
            spike_drive(
                block,
                &set,
                t * bsz,
                w.transposed().as_slice(),
                &mut sparse,
                bsz,
                k,
                n,
                SparseMode::Bitwise,
            );
            assert_eq!(sparse, dense, "timestep {t}");
        }
    }

    #[test]
    fn spike_outer_acc_matches_gemm_tn_acc_bitwise() {
        let (rows, m, n) = (11, 5, 9);
        let a = mat(rows, m, 15); // dense delta stack
        let b = raster(rows, n, 16); // sparse input spikes
        let set = SpikeSet::from_matrix(&b);
        let mut dense = mat(m, n, 17); // non-zero start: kernel accumulates
        let mut sparse = dense.clone();
        gemm::gemm_tn_acc(0.7, a.as_slice(), b.as_slice(), dense.as_mut_slice(), rows, m, n);
        let macs = spike_outer_acc(
            0.7,
            a.as_slice(),
            b.as_slice(),
            &set,
            sparse.as_mut_slice(),
            rows,
            m,
            n,
        );
        assert_eq!(sparse, dense, "sparse gradient kernel must match dense bitwise");
        assert!(macs > 0);
    }

    #[test]
    fn spike_outer_acc_skips_silent_rows_without_changing_results() {
        let (rows, m, n) = (6, 4, 7);
        let a = mat(rows, m, 18);
        let mut b = raster(rows, n, 19);
        b.row_mut(2).iter_mut().for_each(|v| *v = 0.0); // silent timestep
        let set = SpikeSet::from_matrix(&b);
        let mut dense = Matrix::zeros(m, n);
        let mut sparse = Matrix::zeros(m, n);
        gemm::gemm_tn_acc(1.0, a.as_slice(), b.as_slice(), dense.as_mut_slice(), rows, m, n);
        spike_outer_acc(1.0, a.as_slice(), b.as_slice(), &set, sparse.as_mut_slice(), rows, m, n);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn default_mode_is_bitwise_unless_env_opts_in() {
        // The test environment does not set SPIKEFOLIO_FAST_MATH, so the
        // cached default must be the bitwise contract.
        if std::env::var("SPIKEFOLIO_FAST_MATH").is_err() {
            assert_eq!(default_mode(), SparseMode::Bitwise);
        }
    }

    #[test]
    #[should_panic(expected = "spike_drive: set width")]
    fn spike_drive_rejects_mismatched_set() {
        let a = raster(2, 4, 20);
        let set = SpikeSet::from_matrix(&raster(2, 5, 20));
        let mut out = vec![0.0; 2 * 3];
        let w = mat(4, 3, 21);
        spike_drive(a.as_slice(), &set, 0, w.as_slice(), &mut out, 2, 4, 3, SparseMode::Bitwise);
    }

    #[test]
    #[should_panic(expected = "push_row: row length")]
    fn push_row_rejects_wrong_width() {
        let mut set = SpikeSet::new(4);
        set.push_row(&[1.0, 0.0]);
    }
}
