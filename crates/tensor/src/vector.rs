//! Helper operations on `&[f64]` vectors.
//!
//! Vectors in the workspace are plain slices/`Vec<f64>`; these free functions
//! cover the handful of numeric kernels shared by the SNN, the environment,
//! and the baseline strategies.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(spikefolio_tensor::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `a += alpha * b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: &mut [f64], alpha: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch {} vs {}", a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// Element-wise sum of all entries.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Arithmetic mean; returns 0.0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        sum(a) / a.len() as f64
    }
}

/// Population variance; returns 0.0 for slices shorter than 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / a.len() as f64
}

/// Population standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// Maximum value; returns `f64::NEG_INFINITY` for an empty slice.
pub fn max(a: &[f64]) -> f64 {
    a.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
}

/// Minimum value; returns `f64::INFINITY` for an empty slice.
pub fn min(a: &[f64]) -> f64 {
    a.iter().fold(f64::INFINITY, |m, &v| m.min(v))
}

/// Index of the maximum element (first occurrence); `None` if empty or if
/// every element is NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first occurrence); `None` if empty or if
/// every element is NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let neg: Vec<f64> = a.iter().map(|v| -v).collect();
    argmax(&neg)
}

/// Pearson correlation of two equal-length samples; 0.0 if either side has
/// zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation: length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Element-wise absolute difference summed: `Σ |a_i - b_i|` (turnover).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l1_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Clamps every element into `[lo, hi]` in place.
pub fn clamp_in_place(a: &mut [f64], lo: f64, hi: f64) {
    for v in a.iter_mut() {
        *v = v.clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[3.0, 4.0], &[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_l1(&[-3.0, 4.0]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = vec![1.0, 2.0];
        axpy(&mut a, 2.0, &[10.0, 20.0]);
        assert_eq!(a, vec![21.0, 42.0]);
    }

    #[test]
    fn stats_on_known_sample() {
        let s = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&s), 5.0);
        assert_eq!(variance(&s), 4.0);
        assert_eq!(std_dev(&s), 2.0);
    }

    #[test]
    fn stats_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(min(&[]), f64::INFINITY);
    }

    #[test]
    fn argmax_argmin_behaviour() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmin(&[1.0, 3.0, 2.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
        // Ties resolve to the first occurrence.
        assert_eq!(argmax(&[5.0, 5.0]), Some(0));
    }

    #[test]
    fn correlation_of_linear_series_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_degenerate_is_zero() {
        assert_eq!(correlation(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(correlation(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn l1_distance_is_turnover() {
        assert_eq!(l1_distance(&[0.5, 0.5], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn clamp_in_place_bounds_values() {
        let mut v = vec![-1.0, 0.5, 2.0];
        clamp_in_place(&mut v, 0.0, 1.0);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }
}
