//! Batch-major GEMM kernels for the batched SNN execution engine.
//!
//! These operate on raw row-major slices with explicit dimensions so callers
//! can address *row blocks* of larger stacked matrices (e.g. the timestep
//! blocks of a `(T·B) × dim` spike raster) without copying. The
//! [`Matrix`](crate::Matrix) wrappers `matmul_into`,
//! `matmul_transposed_into`, `affine_transposed_into` and
//! `add_matmul_transposed_lhs` build on them.
//!
//! # Determinism contract
//!
//! The kernels are written so that batched network execution reproduces the
//! per-sample code paths *bitwise*:
//!
//! * [`gemm_nt`] computes every output element as one k-ascending
//!   single-accumulator dot product — the exact summation order of
//!   [`Matrix::matvec`](crate::Matrix::matvec). Blocking is applied over the
//!   `(m, n)` output tiles only, never over `k`, so tiling changes memory
//!   access order but not a single floating-point result. Exact-zero `a`
//!   entries (non-spikes) are skipped; a `±0.0` addend cannot change the
//!   accumulator's bits because the running sum is never `-0.0`.
//! * [`gemm_nn`] accumulates `out[i] += a[i][l] · b[l]` with `l` ascending
//!   and skips zero `a` entries — the exact order (and sparsity shortcut) of
//!   [`Matrix::matvec_transposed`](crate::Matrix::matvec_transposed).
//! * [`gemm_tn_acc`] accumulates rank-1 updates row by row, matching the
//!   `alpha · x · y` evaluation order of
//!   [`Matrix::add_outer`](crate::Matrix::add_outer).

/// Register-block width for [`gemm_nt`]: each k-sweep drives `TILE`
/// independent accumulator chains (one per output column), hiding FP add
/// latency without touching any chain's summation order.
const TILE: usize = 8;

/// `out[m × n] = a[m × k] · b[n × k]ᵀ`.
///
/// Every element is a single k-ascending dot product, so each output row
/// equals `b_matrix.matvec(a_row)` bitwise. Zero `a` entries are skipped:
/// their `±0.0` products can never flip an accumulator bit (the running sum
/// is never `-0.0` under round-to-nearest), and spike rasters — the main
/// `a` operand — are mostly zeros. `out` is fully overwritten.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_nt(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm_nt: a length {} != {m}x{k}", a.len());
    assert_eq!(b.len(), n * k, "gemm_nt: b length {} != {n}x{k}", b.len());
    assert_eq!(out.len(), m * n, "gemm_nt: out length {} != {m}x{n}", out.len());
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let jw = TILE.min(n - j0);
            if jw == TILE {
                // Full tile: TILE independent accumulator chains per
                // k-sweep hide FP add latency; each chain is still one
                // k-ascending dot, so results match matvec bitwise.
                let mut brows: [&[f64]; TILE] = [&[]; TILE];
                for (jj, brow) in brows.iter_mut().enumerate() {
                    let j = j0 + jj;
                    *brow = &b[j * k..(j + 1) * k];
                }
                let mut acc = [0.0f64; TILE];
                for (kk, &x) in arow.iter().enumerate() {
                    if x == 0.0 {
                        continue;
                    }
                    for (av, brow) in acc.iter_mut().zip(&brows) {
                        *av += x * brow[kk];
                    }
                }
                orow[j0..j0 + TILE].copy_from_slice(&acc);
            } else {
                for j in j0..j0 + jw {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (x, y) in arow.iter().zip(brow) {
                        if *x == 0.0 {
                            continue;
                        }
                        acc += x * y;
                    }
                    orow[j] = acc;
                }
            }
            j0 += jw;
        }
    }
}

/// `out[m × n] = a[m × k] · b[k × n]`, overwriting `out`.
///
/// Row `i` of the result accumulates `a[i][l] · b_row(l)` with `l` ascending
/// and zero `a` entries skipped, so it equals
/// `b_matrix.matvec_transposed(a_row)` bitwise (spike-derived deltas are
/// often sparse, making the skip worthwhile).
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_nn(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm_nn: a length {} != {m}x{k}", a.len());
    assert_eq!(b.len(), k * n, "gemm_nn: b length {} != {k}x{n}", b.len());
    assert_eq!(out.len(), m * n, "gemm_nn: out length {} != {m}x{n}", out.len());
    out.iter_mut().for_each(|v| *v = 0.0);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (l, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[l * n..(l + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out[m × n] += alpha · a[rows × m]ᵀ · b[rows × n]`.
///
/// Accumulates one rank-1 update per `a`/`b` row pair, rows ascending, with
/// zero `a` entries skipped — each row contributes exactly like
/// `out_matrix.add_outer(alpha, a_row, b_row)`. This is the single-GEMM
/// weight-gradient kernel: with `a` the stacked `Δc(t)` rows and `b` the
/// stacked input spikes, it forms `∇W += α · Σ_t Δc(t)ᵀ · o_in(t)`.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_tn_acc(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    rows: usize,
    m: usize,
    n: usize,
) {
    assert_eq!(a.len(), rows * m, "gemm_tn_acc: a length {} != {rows}x{m}", a.len());
    assert_eq!(b.len(), rows * n, "gemm_tn_acc: b length {} != {rows}x{n}", b.len());
    assert_eq!(out.len(), m * n, "gemm_tn_acc: out length {} != {m}x{n}", out.len());
    for r in 0..rows {
        let arow = &a[r * m..(r + 1) * m];
        let brow = &b[r * n..(r + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += alpha * av * bv;
            }
        }
    }
}

/// Dense multiply–accumulate count of an `m×k · k×n` product: the work a
/// kernel with no sparsity skip would perform. Saturates instead of
/// overflowing on pathological shapes.
pub fn dense_mac_count(m: usize, k: usize, n: usize) -> u64 {
    (m as u64).saturating_mul(k as u64).saturating_mul(n as u64)
}

/// Multiply–accumulates the zero-skipping kernels actually perform for an
/// `a[m × k]` left operand fanned out over `n` outputs: every *non-zero*
/// `a` entry costs `n` MACs ([`gemm_nt`] row-dot form, [`gemm_nn`] and
/// [`gemm_tn_acc`] row-broadcast form alike). With a spike raster as `a`
/// this is exactly `spikes · n` — the synaptic-operation count of the
/// neuromorphic cost model.
///
/// Saturates instead of overflowing.
pub fn effective_mac_count(a: &[f64], n: usize) -> u64 {
    let nonzero = a.iter().filter(|&&x| x != 0.0).count() as u64;
    nonzero.saturating_mul(n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random fill without an RNG dependency.
        Matrix::from_fn(rows, cols, |r, c| {
            let x = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((r * cols + c + 1) as u64)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9);
            ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    #[test]
    fn gemm_nt_rows_match_matvec_bitwise() {
        let mut a = mat(7, 13, 1); // 7 samples × 13 features
                                   // Exact zeros exercise the sparsity skip against the dense matvec.
        for i in 0..7 {
            a.row_mut(i)[i % 13] = 0.0;
            a.row_mut(i)[(i + 5) % 13] = 0.0;
        }
        let w = mat(5, 13, 2); // 5 outputs × 13 features
        let mut out = vec![0.0; 7 * 5];
        gemm_nt(a.as_slice(), w.as_slice(), &mut out, 7, 13, 5);
        for i in 0..7 {
            let per_sample = w.matvec(a.row(i));
            assert_eq!(&out[i * 5..(i + 1) * 5], per_sample.as_slice(), "row {i}");
        }
    }

    #[test]
    fn gemm_nt_tiling_covers_ragged_edges() {
        // Dimensions straddling the tile size exercise the partial tiles.
        for (m, n) in [(1, 1), (8, 8), (9, 17), (16, 3)] {
            let a = mat(m, 4, 3);
            let b = mat(n, 4, 4);
            let mut out = vec![f64::NAN; m * n];
            gemm_nt(a.as_slice(), b.as_slice(), &mut out, m, 4, n);
            for i in 0..m {
                for j in 0..n {
                    let expect: f64 = a.row(i).iter().zip(b.row(j)).map(|(x, y)| x * y).sum();
                    assert!((out[i * n + j] - expect).abs() < 1e-12, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn gemm_nn_rows_match_matvec_transposed_bitwise() {
        let mut a = mat(6, 9, 5);
        // Inject exact zeros to exercise the sparsity skip.
        for i in 0..6 {
            a.row_mut(i)[i % 9] = 0.0;
        }
        let w = mat(9, 4, 6);
        let mut out = vec![0.0; 6 * 4];
        gemm_nn(a.as_slice(), w.as_slice(), &mut out, 6, 9, 4);
        for i in 0..6 {
            let per_sample = w.matvec_transposed(a.row(i));
            assert_eq!(&out[i * 4..(i + 1) * 4], per_sample.as_slice(), "row {i}");
        }
    }

    #[test]
    fn gemm_nn_overwrites_stale_output() {
        let a = mat(2, 3, 7);
        let b = mat(3, 2, 8);
        let mut out = vec![99.0; 4];
        gemm_nn(a.as_slice(), b.as_slice(), &mut out, 2, 3, 2);
        let reference = a.matmul(&b);
        for (x, y) in out.iter().zip(reference.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn gemm_tn_acc_matches_summed_outer_products() {
        let a = mat(11, 5, 9); // 11 stacked delta rows, 5 outputs
        let b = mat(11, 7, 10); // 11 stacked input rows, 7 inputs
        let mut fast = Matrix::zeros(5, 7);
        gemm_tn_acc(1.0, a.as_slice(), b.as_slice(), fast.as_mut_slice(), 11, 5, 7);
        let mut reference = Matrix::zeros(5, 7);
        for r in 0..11 {
            reference.add_outer(1.0, a.row(r), b.row(r));
        }
        assert_eq!(fast, reference, "row-ascending rank-1 order must match add_outer");
    }

    #[test]
    fn gemm_tn_acc_scales_and_accumulates() {
        let a = mat(3, 2, 11);
        let b = mat(3, 2, 12);
        let mut out = Matrix::filled(2, 2, 1.0);
        gemm_tn_acc(0.5, a.as_slice(), b.as_slice(), out.as_mut_slice(), 3, 2, 2);
        let mut reference = Matrix::filled(2, 2, 1.0);
        for r in 0..3 {
            reference.add_outer(0.5, a.row(r), b.row(r));
        }
        assert_eq!(out, reference);
    }

    #[test]
    fn op_counts_report_dense_and_effective_macs() {
        assert_eq!(dense_mac_count(7, 13, 5), 7 * 13 * 5);
        assert_eq!(dense_mac_count(usize::MAX, usize::MAX, 2), u64::MAX);
        // 2 of 6 entries are exact zeros: only 4 fan out over n = 3.
        let a = [0.0, 1.0, 0.5, 0.0, -2.0, 1.0];
        assert_eq!(effective_mac_count(&a, 3), 4 * 3);
        assert_eq!(effective_mac_count(&[], 3), 0);
        // A dense operand costs the full dense count.
        let dense = [1.0; 12]; // 4×3 lhs
        assert_eq!(effective_mac_count(&dense, 5), dense_mac_count(4, 3, 5));
    }

    #[test]
    #[should_panic(expected = "gemm_nt: a length")]
    fn gemm_nt_rejects_bad_dims() {
        let mut out = vec![0.0; 4];
        gemm_nt(&[1.0; 5], &[1.0; 6], &mut out, 2, 3, 2);
    }
}
