//! Probability-simplex utilities shared by the policies and baselines.
//!
//! Portfolio weight vectors live on the simplex `Δ^n = {w : w_i ≥ 0,
//! Σ w_i = 1}`. The [ONS baseline] needs Euclidean projection onto `Δ^n`
//! ([`project_to_simplex`], the algorithm of Duchi et al. 2008), and several
//! strategies start from the uniform point ([`uniform_simplex`]).
//!
//! [ONS baseline]: https://doi.org/10.1145/1143844.1143846

/// Returns the uniform vector `(1/n, …, 1/n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// assert_eq!(spikefolio_tensor::uniform_simplex(4), vec![0.25; 4]);
/// ```
pub fn uniform_simplex(n: usize) -> Vec<f64> {
    assert!(n > 0, "uniform_simplex: n must be positive");
    vec![1.0 / n as f64; n]
}

/// Euclidean projection of `v` onto the probability simplex.
///
/// Implements the `O(n log n)` sort-based algorithm of Duchi, Shalev-Shwartz,
/// Singer & Chandra (ICML 2008). The result is the unique point on the
/// simplex closest to `v` in L2 distance.
///
/// # Panics
///
/// Panics if `v` is empty.
///
/// # Example
///
/// ```
/// let w = spikefolio_tensor::project_to_simplex(&[0.5, 0.5, 0.5]);
/// assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
pub fn project_to_simplex(v: &[f64]) -> Vec<f64> {
    assert!(!v.is_empty(), "project_to_simplex: empty input");
    let mut u = v.to_vec();
    u.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut css = 0.0;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let t = (css - 1.0) / (i + 1) as f64;
        if ui - t > 0.0 {
            theta = t;
        }
    }
    v.iter().map(|&x| (x - theta).max(0.0)).collect()
}

/// Checks whether `w` lies on the probability simplex within tolerance
/// `tol` (all entries ≥ `-tol` and the sum within `tol` of 1).
pub fn is_on_simplex(w: &[f64], tol: f64) -> bool {
    !w.is_empty()
        && w.iter().all(|&x| x >= -tol && x.is_finite())
        && (w.iter().sum::<f64>() - 1.0).abs() <= tol
}

/// Renormalizes `w` in place so that it sums to 1, clamping negatives to 0.
/// Falls back to the uniform point if everything clamps to zero.
pub fn renormalize(w: &mut [f64]) {
    if w.is_empty() {
        return;
    }
    let mut s = 0.0;
    for x in w.iter_mut() {
        if !x.is_finite() || *x < 0.0 {
            *x = 0.0;
        }
        s += *x;
    }
    if s > 0.0 {
        w.iter_mut().for_each(|x| *x /= s);
    } else {
        let u = 1.0 / w.len() as f64;
        w.iter_mut().for_each(|x| *x = u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_on_simplex() {
        assert!(is_on_simplex(&uniform_simplex(7), 1e-12));
    }

    #[test]
    fn projection_of_simplex_point_is_identity() {
        let w = [0.2, 0.3, 0.5];
        let p = project_to_simplex(&w);
        for (a, b) in w.iter().zip(&p) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_lands_on_simplex() {
        let cases: [&[f64]; 4] =
            [&[10.0, -3.0, 0.5], &[0.0, 0.0, 0.0], &[-1.0, -2.0], &[100.0, 100.0, 100.0, 100.0]];
        for v in cases {
            let p = project_to_simplex(v);
            assert!(is_on_simplex(&p, 1e-9), "projection of {v:?} gave {p:?}");
        }
    }

    #[test]
    fn projection_of_dominant_coordinate_is_vertex() {
        let p = project_to_simplex(&[5.0, 0.0, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert_eq!(&p[1..], &[0.0, 0.0]);
    }

    #[test]
    fn projection_is_idempotent() {
        let p1 = project_to_simplex(&[0.9, -0.4, 0.8, 0.1]);
        let p2 = project_to_simplex(&p1);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn renormalize_handles_bad_inputs() {
        let mut w = vec![-1.0, f64::NAN, 0.0];
        renormalize(&mut w);
        assert!(is_on_simplex(&w, 1e-12));
        let mut w2 = vec![2.0, 2.0];
        renormalize(&mut w2);
        assert_eq!(w2, vec![0.5, 0.5]);
    }

    #[test]
    fn is_on_simplex_rejects_bad_vectors() {
        assert!(!is_on_simplex(&[], 1e-9));
        assert!(!is_on_simplex(&[0.5, 0.6], 1e-9));
        assert!(!is_on_simplex(&[-0.5, 1.5], 1e-9));
        assert!(!is_on_simplex(&[f64::NAN, 1.0], 1e-9));
    }
}
