//! Numerically stable reductions used by the policy decoders.

/// Numerically stable log-sum-exp: `ln Σ exp(x_i)`.
///
/// Returns `f64::NEG_INFINITY` for an empty slice.
///
/// # Example
///
/// ```
/// let lse = spikefolio_tensor::log_sum_exp(&[0.0, 0.0]);
/// assert!((lse - (2.0f64).ln()).abs() < 1e-12);
/// ```
pub fn log_sum_exp(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = x.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    if m.is_infinite() {
        return m;
    }
    let s: f64 = x.iter().map(|&v| (v - m).exp()).sum();
    m + s.ln()
}

/// Numerically stable softmax: `exp(x_i) / Σ exp(x_j)`.
///
/// This is the paper's decoder normalization (eq. 10 applied to the
/// exponentiated `tempAction` of Algorithm 1). The output always sums to 1
/// and lies on the probability simplex.
///
/// # Example
///
/// ```
/// let w = spikefolio_tensor::softmax(&[1.0, 1.0, 1.0]);
/// assert!(w.iter().all(|&v| (v - 1.0 / 3.0).abs() < 1e-12));
/// ```
pub fn softmax(x: &[f64]) -> Vec<f64> {
    let mut out = x.to_vec();
    softmax_in_place(&mut out);
    out
}

/// In-place variant of [`softmax`].
pub fn softmax_in_place(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let m = x.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut s = 0.0;
    for v in x.iter_mut() {
        *v = (*v - m).exp();
        s += *v;
    }
    if s > 0.0 {
        for v in x.iter_mut() {
            *v /= s;
        }
    } else {
        // All inputs were -inf; fall back to uniform.
        let u = 1.0 / x.len() as f64;
        x.iter_mut().for_each(|v| *v = u);
    }
}

/// Backward pass of softmax: given output `y = softmax(x)` and upstream
/// gradient `dy`, returns `dx`.
///
/// Uses the standard Jacobian–vector product
/// `dx_i = y_i (dy_i - Σ_j y_j dy_j)`.
///
/// # Panics
///
/// Panics if `y.len() != dy.len()`.
pub fn softmax_backward(y: &[f64], dy: &[f64]) -> Vec<f64> {
    assert_eq!(y.len(), dy.len(), "softmax_backward: length mismatch");
    let inner: f64 = y.iter().zip(dy).map(|(a, b)| a * b).sum();
    y.iter().zip(dy).map(|(&yi, &di)| yi * (di - inner)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_handles_large_values() {
        let v = [1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + (2.0f64).ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let y = softmax(&[1.0, 2.0, 3.0]);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(y[0] < y[1] && y[1] < y[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[101.0, 102.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_all_neg_inf_falls_back_to_uniform() {
        let y = softmax(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert_eq!(y, vec![0.5, 0.5]);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = [0.3, -1.2, 0.7, 0.1];
        let dy = [1.0, -0.5, 0.25, 2.0];
        let y = softmax(&x);
        let dx = softmax_backward(&y, &dy);
        let eps = 1e-6;
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let yp = softmax(&xp);
            let ym = softmax(&xm);
            let num: f64 =
                yp.iter().zip(&ym).zip(&dy).map(|((p, m), d)| d * (p - m) / (2.0 * eps)).sum();
            assert!((dx[i] - num).abs() < 1e-6, "component {i}: {} vs {}", dx[i], num);
        }
    }
}
