//! Minimal dense linear algebra for the `spikefolio` workspace.
//!
//! Every other crate in the workspace builds on the two value types defined
//! here: [`Matrix`] (row-major, `f64`) and plain `&[f64]` slices for vectors
//! (helpers in [`vector`]). The crate deliberately avoids external BLAS or
//! ndarray dependencies: the networks in the paper are small (hidden layers
//! of 128 neurons, eleven assets), so a straightforward, well-tested
//! implementation is both sufficient and fully auditable.
//!
//! # Example
//!
//! ```
//! use spikefolio_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let x = [1.0, 1.0];
//! let y = a.matvec(&x);
//! assert_eq!(y, vec![3.0, 7.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gemm;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod optim;
pub mod simplex;
pub mod sparse;
pub mod vector;

pub use matrix::Matrix;
pub use ops::{log_sum_exp, softmax, softmax_in_place};
pub use simplex::{project_to_simplex, uniform_simplex};

/// Error type for shape mismatches in tensor operations.
///
/// Most operations in this crate panic on shape mismatch (the shapes are
/// static properties of the networks being built and a mismatch is a
/// programming error), but fallible entry points such as
/// [`Matrix::try_from_vec`] return this error instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    msg: String,
}

impl ShapeError {
    /// Creates a new shape error with the given description.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shape mismatch: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}
