//! First-order optimizers operating on flat parameter buffers.
//!
//! Both the spiking (STBP) and dense (DRL baseline) trainers update their
//! parameters through this module, so the two agents share identical
//! optimization semantics — important when comparing them in Table 3/4.

/// Plain SGD with optional momentum.
///
/// # Example
///
/// ```
/// use spikefolio_tensor::optim::{Optimizer, Sgd};
///
/// let mut opt = Sgd::new(0.1);
/// let mut w = vec![1.0];
/// let slot = opt.register(1);
/// opt.step(slot, &mut w, &[2.0]); // w -= 0.1 * 2.0
/// assert!((w[0] - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// SGD with learning rate `lr` and no momentum.
    pub fn new(lr: f64) -> Self {
        Self { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
///
/// The paper trains SDP with a learning rate of `1e-5` (Table 2); Adam is
/// the de-facto optimizer of both Jiang et al. and the PopSAN line of work
/// the paper builds on.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    state: Vec<AdamSlot>,
}

#[derive(Debug, Clone)]
struct AdamSlot {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Adam with the standard betas `(0.9, 0.999)` and `eps = 1e-8`.
    pub fn new(lr: f64) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, state: Vec::new() }
    }

    /// Adam with explicit hyperparameters.
    pub fn with_params(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        Self { lr, beta1, beta2, eps, state: Vec::new() }
    }
}

/// Handle to a registered parameter buffer within an optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSlot(usize);

/// A first-order optimizer over flat `f64` buffers.
///
/// Usage: `register` each parameter buffer once (obtaining a [`ParamSlot`]),
/// then call `step(slot, params, grads)` every update. Implementations keep
/// whatever per-buffer state they need (momenta, moment estimates).
pub trait Optimizer {
    /// Registers a parameter buffer of length `len`, returning its slot.
    fn register(&mut self, len: usize) -> ParamSlot;

    /// Applies one update: mutates `params` in place given `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()` or doesn't match the
    /// registered length, or if `slot` was not issued by this optimizer.
    fn step(&mut self, slot: ParamSlot, params: &mut [f64], grads: &[f64]);

    /// Learning rate currently in force.
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

impl Optimizer for Sgd {
    fn register(&mut self, len: usize) -> ParamSlot {
        self.velocity.push(vec![0.0; len]);
        ParamSlot(self.velocity.len() - 1)
    }

    fn step(&mut self, slot: ParamSlot, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let vel = &mut self.velocity[slot.0];
        assert_eq!(vel.len(), params.len(), "slot length mismatch");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
        } else {
            for ((p, g), v) in params.iter_mut().zip(grads).zip(vel.iter_mut()) {
                *v = self.momentum * *v + g;
                *p -= self.lr * *v;
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

impl Optimizer for Adam {
    fn register(&mut self, len: usize) -> ParamSlot {
        self.state.push(AdamSlot { m: vec![0.0; len], v: vec![0.0; len], t: 0 });
        ParamSlot(self.state.len() - 1)
    }

    fn step(&mut self, slot: ParamSlot, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let s = &mut self.state[slot.0];
        assert_eq!(s.m.len(), params.len(), "slot length mismatch");
        s.t += 1;
        let b1t = 1.0 - self.beta1.powi(s.t as i32);
        let b2t = 1.0 - self.beta2.powi(s.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            s.m[i] = self.beta1 * s.m[i] + (1.0 - self.beta1) * g;
            s.v[i] = self.beta2 * s.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = s.m[i] / b1t;
            let v_hat = s.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 with gradient 2(x-3).
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize, start: f64) -> f64 {
        let slot = opt.register(1);
        let mut x = vec![start];
        for _ in 0..steps {
            let g = 2.0 * (x[0] - 3.0);
            opt.step(slot, &mut x, &[g]);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = run_quadratic(&mut opt, 100, 0.0);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let x = run_quadratic(&mut opt, 200, 0.0);
        assert!((x - 3.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        let x = run_quadratic(&mut opt, 300, 0.0);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // With bias correction the first Adam step is ≈ lr * sign(grad).
        let mut opt = Adam::new(0.01);
        let slot = opt.register(1);
        let mut x = vec![0.0];
        opt.step(slot, &mut x, &[1e-3]);
        assert!((x[0] + 0.01).abs() < 1e-6, "x = {}", x[0]);
    }

    #[test]
    fn multiple_slots_are_independent() {
        let mut opt = Adam::new(0.1);
        let a = opt.register(1);
        let b = opt.register(1);
        let mut xa = vec![0.0];
        let mut xb = vec![0.0];
        for _ in 0..10 {
            opt.step(a, &mut xa, &[1.0]);
        }
        // Slot b has taken no steps: its state must be untouched.
        opt.step(b, &mut xb, &[1.0]);
        assert!((xb[0] + 0.1).abs() < 1e-6, "xb = {}", xb[0]);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_grad_length_panics() {
        let mut opt = Sgd::new(0.1);
        let slot = opt.register(2);
        let mut x = vec![0.0];
        opt.step(slot, &mut x, &[1.0]);
    }
}
