//! Row-major dense matrix of `f64` values.

use crate::ShapeError;

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse of the workspace: network weights, price
/// windows, and spike rasters are all stored in this type. Data is owned and
/// contiguous, so iteration over rows is cache-friendly.
///
/// # Example
///
/// ```
/// use spikefolio_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {i} has length {} but expected {cols}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a matrix from an owned data vector in row-major order.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len() != rows * cols`.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates an identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: vector length {} != cols {}", x.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows,
            "matvec_transposed: vector length {} != rows {}",
            x.len(),
            self.rows
        );
        let mut out = vec![0.0; self.cols];
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue; // spike vectors are sparse; skip silent rows
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &w) in out.iter_mut().zip(row) {
                *o += w * xv;
            }
        }
        out
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: lhs cols {} != rhs rows {}",
            self.cols, other.rows
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(orow) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// Matrix–matrix product into a caller-owned output: `out = self * other`.
    ///
    /// Allocation-free variant of [`Matrix::matmul`] built on
    /// [`gemm_nn`](crate::gemm::gemm_nn); `out` is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows` or `out` is not
    /// `self.rows × other.cols`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul_into: lhs cols {} != rhs rows {}",
            self.cols, other.rows
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_into: out shape {:?} != {:?}",
            out.shape(),
            (self.rows, other.cols)
        );
        crate::gemm::gemm_nn(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// Batched matrix product against a transposed weight matrix:
    /// `out = self * otherᵀ`.
    ///
    /// With `self` holding one sample per row, row `i` of `out` equals
    /// `other.matvec(self.row(i))` bitwise (see [`gemm_nt`](crate::gemm::gemm_nt)).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols` or `out` is not
    /// `self.rows × other.rows`.
    pub fn matmul_transposed_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed_into: lhs cols {} != rhs cols {}",
            self.cols, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_transposed_into: out shape {:?} != {:?}",
            out.shape(),
            (self.rows, other.rows)
        );
        crate::gemm::gemm_nt(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.rows,
        );
    }

    /// Batched affine map `out = self * wᵀ + bias` with the bias broadcast
    /// across rows: row `i` of `out` is `w · self.row(i) + bias`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or `bias.len() != w.rows`.
    pub fn affine_transposed_into(&self, w: &Matrix, bias: &[f64], out: &mut Matrix) {
        assert_eq!(
            bias.len(),
            w.rows,
            "affine_transposed_into: bias length {} != w rows {}",
            bias.len(),
            w.rows
        );
        self.matmul_transposed_into(w, out);
        for r in 0..out.rows {
            let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (o, &b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
    }

    /// Accumulates `alpha * aᵀ * b` into `self`, where `a` and `b` share
    /// their row count: the sum of per-row outer products
    /// `alpha · a.row(r) ⊗ b.row(r)` in row-ascending order (the batched
    /// form of repeated [`Matrix::add_outer`] calls).
    ///
    /// # Panics
    ///
    /// Panics if `a.rows != b.rows` or `self` is not `a.cols × b.cols`.
    pub fn add_matmul_transposed_lhs(&mut self, alpha: f64, a: &Matrix, b: &Matrix) {
        assert_eq!(
            a.rows, b.rows,
            "add_matmul_transposed_lhs: a rows {} != b rows {}",
            a.rows, b.rows
        );
        assert_eq!(
            self.shape(),
            (a.cols, b.cols),
            "add_matmul_transposed_lhs: self shape {:?} != {:?}",
            self.shape(),
            (a.cols, b.cols)
        );
        crate::gemm::gemm_tn_acc(alpha, &a.data, &b.data, &mut self.data, a.rows, a.cols, b.cols);
    }

    /// Returns the transpose of `self`.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.data[c * self.cols + r])
    }

    /// Writes the transpose of `self` into `out` without allocating.
    ///
    /// Used by the event-driven forward path, which re-transposes the
    /// weights into a reusable workspace buffer once per batched call.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `cols × rows`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into: out shape {:?} != {:?}",
            out.shape(),
            (self.cols, self.rows)
        );
        // Tiled copy: within a tile both the source rows and the
        // destination rows are short contiguous runs, so one side of the
        // transpose no longer strides a cache line per element. Pure data
        // movement — bit-for-bit the same result as the naive loop.
        const TILE: usize = 32;
        for r0 in (0..self.rows).step_by(TILE) {
            let r1 = (r0 + TILE).min(self.rows);
            for c0 in (0..self.cols).step_by(TILE) {
                let c1 = (c0 + TILE).min(self.cols);
                for r in r0..r1 {
                    let src = &self.data[r * self.cols + c0..r * self.cols + c1];
                    for (c, &v) in (c0..).zip(src) {
                        out.data[c * self.rows + r] = v;
                    }
                }
            }
        }
    }

    /// Adds `alpha * x yᵀ` (outer product) into `self` in place.
    ///
    /// Used for gradient accumulation `∇W += δ ⊗ input`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `y.len() != cols`.
    pub fn add_outer(&mut self, alpha: f64, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), self.rows, "add_outer: x length {} != rows {}", x.len(), self.rows);
        assert_eq!(y.len(), self.cols, "add_outer: y length {} != cols {}", y.len(), self.cols);
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, &yv) in row.iter_mut().zip(y) {
                *w += alpha * xv * yv;
            }
        }
    }

    /// Element-wise in-place addition of `alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sets every element to zero, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Maximum absolute value of any element (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Solves the linear system `self · x = b` by Gaussian elimination with
    /// partial pivoting. Returns `None` if the matrix is singular (pivot
    /// below `1e-12`) or not square.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        if self.rows != self.cols {
            return None;
        }
        assert_eq!(b.len(), self.rows, "solve: rhs length mismatch");
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            for r in col + 1..n {
                if a[r * n + col].abs() > a[pivot * n + col].abs() {
                    pivot = r;
                }
            }
            if a[pivot * n + col].abs() < 1e-12 {
                return None;
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                x.swap(col, pivot);
            }
            let p = a[col * n + col];
            for r in col + 1..n {
                let f = a[r * n + col] / p;
                if f == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= f * a[col * n + c];
                }
                x[r] -= f * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for c in col + 1..n {
                s -= a[col * n + c] * x[c];
            }
            x[col] = s / a[col * n + col];
        }
        Some(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_values() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "row 1")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn try_from_vec_checks_length() {
        assert!(Matrix::try_from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::try_from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [2.0, -1.0];
        assert_eq!(m.matvec_transposed(&x), m.transposed().matvec(&x));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_is_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn transpose_into_matches_transposed() {
        let m = Matrix::from_fn(4, 7, |r, c| (r * 7 + c) as f64 * 0.25);
        let mut out = Matrix::filled(7, 4, f64::NAN);
        m.transpose_into(&mut out);
        assert_eq!(out, m.transposed());
    }

    #[test]
    #[should_panic(expected = "transpose_into: out shape")]
    fn transpose_into_rejects_wrong_shape() {
        let m = Matrix::zeros(2, 3);
        let mut out = Matrix::zeros(2, 3);
        m.transpose_into(&mut out);
    }

    #[test]
    fn add_outer_accumulates_gradient() {
        let mut g = Matrix::zeros(2, 3);
        g.add_outer(2.0, &[1.0, -1.0], &[1.0, 0.0, 2.0]);
        assert_eq!(g, Matrix::from_rows(&[&[2.0, 0.0, 4.0], &[-2.0, 0.0, -4.0]]));
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 3.0);
        a.add_scaled(0.5, &b);
        assert_eq!(a, Matrix::filled(2, 2, 2.5));
        a.scale(2.0);
        assert_eq!(a, Matrix::filled(2, 2, 5.0));
    }

    #[test]
    fn norms_and_sums() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.sum(), 7.0);
    }

    #[test]
    fn map_preserves_shape() {
        let m = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let doubled = m.map(|v| 2.0 * v);
        assert_eq!(doubled[(1, 1)], 4.0);
        assert_eq!(doubled.shape(), m.shape());
    }

    #[test]
    fn fill_zero_clears_values() {
        let mut m = Matrix::filled(2, 2, 9.0);
        m.fill_zero();
        assert_eq!(m, Matrix::zeros(2, 2));
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(2);
        assert!(!format!("{m}").is_empty());
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = [1.5, -0.5];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
        let rect = Matrix::zeros(2, 3);
        assert!(rect.solve(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn solve_identity_is_identity() {
        let i = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64 * 0.5 - 2.0);
        let b = Matrix::from_fn(4, 2, |r, c| (r + c) as f64 * 0.25);
        let mut out = Matrix::filled(3, 2, f64::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn matmul_transposed_into_rows_match_matvec_bitwise() {
        let samples = Matrix::from_fn(5, 6, |r, c| ((r * 6 + c) as f64).sin());
        let w = Matrix::from_fn(3, 6, |r, c| ((r * 6 + c) as f64).cos());
        let mut out = Matrix::zeros(5, 3);
        samples.matmul_transposed_into(&w, &mut out);
        for r in 0..5 {
            assert_eq!(out.row(r), w.matvec(samples.row(r)).as_slice(), "row {r}");
        }
    }

    #[test]
    fn affine_transposed_into_broadcasts_bias() {
        let samples = Matrix::from_fn(4, 3, |r, c| (r + c) as f64);
        let w = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64 * 0.1);
        let bias = [1.0, -2.0];
        let mut out = Matrix::zeros(4, 2);
        samples.affine_transposed_into(&w, &bias, &mut out);
        for r in 0..4 {
            let z = w.matvec(samples.row(r));
            for (j, &b) in bias.iter().enumerate() {
                assert!((out[(r, j)] - (z[j] + b)).abs() < 1e-12, "({r},{j})");
            }
        }
    }

    #[test]
    fn add_matmul_transposed_lhs_matches_outer_sum() {
        let a = Matrix::from_fn(6, 2, |r, c| (r as f64 - c as f64) * 0.3);
        let b = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f64 * 0.2 - 1.0);
        let mut fast = Matrix::zeros(2, 3);
        fast.add_matmul_transposed_lhs(1.5, &a, &b);
        let mut reference = Matrix::zeros(2, 3);
        for r in 0..6 {
            reference.add_outer(1.5, a.row(r), b.row(r));
        }
        assert_eq!(fast, reference);
    }

    #[test]
    #[should_panic(expected = "matmul_into: out shape")]
    fn matmul_into_rejects_bad_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        let mut out = Matrix::zeros(3, 2);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = Matrix::from_fn(4, 2, |r, _| r as f64);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3], &[3.0, 3.0]);
    }
}
