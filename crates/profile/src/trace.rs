//! Chrome-trace export and terminal phase summaries.
//!
//! [`ChromeTraceRecorder`] implements [`Recorder`] directly, so the
//! existing instrumentation (training phase stopwatches, batched-SNN
//! profile spans, Loihi deploy spans) feeds a timeline without any new
//! hooks. Spans arrive as *completed* durations — [`Stopwatch::stop`]
//! calls [`Recorder::span`] at the instant a phase ends — so each span is
//! reconstructed as a chrome-trace complete (`"ph":"X"`) event starting
//! `seconds` before the moment it was recorded. Nested phases (an epoch
//! enclosing its sample/forward/backward/apply sections) therefore nest
//! naturally on the timeline; at export time parents are additionally
//! snapped left to cover their label-hierarchy children, so a scheduling
//! hiccup between a parent's clock read and its record cannot break the
//! containment. Reconstruction is exact only for phases
//! timed on the recording thread; folded worker aggregates are rendered
//! as a single event ending at the fold point, which is why the
//! `spikefolio profile` workload runs single-worker.
//!
//! [`Stopwatch::stop`]: spikefolio_telemetry::Stopwatch::stop

use spikefolio_telemetry::value::Value;
use spikefolio_telemetry::{Record, Recorder};
use std::collections::BTreeMap;
use std::time::Instant;

/// One reconstructed timeline event.
#[derive(Debug, Clone, PartialEq)]
enum TraceEvent {
    /// A completed span on track `tid`: `[ts_us, ts_us + dur_us]`.
    Complete { name: String, ts_us: f64, dur_us: f64, tid: u64 },
    /// A cumulative counter sample.
    Counter { name: String, ts_us: f64, value: f64 },
    /// An instantaneous marker (one per emitted record).
    Marker { name: String, ts_us: f64 },
}

/// A [`Recorder`] that builds a `chrome://tracing` / Perfetto-loadable
/// timeline while keeping the usual aggregate totals (span, counter,
/// gauge, record) for terminal reports.
///
/// Observe-only like every recorder: it stores observations and never
/// feeds back into computation.
#[derive(Debug)]
pub struct ChromeTraceRecorder {
    origin: Instant,
    events: Vec<TraceEvent>,
    spans: BTreeMap<String, (f64, u64)>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    records: Vec<Record>,
}

impl Default for ChromeTraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTraceRecorder {
    /// Creates an empty recorder; the trace clock starts now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            events: Vec::new(),
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            records: Vec::new(),
        }
    }

    fn now_us(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e6
    }

    /// `(total seconds, count)` of span `label`.
    pub fn span_total(&self, label: &str) -> (f64, u64) {
        self.spans.get(label).copied().unwrap_or((0.0, 0))
    }

    /// All span totals, label-sorted: label → (seconds, count).
    pub fn spans(&self) -> &BTreeMap<String, (f64, u64)> {
        &self.spans
    }

    /// Total of counter `label` (0 if never incremented).
    pub fn counter_total(&self, label: &str) -> u64 {
        self.counters.get(label).copied().unwrap_or(0)
    }

    /// Last observed value of gauge `label`.
    pub fn gauge_value(&self, label: &str) -> Option<f64> {
        self.gauges.get(label).copied()
    }

    /// Every emitted record, in order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of timeline events captured so far.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Records a completed span on an explicit track. The default
    /// [`Recorder::span`] path keeps everything on `tid` 1; per-request
    /// serving traces give each sampled request its own `tid` (its
    /// correlation id) so its queue/batch/infer spans render as one lane
    /// in Perfetto instead of interleaving with other requests.
    pub fn span_on_track(&mut self, label: &str, seconds: f64, tid: u64) {
        let slot = self.spans.entry(label.to_owned()).or_insert((0.0, 0));
        slot.0 += seconds;
        slot.1 += 1;
        let dur_us = (seconds * 1e6).max(0.0);
        let ts_us = (self.now_us() - dur_us).max(0.0);
        self.events.push(TraceEvent::Complete { name: label.to_owned(), ts_us, dur_us, tid });
    }

    /// Completed spans are reconstructed from durations at record time,
    /// so a scheduling delay between a parent phase's clock read (in its
    /// stopwatch) and the recorder's shifts the parent's reconstructed
    /// interval right — past children that were recorded promptly. Span
    /// labels are hierarchical (`train/epoch/sample` nests under
    /// `train/epoch`), which pins the intended containment, so snap each
    /// parent's left edge to cover the child-labelled events recorded
    /// since that label's previous instance. The right edge needs no fix:
    /// children stop (and record) before their parent does. Children are
    /// processed before their parents (record order), so snapping is
    /// transitive through deeper nesting.
    fn nested_events(&self) -> Vec<TraceEvent> {
        let mut events = self.events.clone();
        let mut prev_index: BTreeMap<String, usize> = BTreeMap::new();
        for i in 0..events.len() {
            let TraceEvent::Complete { name, ts_us, dur_us, .. } = &events[i] else { continue };
            let (name, end_us) = (name.clone(), ts_us + dur_us);
            let prefix = format!("{name}/");
            let scan_from = prev_index.get(&name).map_or(0, |&j| j + 1);
            let mut min_ts = *ts_us;
            for ev in &events[scan_from..i] {
                if let TraceEvent::Complete { name: child, ts_us: child_ts, .. } = ev {
                    if child.starts_with(&prefix) {
                        min_ts = min_ts.min(*child_ts);
                    }
                }
            }
            if let TraceEvent::Complete { ts_us, dur_us, .. } = &mut events[i] {
                *ts_us = min_ts;
                *dur_us = end_us - min_ts;
            }
            prev_index.insert(name, i);
        }
        events
    }

    /// Serializes the timeline to chrome-trace JSON (the object form with
    /// a `traceEvents` array, loadable by `chrome://tracing` and
    /// Perfetto). Span events carry `ph: "X"`, counters `ph: "C"`, record
    /// markers `ph: "i"`; everything lives on one `pid/tid` track so
    /// containment renders as nesting.
    pub fn to_chrome_json(&self) -> String {
        let nested = self.nested_events();
        let mut events = Vec::with_capacity(nested.len());
        for ev in &nested {
            let mut fields: Vec<(String, Value)> = Vec::with_capacity(8);
            let (name, ph, ts) = match ev {
                TraceEvent::Complete { name, ts_us, .. } => (name, "X", *ts_us),
                TraceEvent::Counter { name, ts_us, .. } => (name, "C", *ts_us),
                TraceEvent::Marker { name, ts_us } => (name, "i", *ts_us),
            };
            fields.push(("name".into(), Value::Str(name.clone())));
            fields.push(("ph".into(), Value::Str(ph.into())));
            fields.push(("ts".into(), Value::F64(ts)));
            fields.push(("pid".into(), Value::U64(1)));
            let tid = match ev {
                TraceEvent::Complete { tid, .. } => *tid,
                _ => 1,
            };
            fields.push(("tid".into(), Value::U64(tid)));
            match ev {
                TraceEvent::Complete { dur_us, .. } => {
                    fields.push(("dur".into(), Value::F64(*dur_us)));
                }
                TraceEvent::Counter { value, .. } => {
                    fields.push((
                        "args".into(),
                        Value::Map(vec![("value".into(), Value::F64(*value))]),
                    ));
                }
                TraceEvent::Marker { .. } => {
                    fields.push(("s".into(), Value::Str("t".into())));
                }
            }
            events.push(Value::Map(fields));
        }
        Value::Map(vec![
            ("traceEvents".into(), Value::List(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ])
        .to_json()
    }
}

impl Recorder for ChromeTraceRecorder {
    fn counter(&mut self, label: &str, delta: u64) {
        let total = self.counters.entry(label.to_owned()).or_insert(0);
        *total += delta;
        let value = *total as f64;
        let ts_us = self.now_us();
        self.events.push(TraceEvent::Counter { name: label.to_owned(), ts_us, value });
    }

    fn gauge(&mut self, label: &str, value: f64) {
        self.gauges.insert(label.to_owned(), value);
        let ts_us = self.now_us();
        self.events.push(TraceEvent::Counter { name: label.to_owned(), ts_us, value });
    }

    fn span(&mut self, label: &str, seconds: f64) {
        // The span just ended: reconstruct its start from its duration.
        self.span_on_track(label, seconds, 1);
    }

    fn emit(&mut self, record: Record) {
        let ts_us = self.now_us();
        self.events.push(TraceEvent::Marker { name: record.kind().to_owned(), ts_us });
        self.records.push(record);
    }
}

/// Merges several chrome-trace JSON documents into one Perfetto-loadable
/// timeline, one process track per input.
///
/// Each entry is `(label, json)`: the label names the merged track (a
/// `process_name` metadata event), and every event from that document is
/// re-homed to a distinct `pid` so e.g. a live-desk trace and a serving
/// trace render side by side instead of colliding on `pid 1`. Timestamps
/// are preserved verbatim — tracks align exactly when the traces share a
/// clock origin (recorded in one process), and remain individually
/// correct otherwise.
///
/// # Errors
///
/// A readable message naming the offending input when a document is not
/// valid JSON, lacks a `traceEvents` array, or holds a non-object event.
pub fn merge_chrome_traces(docs: &[(String, String)]) -> Result<String, String> {
    let mut merged: Vec<Value> = Vec::new();
    for (i, (label, json)) in docs.iter().enumerate() {
        let pid = (i + 1) as u64;
        let doc = spikefolio_telemetry::value::parse(json)
            .map_err(|e| format!("{label}: not valid trace JSON: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_list)
            .ok_or_else(|| format!("{label}: missing traceEvents array"))?;
        merged.push(Value::Map(vec![
            ("name".into(), Value::Str("process_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::U64(pid)),
            ("tid".into(), Value::U64(0)),
            ("args".into(), Value::Map(vec![("name".into(), Value::Str(label.clone()))])),
        ]));
        for ev in events {
            let Value::Map(fields) = ev else {
                return Err(format!("{label}: traceEvents entry is not an object"));
            };
            let mut fields = fields.clone();
            match fields.iter_mut().find(|(k, _)| k == "pid") {
                Some((_, v)) => *v = Value::U64(pid),
                None => fields.push(("pid".into(), Value::U64(pid))),
            }
            merged.push(Value::Map(fields));
        }
    }
    Ok(Value::Map(vec![
        ("traceEvents".into(), Value::List(merged)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ])
    .to_json())
}

/// Renders span totals as an indented phase tree: labels are grouped by
/// their `/`-separated path segments, children sorted by total seconds
/// descending. Labels with recorded time show `total(s)  count  mean(ms)`;
/// purely structural path prefixes show only their subtree.
pub fn render_phase_tree(spans: &BTreeMap<String, (f64, u64)>) -> String {
    #[derive(Default)]
    struct Node {
        total: Option<(f64, u64)>,
        children: BTreeMap<String, Node>,
    }

    let mut root = Node::default();
    for (label, &(s, n)) in spans {
        let mut node = &mut root;
        for seg in label.split('/') {
            node = node.children.entry(seg.to_owned()).or_default();
        }
        node.total = Some((s, n));
    }

    // Sort key: a node's own time, or its subtree's time when structural.
    fn subtree_seconds(node: &Node) -> f64 {
        node.total.map_or(0.0, |(s, _)| s)
            + node.children.values().map(subtree_seconds).sum::<f64>()
    }

    fn push_node(out: &mut String, name: &str, node: &Node, depth: usize) {
        let indent = "  ".repeat(depth);
        match node.total {
            Some((s, n)) => {
                let mean_ms = if n > 0 { s * 1e3 / n as f64 } else { 0.0 };
                let label = format!("{indent}{name}");
                out.push_str(&format!("{label:<32} {s:>11.4}  {n:>8}  {mean_ms:>10.3}\n"));
            }
            None => {
                let label = format!("{indent}{name}/");
                out.push_str(&format!("{label:<32}\n"));
            }
        }
        let mut kids: Vec<_> = node.children.iter().collect();
        kids.sort_by(|a, b| subtree_seconds(b.1).total_cmp(&subtree_seconds(a.1)));
        for (kname, kid) in kids {
            push_node(out, kname, kid, depth + 1);
        }
    }

    let mut out = String::new();
    if spans.is_empty() {
        out.push_str("(no spans recorded)\n");
        return out;
    }
    out.push_str(&format!(
        "{:<32} {:>11}  {:>8}  {:>10}\n",
        "phase", "total(s)", "count", "mean(ms)"
    ));
    let mut tops: Vec<_> = root.children.iter().collect();
    tops.sort_by(|a, b| subtree_seconds(b.1).total_cmp(&subtree_seconds(a.1)));
    for (name, node) in tops {
        push_node(&mut out, name, node, 0);
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_telemetry::value::parse;
    use spikefolio_telemetry::Stopwatch;

    #[test]
    fn merge_rehomes_each_trace_to_its_own_process_track() {
        let mut desk = ChromeTraceRecorder::new();
        desk.span("desk/round/000", 1e-3);
        let mut serve = ChromeTraceRecorder::new();
        serve.span("serve/request", 5e-4);
        let merged = merge_chrome_traces(&[
            ("desk".to_owned(), desk.to_chrome_json()),
            ("serve".to_owned(), serve.to_chrome_json()),
        ])
        .unwrap();
        let v = parse(&merged).expect("merged trace is valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_list).unwrap();
        // 2 process_name metadata events + 1 span each.
        assert_eq!(events.len(), 4);
        let pid_of = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
                .and_then(|e| e.get("pid").and_then(Value::as_u64))
                .expect(name)
        };
        assert_eq!(pid_of("desk/round/000"), 1);
        assert_eq!(pid_of("serve/request"), 2);
        let labels: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str))
            .collect();
        assert_eq!(labels, vec!["desk", "serve"]);
    }

    #[test]
    fn merge_rejects_documents_without_trace_events() {
        let err = merge_chrome_traces(&[("bad".to_owned(), "{}".to_owned())]).unwrap_err();
        assert!(err.contains("bad"), "{err}");
        assert!(err.contains("traceEvents"), "{err}");
        let err = merge_chrome_traces(&[("junk".to_owned(), "not json".to_owned())]).unwrap_err();
        assert!(err.contains("junk"), "{err}");
    }

    #[test]
    fn spans_become_nested_complete_events() {
        let mut rec = ChromeTraceRecorder::new();
        let outer = Stopwatch::start(&rec);
        let inner = Stopwatch::start(&rec);
        std::thread::sleep(std::time::Duration::from_millis(2));
        inner.stop(&mut rec, "epoch/forward");
        outer.stop(&mut rec, "epoch");
        let v = parse(&rec.to_chrome_json()).expect("trace is valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_list).unwrap();
        assert_eq!(events.len(), 2);
        let find = |name: &str| {
            events.iter().find(|e| e.get("name").and_then(Value::as_str) == Some(name)).expect(name)
        };
        let inner = find("epoch/forward");
        let outer = find("epoch");
        let span = |e: &Value| {
            let ts = e.get("ts").and_then(Value::as_f64).unwrap();
            let dur = e.get("dur").and_then(Value::as_f64).unwrap();
            (ts, ts + dur)
        };
        let (i0, i1) = span(inner);
        let (o0, o1) = span(outer);
        assert!(o0 <= i0 && i1 <= o1, "inner [{i0},{i1}] not inside outer [{o0},{o1}]");
        assert_eq!(outer.get("ph").and_then(Value::as_str), Some("X"));
    }

    #[test]
    fn parent_spans_snap_left_to_cover_hierarchy_children() {
        let mut rec = ChromeTraceRecorder::new();
        // Simulate a delayed parent record: the child is recorded with its
        // true duration, then the parent arrives with a duration SHORTER
        // than the gap back to the child's start (as if the recording
        // thread was preempted between stopping the parent's stopwatch and
        // the recorder's own clock read).
        std::thread::sleep(std::time::Duration::from_millis(3));
        rec.span("train/epoch/sample", 2e-3);
        // The parent's reconstructed interval misses the child entirely.
        rec.span("train/epoch", 1e-3);
        // Second epoch: its child window starts after the first epoch.
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.span("train/epoch/sample", 1e-3);
        rec.span("train/epoch", 2e-3);

        let v = parse(&rec.to_chrome_json()).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_list).unwrap();
        let spans = |name: &str| {
            events
                .iter()
                .filter(|e| e.get("name").and_then(Value::as_str) == Some(name))
                .map(|e| {
                    let ts = e.get("ts").and_then(Value::as_f64).unwrap();
                    let dur = e.get("dur").and_then(Value::as_f64).unwrap();
                    (ts, ts + dur)
                })
                .collect::<Vec<_>>()
        };
        let children = spans("train/epoch/sample");
        let parents = spans("train/epoch");
        assert_eq!((children.len(), parents.len()), (2, 2));
        for (i, &(c0, c1)) in children.iter().enumerate() {
            let (p0, p1) = parents[i];
            assert!(p0 <= c0 && c1 <= p1, "child {i} [{c0},{c1}] outside parent [{p0},{p1}]");
        }
        // Each epoch only covers its own children: the second epoch must
        // not have been stretched back over the first child.
        assert!(parents[1].0 > children[0].1, "second epoch swallowed the first epoch's child");
    }

    #[test]
    fn counters_gauges_and_records_are_captured() {
        let mut rec = ChromeTraceRecorder::new();
        rec.counter("profile/ops/synops", 10);
        rec.counter("profile/ops/synops", 5);
        rec.gauge("profile/ops/sparsity", 0.93);
        rec.emit(Record::new("epoch").field("reward", 0.5));
        assert_eq!(rec.counter_total("profile/ops/synops"), 15);
        assert_eq!(rec.gauge_value("profile/ops/sparsity"), Some(0.93));
        assert_eq!(rec.records().len(), 1);
        let v = parse(&rec.to_chrome_json()).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_list).unwrap();
        // 2 counter samples + 1 gauge sample + 1 record marker.
        assert_eq!(events.len(), 4);
        let last_counter = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .nth(1)
            .unwrap();
        assert_eq!(
            last_counter.get("args").and_then(|a| a.get("value")).and_then(Value::as_f64),
            Some(15.0),
            "counter events sample the cumulative total"
        );
    }

    #[test]
    fn phase_tree_indents_children_under_parents() {
        let mut spans = BTreeMap::new();
        spans.insert("train/epoch".to_owned(), (2.0, 2));
        spans.insert("train/epoch/forward_batch".to_owned(), (1.5, 16));
        spans.insert("train/epoch/sample".to_owned(), (0.1, 16));
        spans.insert("profile/snn/encode".to_owned(), (0.4, 16));
        let text = render_phase_tree(&spans);
        let lines: Vec<&str> = text.lines().collect();
        let idx = |needle: &str| {
            lines.iter().position(|l| l.trim_start().starts_with(needle)).expect(needle)
        };
        // Children are indented below their parent, expensive first.
        assert!(idx("train/") < idx("epoch"));
        assert!(idx("epoch") < idx("forward_batch"));
        assert!(idx("forward_batch") < idx("sample"));
        assert!(lines[idx("forward_batch")].starts_with("    "), "{text}");
        assert!(text.contains("encode"));
    }

    #[test]
    fn empty_tree_renders_placeholder() {
        assert!(render_phase_tree(&BTreeMap::new()).contains("no spans"));
    }

    #[test]
    fn span_on_track_exports_its_tid_and_counts_toward_totals() {
        let mut rec = ChromeTraceRecorder::new();
        rec.span("serve/batch", 1e-3);
        rec.span_on_track("serve/req/2a", 2e-3, 42);
        assert_eq!(rec.span_total("serve/req/2a"), (2e-3, 1));
        let v = parse(&rec.to_chrome_json()).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_list).unwrap();
        let tid = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
                .and_then(|e| e.get("tid"))
                .and_then(Value::as_u64)
                .expect(name)
        };
        assert_eq!(tid("serve/batch"), 1);
        assert_eq!(tid("serve/req/2a"), 42);
    }
}
