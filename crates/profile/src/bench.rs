//! Schema-versioned bench baselines and the regression comparator behind
//! `spikefolio bench run|compare`.
//!
//! A baseline is a JSON document (`spikefolio.bench.v1`) holding one
//! [`BenchEntry`] per workload: best-of-reps wall-clock seconds plus the
//! deterministic op counts (dense MACs, synops, spikes) of that workload.
//! [`compare`] checks a fresh run against a stored baseline:
//!
//! * **wall-clock** is gated *two-sided* by ratio — a run that is much
//!   slower than baseline is a regression, and a run that is impossibly
//!   faster means the baseline no longer describes this machine or
//!   workload, which is just as much a gate failure (it is exactly what
//!   an inflated or stale baseline looks like). The noise floor is
//!   applied **per measured execution**, not per entry: entries whose
//!   baseline or current time sits below the floor are not wall-gated,
//!   and every gated entry gets one floor quantum of absolute slack on
//!   each side of the ratio gate. Single-rep entries (e.g. `table3/slice`,
//!   whose one execution has no best-of-reps smoothing) therefore see the
//!   same absolute noise allowance as multi-rep entries instead of
//!   flapping when their small wall time sits near the ratio boundary.
//! * **op counts** are seeded-deterministic, so they are gated tightly
//!   (±2% by default); a drifted count means the workload itself changed
//!   and the baseline must be re-recorded deliberately.

use spikefolio_telemetry::value::{parse, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag written into every baseline document.
pub const SCHEMA: &str = "spikefolio.bench.v1";

/// One benched workload: timing plus deterministic op counts.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Workload name, e.g. `forward/b8`.
    pub name: String,
    /// Best-of-`reps` wall-clock seconds for one execution.
    pub wall_s: f64,
    /// Repetitions the minimum was taken over.
    pub reps: u64,
    /// Deterministic op counts for the workload (label → count).
    pub ops: BTreeMap<String, u64>,
}

/// A full baseline document: schema + creation stamp + entries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchBaseline {
    /// Unix seconds when the baseline was recorded.
    pub created_unix: u64,
    /// One entry per workload, in run order.
    pub entries: Vec<BenchEntry>,
}

impl BenchBaseline {
    /// Looks up an entry by workload name.
    pub fn entry(&self, name: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Serializes the baseline to schema-versioned JSON.
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let ops =
                    e.ops.iter().map(|(k, &v)| (k.clone(), Value::U64(v))).collect::<Vec<_>>();
                Value::Map(vec![
                    ("name".into(), Value::Str(e.name.clone())),
                    ("wall_s".into(), Value::F64(e.wall_s)),
                    ("reps".into(), Value::U64(e.reps)),
                    ("ops".into(), Value::Map(ops)),
                ])
            })
            .collect::<Vec<_>>();
        Value::Map(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("created_unix".into(), Value::U64(self.created_unix)),
            ("entries".into(), Value::List(entries)),
        ])
        .to_json()
    }

    /// Parses a baseline from JSON, validating the schema tag and every
    /// entry's required fields.
    pub fn parse(input: &str) -> Result<Self, String> {
        let doc = parse(input)?;
        let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(format!("expected schema {SCHEMA:?}, found {schema:?}"));
        }
        let created_unix = doc
            .get("created_unix")
            .and_then(Value::as_u64)
            .ok_or("baseline missing created_unix")?;
        let raw_entries =
            doc.get("entries").and_then(Value::as_list).ok_or("baseline missing entries list")?;
        let mut entries = Vec::with_capacity(raw_entries.len());
        for (i, raw) in raw_entries.iter().enumerate() {
            let name = raw
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("entry {i} missing name"))?
                .to_owned();
            let wall_s = raw
                .get("wall_s")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("entry {name:?} missing wall_s"))?;
            let reps = raw
                .get("reps")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("entry {name:?} missing reps"))?;
            let mut ops = BTreeMap::new();
            if let Some(Value::Map(pairs)) = raw.get("ops") {
                for (label, v) in pairs {
                    let count = v
                        .as_u64()
                        .ok_or_else(|| format!("entry {name:?} op {label:?} is not a count"))?;
                    ops.insert(label.clone(), count);
                }
            }
            entries.push(BenchEntry { name, wall_s, reps, ops });
        }
        Ok(Self { created_unix, entries })
    }
}

/// Gate thresholds for [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareThresholds {
    /// Maximum allowed `current/baseline` wall ratio; the inverse bounds
    /// the fast side. Must be > 1.
    pub wall_ratio: f64,
    /// Maximum allowed fractional drift of any op count.
    pub ops_frac: f64,
    /// Per-execution timing noise quantum (seconds). Wall times below
    /// this — on either side — are noise and not gated, and gated
    /// comparisons get this much absolute slack on top of the ratio
    /// bound, so `reps: 1` entries are held to the same per-measurement
    /// standard as best-of-`reps` entries.
    pub wall_floor_s: f64,
}

impl Default for CompareThresholds {
    fn default() -> Self {
        Self { wall_ratio: 1.5, ops_frac: 0.02, wall_floor_s: 1e-5 }
    }
}

/// Outcome for one compared workload.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareLine {
    /// Workload name.
    pub name: String,
    /// `current/baseline` wall ratio, when both sides were gated.
    pub wall_ratio: Option<f64>,
    /// Human-readable gate failures for this workload (empty = pass).
    pub failures: Vec<String>,
    /// True when the failure is the *fast-side* wall anomaly — the
    /// signature of a stale or inflated baseline rather than a code
    /// regression. Callers can use this to suggest re-recording.
    pub stale_wall: bool,
}

/// Full comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// One line per baseline workload.
    pub lines: Vec<CompareLine>,
}

impl CompareReport {
    /// True when no workload tripped a gate.
    pub fn passed(&self) -> bool {
        self.lines.iter().all(|l| l.failures.is_empty())
    }

    /// Number of workloads that tripped at least one gate.
    pub fn num_failed(&self) -> usize {
        self.lines.iter().filter(|l| !l.failures.is_empty()).count()
    }

    /// True when at least one workload failed on the fast-side wall
    /// anomaly — evidence the *baseline* is stale or inflated, not that
    /// the code regressed. The right remedy is re-recording the baseline
    /// with `bench run`, and callers should say so.
    pub fn suspects_stale_baseline(&self) -> bool {
        self.lines.iter().any(|l| l.stale_wall)
    }

    /// Renders one status line per workload plus a verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let ratio =
                line.wall_ratio.map(|r| format!("{r:.3}x")).unwrap_or_else(|| "-".to_owned());
            let status = if line.failures.is_empty() { "ok" } else { "FAIL" };
            let _ = writeln!(out, "{status:<5} {:<24} wall {ratio}", line.name);
            for failure in &line.failures {
                let _ = writeln!(out, "        {failure}");
            }
        }
        let verdict = if self.passed() {
            format!("bench compare: PASS ({} workloads)", self.lines.len())
        } else {
            format!(
                "bench compare: FAIL ({}/{} workloads regressed)",
                self.num_failed(),
                self.lines.len()
            )
        };
        let _ = writeln!(out, "{verdict}");
        out
    }
}

/// Compares a current run against a baseline. Every baseline workload
/// must be present in the current run; wall-clock and op-count gates are
/// applied per [`CompareThresholds`]. Workloads only present in the
/// current run are new coverage, not failures.
pub fn compare(
    baseline: &BenchBaseline,
    current: &BenchBaseline,
    thresholds: &CompareThresholds,
) -> CompareReport {
    let mut lines = Vec::with_capacity(baseline.entries.len());
    for base in &baseline.entries {
        let mut failures = Vec::new();
        let mut wall_ratio = None;
        let mut stale_wall = false;
        match current.entry(&base.name) {
            None => failures.push("missing from current run".to_owned()),
            Some(cur) => {
                // Both sides must clear the per-execution noise floor to
                // be gated at all, and the ratio gate carries one floor
                // quantum of absolute slack per side — a single-rep entry
                // is one noisy measurement, not a smoothed best-of-reps,
                // and must not flap on sub-floor jitter.
                if base.wall_s >= thresholds.wall_floor_s && cur.wall_s >= thresholds.wall_floor_s {
                    let ratio = cur.wall_s / base.wall_s;
                    wall_ratio = Some(ratio);
                    if cur.wall_s > base.wall_s * thresholds.wall_ratio + thresholds.wall_floor_s {
                        failures.push(format!(
                            "wall-clock regression: {:.6}s vs baseline {:.6}s ({ratio:.3}x > {:.3}x)",
                            cur.wall_s, base.wall_s, thresholds.wall_ratio
                        ));
                    } else if cur.wall_s
                        < base.wall_s / thresholds.wall_ratio - thresholds.wall_floor_s
                    {
                        stale_wall = true;
                        failures.push(format!(
                            "wall-clock anomaly: {:.6}s vs baseline {:.6}s ({ratio:.3}x < {:.3}x) — baseline looks stale or inflated",
                            cur.wall_s,
                            base.wall_s,
                            1.0 / thresholds.wall_ratio
                        ));
                    }
                }
                for (label, &base_count) in &base.ops {
                    match cur.ops.get(label) {
                        None => {
                            failures.push(format!("op count {label:?} missing from current run"))
                        }
                        Some(&cur_count) => {
                            let denom = base_count.max(1) as f64;
                            let drift = (cur_count as f64 - base_count as f64).abs() / denom;
                            if drift > thresholds.ops_frac {
                                failures.push(format!(
                                    "op count {label:?} drifted: {cur_count} vs baseline {base_count} ({:.2}% > {:.2}%)",
                                    drift * 100.0,
                                    thresholds.ops_frac * 100.0
                                ));
                            }
                        }
                    }
                }
            }
        }
        lines.push(CompareLine { name: base.name.clone(), wall_ratio, failures, stale_wall });
    }
    CompareReport { lines }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn baseline() -> BenchBaseline {
        let mut ops = BTreeMap::new();
        ops.insert("dense_macs".to_owned(), 1_000_000);
        ops.insert("synops".to_owned(), 42_000);
        BenchBaseline {
            created_unix: 1_700_000_000,
            entries: vec![
                BenchEntry { name: "forward/b8".to_owned(), wall_s: 0.002, reps: 5, ops },
                BenchEntry {
                    name: "table3/smoke".to_owned(),
                    wall_s: 0.5,
                    reps: 1,
                    ops: BTreeMap::new(),
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let base = baseline();
        let parsed = BenchBaseline::parse(&base.to_json()).unwrap();
        assert_eq!(parsed, base);
        assert!(base.to_json().contains("spikefolio.bench.v1"));
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let err = BenchBaseline::parse(r#"{"schema":"other.v9","created_unix":1,"entries":[]}"#)
            .unwrap_err();
        assert!(err.contains("spikefolio.bench.v1"), "{err}");
        assert!(BenchBaseline::parse("not json").is_err());
    }

    #[test]
    fn self_compare_passes() {
        let base = baseline();
        let report = compare(&base, &base, &CompareThresholds::default());
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.lines.len(), 2);
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn doubled_baseline_wall_fails_two_sided_gate() {
        // Simulates comparing against a 2x-inflated baseline: the current
        // run looks "2x faster", ratio 0.5 < 1/1.5.
        let mut inflated = baseline();
        for e in &mut inflated.entries {
            e.wall_s *= 2.0;
        }
        let current = baseline();
        let report = compare(&inflated, &current, &CompareThresholds::default());
        assert!(!report.passed());
        assert_eq!(report.num_failed(), 2);
        assert!(report.render().contains("FAIL"));
        // The fast-side failure is flagged as a stale-baseline suspect so
        // the CLI can suggest re-recording rather than hunting a regression.
        assert!(report.suspects_stale_baseline());
        assert!(report.lines.iter().all(|l| l.stale_wall));
    }

    #[test]
    fn slow_regression_is_not_flagged_stale() {
        let base = baseline();
        let mut slow = baseline();
        for e in &mut slow.entries {
            e.wall_s *= 2.0;
        }
        let report = compare(&base, &slow, &CompareThresholds::default());
        assert!(!report.passed());
        assert!(!report.suspects_stale_baseline());

        // A clean pass suspects nothing either.
        assert!(!compare(&base, &base, &CompareThresholds::default()).suspects_stale_baseline());
    }

    #[test]
    fn slow_current_run_fails() {
        let base = baseline();
        let mut slow = baseline();
        for e in &mut slow.entries {
            e.wall_s *= 2.0;
        }
        let report = compare(&base, &slow, &CompareThresholds::default());
        assert!(!report.passed());
        assert!(report.render().contains("wall-clock regression"));
    }

    #[test]
    fn op_count_drift_fails_tight_gate() {
        let base = baseline();
        let mut drifted = baseline();
        drifted.entries[0].ops.insert("synops".to_owned(), 43_500); // +3.6%
        let report = compare(&base, &drifted, &CompareThresholds::default());
        assert!(!report.passed());
        assert!(report.render().contains("synops"));
        // Within 2% passes.
        let mut near = baseline();
        near.entries[0].ops.insert("synops".to_owned(), 42_500); // +1.2%
        assert!(compare(&base, &near, &CompareThresholds::default()).passed());
    }

    #[test]
    fn missing_workload_or_op_fails() {
        let base = baseline();
        let mut partial = baseline();
        partial.entries.pop();
        let report = compare(&base, &partial, &CompareThresholds::default());
        assert!(!report.passed());
        assert!(report.render().contains("missing from current run"));

        let mut no_ops = baseline();
        no_ops.entries[0].ops.remove("synops");
        assert!(!compare(&base, &no_ops, &CompareThresholds::default()).passed());
    }

    #[test]
    fn noise_floor_skips_wall_gate() {
        let mut tiny = baseline();
        tiny.entries[0].wall_s = 1e-7;
        let mut cur = tiny.clone();
        cur.entries[0].wall_s = 1e-6; // 10x, but under the floor
        let report = compare(&tiny, &cur, &CompareThresholds::default());
        assert!(report.lines[0].wall_ratio.is_none());
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn single_rep_entries_get_per_rep_noise_allowance() {
        // A reps:1 entry at 12µs that comes back at 25µs is a 2.08x ratio
        // — but the 13µs delta is within one-ish noise quantum of the
        // 1.5x bound (18µs + 10µs floor), so it must NOT flap the gate.
        let mk = |wall_s: f64| BenchBaseline {
            created_unix: 1,
            entries: vec![BenchEntry {
                name: "table3/slice".to_owned(),
                wall_s,
                reps: 1,
                ops: BTreeMap::new(),
            }],
        };
        let th = CompareThresholds::default();
        let report = compare(&mk(12e-6), &mk(25e-6), &th);
        assert!(
            report.passed(),
            "sub-floor jitter must not fail reps:1 entries: {}",
            report.render()
        );
        // The allowance is absolute, not a free pass: a genuine regression
        // beyond ratio + floor still fails.
        assert!(!compare(&mk(12e-6), &mk(40e-6), &th).passed());
        // Same slack on the fast side before crying stale baseline.
        assert!(compare(&mk(25e-6), &mk(12e-6), &th).passed());
        assert!(compare(&mk(40e-6), &mk(12e-6), &th).suspects_stale_baseline());
        // A current-run time below the floor is itself noise: not gated.
        let report = compare(&mk(12e-6), &mk(5e-6), &th);
        assert!(report.passed());
        assert!(report.lines[0].wall_ratio.is_none());
    }

    #[test]
    fn extra_current_workloads_are_not_failures() {
        let base = baseline();
        let mut bigger = baseline();
        bigger.entries.push(BenchEntry {
            name: "backward/b32".to_owned(),
            wall_s: 0.01,
            reps: 5,
            ops: BTreeMap::new(),
        });
        assert!(compare(&base, &bigger, &CompareThresholds::default()).passed());
    }
}
