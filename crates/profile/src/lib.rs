//! Performance observatory for `spikefolio`: where wall-clock time and
//! synaptic work actually go inside encode → LIF forward → STBP backward
//! → update.
//!
//! Everything here builds on the [`spikefolio_telemetry::Recorder`]
//! observation substrate — the observatory adds *views* of a recorded
//! run, never new measurement hooks:
//!
//! * [`trace::ChromeTraceRecorder`] — a recorder that reconstructs every
//!   span into a `chrome://tracing` / Perfetto-loadable JSON timeline and
//!   keeps the usual aggregate totals for terminal rendering,
//! * [`trace::render_phase_tree`] — a hierarchical flame-style text
//!   summary of span totals grouped by their `/`-separated label paths,
//! * [`cost`] — the op-level cost model: dense multiply–accumulates an
//!   equivalent ANN would execute vs the spike-sparse synaptic operations
//!   the SNN actually performed, and the effective sparsity per layer,
//! * [`bench`] — schema-versioned (`spikefolio.bench.v1`) performance
//!   baselines with a two-sided regression comparator; the `spikefolio
//!   bench run|compare` CLI and the `ci.sh` bench-smoke gate sit on top.
//!
//! The crate is deliberately dependency-light (telemetry only) so any
//! layer of the workspace can depend on it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod bench;
pub mod cost;
pub mod trace;

pub use bench::{compare, BenchBaseline, BenchEntry, CompareReport, CompareThresholds};
pub use cost::{CostReport, LayerCost};
pub use trace::{merge_chrome_traces, ChromeTraceRecorder};
