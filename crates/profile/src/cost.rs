//! Op-level cost model: dense multiply–accumulates vs spike-sparse
//! synaptic operations.
//!
//! The paper's neuromorphic-efficiency argument rests on the SNN doing
//! *event-driven* work: a synapse is only exercised when its presynaptic
//! neuron actually spikes, while an equivalent ANN multiplies every
//! weight every forward pass. This module makes that ratio concrete for
//! a recorded workload:
//!
//! * **dense MACs** — `in_dim · out_dim` per layer, per timestep, per
//!   sample: what a dense matrix–vector product would cost,
//! * **synops** — `input_spikes · out_dim` per layer: each input spike
//!   fans out across one row of synapses (layer 0's input spikes are the
//!   encoder's; layer `k`'s are layer `k−1`'s output spikes),
//! * **effective sparsity** — `1 − synops / dense_macs`.
//!
//! All inputs are observable from a forward trace
//! (`SpikeStats.encoder_spikes` + per-layer spike totals) plus the
//! network shape, so the model never needs hooks inside the kernels.

use std::fmt::Write as _;

/// Dense multiply–accumulate count for one `m×k · k×n` product.
///
/// Saturates instead of overflowing so pathological shapes degrade to
/// `u64::MAX` rather than wrapping.
pub fn dense_macs(m: usize, k: usize, n: usize) -> u64 {
    (m as u64).saturating_mul(k as u64).saturating_mul(n as u64)
}

/// Cost breakdown for one layer over a whole workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCost {
    /// Fan-in of the layer.
    pub in_dim: usize,
    /// Fan-out of the layer.
    pub out_dim: usize,
    /// Dense MACs an ANN would execute: `in · out · timesteps · samples`.
    pub dense_macs: u64,
    /// Spike-driven synaptic ops executed: `input_spikes · out_dim`.
    pub synops: u64,
    /// Spikes that entered this layer over the workload.
    pub input_spikes: u64,
}

impl LayerCost {
    /// Effective synaptic sparsity `1 − synops/dense_macs` (0 when the
    /// dense count is zero).
    pub fn sparsity(&self) -> f64 {
        if self.dense_macs == 0 {
            return 0.0;
        }
        1.0 - self.synops as f64 / self.dense_macs as f64
    }
}

/// Whole-network cost report for a recorded workload.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Per-layer breakdown, input-to-output order.
    pub layers: Vec<LayerCost>,
    /// Timesteps per forward pass.
    pub timesteps: usize,
    /// Samples (forward passes) in the workload.
    pub samples: usize,
}

impl CostReport {
    /// Builds the report from a network's layer shapes and a recorded
    /// workload.
    ///
    /// * `shapes` — `(in_dim, out_dim)` per spiking layer, input first,
    /// * `timesteps` — simulation timesteps per forward pass,
    /// * `samples` — forward passes in the workload,
    /// * `encoder_spikes` — total encoder output spikes (layer 0 input),
    /// * `layer_spikes` — total output spikes per layer; layer `k>0`'s
    ///   input spikes are `layer_spikes[k−1]`. Missing tail entries count
    ///   as zero input (no spikes observed).
    pub fn from_workload(
        shapes: &[(usize, usize)],
        timesteps: usize,
        samples: usize,
        encoder_spikes: u64,
        layer_spikes: &[u64],
    ) -> Self {
        let passes = (timesteps as u64).saturating_mul(samples as u64);
        let layers = shapes
            .iter()
            .enumerate()
            .map(|(k, &(in_dim, out_dim))| {
                let input_spikes = if k == 0 {
                    encoder_spikes
                } else {
                    layer_spikes.get(k - 1).copied().unwrap_or(0)
                };
                LayerCost {
                    in_dim,
                    out_dim,
                    dense_macs: dense_macs(in_dim, 1, out_dim).saturating_mul(passes),
                    synops: input_spikes.saturating_mul(out_dim as u64),
                    input_spikes,
                }
            })
            .collect();
        Self { layers, timesteps, samples }
    }

    /// Total dense MACs across all layers.
    pub fn total_dense_macs(&self) -> u64 {
        self.layers.iter().fold(0u64, |acc, l| acc.saturating_add(l.dense_macs))
    }

    /// Total synops across all layers.
    pub fn total_synops(&self) -> u64 {
        self.layers.iter().fold(0u64, |acc, l| acc.saturating_add(l.synops))
    }

    /// Network-wide effective sparsity.
    pub fn sparsity(&self) -> f64 {
        let dense = self.total_dense_macs();
        if dense == 0 {
            return 0.0;
        }
        1.0 - self.total_synops() as f64 / dense as f64
    }

    /// Renders the per-layer table plus totals as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "op-level cost model ({} timesteps x {} samples)",
            self.timesteps, self.samples
        );
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>16} {:>16} {:>10}",
            "layer", "shape", "dense_macs", "synops", "sparsity"
        );
        for (k, l) in self.layers.iter().enumerate() {
            let shape = format!("{}x{}", l.in_dim, l.out_dim);
            let _ = writeln!(
                out,
                "{:<8} {:>12} {:>16} {:>16} {:>9.1}%",
                format!("fc{k}"),
                shape,
                l.dense_macs,
                l.synops,
                l.sparsity() * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>16} {:>16} {:>9.1}%",
            "total",
            "",
            self.total_dense_macs(),
            self.total_synops(),
            self.sparsity() * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn dense_macs_multiplies_and_saturates() {
        assert_eq!(dense_macs(2, 3, 4), 24);
        assert_eq!(dense_macs(0, 3, 4), 0);
        assert_eq!(dense_macs(usize::MAX, usize::MAX, 2), u64::MAX);
    }

    #[test]
    fn workload_cost_chains_layer_spikes() {
        // Two layers: 10 -> 8 -> 4, T=5, 3 samples.
        let report = CostReport::from_workload(&[(10, 8), (8, 4)], 5, 3, 60, &[45, 12]);
        assert_eq!(report.layers.len(), 2);
        // Layer 0: dense 10*8*5*3 = 1200, synops = encoder 60 * 8 = 480.
        assert_eq!(report.layers[0].dense_macs, 1200);
        assert_eq!(report.layers[0].synops, 480);
        assert_eq!(report.layers[0].input_spikes, 60);
        // Layer 1: dense 8*4*5*3 = 480, synops = layer0 spikes 45 * 4 = 180.
        assert_eq!(report.layers[1].dense_macs, 480);
        assert_eq!(report.layers[1].synops, 180);
        assert_eq!(report.total_dense_macs(), 1680);
        assert_eq!(report.total_synops(), 660);
        let expected = 1.0 - 660.0 / 1680.0;
        assert!((report.sparsity() - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_spikes_means_full_sparsity() {
        let report = CostReport::from_workload(&[(10, 8)], 5, 2, 0, &[0]);
        assert_eq!(report.total_synops(), 0);
        assert!((report.sparsity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_network_reports_zero_sparsity() {
        let report = CostReport::from_workload(&[], 5, 2, 10, &[]);
        assert_eq!(report.total_dense_macs(), 0);
        assert_eq!(report.sparsity(), 0.0);
    }

    #[test]
    fn render_lists_every_layer_and_totals() {
        let report = CostReport::from_workload(&[(10, 8), (8, 4)], 5, 3, 60, &[45, 12]);
        let text = report.render();
        assert!(text.contains("fc0"));
        assert!(text.contains("fc1"));
        assert!(text.contains("total"));
        assert!(text.contains("10x8"));
        assert!(text.contains("1200"));
    }
}
