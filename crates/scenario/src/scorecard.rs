//! The `spikefolio.scorecard.v1` report: one row per
//! (universe × scenario × strategy) cell of the stress matrix.
//!
//! The scorecard is the durable artifact of a `scenarios run`: a
//! schema-versioned JSON document that downstream tooling can diff,
//! archive, or gate releases on. Determinism is part of the contract —
//! the document contains *no* wall-clock or host-dependent fields, so the
//! same seed and matrix produce bitwise-identical JSON (per-cell timings
//! go to telemetry `scenario_cell` records instead).

use spikefolio_telemetry::{value, Value};

/// Schema identifier stamped into every scorecard document.
pub const SCORECARD_SCHEMA: &str = "spikefolio.scorecard.v1";

/// One evaluated cell of the matrix: a strategy's backtest on one
/// (universe, scenario) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ScorecardCell {
    /// Universe name (e.g. `"crypto"`, `"cross-market"`).
    pub universe: String,
    /// Scenario name (e.g. `"flash-crash"`).
    pub scenario: String,
    /// Strategy display name (e.g. `"SDP"`, `"DDPG"`, `"ONS"`).
    pub strategy: String,
    /// Cumulative eq. (1) reward: the sum of per-period log returns.
    pub reward: f64,
    /// Annualized Sharpe ratio over the cell's value curve.
    pub sharpe: f64,
    /// Maximum drawdown (fraction in `[0, 1]`).
    pub max_drawdown: f64,
    /// Total one-way turnover over the backtest.
    pub turnover: f64,
    /// Fraction of final value lost to transaction costs, `1 − Π μ_t`.
    pub cost_drag: f64,
    /// Final accumulated portfolio value (eq. 15).
    pub final_value: f64,
}

impl ScorecardCell {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("universe".into(), Value::from(self.universe.clone())),
            ("scenario".into(), Value::from(self.scenario.clone())),
            ("strategy".into(), Value::from(self.strategy.clone())),
            ("reward".into(), Value::F64(self.reward)),
            ("sharpe".into(), Value::F64(self.sharpe)),
            ("max_drawdown".into(), Value::F64(self.max_drawdown)),
            ("turnover".into(), Value::F64(self.turnover)),
            ("cost_drag".into(), Value::F64(self.cost_drag)),
            ("final_value".into(), Value::F64(self.final_value)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let text = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("cell missing string field {key:?}"))
        };
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("cell missing numeric field {key:?}"))
        };
        Ok(Self {
            universe: text("universe")?,
            scenario: text("scenario")?,
            strategy: text("strategy")?,
            reward: num("reward")?,
            sharpe: num("sharpe")?,
            max_drawdown: num("max_drawdown")?,
            turnover: num("turnover")?,
            cost_drag: num("cost_drag")?,
            final_value: num("final_value")?,
        })
    }
}

/// A complete stress-matrix scorecard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scorecard {
    /// Seed the whole matrix ran under.
    pub seed: u64,
    /// Human-readable cost model description (e.g.
    /// `"frictional(c=0.0025, s=0.001)"`).
    pub cost_model: String,
    /// Evaluated cells, in (universe, scenario, strategy) emission order.
    pub cells: Vec<ScorecardCell>,
}

impl Scorecard {
    /// Distinct universe names, in first-seen order.
    pub fn universes(&self) -> Vec<&str> {
        distinct(self.cells.iter().map(|c| c.universe.as_str()))
    }

    /// Distinct scenario names, in first-seen order.
    pub fn scenarios(&self) -> Vec<&str> {
        distinct(self.cells.iter().map(|c| c.scenario.as_str()))
    }

    /// Distinct strategy names, in first-seen order.
    pub fn strategies(&self) -> Vec<&str> {
        distinct(self.cells.iter().map(|c| c.strategy.as_str()))
    }

    /// The cell for an exact (universe, scenario, strategy) triple.
    pub fn cell(&self, universe: &str, scenario: &str, strategy: &str) -> Option<&ScorecardCell> {
        self.cells
            .iter()
            .find(|c| c.universe == universe && c.scenario == scenario && c.strategy == strategy)
    }

    /// Serializes to the `spikefolio.scorecard.v1` document.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("schema".into(), Value::from(SCORECARD_SCHEMA)),
            ("seed".into(), Value::U64(self.seed)),
            ("cost_model".into(), Value::from(self.cost_model.clone())),
            (
                "universes".into(),
                Value::List(self.universes().into_iter().map(Value::from).collect()),
            ),
            (
                "scenarios".into(),
                Value::List(self.scenarios().into_iter().map(Value::from).collect()),
            ),
            (
                "strategies".into(),
                Value::List(self.strategies().into_iter().map(Value::from).collect()),
            ),
            ("cells".into(), Value::List(self.cells.iter().map(ScorecardCell::to_value).collect())),
        ])
    }

    /// Compact JSON of [`to_value`](Self::to_value).
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a `spikefolio.scorecard.v1` JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a wrong/missing schema tag, or
    /// a cell missing required fields.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let v = value::parse(input)?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or_default();
        if schema != SCORECARD_SCHEMA {
            return Err(format!("unsupported scorecard schema {schema:?}"));
        }
        let seed = v.get("seed").and_then(Value::as_u64).ok_or("missing seed")?;
        let cost_model = v.get("cost_model").and_then(Value::as_str).unwrap_or_default().to_owned();
        let cells = v
            .get("cells")
            .and_then(Value::as_list)
            .ok_or("missing cells array")?
            .iter()
            .map(ScorecardCell::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { seed, cost_model, cells })
    }

    /// Renders the matrix as a terminal table, one block per universe ×
    /// scenario, strategies as rows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Stress-suite scorecard  (seed {}, costs: {})\n",
            self.seed, self.cost_model
        ));
        for universe in self.universes() {
            for scenario in self.scenarios() {
                let rows: Vec<&ScorecardCell> = self
                    .cells
                    .iter()
                    .filter(|c| c.universe == universe && c.scenario == scenario)
                    .collect();
                if rows.is_empty() {
                    continue;
                }
                out.push_str(&format!("\n── {universe} × {scenario} ──\n"));
                out.push_str(&format!(
                    "  {:<14} {:>9} {:>8} {:>7} {:>9} {:>9} {:>8}\n",
                    "strategy", "reward", "sharpe", "mdd", "turnover", "costdrag", "value"
                ));
                for c in rows {
                    out.push_str(&format!(
                        "  {:<14} {:>9.4} {:>8.2} {:>6.1}% {:>9.2} {:>8.2}% {:>8.3}\n",
                        c.strategy,
                        c.reward,
                        c.sharpe,
                        c.max_drawdown * 100.0,
                        c.turnover,
                        c.cost_drag * 100.0,
                        c.final_value,
                    ));
                }
            }
        }
        out
    }
}

fn distinct<'a>(items: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    let mut seen = Vec::new();
    for item in items {
        if !seen.contains(&item) {
            seen.push(item);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn sample() -> Scorecard {
        let mut cells = Vec::new();
        for universe in ["crypto", "equity"] {
            for scenario in ["calm", "flash-crash"] {
                for strategy in ["SDP", "DDPG"] {
                    cells.push(ScorecardCell {
                        universe: universe.into(),
                        scenario: scenario.into(),
                        strategy: strategy.into(),
                        reward: 0.12,
                        sharpe: 1.5,
                        max_drawdown: 0.2,
                        turnover: 3.4,
                        cost_drag: 0.011,
                        final_value: 1.13,
                    });
                }
            }
        }
        Scorecard { seed: 42, cost_model: "frictional".into(), cells }
    }

    #[test]
    fn json_round_trips() {
        let s = sample();
        let json = s.to_json();
        assert!(json.starts_with(&format!("{{\"schema\":\"{SCORECARD_SCHEMA}\"")));
        assert_eq!(Scorecard::from_json(&json).unwrap(), s);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn axis_accessors_deduplicate_in_order() {
        let s = sample();
        assert_eq!(s.universes(), vec!["crypto", "equity"]);
        assert_eq!(s.scenarios(), vec!["calm", "flash-crash"]);
        assert_eq!(s.strategies(), vec!["SDP", "DDPG"]);
        assert!(s.cell("crypto", "calm", "DDPG").is_some());
        assert!(s.cell("crypto", "calm", "ONS").is_none());
    }

    #[test]
    fn rejects_wrong_schema_and_malformed_cells() {
        assert!(Scorecard::from_json("{}").is_err());
        assert!(Scorecard::from_json(r#"{"schema":"spikefolio.run.v1"}"#).is_err());
        let missing_field =
            format!(r#"{{"schema":"{SCORECARD_SCHEMA}","seed":1,"cells":[{{"universe":"a"}}]}}"#);
        assert!(Scorecard::from_json(&missing_field).is_err());
        assert!(Scorecard::from_json("not json").is_err());
    }

    #[test]
    fn render_mentions_every_cell_once() {
        let s = sample();
        let text = s.render();
        assert!(text.contains("crypto × flash-crash"));
        assert!(text.contains("equity × calm"));
        assert_eq!(text.matches("SDP").count(), 4, "one SDP row per block");
        assert!(text.contains("seed 42"));
    }
}
