//! Scenario engine substrate for `spikefolio`: named stress overlays on
//! generated markets and the schema-versioned scorecard they feed.
//!
//! The paper backtests on one market (Poloniex crypto, Table 1). This
//! crate widens the evaluation to a *matrix*: parameterized universes
//! (built from [`spikefolio_market::calibration`]) crossed with named
//! stress scenarios, each cell scoring every strategy under realistic
//! frictions ([`spikefolio_env::CostModel::realistic_frictions`]). The
//! matrix runner itself lives in the `spikefolio` core crate (next to the
//! agents it trains); this crate owns the two deterministic, data-level
//! halves:
//!
//! * [`stress`] — the scenario library: deterministic return/volume
//!   overlays ([`Scenario`]) applied to a generated test window,
//! * [`scorecard`] — the `spikefolio.scorecard.v1` report model:
//!   schema-versioned JSON with one row per (universe × scenario ×
//!   strategy) cell, plus a terminal renderer.
//!
//! # Example
//!
//! ```
//! use spikefolio_market::{UniverseGrid, UniverseSpec, MarketClass};
//! use spikefolio_scenario::Scenario;
//!
//! let spec = UniverseSpec::single_class(MarketClass::Crypto, 4, UniverseGrid::smoke());
//! let (_train, test) = spec.generate_split(7);
//! let stressed = Scenario::FlashCrash.apply(&test);
//! assert_eq!(stressed.num_periods(), test.num_periods());
//! // Same seed, same scenario → bitwise-identical overlay.
//! assert_eq!(stressed, Scenario::FlashCrash.apply(&test));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod scorecard;
pub mod stress;

pub use scorecard::{Scorecard, ScorecardCell, SCORECARD_SCHEMA};
pub use stress::Scenario;
