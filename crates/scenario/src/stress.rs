//! The named stress-scenario library: deterministic overlays on a
//! generated market.
//!
//! Each scenario is a pure function of the input data — no RNG — so a
//! scorecard cell replays bitwise under a pinned seed. Overlays work in
//! return/volume space: per-period log returns are scaled and/or shifted,
//! the close path is rebuilt by compounding, and candles are re-chained so
//! the OHLC invariants (`open = previous close`, `low ≤ body ≤ high`)
//! hold by construction. Volume multipliers couple with the frictional
//! cost model's volume-dependent slippage, so a liquidity drought hurts
//! exactly the strategies that trade through it.

use spikefolio_market::{Candle, MarketData};

/// A named stress scenario, applied as a deterministic overlay to the
/// *test* window of a generated universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Control cell: the unmodified generated market.
    Calm,
    /// A sudden deep drop one quarter in, partially retraced over the
    /// following periods, with panic volume.
    FlashCrash,
    /// Traded volume collapses to a tenth for the middle half of the
    /// window; prices are untouched. Only volume-aware cost models feel
    /// this one.
    LiquidityDrought,
    /// Return volatility doubles for the second half of the window — the
    /// regime the agent trained on flips under it.
    VolRegimeFlip,
    /// A correlated grind lower: every asset loses ~4% per period for ten
    /// periods, with elevated volume. Diversification stops working.
    CorrelatedMeltdown,
}

impl Scenario {
    /// Every scenario, in canonical scorecard order (calm control first).
    pub const ALL: [Scenario; 5] = [
        Scenario::Calm,
        Scenario::FlashCrash,
        Scenario::LiquidityDrought,
        Scenario::VolRegimeFlip,
        Scenario::CorrelatedMeltdown,
    ];

    /// Stable kebab-case identifier used in CLI flags and scorecard JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Calm => "calm",
            Scenario::FlashCrash => "flash-crash",
            Scenario::LiquidityDrought => "liquidity-drought",
            Scenario::VolRegimeFlip => "vol-regime-flip",
            Scenario::CorrelatedMeltdown => "correlated-meltdown",
        }
    }

    /// Parses a [`name`](Self::name) back to the scenario.
    pub fn from_name(name: &str) -> Option<Scenario> {
        Scenario::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// One-line description for reports.
    pub fn description(&self) -> &'static str {
        match self {
            Scenario::Calm => "unmodified generated market (control)",
            Scenario::FlashCrash => "deep sudden drop with partial recovery and panic volume",
            Scenario::LiquidityDrought => "volume collapses to 10% for the middle half",
            Scenario::VolRegimeFlip => "return volatility doubles in the second half",
            Scenario::CorrelatedMeltdown => "all assets grind down together for ten periods",
        }
    }

    /// Applies the overlay, returning the stressed copy of `data`.
    ///
    /// Deterministic: equal inputs give bitwise-equal outputs. The
    /// [`Calm`](Scenario::Calm) control returns an exact clone.
    pub fn apply(&self, data: &MarketData) -> MarketData {
        let n = data.num_periods();
        match self {
            Scenario::Calm => data.clone(),
            Scenario::FlashCrash => {
                let t0 = n / 4;
                overlay(data, |t| {
                    if t == t0 {
                        (1.0, -0.25, 5.0)
                    } else if t > t0 && t <= t0 + 5 {
                        // Partial retrace: half the shock comes back.
                        (1.0, 0.025, 5.0)
                    } else {
                        identity(t)
                    }
                })
            }
            Scenario::LiquidityDrought => overlay(data, |t| {
                if (n / 4..3 * n / 4).contains(&t) {
                    (1.0, 0.0, 0.1)
                } else {
                    identity(t)
                }
            }),
            Scenario::VolRegimeFlip => {
                overlay(data, |t| if t >= n / 2 { (2.0, 0.0, 1.5) } else { identity(t) })
            }
            Scenario::CorrelatedMeltdown => {
                let t0 = n / 3;
                overlay(data, |t| {
                    if (t0..(t0 + 10).min(n)).contains(&t) {
                        (1.0, -0.04, 3.0)
                    } else {
                        identity(t)
                    }
                })
            }
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The no-op overlay tuple `(return scale, log-return shift, volume
/// scale)`.
fn identity(_t: usize) -> (f64, f64, f64) {
    (1.0, 0.0, 1.0)
}

/// Rebuilds `data` with per-period overlays.
///
/// `f(t)` returns `(ret_scale, ret_shift, vol_scale)`: the period-`t` log
/// return of every asset becomes `ret_scale · r + ret_shift`, and its
/// volume is multiplied by `vol_scale`. Closes are re-compounded from the
/// original starting open; opens re-chain to the previous close; high/low
/// scale with the close and are widened just enough to contain the new
/// body.
fn overlay(data: &MarketData, f: impl Fn(usize) -> (f64, f64, f64)) -> MarketData {
    let n = data.num_periods();
    let m = data.num_assets();
    let mut out = data.clone();
    for a in 0..m {
        let mut prev_old = data.candle(0, a).open;
        let mut prev_new = prev_old;
        for t in 0..n {
            let c = data.candle(t, a);
            let (scale, shift, vol_scale) = f(t);
            let r = (c.close / prev_old).ln();
            let close = prev_new * (scale * r + shift).exp();
            let open = prev_new;
            // Keep the candle's wick proportions relative to its close.
            let ratio = close / c.close;
            let high = (c.high * ratio).max(open.max(close));
            let low = (c.low * ratio).min(open.min(close));
            out.set_candle_unchecked(
                t,
                a,
                Candle::new(open, high, low, close, c.volume * vol_scale),
            );
            prev_old = c.close;
            prev_new = close;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_market::{MarketClass, UniverseGrid, UniverseSpec};

    fn test_window() -> MarketData {
        let spec = UniverseSpec::single_class(MarketClass::Crypto, 4, UniverseGrid::smoke());
        spec.generate_split(11).1
    }

    fn candles_are_valid(d: &MarketData) {
        for t in 0..d.num_periods() {
            for a in 0..d.num_assets() {
                let c = d.candle(t, a);
                assert!(c.open > 0.0 && c.close > 0.0, "({t},{a}) non-positive body");
                assert!(c.low <= c.open.min(c.close) + 1e-12, "({t},{a}) low above body");
                assert!(c.high >= c.open.max(c.close) - 1e-12, "({t},{a}) high below body");
                assert!(c.volume >= 0.0 && c.volume.is_finite(), "({t},{a}) bad volume");
                if t > 0 {
                    assert!(
                        (c.open - d.candle(t - 1, a).close).abs() < 1e-9,
                        "({t},{a}) open does not chain to previous close"
                    );
                }
            }
        }
    }

    #[test]
    fn names_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in Scenario::ALL {
            assert_eq!(Scenario::from_name(s.name()), Some(s));
            assert!(seen.insert(s.name()), "duplicate name {}", s.name());
            assert!(!s.description().is_empty());
        }
        assert_eq!(Scenario::from_name("no-such-thing"), None);
    }

    #[test]
    fn calm_is_the_identity() {
        let d = test_window();
        assert_eq!(Scenario::Calm.apply(&d), d);
    }

    #[test]
    fn overlays_are_deterministic_and_keep_invariants() {
        let d = test_window();
        for s in Scenario::ALL {
            let x = s.apply(&d);
            assert_eq!(x, s.apply(&d), "{s} is not deterministic");
            assert_eq!(x.num_periods(), d.num_periods());
            assert_eq!(x.num_assets(), d.num_assets());
            candles_are_valid(&x);
        }
    }

    #[test]
    fn flash_crash_dents_the_price_path() {
        let d = test_window();
        let x = Scenario::FlashCrash.apply(&d);
        let t0 = d.num_periods() / 4;
        for a in 0..d.num_assets() {
            let before = d.price_relatives(t0)[a];
            let after = x.price_relatives(t0)[a];
            assert!(after < before * 0.85, "asset {a}: crash relative {after} vs {before}");
        }
        // Panic volume during the crash window.
        assert!(x.candle(t0, 0).volume > d.candle(t0, 0).volume * 4.0);
    }

    #[test]
    fn liquidity_drought_touches_only_volume() {
        let d = test_window();
        let x = Scenario::LiquidityDrought.apply(&d);
        let mid = d.num_periods() / 2;
        for a in 0..d.num_assets() {
            assert!((x.close(mid, a) - d.close(mid, a)).abs() < 1e-9, "price moved");
            let (vd, vo) = (x.candle(mid, a).volume, d.candle(mid, a).volume);
            assert!((vd - vo * 0.1).abs() < 1e-9 * vo.max(1.0), "volume not collapsed");
        }
        // Outside the drought window, volume is untouched.
        assert_eq!(x.candle(0, 0).volume, d.candle(0, 0).volume);
    }

    #[test]
    fn vol_flip_amplifies_second_half_swings() {
        let d = test_window();
        let x = Scenario::VolRegimeFlip.apply(&d);
        let n = d.num_periods();
        let sum_abs = |data: &MarketData, from: usize, to: usize| -> f64 {
            (from..to).map(|t| data.log_return(t, 0).abs()).sum()
        };
        let first = sum_abs(&x, 1, n / 2);
        let first_orig = sum_abs(&d, 1, n / 2);
        let second = sum_abs(&x, n / 2, n);
        let second_orig = sum_abs(&d, n / 2, n);
        assert!((first - first_orig).abs() < 1e-9, "first half should be untouched");
        assert!((second - 2.0 * second_orig).abs() < 1e-6, "second half should double");
    }

    #[test]
    fn meltdown_drags_every_asset_down_together() {
        let d = test_window();
        let x = Scenario::CorrelatedMeltdown.apply(&d);
        let t0 = d.num_periods() / 3;
        for a in 0..d.num_assets() {
            let window: f64 = (t0..t0 + 10).map(|t| x.log_return(t, a) - d.log_return(t, a)).sum();
            assert!((window + 0.4).abs() < 1e-9, "asset {a} shift {window} != -0.40");
        }
    }
}
