//! 1-D valid convolution with manual backprop — the building block of the
//! EIIE policy (Jiang et al.'s actual network).

use rand::Rng;
use spikefolio_tensor::init::Init;
use spikefolio_tensor::Matrix;

/// A 1-D convolution layer over `in_channels × length` inputs with a
/// kernel of width `kernel`, producing `out_channels × (length − kernel + 1)`
/// ("valid" padding).
///
/// Weights are stored as a `out_channels × (in_channels · kernel)` matrix;
/// input/output sequences as `channels × length` matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv1d {
    /// Kernel weights, `out_channels × (in_channels · kernel)`.
    pub weights: Matrix,
    /// Per-output-channel bias.
    pub bias: Vec<f64>,
    in_channels: usize,
    kernel: usize,
}

/// Gradients of a [`Conv1d`] layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv1dGradients {
    /// `∂L/∂W`.
    pub d_weights: Matrix,
    /// `∂L/∂b`.
    pub d_bias: Vec<f64>,
}

impl Conv1d {
    /// Xavier-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0, "conv dims must be positive");
        Self {
            weights: Init::XavierUniform.matrix(out_channels, in_channels * kernel, rng),
            bias: vec![0.0; out_channels],
            in_channels,
            kernel,
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weights.rows()
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output length for an input of `length`.
    ///
    /// # Panics
    ///
    /// Panics if `length < kernel`.
    pub fn out_len(&self, length: usize) -> usize {
        assert!(length >= self.kernel, "input length {length} shorter than kernel {}", self.kernel);
        length - self.kernel + 1
    }

    /// Forward pass: `input` is `in_channels × length`, output is
    /// `out_channels × out_len(length)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        assert_eq!(input.rows(), self.in_channels, "input channel mismatch");
        let out_len = self.out_len(input.cols());
        let mut out = Matrix::zeros(self.out_channels(), out_len);
        for oc in 0..self.out_channels() {
            let w = self.weights.row(oc);
            for pos in 0..out_len {
                let mut acc = self.bias[oc];
                for ic in 0..self.in_channels {
                    let row = input.row(ic);
                    let wbase = ic * self.kernel;
                    for k in 0..self.kernel {
                        acc += w[wbase + k] * row[pos + k];
                    }
                }
                out[(oc, pos)] = acc;
            }
        }
        out
    }

    /// Backward pass: given the forward `input` and upstream gradient
    /// `d_out` (`out_channels × out_len`), returns `(gradients, d_input)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn backward(&self, input: &Matrix, d_out: &Matrix) -> (Conv1dGradients, Matrix) {
        assert_eq!(input.rows(), self.in_channels, "input channel mismatch");
        let out_len = self.out_len(input.cols());
        assert_eq!(d_out.shape(), (self.out_channels(), out_len), "d_out shape mismatch");

        let mut d_weights = Matrix::zeros(self.out_channels(), self.in_channels * self.kernel);
        let mut d_bias = vec![0.0; self.out_channels()];
        let mut d_input = Matrix::zeros(self.in_channels, input.cols());
        for oc in 0..self.out_channels() {
            let w = self.weights.row(oc).to_vec();
            for pos in 0..out_len {
                let g = d_out[(oc, pos)];
                if g == 0.0 {
                    continue;
                }
                d_bias[oc] += g;
                for ic in 0..self.in_channels {
                    let wbase = ic * self.kernel;
                    for k in 0..self.kernel {
                        d_weights[(oc, wbase + k)] += g * input[(ic, pos + k)];
                        d_input[(ic, pos + k)] += g * w[wbase + k];
                    }
                }
            }
        }
        (Conv1dGradients { d_weights, d_bias }, d_input)
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(6)
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut c = Conv1d::new(1, 1, 1, &mut rng());
        c.weights = Matrix::from_rows(&[&[1.0]]);
        c.bias = vec![0.0];
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        assert_eq!(c.forward(&x), x);
    }

    #[test]
    fn known_convolution() {
        // Moving sum with kernel [1, 1] over [1, 2, 3, 4] → [3, 5, 7].
        let mut c = Conv1d::new(1, 1, 2, &mut rng());
        c.weights = Matrix::from_rows(&[&[1.0, 1.0]]);
        c.bias = vec![0.0];
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        assert_eq!(c.forward(&x), Matrix::from_rows(&[&[3.0, 5.0, 7.0]]));
    }

    #[test]
    fn multi_channel_shapes() {
        let c = Conv1d::new(3, 5, 4, &mut rng());
        let x = Matrix::zeros(3, 10);
        let y = c.forward(&x);
        assert_eq!(y.shape(), (5, 7));
        assert_eq!(c.num_params(), 5 * 12 + 5);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let c = Conv1d::new(2, 3, 3, &mut rng());
        let x = Matrix::from_fn(2, 6, |r, cc| 0.3 * (r as f64 + 1.0) * ((cc as f64) - 2.5));
        // Loss = Σ coeff ⊙ y.
        let coeff = Matrix::from_fn(3, 4, |r, cc| ((r * 4 + cc) as f64 * 0.17).sin());
        let y = c.forward(&x);
        let (grads, dx) = c.backward(&x, &coeff);
        let loss = |cc: &Conv1d, xx: &Matrix| -> f64 {
            cc.forward(xx).as_slice().iter().zip(coeff.as_slice()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-6;
        // Weight gradients.
        for i in 0..c.weights.len() {
            let mut cp = c.clone();
            cp.weights.as_mut_slice()[i] += eps;
            let mut cm = c.clone();
            cm.weights.as_mut_slice()[i] -= eps;
            let num = (loss(&cp, &x) - loss(&cm, &x)) / (2.0 * eps);
            assert!((grads.d_weights.as_slice()[i] - num).abs() < 1e-6, "weight {i}");
        }
        // Bias gradients.
        for i in 0..3 {
            let mut cp = c.clone();
            cp.bias[i] += eps;
            let mut cm = c.clone();
            cm.bias[i] -= eps;
            let num = (loss(&cp, &x) - loss(&cm, &x)) / (2.0 * eps);
            assert!((grads.d_bias[i] - num).abs() < 1e-6, "bias {i}");
        }
        // Input gradients.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&c, &xp) - loss(&c, &xm)) / (2.0 * eps);
            assert!((dx.as_slice()[i] - num).abs() < 1e-6, "input {i}");
        }
        let _ = y;
    }

    #[test]
    #[should_panic(expected = "shorter than kernel")]
    fn too_short_input_panics() {
        let c = Conv1d::new(1, 1, 5, &mut rng());
        let _ = c.forward(&Matrix::zeros(1, 3));
    }
}
