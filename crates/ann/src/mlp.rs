//! Multi-layer perceptron with a softmax policy head — the DRL\[Jiang\]
//! baseline's network.

use crate::activation::Activation;
use crate::linear::{Linear, LinearGradients};
use rand::Rng;
use spikefolio_tensor::ops::{softmax, softmax_backward};
use spikefolio_tensor::optim::{Optimizer, ParamSlot};
use spikefolio_tensor::vector;

/// A dense policy network: linear layers with a pointwise activation
/// between them and a softmax on the final output, so the action always
/// lies on the probability simplex (matching the SDP decoder's output
/// space).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

/// Forward trace for backprop: pre-activations and activations per layer.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpTrace {
    /// Layer inputs, `layers.len() + 1` entries (last is pre-softmax
    /// activations... see `forward`).
    inputs: Vec<Vec<f64>>,
    /// Pre-activation outputs per layer.
    pre_activations: Vec<Vec<f64>>,
    /// Softmax output.
    action: Vec<f64>,
}

impl MlpTrace {
    /// The action (softmax output) of the recorded forward pass.
    pub fn action(&self) -> &[f64] {
        &self.action
    }
}

/// Gradients for every layer of an [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpGradients {
    /// Per-layer gradients, input-side first.
    pub layers: Vec<LinearGradients>,
}

impl MlpGradients {
    /// Accumulates `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, other: &MlpGradients) {
        assert_eq!(self.layers.len(), other.layers.len(), "layer count mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.d_weights.add_scaled(1.0, &b.d_weights);
            vector::axpy(&mut a.d_bias, 1.0, &b.d_bias);
        }
    }

    /// Scales all gradients by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for l in &mut self.layers {
            l.d_weights.scale(alpha);
            l.d_bias.iter_mut().for_each(|g| *g *= alpha);
        }
    }

    /// Global L2 norm.
    pub fn global_norm(&self) -> f64 {
        let mut sq = 0.0;
        for l in &self.layers {
            sq += l.d_weights.as_slice().iter().map(|g| g * g).sum::<f64>();
            sq += l.d_bias.iter().map(|g| g * g).sum::<f64>();
        }
        sq.sqrt()
    }

    /// Clips the global norm to `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f64) {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
        }
    }
}

impl Mlp {
    /// Builds an MLP with the given layer `dims` (e.g. `&[64, 128, 12]`:
    /// 64 inputs, one hidden layer of 128, 12 actions).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given or any is zero.
    pub fn new<R: Rng + ?Sized>(dims: &[usize], activation: Activation, rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "dims must be positive");
        let layers = dims.windows(2).map(|w| Linear::new(w[0], w[1], rng)).collect();
        Self { layers, activation }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Action dimension.
    pub fn action_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// Borrow the layers (read-only; used by the device energy models to
    /// count FLOPs).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Forward pass with trace.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != in_dim()`.
    pub fn forward(&self, state: &[f64]) -> MlpTrace {
        let mut inputs = vec![state.to_vec()];
        let mut pre_activations = Vec::with_capacity(self.layers.len());
        let mut x = state.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&x);
            pre_activations.push(z.clone());
            x = if i + 1 < self.layers.len() { self.activation.apply_vec(&z) } else { z };
            inputs.push(x.clone());
        }
        let action = softmax(&x);
        MlpTrace { inputs, pre_activations, action }
    }

    /// Inference: the action vector (softmax output).
    pub fn act(&self, state: &[f64]) -> Vec<f64> {
        self.forward(state).action
    }

    /// Backward pass from `∂L/∂action`.
    ///
    /// # Panics
    ///
    /// Panics if `d_action.len() != action_dim()` or the trace shape is
    /// inconsistent.
    pub fn backward(&self, trace: &MlpTrace, d_action: &[f64]) -> MlpGradients {
        assert_eq!(d_action.len(), self.action_dim(), "d_action length mismatch");
        let mut dy = softmax_backward(&trace.action, d_action);
        let mut grads: Vec<Option<LinearGradients>> = vec![None; self.layers.len()];
        for (i, layer) in self.layers.iter().enumerate().rev() {
            // Through the activation (not applied after the last layer).
            if i + 1 < self.layers.len() {
                for (d, &z) in dy.iter_mut().zip(&trace.pre_activations[i]) {
                    *d *= self.activation.grad(z);
                }
            }
            let (g, dx) = layer.backward(&trace.inputs[i], &dy);
            grads[i] = Some(g);
            dy = dx;
        }
        MlpGradients { layers: grads.into_iter().map(|g| g.expect("all layers visited")).collect() }
    }

    /// Flattens all parameters (diagnostic/test helper).
    pub fn flat_params(&self) -> Vec<f64> {
        let mut v = Vec::new();
        for l in &self.layers {
            v.extend_from_slice(l.weights.as_slice());
            v.extend_from_slice(&l.bias);
        }
        v
    }

    /// Restores parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if the length doesn't match.
    pub fn set_flat_params(&mut self, flat: &[f64]) {
        let mut idx = 0;
        for l in &mut self.layers {
            let wlen = l.weights.len();
            l.weights.as_mut_slice().copy_from_slice(&flat[idx..idx + wlen]);
            idx += wlen;
            let blen = l.bias.len();
            l.bias.copy_from_slice(&flat[idx..idx + blen]);
            idx += blen;
        }
        assert_eq!(idx, flat.len(), "flat parameter vector has wrong length");
    }
}

/// Trainer pairing an [`Mlp`] with an optimizer.
#[derive(Debug)]
pub struct MlpTrainer<O: Optimizer> {
    optimizer: O,
    weight_slots: Vec<ParamSlot>,
    bias_slots: Vec<ParamSlot>,
    /// Optional global-norm gradient clip.
    pub max_grad_norm: Option<f64>,
}

impl<O: Optimizer> MlpTrainer<O> {
    /// Registers `net`'s parameters with `optimizer`.
    pub fn new(net: &Mlp, mut optimizer: O) -> Self {
        let weight_slots = net.layers.iter().map(|l| optimizer.register(l.weights.len())).collect();
        let bias_slots = net.layers.iter().map(|l| optimizer.register(l.bias.len())).collect();
        Self { optimizer, weight_slots, bias_slots, max_grad_norm: Some(10.0) }
    }

    /// Applies one descent step.
    ///
    /// # Panics
    ///
    /// Panics if `grads` doesn't match the network shape.
    pub fn apply(&mut self, net: &mut Mlp, grads: &MlpGradients) {
        let mut grads = grads.clone();
        if let Some(max) = self.max_grad_norm {
            grads.clip_global_norm(max);
        }
        for (i, g) in grads.layers.iter().enumerate() {
            self.optimizer.step(
                self.weight_slots[i],
                net.layers[i].weights.as_mut_slice(),
                g.d_weights.as_slice(),
            );
            self.optimizer.step(self.bias_slots[i], &mut net.layers[i].bias, &g.d_bias);
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.optimizer.learning_rate()
    }

    /// Adjusts the learning rate.
    pub fn set_learning_rate(&mut self, lr: f64) {
        self.optimizer.set_learning_rate(lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spikefolio_tensor::optim::Adam;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(8)
    }

    fn net() -> Mlp {
        Mlp::new(&[4, 6, 3], Activation::Tanh, &mut rng())
    }

    #[test]
    fn action_is_on_simplex() {
        let n = net();
        let a = n.act(&[1.0, -0.5, 0.3, 2.0]);
        assert!(spikefolio_tensor::simplex::is_on_simplex(&a, 1e-12));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let n = net();
        let state = [0.4, -0.2, 1.1, 0.7];
        let c = [1.0, -0.5, 2.0];
        let trace = n.forward(&state);
        let grads = n.backward(&trace, &c);
        // Flatten analytic gradients in parameter order.
        let mut analytic = Vec::new();
        for g in &grads.layers {
            analytic.extend_from_slice(g.d_weights.as_slice());
            analytic.extend_from_slice(&g.d_bias);
        }
        let params = n.flat_params();
        let loss = |nn: &Mlp| -> f64 { nn.act(&state).iter().zip(&c).map(|(a, b)| a * b).sum() };
        let eps = 1e-6;
        for i in 0..params.len() {
            let mut pp = params.clone();
            pp[i] += eps;
            let mut np = n.clone();
            np.set_flat_params(&pp);
            let mut pm = params.clone();
            pm[i] -= eps;
            let mut nm = n.clone();
            nm.set_flat_params(&pm);
            let num = (loss(&np) - loss(&nm)) / (2.0 * eps);
            assert!((analytic[i] - num).abs() < 1e-6, "param {i}: {} vs {num}", analytic[i]);
        }
    }

    #[test]
    fn relu_and_leaky_networks_also_check_out() {
        for act in [Activation::Relu, Activation::LeakyRelu, Activation::Identity] {
            let n = Mlp::new(&[3, 5, 2], act, &mut rng());
            let state = [0.9, 0.4, -0.6];
            let c = [1.5, -1.0];
            let trace = n.forward(&state);
            let grads = n.backward(&trace, &c);
            let mut analytic = Vec::new();
            for g in &grads.layers {
                analytic.extend_from_slice(g.d_weights.as_slice());
                analytic.extend_from_slice(&g.d_bias);
            }
            let params = n.flat_params();
            let loss =
                |nn: &Mlp| -> f64 { nn.act(&state).iter().zip(&c).map(|(a, b)| a * b).sum() };
            let eps = 1e-6;
            // Spot-check a spread (ReLU kinks make exact checks flaky only
            // exactly at 0, which random inputs avoid almost surely).
            for i in (0..params.len()).step_by(3) {
                let mut pp = params.clone();
                pp[i] += eps;
                let mut np = n.clone();
                np.set_flat_params(&pp);
                let mut pm = params.clone();
                pm[i] -= eps;
                let mut nm = n.clone();
                nm.set_flat_params(&pm);
                let num = (loss(&np) - loss(&nm)) / (2.0 * eps);
                assert!((analytic[i] - num).abs() < 1e-5, "{act:?} param {i}");
            }
        }
    }

    #[test]
    fn training_moves_action_toward_target() {
        let mut n = net();
        let state = [1.0, 1.0, 1.0, 1.0];
        let before = n.act(&state)[2];
        let mut trainer = MlpTrainer::new(&n, Adam::new(1e-2));
        for _ in 0..100 {
            let trace = n.forward(&state);
            let grads = n.backward(&trace, &[0.0, 0.0, -1.0]);
            trainer.apply(&mut n, &grads);
        }
        let after = n.act(&state)[2];
        assert!(after > before + 0.1, "a[2] went {before} → {after}");
    }

    #[test]
    fn accumulate_scale_roundtrip() {
        let n = net();
        let trace = n.forward(&[0.1, 0.2, 0.3, 0.4]);
        let g = n.backward(&trace, &[1.0, 0.0, -1.0]);
        let mut acc = n.backward(&trace, &[0.0, 0.0, 0.0]);
        acc.accumulate(&g);
        acc.accumulate(&g);
        acc.scale(0.5);
        for (a, b) in acc.layers.iter().zip(&g.layers) {
            for (x, y) in a.d_weights.as_slice().iter().zip(b.d_weights.as_slice()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dims_and_depth() {
        let n = net();
        assert_eq!(n.in_dim(), 4);
        assert_eq!(n.action_dim(), 3);
        assert_eq!(n.depth(), 2);
        assert_eq!(n.num_params(), 4 * 6 + 6 + 6 * 3 + 3);
    }

    #[test]
    fn flat_param_roundtrip() {
        let n = net();
        let flat = n.flat_params();
        let mut n2 = Mlp::new(&[4, 6, 3], Activation::Tanh, &mut rng());
        n2.set_flat_params(&flat);
        assert_eq!(n2.flat_params(), flat);
    }
}
