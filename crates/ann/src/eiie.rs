//! EIIE: the *Ensemble of Identical Independent Evaluators* policy of
//! Jiang, Xu & Liang (2017) — the reference DRL\[Jiang\] architecture.
//!
//! Each asset's price window is scored by the **same** small convolutional
//! network (weight sharing across assets), the previous portfolio weight is
//! appended before the final scoring layer, and a learned cash bias joins
//! the softmax:
//!
//! ```text
//! per asset:   (channels × window) ──conv1+ReLU──► (c1 × window−k+1)
//!              ──conv2+ReLU──► (c2 × 1) ──[⊕ prev weight]──► score
//! portfolio:   softmax(cash_bias, score_1, …, score_m)
//! ```

use crate::conv::{Conv1d, Conv1dGradients};
use rand::Rng;
use spikefolio_tensor::ops::{softmax, softmax_backward};
use spikefolio_tensor::optim::{Optimizer, ParamSlot};
use spikefolio_tensor::{vector, Matrix};

/// Shape of an EIIE network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EiieConfig {
    /// Price channels per asset (3 without, 4 with the open price).
    pub channels: usize,
    /// Observation window length.
    pub window: usize,
    /// First convolution's output channels (Jiang uses 2).
    pub conv1_channels: usize,
    /// First convolution's kernel width (Jiang uses 3).
    pub conv1_kernel: usize,
    /// Second convolution's output channels (Jiang uses 20).
    pub conv2_channels: usize,
}

impl EiieConfig {
    /// Jiang's published EIIE hyperparameters for a given input shape.
    pub fn jiang(channels: usize, window: usize) -> Self {
        Self {
            channels,
            window,
            conv1_channels: 2,
            conv1_kernel: 3.min(window),
            conv2_channels: 20,
        }
    }

    /// Validates the shape.
    ///
    /// # Errors
    ///
    /// Returns a message if any dimension is zero or the kernel exceeds
    /// the window.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.window == 0 {
            return Err("channels and window must be positive".into());
        }
        if self.conv1_channels == 0 || self.conv2_channels == 0 || self.conv1_kernel == 0 {
            return Err("conv dims must be positive".into());
        }
        if self.conv1_kernel > self.window {
            return Err(format!(
                "conv1 kernel {} exceeds window {}",
                self.conv1_kernel, self.window
            ));
        }
        Ok(())
    }
}

/// The EIIE policy network. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct Eiie {
    config: EiieConfig,
    conv1: Conv1d,
    conv2: Conv1d,
    /// Final scoring weights over `[z2(c2); prev_weight]`.
    head: Vec<f64>,
    head_bias: f64,
    cash_bias: f64,
}

/// Per-asset forward intermediates.
#[derive(Debug, Clone, PartialEq)]
struct AssetTrace {
    input: Matrix,
    pre1: Matrix,
    act1: Matrix,
    pre2: Matrix,
    z2: Vec<f64>,
    prev_weight: f64,
}

/// Forward trace of an EIIE evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EiieTrace {
    assets: Vec<AssetTrace>,
    action: Vec<f64>,
}

impl EiieTrace {
    /// The softmax action (cash first).
    pub fn action(&self) -> &[f64] {
        &self.action
    }
}

/// Gradients of every EIIE parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct EiieGradients {
    /// Shared first-convolution gradients (summed across assets).
    pub conv1: Conv1dGradients,
    /// Shared second-convolution gradients.
    pub conv2: Conv1dGradients,
    /// Scoring-head gradients.
    pub d_head: Vec<f64>,
    /// Scoring-head bias gradient.
    pub d_head_bias: f64,
    /// Cash-bias gradient.
    pub d_cash_bias: f64,
}

impl EiieGradients {
    /// Accumulates `other` into `self`.
    pub fn accumulate(&mut self, other: &EiieGradients) {
        self.conv1.d_weights.add_scaled(1.0, &other.conv1.d_weights);
        vector::axpy(&mut self.conv1.d_bias, 1.0, &other.conv1.d_bias);
        self.conv2.d_weights.add_scaled(1.0, &other.conv2.d_weights);
        vector::axpy(&mut self.conv2.d_bias, 1.0, &other.conv2.d_bias);
        vector::axpy(&mut self.d_head, 1.0, &other.d_head);
        self.d_head_bias += other.d_head_bias;
        self.d_cash_bias += other.d_cash_bias;
    }

    /// Scales every gradient by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        self.conv1.d_weights.scale(alpha);
        self.conv1.d_bias.iter_mut().for_each(|g| *g *= alpha);
        self.conv2.d_weights.scale(alpha);
        self.conv2.d_bias.iter_mut().for_each(|g| *g *= alpha);
        self.d_head.iter_mut().for_each(|g| *g *= alpha);
        self.d_head_bias *= alpha;
        self.d_cash_bias *= alpha;
    }

    /// Global L2 norm over every parameter gradient.
    pub fn global_norm(&self) -> f64 {
        let mut sq = 0.0;
        for conv in [&self.conv1, &self.conv2] {
            sq += conv.d_weights.as_slice().iter().map(|g| g * g).sum::<f64>();
            sq += conv.d_bias.iter().map(|g| g * g).sum::<f64>();
        }
        sq += self.d_head.iter().map(|g| g * g).sum::<f64>();
        sq += self.d_head_bias * self.d_head_bias;
        sq += self.d_cash_bias * self.d_cash_bias;
        sq.sqrt()
    }
}

fn relu(m: &Matrix) -> Matrix {
    m.map(|x| x.max(0.0))
}

impl Eiie {
    /// Builds an EIIE network.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new<R: Rng + ?Sized>(config: EiieConfig, rng: &mut R) -> Self {
        config.validate().expect("invalid EIIE configuration");
        let conv1 = Conv1d::new(config.channels, config.conv1_channels, config.conv1_kernel, rng);
        let len1 = config.window - config.conv1_kernel + 1;
        let conv2 = Conv1d::new(config.conv1_channels, config.conv2_channels, len1, rng);
        let head: Vec<f64> =
            (0..config.conv2_channels + 1).map(|_| rng.gen_range(-0.1..0.1)).collect();
        Self { config, conv1, conv2, head, head_bias: 0.0, cash_bias: 0.0 }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &EiieConfig {
        &self.config
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.conv1.num_params() + self.conv2.num_params() + self.head.len() + 2
    }

    /// Score one asset; returns the trace.
    fn eval_asset(&self, input: Matrix, prev_weight: f64) -> (f64, AssetTrace) {
        let pre1 = self.conv1.forward(&input);
        let act1 = relu(&pre1);
        let pre2 = self.conv2.forward(&act1);
        let z2: Vec<f64> = pre2.as_slice().iter().map(|&x| x.max(0.0)).collect();
        let mut score = self.head_bias + self.head[self.head.len() - 1] * prev_weight;
        for (w, z) in self.head.iter().zip(&z2) {
            score += w * z;
        }
        (score, AssetTrace { input, pre1, act1, pre2, z2, prev_weight })
    }

    /// Forward pass.
    ///
    /// `assets[a]` is the `channels × window` price window of asset `a`;
    /// `prev_weights` is the previous portfolio vector (cash first,
    /// `assets.len() + 1` long).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward(&self, assets: &[Matrix], prev_weights: &[f64]) -> EiieTrace {
        assert!(!assets.is_empty(), "need at least one asset");
        assert_eq!(prev_weights.len(), assets.len() + 1, "prev_weights length mismatch");
        let mut scores = Vec::with_capacity(assets.len() + 1);
        scores.push(self.cash_bias);
        let mut traces = Vec::with_capacity(assets.len());
        for (a, input) in assets.iter().enumerate() {
            assert_eq!(
                input.shape(),
                (self.config.channels, self.config.window),
                "asset {a} window shape mismatch"
            );
            let (score, tr) = self.eval_asset(input.clone(), prev_weights[a + 1]);
            scores.push(score);
            traces.push(tr);
        }
        EiieTrace { assets: traces, action: softmax(&scores) }
    }

    /// Inference only.
    pub fn act(&self, assets: &[Matrix], prev_weights: &[f64]) -> Vec<f64> {
        self.forward(assets, prev_weights).action
    }

    /// Backward pass from `∂L/∂action`.
    ///
    /// # Panics
    ///
    /// Panics if `d_action.len() != trace.action.len()`.
    pub fn backward(&self, trace: &EiieTrace, d_action: &[f64]) -> EiieGradients {
        let dz = softmax_backward(&trace.action, d_action);
        let c2 = self.config.conv2_channels;
        let mut grads = EiieGradients {
            conv1: Conv1dGradients {
                d_weights: Matrix::zeros(self.conv1.out_channels(), self.conv1.weights.cols()),
                d_bias: vec![0.0; self.conv1.out_channels()],
            },
            conv2: Conv1dGradients {
                d_weights: Matrix::zeros(self.conv2.out_channels(), self.conv2.weights.cols()),
                d_bias: vec![0.0; self.conv2.out_channels()],
            },
            d_head: vec![0.0; self.head.len()],
            d_head_bias: 0.0,
            d_cash_bias: dz[0],
        };
        for (a, at) in trace.assets.iter().enumerate() {
            let ds = dz[a + 1];
            if ds == 0.0 {
                continue;
            }
            grads.d_head_bias += ds;
            for (g, z) in grads.d_head.iter_mut().zip(&at.z2) {
                *g += ds * z;
            }
            grads.d_head[c2] += ds * at.prev_weight;
            // Back through the z2 ReLU into conv2.
            let mut d_pre2 = Matrix::zeros(at.pre2.rows(), at.pre2.cols());
            for (i, (&z, g)) in
                at.pre2.as_slice().iter().zip(d_pre2.as_mut_slice().iter_mut()).enumerate()
            {
                if z > 0.0 {
                    *g = ds * self.head[i];
                }
            }
            let (g2, d_act1) = self.conv2.backward(&at.act1, &d_pre2);
            grads.conv2.d_weights.add_scaled(1.0, &g2.d_weights);
            vector::axpy(&mut grads.conv2.d_bias, 1.0, &g2.d_bias);
            // Back through the first ReLU into conv1.
            let mut d_pre1 = d_act1;
            for (g, &z) in d_pre1.as_mut_slice().iter_mut().zip(at.pre1.as_slice()) {
                if z <= 0.0 {
                    *g = 0.0;
                }
            }
            let (g1, _) = self.conv1.backward(&at.input, &d_pre1);
            grads.conv1.d_weights.add_scaled(1.0, &g1.d_weights);
            vector::axpy(&mut grads.conv1.d_bias, 1.0, &g1.d_bias);
        }
        grads
    }

    /// Flattens all parameters (test helper; order matches
    /// [`set_flat_params`](Self::set_flat_params)).
    pub fn flat_params(&self) -> Vec<f64> {
        let mut v = Vec::new();
        v.extend_from_slice(self.conv1.weights.as_slice());
        v.extend_from_slice(&self.conv1.bias);
        v.extend_from_slice(self.conv2.weights.as_slice());
        v.extend_from_slice(&self.conv2.bias);
        v.extend_from_slice(&self.head);
        v.push(self.head_bias);
        v.push(self.cash_bias);
        v
    }

    /// Restores parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if the length doesn't match.
    pub fn set_flat_params(&mut self, flat: &[f64]) {
        let mut idx = 0;
        let mut take = |n: usize| {
            let s = &flat[idx..idx + n];
            idx += n;
            s.to_vec()
        };
        let w1 = take(self.conv1.weights.len());
        self.conv1.weights.as_mut_slice().copy_from_slice(&w1);
        self.conv1.bias = take(self.conv1.bias.len());
        let w2 = take(self.conv2.weights.len());
        self.conv2.weights.as_mut_slice().copy_from_slice(&w2);
        self.conv2.bias = take(self.conv2.bias.len());
        self.head = take(self.head.len());
        self.head_bias = take(1)[0];
        self.cash_bias = take(1)[0];
        assert_eq!(idx, flat.len(), "flat parameter vector has wrong length");
    }

    /// Flattens gradients in parameter order (test helper).
    pub fn flat_grads(grads: &EiieGradients) -> Vec<f64> {
        let mut v = Vec::new();
        v.extend_from_slice(grads.conv1.d_weights.as_slice());
        v.extend_from_slice(&grads.conv1.d_bias);
        v.extend_from_slice(grads.conv2.d_weights.as_slice());
        v.extend_from_slice(&grads.conv2.d_bias);
        v.extend_from_slice(&grads.d_head);
        v.push(grads.d_head_bias);
        v.push(grads.d_cash_bias);
        v
    }
}

/// Trainer pairing an [`Eiie`] with an optimizer.
#[derive(Debug)]
pub struct EiieTrainer<O: Optimizer> {
    optimizer: O,
    slots: [ParamSlot; 6],
    /// Optional global-norm clip applied to the flattened gradient.
    pub max_grad_norm: Option<f64>,
}

impl<O: Optimizer> EiieTrainer<O> {
    /// Registers `net`'s parameters.
    pub fn new(net: &Eiie, mut optimizer: O) -> Self {
        let slots = [
            optimizer.register(net.conv1.weights.len()),
            optimizer.register(net.conv1.bias.len()),
            optimizer.register(net.conv2.weights.len()),
            optimizer.register(net.conv2.bias.len()),
            optimizer.register(net.head.len()),
            optimizer.register(2), // head_bias + cash_bias
        ];
        Self { optimizer, slots, max_grad_norm: Some(10.0) }
    }

    /// Applies one descent step.
    pub fn apply(&mut self, net: &mut Eiie, grads: &EiieGradients) {
        let mut grads = grads.clone();
        if let Some(max) = self.max_grad_norm {
            let flat = Eiie::flat_grads(&grads);
            let norm = flat.iter().map(|g| g * g).sum::<f64>().sqrt();
            if norm > max && norm > 0.0 {
                grads.scale(max / norm);
            }
        }
        self.optimizer.step(
            self.slots[0],
            net.conv1.weights.as_mut_slice(),
            grads.conv1.d_weights.as_slice(),
        );
        self.optimizer.step(self.slots[1], &mut net.conv1.bias, &grads.conv1.d_bias);
        self.optimizer.step(
            self.slots[2],
            net.conv2.weights.as_mut_slice(),
            grads.conv2.d_weights.as_slice(),
        );
        self.optimizer.step(self.slots[3], &mut net.conv2.bias, &grads.conv2.d_bias);
        self.optimizer.step(self.slots[4], &mut net.head, &grads.d_head);
        let mut tail = [net.head_bias, net.cash_bias];
        self.optimizer.step(self.slots[5], &mut tail, &[grads.d_head_bias, grads.d_cash_bias]);
        net.head_bias = tail[0];
        net.cash_bias = tail[1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spikefolio_tensor::optim::Adam;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    fn windows(m: usize, cfg: &EiieConfig, scale: f64) -> Vec<Matrix> {
        (0..m)
            .map(|a| {
                Matrix::from_fn(cfg.channels, cfg.window, |r, c| {
                    1.0 + scale * ((a + 1) as f64 * 0.1) * ((r + c) as f64 * 0.37).sin()
                })
            })
            .collect()
    }

    #[test]
    fn action_is_on_simplex() {
        let cfg = EiieConfig::jiang(3, 8);
        let net = Eiie::new(cfg, &mut rng());
        let assets = windows(4, &cfg, 1.0);
        let pw = vec![0.2; 5];
        let a = net.act(&assets, &pw);
        assert_eq!(a.len(), 5);
        assert!(spikefolio_tensor::simplex::is_on_simplex(&a, 1e-12));
    }

    #[test]
    fn weight_sharing_means_identical_assets_get_identical_scores() {
        let cfg = EiieConfig::jiang(3, 8);
        let net = Eiie::new(cfg, &mut rng());
        let w = windows(1, &cfg, 1.0).pop().unwrap();
        let assets = vec![w.clone(), w];
        let a = net.act(&assets, &[0.2, 0.4, 0.4]);
        assert!((a[1] - a[2]).abs() < 1e-12, "identical inputs, identical weights → tie");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let cfg = EiieConfig {
            channels: 2,
            window: 6,
            conv1_channels: 2,
            conv1_kernel: 3,
            conv2_channels: 4,
        };
        let net = Eiie::new(cfg, &mut rng());
        let assets = windows(3, &cfg, 1.0);
        let pw = [0.1, 0.3, 0.3, 0.3];
        let c = [1.0, -0.5, 0.8, -1.2];
        let trace = net.forward(&assets, &pw);
        let grads = net.backward(&trace, &c);
        let analytic = Eiie::flat_grads(&grads);
        let params = net.flat_params();
        assert_eq!(analytic.len(), params.len());
        let loss =
            |n: &Eiie| -> f64 { n.act(&assets, &pw).iter().zip(&c).map(|(a, b)| a * b).sum() };
        let eps = 1e-6;
        for i in 0..params.len() {
            let mut pp = params.clone();
            pp[i] += eps;
            let mut np = net.clone();
            np.set_flat_params(&pp);
            let mut pm = params.clone();
            pm[i] -= eps;
            let mut nm = net.clone();
            nm.set_flat_params(&pm);
            let num = (loss(&np) - loss(&nm)) / (2.0 * eps);
            assert!(
                (analytic[i] - num).abs() < 1e-5,
                "param {i}: analytic {} vs numeric {num}",
                analytic[i]
            );
        }
    }

    #[test]
    fn training_steers_action() {
        let cfg = EiieConfig::jiang(3, 6);
        let mut net = Eiie::new(cfg, &mut rng());
        let assets = windows(3, &cfg, 1.0);
        let pw = [0.25; 4];
        let before = net.act(&assets, &pw)[1];
        let mut trainer = EiieTrainer::new(&net, Adam::new(1e-2));
        for _ in 0..100 {
            let trace = net.forward(&assets, &pw);
            let grads = net.backward(&trace, &[0.0, -1.0, 0.0, 0.0]);
            trainer.apply(&mut net, &grads);
        }
        let after = net.act(&assets, &pw)[1];
        assert!(after > before + 0.2, "a[1] went {before} → {after}");
    }

    #[test]
    fn flat_round_trip() {
        let cfg = EiieConfig::jiang(4, 8);
        let net = Eiie::new(cfg, &mut rng());
        let flat = net.flat_params();
        let mut net2 = Eiie::new(cfg, &mut rng());
        net2.set_flat_params(&flat);
        assert_eq!(net2.flat_params(), flat);
        assert_eq!(net.num_params(), flat.len());
    }

    #[test]
    fn config_validation() {
        assert!(EiieConfig::jiang(3, 8).validate().is_ok());
        assert!(EiieConfig { channels: 0, ..EiieConfig::jiang(3, 8) }.validate().is_err());
        let bad = EiieConfig { conv1_kernel: 9, ..EiieConfig::jiang(3, 8) };
        assert!(bad.validate().is_err());
        // jiang() clamps the kernel for tiny windows.
        assert!(EiieConfig::jiang(3, 2).validate().is_ok());
    }
}
