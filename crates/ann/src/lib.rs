//! Dense neural-network substrate for the DRL\[Jiang\] baseline.
//!
//! The paper compares SDP against the deep (non-spiking) deterministic
//! policy of Jiang, Xu & Liang (2017). This crate provides the dense
//! network that baseline needs: linear layers, pointwise activations, a
//! softmax policy head, and manual backprop — validated by
//! finite-difference gradient checks, exactly like the spiking substrate.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use spikefolio_ann::{Activation, Mlp};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let net = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
//! let action = net.act(&[1.0, 0.9, 1.1, 1.0]);
//! assert!((action.iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod conv;
pub mod eiie;
pub mod linear;
pub mod mlp;

pub use activation::Activation;
pub use conv::Conv1d;
pub use eiie::{Eiie, EiieConfig, EiieTrainer};
pub use linear::Linear;
pub use mlp::{Mlp, MlpGradients, MlpTrainer};
