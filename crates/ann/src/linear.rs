//! Fully-connected linear layer with manual backprop.

use rand::Rng;
use spikefolio_tensor::init::Init;
use spikefolio_tensor::{vector, Matrix};

/// A dense layer `y = W·x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Weight matrix, `out × in`.
    pub weights: Matrix,
    /// Bias vector.
    pub bias: Vec<f64>,
}

/// Gradients of a [`Linear`] layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGradients {
    /// `∂L/∂W`.
    pub d_weights: Matrix,
    /// `∂L/∂b`.
    pub d_bias: Vec<f64>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "layer dims must be positive");
        Self { weights: Init::XavierUniform.matrix(out_dim, in_dim, rng), bias: vec![0.0; out_dim] }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.weights.matvec(x);
        vector::axpy(&mut y, 1.0, &self.bias);
        y
    }

    /// Backward pass: given the input `x` that produced the forward output
    /// and the upstream gradient `dy`, returns `(gradients, dx)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn backward(&self, x: &[f64], dy: &[f64]) -> (LinearGradients, Vec<f64>) {
        assert_eq!(dy.len(), self.out_dim(), "dy length mismatch");
        let mut d_weights = Matrix::zeros(self.out_dim(), self.in_dim());
        d_weights.add_outer(1.0, dy, x);
        let d_bias = dy.to_vec();
        let dx = self.weights.matvec_transposed(dy);
        (LinearGradients { d_weights, d_bias }, dx)
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(4)
    }

    #[test]
    fn forward_matches_manual() {
        let mut l = Linear::new(2, 2, &mut rng());
        l.weights = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        l.bias = vec![0.5, -0.5];
        assert_eq!(l.forward(&[1.0, 1.0]), vec![3.5, 6.5]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let l = Linear::new(3, 2, &mut rng());
        let x = [0.3, -0.7, 1.2];
        let c = [1.0, -2.0]; // loss = c · y
        let (grads, dx) = l.backward(&x, &c);
        let eps = 1e-6;
        // Weight gradients.
        for r in 0..2 {
            for cidx in 0..3 {
                let mut lp = l.clone();
                lp.weights[(r, cidx)] += eps;
                let mut lm = l.clone();
                lm.weights[(r, cidx)] -= eps;
                let f = |ll: &Linear| -> f64 {
                    ll.forward(&x).iter().zip(&c).map(|(a, b)| a * b).sum()
                };
                let num = (f(&lp) - f(&lm)) / (2.0 * eps);
                assert!((grads.d_weights[(r, cidx)] - num).abs() < 1e-6);
            }
        }
        // Input gradients.
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let f = |xx: &[f64]| -> f64 { l.forward(xx).iter().zip(&c).map(|(a, b)| a * b).sum() };
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!((dx[i] - num).abs() < 1e-6);
        }
        // Bias gradient equals upstream gradient.
        assert_eq!(grads.d_bias, c.to_vec());
    }

    #[test]
    fn param_count() {
        let l = Linear::new(5, 3, &mut rng());
        assert_eq!(l.num_params(), 18);
    }
}
