//! Pointwise activation functions with derivatives.

use serde::{Deserialize, Serialize};

/// Pointwise activation used between linear layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Leaky ReLU with slope 0.01 on the negative side.
    LeakyRelu,
    /// Identity (no nonlinearity).
    Identity,
}

impl Activation {
    /// Applies the activation.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Identity => x,
        }
    }

    /// Derivative evaluated at pre-activation `x`.
    #[inline]
    pub fn grad(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to a whole slice, producing a new vector.
    pub fn apply_vec(self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 4] =
        [Activation::Relu, Activation::Tanh, Activation::LeakyRelu, Activation::Identity];

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn leaky_relu_leaks() {
        assert!((Activation::LeakyRelu.apply(-2.0) + 0.02).abs() < 1e-12);
    }

    #[test]
    fn tanh_saturates() {
        assert!(Activation::Tanh.apply(10.0) > 0.9999);
        assert!(Activation::Tanh.apply(-10.0) < -0.9999);
    }

    #[test]
    fn gradients_match_finite_differences() {
        for act in ALL {
            for &x in &[-1.5, -0.3, 0.2, 1.7] {
                let eps = 1e-6;
                let num = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                assert!(
                    (act.grad(x) - num).abs() < 1e-5,
                    "{act:?} at {x}: {} vs {num}",
                    act.grad(x)
                );
            }
        }
    }

    #[test]
    fn apply_vec_maps_elementwise() {
        let v = Activation::Relu.apply_vec(&[-1.0, 2.0]);
        assert_eq!(v, vec![0.0, 2.0]);
    }
}
