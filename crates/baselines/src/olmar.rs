//! OLMAR: On-Line Moving Average Reversion (Li & Hoi, ICML 2012).

use spikefolio_env::{DecisionContext, Policy};
use spikefolio_tensor::simplex::project_to_simplex;
use spikefolio_tensor::vector::{dot, mean};

/// OLMAR-1 with window `w` and reversion threshold `ε`.
///
/// Predicts next-period price relatives from the ratio of a `w`-period
/// simple moving average to the current price,
/// `ŷ_i = SMA_w(p_i) / p_i`, then takes a passive-aggressive step toward
/// portfolios with predicted return at least `ε`:
///
/// ```text
/// λ = max(0, (ε − w·ŷ)) / ‖ŷ − ȳ·1‖²
/// w ← Π_Δ (w + λ (ŷ − ȳ·1))
/// ```
#[derive(Debug, Clone)]
pub struct Olmar {
    window: usize,
    epsilon: f64,
    weights: Vec<f64>,
}

impl Olmar {
    /// OLMAR with the customary `w = 5`, `ε = 10`.
    pub fn new() -> Self {
        Self::with_params(5, 10.0)
    }

    /// OLMAR with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` or `epsilon < 1`.
    pub fn with_params(window: usize, epsilon: f64) -> Self {
        assert!(window >= 2, "window must be at least 2");
        assert!(epsilon >= 1.0, "epsilon must be at least 1");
        Self { window, epsilon, weights: Vec::new() }
    }
}

impl Default for Olmar {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Olmar {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.num_assets;
        if self.weights.len() != m {
            self.weights = vec![1.0 / m as f64; m];
        }
        if ctx.t + 1 >= self.window {
            // Predicted relatives: SMA of the last `window` closes over the
            // current close.
            let y_hat: Vec<f64> = (0..m)
                .map(|a| {
                    let closes: Vec<f64> =
                        (0..self.window).map(|k| ctx.market.close(ctx.t - k, a)).collect();
                    mean(&closes) / ctx.market.close(ctx.t, a)
                })
                .collect();
            let y_bar = mean(&y_hat);
            let centered: Vec<f64> = y_hat.iter().map(|&v| v - y_bar).collect();
            let denom: f64 = centered.iter().map(|v| v * v).sum();
            if denom > 1e-12 {
                let predicted = dot(&self.weights, &y_hat);
                let lambda = ((self.epsilon - predicted).max(0.0)) / denom;
                let moved: Vec<f64> =
                    self.weights.iter().zip(&centered).map(|(&w, &cv)| w + lambda * cv).collect();
                self.weights = project_to_simplex(&moved);
            }
        }
        let mut out = Vec::with_capacity(m + 1);
        out.push(0.0);
        out.extend_from_slice(&self.weights);
        out
    }

    fn warmup_periods(&self) -> usize {
        self.window
    }

    fn name(&self) -> &str {
        "OLMAR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::simplex::is_on_simplex;

    #[test]
    fn weights_stay_on_simplex() {
        let market = ExperimentPreset::experiment3().shrunk(50, 10).generate(19);
        let r = Backtester::default().run(&mut Olmar::new(), &market);
        for w in &r.weights {
            assert!(is_on_simplex(w, 1e-9));
        }
    }

    #[test]
    fn olmar_buys_the_dip() {
        use spikefolio_market::{Candle, Date, MarketData};
        // Asset 0 drops sharply at the end ⇒ its SMA/price ratio exceeds 1
        // ⇒ OLMAR overweights it.
        let mut candles = Vec::new();
        let prices_a = [100.0, 100.0, 100.0, 100.0, 100.0, 100.0, 70.0, 70.0];
        for (i, &p) in prices_a.iter().enumerate() {
            let prev = if i == 0 { p } else { prices_a[i - 1] };
            candles.push(Candle::new(prev, prev.max(p), prev.min(p), p, 1.0));
            candles.push(Candle::flat(50.0));
        }
        let market = MarketData::new(
            vec!["DIP".into(), "FLAT".into()],
            Date::new(2020, 1, 1),
            1,
            2,
            candles,
        );
        let mut olmar = Olmar::with_params(5, 1.5);
        let r = Backtester::default().run(&mut olmar, &market);
        let last = r.weights.last().unwrap();
        assert!(last[1] > 0.9, "dip asset should dominate: {last:?}");
    }

    #[test]
    fn turnover_is_positive_on_real_markets() {
        let market = ExperimentPreset::experiment1().shrunk(50, 10).generate(19);
        let r = Backtester::default().run(&mut Olmar::new(), &market);
        assert!(r.turnover > 0.1);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_tiny_window() {
        let _ = Olmar::with_params(1, 10.0);
    }
}
