//! EG: Exponential Gradient portfolio (Helmbold, Schapire, Singer &
//! Warmuth, 1998).

use spikefolio_env::{DecisionContext, Policy};
use spikefolio_tensor::simplex::renormalize;
use spikefolio_tensor::vector::dot;

/// Exponential Gradient with learning rate `η`.
///
/// Multiplicative update toward the last period's winners:
///
/// ```text
/// w_{t+1,i} ∝ w_{t,i} · exp(η · y_{t,i} / (w_t · y_t))
/// ```
///
/// A follow-the-winner strategy with a universal-portfolio-style regret
/// bound; `η = 0.05` is the customary default.
#[derive(Debug, Clone)]
pub struct Eg {
    eta: f64,
    weights: Vec<f64>,
    last_seen: Option<usize>,
}

impl Eg {
    /// EG with the customary `η = 0.05`.
    pub fn new() -> Self {
        Self::with_eta(0.05)
    }

    /// EG with an explicit learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0`.
    pub fn with_eta(eta: f64) -> Self {
        assert!(eta > 0.0, "eta must be positive");
        Self { eta, weights: Vec::new(), last_seen: None }
    }
}

impl Default for Eg {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Eg {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.num_assets;
        if self.weights.len() != m {
            self.weights = vec![1.0 / m as f64; m];
            self.last_seen = None;
        }
        let from = self.last_seen.map(|t| t + 1).unwrap_or(1.min(ctx.t));
        for t in from..=ctx.t {
            if t == 0 {
                continue;
            }
            let y = ctx.market.price_relatives(t);
            let wy = dot(&self.weights, &y).max(1e-12);
            for (w, &yi) in self.weights.iter_mut().zip(&y) {
                *w *= (self.eta * yi / wy).exp();
            }
            renormalize(&mut self.weights);
        }
        self.last_seen = Some(ctx.t);

        let mut out = Vec::with_capacity(m + 1);
        out.push(0.0);
        out.extend_from_slice(&self.weights);
        out
    }

    fn warmup_periods(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "EG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_market::{Candle, Date, MarketData};
    use spikefolio_tensor::simplex::is_on_simplex;

    #[test]
    fn weights_stay_on_simplex() {
        let market = ExperimentPreset::experiment1().shrunk(40, 10).generate(8);
        let r = Backtester::default().run(&mut Eg::new(), &market);
        for w in &r.weights {
            assert!(is_on_simplex(w, 1e-9));
        }
    }

    #[test]
    fn eg_tilts_toward_persistent_winner() {
        let mut candles = Vec::new();
        let (mut a, mut b) = (100.0, 100.0);
        for _ in 0..60 {
            let na = a * 1.02;
            let nb = b * 0.995;
            candles.push(Candle::new(a, na, a, na, 1.0));
            candles.push(Candle::new(b * 0.99, b, b * 0.99, nb, 1.0));
            a = na;
            b = nb;
        }
        let market =
            MarketData::new(vec!["W".into(), "L".into()], Date::new(2020, 1, 1), 1, 2, candles);
        let r = Backtester::default().run(&mut Eg::with_eta(0.2), &market);
        let last = r.weights.last().unwrap();
        // EG is a slow multiplicative tilt, but it must clearly favour the
        // persistent winner over a 60-period trend.
        assert!(last[1] > 0.55, "winner weight only {}", last[1]);
        assert!(last[1] > last[2]);
    }

    #[test]
    #[should_panic(expected = "eta")]
    fn rejects_bad_eta() {
        let _ = Eg::with_eta(0.0);
    }
}
