//! ANTICOR: the anti-correlation follow-the-loser strategy of Borodin,
//! El-Yaniv & Gogan (NIPS 2003).

use spikefolio_env::{DecisionContext, Policy};
use spikefolio_tensor::simplex::renormalize;
use spikefolio_tensor::vector::{correlation, mean};

/// ANTICOR with window `w`.
///
/// Compares two adjacent windows of log price relatives (`LX1` over
/// `[t−2w+1, t−w]`, `LX2` over `[t−w+1, t]`). Wealth is shifted from asset
/// `i` to asset `j` when `i` outperformed `j` in the recent window but the
/// cross-window correlation `corr(LX1_i, LX2_j)` is positive — betting on
/// mean reversion. The transfer *claim* is
///
/// ```text
/// claim_{i→j} = corr(LX1_i, LX2_j)
///             + max(0, −corr(LX1_i, LX2_i))
///             + max(0, −corr(LX1_j, LX2_j))
/// ```
///
/// and each asset distributes its current weight proportionally to its
/// outgoing claims. In strongly trending (momentum) markets the
/// mean-reversion bet fails — the paper's Table 3 shows ANTICOR collapsing
/// in experiments 2 and 3, a shape our reproduction preserves.
#[derive(Debug, Clone)]
pub struct Anticor {
    window: usize,
    weights: Vec<f64>,
}

impl Anticor {
    /// ANTICOR with the customary window of 15 periods.
    pub fn new() -> Self {
        Self::with_window(15)
    }

    /// ANTICOR with an explicit window.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`.
    pub fn with_window(window: usize) -> Self {
        assert!(window >= 2, "anticor window must be at least 2");
        Self { window, weights: Vec::new() }
    }

    /// Log price relatives of asset `a` over `[from, to)`.
    fn log_relatives(ctx: &DecisionContext<'_>, a: usize, from: usize, to: usize) -> Vec<f64> {
        (from..to).map(|t| ctx.market.price_relatives(t)[a].ln()).collect()
    }
}

impl Default for Anticor {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Anticor {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.num_assets;
        if self.weights.len() != m + 1 {
            // Start uniform over risky assets.
            self.weights = vec![1.0 / m as f64; m + 1];
            self.weights[0] = 0.0;
            renormalize(&mut self.weights);
        }
        let w = self.window;
        if ctx.t + 1 < 2 * w {
            return self.weights.clone();
        }
        // Windows: LX1 = (t−2w, t−w], LX2 = (t−w, t].
        let lx1: Vec<Vec<f64>> =
            (0..m).map(|a| Self::log_relatives(ctx, a, ctx.t + 1 - 2 * w, ctx.t + 1 - w)).collect();
        let lx2: Vec<Vec<f64>> =
            (0..m).map(|a| Self::log_relatives(ctx, a, ctx.t + 1 - w, ctx.t + 1)).collect();
        let mu2: Vec<f64> = lx2.iter().map(|v| mean(v)).collect();

        // Outgoing claims per asset pair.
        let mut claims = vec![vec![0.0_f64; m]; m];
        for i in 0..m {
            for j in 0..m {
                if i == j || mu2[i] <= mu2[j] {
                    continue; // only transfer from recent winners to losers
                }
                let c_ij = correlation(&lx1[i], &lx2[j]);
                if c_ij <= 0.0 {
                    continue;
                }
                let self_i = correlation(&lx1[i], &lx2[i]);
                let self_j = correlation(&lx1[j], &lx2[j]);
                claims[i][j] = c_ij + (-self_i).max(0.0) + (-self_j).max(0.0);
            }
        }

        // Apply proportional transfers on the risky sub-vector.
        let mut new_w = self.weights.clone();
        for i in 0..m {
            let out_total: f64 = claims[i].iter().sum();
            if out_total <= 0.0 {
                continue;
            }
            let wi = self.weights[i + 1];
            for j in 0..m {
                if claims[i][j] > 0.0 {
                    let transfer = wi * claims[i][j] / out_total;
                    new_w[i + 1] -= transfer;
                    new_w[j + 1] += transfer;
                }
            }
        }
        renormalize(&mut new_w);
        self.weights = new_w.clone();
        new_w
    }

    fn warmup_periods(&self) -> usize {
        2 * self.window
    }

    fn name(&self) -> &str {
        "ANTICOR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::simplex::is_on_simplex;

    #[test]
    fn weights_stay_on_simplex() {
        let market = ExperimentPreset::experiment1().shrunk(60, 10).generate(13);
        let r = Backtester::default().run(&mut Anticor::with_window(5), &market);
        for w in &r.weights {
            assert!(is_on_simplex(w, 1e-9));
        }
    }

    #[test]
    fn warmup_covers_two_windows() {
        let a = Anticor::with_window(7);
        assert_eq!(a.warmup_periods(), 14);
    }

    #[test]
    fn transfers_move_weight_between_assets() {
        let market = ExperimentPreset::experiment1().shrunk(80, 20).generate(13);
        let r = Backtester::default().run(&mut Anticor::with_window(5), &market);
        // Over a volatile market, ANTICOR must actually trade.
        assert!(r.turnover > 0.1, "turnover {}", r.turnover);
        // And weights should eventually deviate from uniform.
        let max_dev = r
            .weights
            .iter()
            .map(|w| w[1..].iter().map(|&x| (x - 1.0 / 11.0).abs()).fold(0.0_f64, f64::max))
            .fold(0.0_f64, f64::max);
        assert!(max_dev > 1e-3, "max deviation {max_dev}");
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        let _ = Anticor::with_window(1);
    }
}
