//! Best Stock: hold the asset with the best performance so far.

use spikefolio_env::{DecisionContext, Policy};
use spikefolio_tensor::vector::argmax;

/// Best Stock strategy: each period, put all wealth in the single asset
/// with the highest cumulative return over the observed history.
///
/// The hindsight-best benchmark of the online portfolio-selection
/// literature, evaluated causally (only past data is used at each step).
/// Characteristically it posts strong fAPV in trending markets and the
/// worst maximum drawdown of the classical strategies — exactly its
/// profile in Table 3.
#[derive(Debug, Clone, Copy)]
pub struct BestStock {
    lookback: Option<usize>,
}

impl BestStock {
    /// Best stock over the full observed history.
    pub fn new() -> Self {
        Self { lookback: None }
    }

    /// Best stock over a trailing window of `periods` periods.
    pub fn with_lookback(periods: usize) -> Self {
        assert!(periods > 0, "lookback must be positive");
        Self { lookback: Some(periods) }
    }
}

impl Default for BestStock {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for BestStock {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let from = match self.lookback {
            Some(lb) => ctx.t.saturating_sub(lb),
            None => 0,
        };
        // Cumulative relative close(t) / close(from) per asset.
        let perf: Vec<f64> = (0..ctx.num_assets)
            .map(|a| ctx.market.close(ctx.t, a) / ctx.market.close(from, a))
            .collect();
        let best = argmax(&perf).expect("non-empty asset set");
        let mut w = vec![0.0; ctx.num_assets + 1];
        w[best + 1] = 1.0;
        w
    }

    fn warmup_periods(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "Best Stock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;

    #[test]
    fn concentrates_in_exactly_one_asset() {
        let market = ExperimentPreset::experiment1().shrunk(15, 3).generate(2);
        let r = Backtester::default().run(&mut BestStock::new(), &market);
        for w in &r.weights {
            let ones = w.iter().filter(|&&x| (x - 1.0).abs() < 1e-12).count();
            let zeros = w.iter().filter(|&&x| x.abs() < 1e-12).count();
            assert_eq!(ones, 1);
            assert_eq!(zeros, w.len() - 1);
            assert_eq!(w[0], 0.0, "never holds cash");
        }
    }

    #[test]
    fn lookback_variant_limits_history() {
        let market = ExperimentPreset::experiment1().shrunk(15, 3).generate(2);
        let mut short = BestStock::with_lookback(2);
        let mut long = BestStock::new();
        let a = Backtester::default().run(&mut short, &market);
        let b = Backtester::default().run(&mut long, &market);
        // Both valid runs; they generally disagree on some decision.
        assert_eq!(a.weights.len(), b.weights.len());
    }

    #[test]
    #[should_panic(expected = "lookback")]
    fn zero_lookback_rejected() {
        let _ = BestStock::with_lookback(0);
    }
}
