//! PAMR: Passive-Aggressive Mean Reversion (Li, Zhao, Hoi & Gopalkrishnan,
//! Machine Learning 2012).

use spikefolio_env::{DecisionContext, Policy};
use spikefolio_tensor::simplex::project_to_simplex;
use spikefolio_tensor::vector::{dot, mean};

/// PAMR with sensitivity `ε` (PAMR-0 variant).
///
/// When the last portfolio return `w · y` exceeds `ε`, the strategy
/// *aggressively* moves against it (mean-reversion bet):
///
/// ```text
/// τ = max(0, (w·y − ε)) / ‖y − ȳ·1‖²
/// w ← Π_Δ (w − τ (y − ȳ·1))
/// ```
///
/// with `Π_Δ` the Euclidean simplex projection.
#[derive(Debug, Clone)]
pub struct Pamr {
    epsilon: f64,
    weights: Vec<f64>,
    last_seen: Option<usize>,
}

impl Pamr {
    /// PAMR with the customary `ε = 0.5`.
    pub fn new() -> Self {
        Self::with_epsilon(0.5)
    }

    /// PAMR with an explicit sensitivity.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon < 0`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Self { epsilon, weights: Vec::new(), last_seen: None }
    }
}

impl Default for Pamr {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Pamr {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.num_assets;
        if self.weights.len() != m {
            self.weights = vec![1.0 / m as f64; m];
            self.last_seen = None;
        }
        let from = self.last_seen.map(|t| t + 1).unwrap_or(1.min(ctx.t));
        for t in from..=ctx.t {
            if t == 0 {
                continue;
            }
            let y = ctx.market.price_relatives(t);
            let ret = dot(&self.weights, &y);
            let y_bar = mean(&y);
            let centered: Vec<f64> = y.iter().map(|&v| v - y_bar).collect();
            let denom: f64 = centered.iter().map(|v| v * v).sum();
            if denom > 1e-12 {
                let tau = ((ret - self.epsilon).max(0.0)) / denom;
                let moved: Vec<f64> =
                    self.weights.iter().zip(&centered).map(|(&w, &cv)| w - tau * cv).collect();
                self.weights = project_to_simplex(&moved);
            }
        }
        self.last_seen = Some(ctx.t);

        let mut out = Vec::with_capacity(m + 1);
        out.push(0.0);
        out.extend_from_slice(&self.weights);
        out
    }

    fn warmup_periods(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "PAMR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::simplex::is_on_simplex;

    #[test]
    fn weights_stay_on_simplex() {
        let market = ExperimentPreset::experiment2().shrunk(40, 10).generate(4);
        let r = Backtester::default().run(&mut Pamr::new(), &market);
        for w in &r.weights {
            assert!(is_on_simplex(w, 1e-9));
        }
    }

    #[test]
    fn pamr_moves_against_recent_winners() {
        use spikefolio_market::{Candle, Date, MarketData};
        // One big up-move for asset 0 at t=1; PAMR should then underweight
        // asset 0 relative to uniform.
        let mk = |p: f64, n: f64| Candle::new(p, p.max(n), p.min(n), n, 1.0);
        let candles = vec![
            Candle::flat(100.0),
            Candle::flat(100.0),
            mk(100.0, 130.0),
            mk(100.0, 100.0),
            Candle::flat(130.0),
            Candle::flat(100.0),
            Candle::flat(130.0),
            Candle::flat(100.0),
        ];
        let market =
            MarketData::new(vec!["A".into(), "B".into()], Date::new(2020, 1, 1), 1, 2, candles);
        let r = Backtester::default().run(&mut Pamr::with_epsilon(0.5), &market);
        let w_after = &r.weights[0]; // decision at t=1, right after the jump
        assert!(w_after[1] < w_after[2], "PAMR should underweight the winner: {w_after:?}");
    }

    #[test]
    fn zero_epsilon_is_most_aggressive() {
        let market = ExperimentPreset::experiment1().shrunk(40, 10).generate(4);
        let calm = Backtester::default().run(&mut Pamr::with_epsilon(10.0), &market);
        let aggressive = Backtester::default().run(&mut Pamr::with_epsilon(0.0), &market);
        // ε above any plausible return ⇒ PAMR never moves ⇒ minimal turnover.
        assert!(aggressive.turnover > calm.turnover);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_negative_epsilon() {
        let _ = Pamr::with_epsilon(-1.0);
    }
}
