//! ONS: Online Newton Step (Agarwal, Hazan, Kale & Schapire, ICML 2006).

use spikefolio_env::{DecisionContext, Policy};
use spikefolio_tensor::simplex::{project_to_simplex, renormalize};
use spikefolio_tensor::vector::dot;
use spikefolio_tensor::Matrix;

/// Online Newton Step over the risky assets.
///
/// Maintains the running Hessian-like matrix `A_t = Σ ∇_s∇_sᵀ + I` and
/// gradient sum `b_t = (1 + 1/β) Σ ∇_s` of the log-wealth objective
/// (`∇_s = y_s / (w·y_s)`), and plays
///
/// ```text
/// w_{t+1} = Π^{A_t}_Δ ( δ · A_t⁻¹ b_t )
/// ```
///
/// where `Π^{A}_Δ` is the projection onto the simplex in the `A`-norm,
/// computed here by projected gradient descent on the quadratic. Default
/// parameters follow the OLPS toolbox: `η = 0, β = 1, δ = 1/8`.
#[derive(Debug, Clone)]
pub struct Ons {
    beta: f64,
    delta: f64,
    a: Matrix,
    b: Vec<f64>,
    weights: Vec<f64>,
    last_seen: Option<usize>,
}

impl Ons {
    /// ONS with the OLPS-toolbox defaults (`β = 1`, `δ = 1/8`).
    pub fn new() -> Self {
        Self::with_params(1.0, 0.125)
    }

    /// ONS with explicit `β` and `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 0` or `delta <= 0`.
    pub fn with_params(beta: f64, delta: f64) -> Self {
        assert!(beta > 0.0 && delta > 0.0, "beta and delta must be positive");
        Self {
            beta,
            delta,
            a: Matrix::zeros(0, 0),
            b: Vec::new(),
            weights: Vec::new(),
            last_seen: None,
        }
    }

    /// Projection onto the simplex in the `A`-norm via projected gradient
    /// descent: minimize `(w−p)ᵀA(w−p)` over the simplex.
    fn project_a_norm(a: &Matrix, p: &[f64], iters: usize) -> Vec<f64> {
        let mut w = project_to_simplex(p);
        // Lipschitz-ish step from the trace (A ⪰ I so trace/m ≥ 1).
        let m = p.len();
        let trace: f64 = (0..m).map(|i| a[(i, i)]).sum();
        let step = 1.0 / (2.0 * trace.max(1.0));
        for _ in 0..iters {
            // grad = 2A(w − p)
            let diff: Vec<f64> = w.iter().zip(p).map(|(x, y)| x - y).collect();
            let grad = a.matvec(&diff);
            for (wi, g) in w.iter_mut().zip(&grad) {
                *wi -= 2.0 * step * g;
            }
            w = project_to_simplex(&w);
        }
        w
    }
}

impl Default for Ons {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Ons {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.num_assets;
        if self.weights.len() != m {
            self.a = Matrix::identity(m);
            self.b = vec![0.0; m];
            self.weights = vec![1.0 / m as f64; m];
            self.last_seen = None;
        }
        // Fold in every newly observed period.
        let from = self.last_seen.map(|t| t + 1).unwrap_or(1.min(ctx.t));
        for t in from..=ctx.t {
            if t == 0 {
                continue;
            }
            let y = ctx.market.price_relatives(t);
            let wy = dot(&self.weights, &y).max(1e-12);
            let grad: Vec<f64> = y.iter().map(|&yi| yi / wy).collect();
            self.a.add_outer(1.0, &grad, &grad);
            for (bi, &g) in self.b.iter_mut().zip(&grad) {
                *bi += (1.0 + 1.0 / self.beta) * g;
            }
        }
        self.last_seen = Some(ctx.t);

        // Newton point and A-norm projection.
        let p: Vec<f64> = match self.a.solve(&self.b) {
            Some(x) => x.iter().map(|&v| self.delta * v).collect(),
            None => self.weights.clone(),
        };
        self.weights = Self::project_a_norm(&self.a, &p, 60);

        let mut w = Vec::with_capacity(m + 1);
        w.push(0.0);
        w.extend_from_slice(&self.weights);
        renormalize(&mut w);
        w
    }

    fn warmup_periods(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "ONS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::simplex::is_on_simplex;

    #[test]
    fn weights_stay_on_simplex() {
        let market = ExperimentPreset::experiment1().shrunk(40, 10).generate(17);
        let r = Backtester::default().run(&mut Ons::new(), &market);
        for w in &r.weights {
            assert!(is_on_simplex(w, 1e-6));
        }
    }

    #[test]
    fn a_norm_projection_of_feasible_point_is_identity() {
        let a = Matrix::identity(3);
        let p = [0.2, 0.5, 0.3];
        let w = Ons::project_a_norm(&a, &p, 100);
        for (x, y) in w.iter().zip(&p) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn a_norm_projection_lands_on_simplex() {
        let mut a = Matrix::identity(3);
        a[(0, 0)] = 5.0; // anisotropic metric
        let w = Ons::project_a_norm(&a, &[2.0, -1.0, 0.4], 200);
        assert!(is_on_simplex(&w, 1e-6), "{w:?}");
    }

    #[test]
    fn anisotropic_projection_differs_from_euclidean() {
        // With a strongly anisotropic A, the A-norm projection should favor
        // moving along cheap directions.
        let mut a = Matrix::identity(2);
        a[(0, 0)] = 100.0;
        let p = [0.5, 0.9];
        let w_a = Ons::project_a_norm(&a, &p, 500);
        let w_e = project_to_simplex(&p);
        let d: f64 = w_a.iter().zip(&w_e).map(|(x, y)| (x - y).abs()).sum();
        assert!(d > 1e-3, "projections unexpectedly equal: {w_a:?} vs {w_e:?}");
    }

    #[test]
    fn ons_adapts_over_time() {
        let market = ExperimentPreset::experiment1().shrunk(60, 10).generate(17);
        let r = Backtester::default().run(&mut Ons::new(), &market);
        assert!(r.turnover > 0.01, "ONS should trade, turnover {}", r.turnover);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_params_rejected() {
        let _ = Ons::with_params(0.0, 0.1);
    }
}
