//! M0: the prediction-counting follow-the-winner strategy of Borodin,
//! El-Yaniv & Gogan.

use spikefolio_env::{DecisionContext, Policy};

/// M0 strategy (Borodin et al., "Can we learn to beat the best stock").
///
/// Maintains, per asset, a count of the periods in which the asset's price
/// relative beat the cross-sectional market average. Weights are the
/// add-half (Krichevsky–Trofimov) smoothed win frequencies:
///
/// ```text
/// w_i ∝ (wins_i + ½)
/// ```
///
/// A simple "follow the winner by majority vote" rule: cheap, causal, and
/// the paper's Table 3 shows it mid-pack — better than pure losers, worse
/// than the RL agents.
#[derive(Debug, Clone, Default)]
pub struct M0 {
    wins: Vec<f64>,
    last_seen: Option<usize>,
}

impl M0 {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for M0 {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.num_assets;
        if self.wins.len() != m {
            self.wins = vec![0.0; m];
            self.last_seen = None;
        }
        // Update win counts with every new period observed since last call
        // (normally exactly one).
        let from = self.last_seen.map(|t| t + 1).unwrap_or(1.min(ctx.t));
        for t in from..=ctx.t {
            if t == 0 {
                continue;
            }
            let y = ctx.market.price_relatives(t);
            let avg: f64 = y.iter().sum::<f64>() / m as f64;
            for (w, &yi) in self.wins.iter_mut().zip(&y) {
                if yi > avg {
                    *w += 1.0;
                }
            }
        }
        self.last_seen = Some(ctx.t);

        let total: f64 = self.wins.iter().map(|&c| c + 0.5).sum();
        let mut weights = Vec::with_capacity(m + 1);
        weights.push(0.0); // no cash
        weights.extend(self.wins.iter().map(|&c| (c + 0.5) / total));
        weights
    }

    fn warmup_periods(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "M0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::simplex::is_on_simplex;

    #[test]
    fn starts_uniform_and_stays_on_simplex() {
        let market = ExperimentPreset::experiment1().shrunk(20, 5).generate(6);
        let r = Backtester::default().run(&mut M0::new(), &market);
        for w in &r.weights {
            assert!(is_on_simplex(w, 1e-9));
            assert_eq!(w[0], 0.0);
        }
        // First decision (t=1, after one observed relative) is close to
        // uniform: win counts are 0 or 1.
        let w0 = &r.weights[0];
        let spread = w0[1..].iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - w0[1..].iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(spread < 0.25, "first-step spread {spread}");
    }

    #[test]
    fn persistent_winner_accumulates_weight() {
        // Hand-built market: asset 0 rises 2%/period, asset 1 falls.
        use spikefolio_market::{Candle, Date, MarketData};
        let mut candles = Vec::new();
        let (mut p0, mut p1) = (100.0, 100.0);
        for _ in 0..40 {
            let n0 = p0 * 1.02;
            let n1 = p1 * 0.99;
            candles.push(Candle::new(p0, n0, p0, n0, 1.0));
            candles.push(Candle::new(p1 * 0.99, p1, p1 * 0.99, n1, 1.0));
            p0 = n0;
            p1 = n1;
        }
        let market =
            MarketData::new(vec!["UP".into(), "DOWN".into()], Date::new(2020, 1, 1), 1, 2, candles);
        let r = Backtester::default().run(&mut M0::new(), &market);
        let last = r.weights.last().unwrap();
        assert!(last[1] > 0.9, "persistent winner should dominate the M0 portfolio, got {last:?}");
    }
}
