//! Buy-and-hold market benchmark.

use spikefolio_env::{DecisionContext, Policy};

/// Buy-and-Hold: buy the uniform portfolio once, never rebalance.
///
/// After the initial purchase the policy simply returns the drifted
/// weights, so no further transaction costs accrue. This is the "market"
/// reference curve used in several of the extended reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuyAndHold {
    bought: bool,
}

impl BuyAndHold {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for BuyAndHold {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        if !self.bought {
            self.bought = true;
            let m = ctx.num_assets;
            let mut w = vec![1.0 / m as f64; m + 1];
            w[0] = 0.0;
            w
        } else {
            ctx.prev_weights.to_vec()
        }
    }

    fn name(&self) -> &str {
        "Buy and Hold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikefolio_env::{BacktestConfig, Backtester, CostModel};
    use spikefolio_market::experiments::ExperimentPreset;

    #[test]
    fn pays_costs_only_once() {
        let market = ExperimentPreset::experiment1().shrunk(20, 5).generate(4);
        let cfg = BacktestConfig {
            costs: CostModel::Proportional { rate: 0.0025 },
            risk_free_per_period: 0.0,
        };
        let r = Backtester::new(cfg).run(&mut BuyAndHold::new(), &market);
        // Turnover: 1.0 initial buy (weights move from cash to assets) and
        // nothing afterwards.
        assert!((r.turnover - 2.0).abs() < 1e-9, "turnover {}", r.turnover);
    }

    #[test]
    fn fapv_equals_mean_total_relative_without_costs() {
        let market = ExperimentPreset::experiment1().shrunk(20, 5).generate(4);
        let cfg = BacktestConfig { costs: CostModel::Free, risk_free_per_period: 0.0 };
        let r = Backtester::new(cfg).run(&mut BuyAndHold::new(), &market);
        // BAH value = mean over assets of close(T)/close(0) (bought at t=0
        // close, in effect at the t=1 relative onwards).
        let last = market.num_periods() - 1;
        let expected: f64 = (0..market.num_assets())
            .map(|a| market.close(last, a) / market.close(0, a))
            .sum::<f64>()
            / market.num_assets() as f64;
        assert!(
            (r.fapv() - expected).abs() / expected < 1e-9,
            "fAPV {} vs expected {expected}",
            r.fapv()
        );
    }
}
