//! UCRP: uniform constant rebalanced portfolio.

use spikefolio_env::{DecisionContext, Policy};

/// Uniform Constant Rebalanced Portfolio: rebalance to equal weights over
/// the risky assets every period (no cash position).
///
/// The classical market benchmark — Cover's CRP with the uniform point.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ucrp {
    _priv: (),
}

impl Ucrp {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Ucrp {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let m = ctx.num_assets;
        let mut w = vec![1.0 / m as f64; m + 1];
        w[0] = 0.0;
        w
    }

    fn name(&self) -> &str {
        "UCRP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikefolio_env::Backtester;
    use spikefolio_market::experiments::ExperimentPreset;

    #[test]
    fn weights_are_uniform_over_risky_assets() {
        let market = ExperimentPreset::experiment1().shrunk(10, 2).generate(1);
        let r = Backtester::default().run(&mut Ucrp::new(), &market);
        for w in &r.weights {
            assert_eq!(w[0], 0.0, "no cash");
            for &wi in &w[1..] {
                assert!((wi - 1.0 / 11.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ucrp_matches_mean_of_relatives_one_period() {
        // Over a single period without costs, UCRP growth is the mean of
        // the asset relatives.
        let market = ExperimentPreset::experiment1().shrunk(5, 0).generate(3);
        let cfg = spikefolio_env::BacktestConfig {
            costs: spikefolio_env::CostModel::Free,
            risk_free_per_period: 0.0,
        };
        let r = Backtester::new(cfg).run(&mut Ucrp::new(), &market);
        let y = market.price_relatives(1);
        let mean_y: f64 = y.iter().sum::<f64>() / y.len() as f64;
        assert!((r.values[1] - mean_y).abs() < 1e-12);
    }
}
