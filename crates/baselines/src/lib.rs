//! Classical portfolio-selection baselines of Table 3.
//!
//! The paper compares SDP against five traditional strategies drawn from
//! the online portfolio-selection literature (Li & Hoi's survey taxonomy):
//!
//! | strategy | family | module |
//! |---|---|---|
//! | UCRP | benchmark (uniform constant rebalanced) | [`ucrp`] |
//! | Best Stock | benchmark (best asset in hindsight) | [`best_stock`] |
//! | M0 | follow-the-winner (prediction counts) | [`m0`] |
//! | ANTICOR | follow-the-loser (anti-correlation) | [`anticor`] |
//! | ONS | meta-learning / online convex opt. | [`ons`] |
//!
//! Every strategy implements [`spikefolio_env::Policy`] so the one
//! [`Backtester`](spikefolio_env::Backtester) drives them all — the same
//! engine the SDP and DRL agents run through, keeping Table 3 comparisons
//! apples-to-apples.
//!
//! # Example
//!
//! ```
//! use spikefolio_baselines::Ucrp;
//! use spikefolio_env::{Backtester, BacktestConfig};
//! use spikefolio_market::experiments::ExperimentPreset;
//!
//! let market = ExperimentPreset::experiment1().shrunk(30, 10).generate(7);
//! let result = Backtester::new(BacktestConfig::default()).run(&mut Ucrp::new(), &market);
//! assert!(result.fapv() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anticor;
pub mod best_stock;
pub mod buy_and_hold;
pub mod eg;
pub mod m0;
pub mod olmar;
pub mod ons;
pub mod pamr;
pub mod ucrp;

pub use anticor::Anticor;
pub use best_stock::BestStock;
pub use buy_and_hold::BuyAndHold;
pub use eg::Eg;
pub use m0::M0;
pub use olmar::Olmar;
pub use ons::Ons;
pub use pamr::Pamr;
pub use ucrp::Ucrp;

use spikefolio_env::Policy;

/// Returns boxed instances of all Table 3 baseline strategies with their
/// default parameters, in the paper's row order (ONS, Best Stock, ANTICOR,
/// M0, UCRP).
pub fn table3_baselines() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(Ons::new()),
        Box::new(BestStock::new()),
        Box::new(Anticor::new()),
        Box::new(M0::new()),
        Box::new(Ucrp::new()),
    ]
}

/// Extended strategy roster: the Table 3 five plus EG, PAMR, OLMAR, and
/// buy-and-hold — the broader Li & Hoi survey families, used by the
/// extended comparison reports.
pub fn extended_baselines() -> Vec<Box<dyn Policy>> {
    let mut v = table3_baselines();
    v.push(Box::new(Eg::new()));
    v.push(Box::new(Pamr::new()));
    v.push(Box::new(Olmar::new()));
    v.push(Box::new(BuyAndHold::new()));
    v
}

/// Compact roster for the scenario stress matrix: one representative per
/// survey family (meta-learning ONS, follow-the-loser ANTICOR, benchmark
/// UCRP) plus buy-and-hold as the zero-turnover control — small enough
/// that the full (universe × scenario) matrix stays fast, broad enough
/// that every family is scored under stress.
pub fn scenario_baselines() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(Ons::new()),
        Box::new(Anticor::new()),
        Box::new(Ucrp::new()),
        Box::new(BuyAndHold::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_roster_is_compact_with_a_zero_turnover_control() {
        let names: Vec<String> = scenario_baselines().iter().map(|p| p.name().to_owned()).collect();
        assert_eq!(names, vec!["ONS", "ANTICOR", "UCRP", "Buy and Hold"]);
    }

    #[test]
    fn all_five_baselines_are_exposed() {
        let names: Vec<String> = table3_baselines().iter().map(|p| p.name().to_owned()).collect();
        assert_eq!(names, vec!["ONS", "Best Stock", "ANTICOR", "M0", "UCRP"]);
    }

    #[test]
    fn extended_roster_adds_four_more() {
        let names: Vec<String> = extended_baselines().iter().map(|p| p.name().to_owned()).collect();
        assert_eq!(names.len(), 9);
        for extra in ["EG", "PAMR", "OLMAR", "Buy and Hold"] {
            assert!(names.iter().any(|n| n == extra), "missing {extra}");
        }
    }
}
