//! Spiking neural network substrate for `spikefolio`.
//!
//! Implements §II.B–II.C of the paper from scratch:
//!
//! * **Population encoder** (eqs. 2–4): Gaussian receptive fields per state
//!   dimension, with deterministic (one-step soft-reset LIF) or
//!   probabilistic (Bernoulli) spike generation — [`encoder`].
//! * **Dual-state LIF layers** (eqs. 5–7 / Algorithm 1): synaptic current
//!   and membrane voltage with separate decays `d_c`, `d_v` — [`layer`].
//! * **Rate decoder** (eqs. 8–10): per-action output populations, firing
//!   rate → affine map → normalized action on the simplex — [`decoder`].
//! * **STBP training** (eqs. 11–13): backprop through time with a
//!   configurable pseudo-gradient (rectangular by default) — [`stbp`],
//!   [`surrogate`].
//!
//! The full policy network is assembled in [`network::SdpNetwork`].
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use spikefolio_snn::network::{SdpNetwork, SdpNetworkConfig};
//!
//! let cfg = SdpNetworkConfig::small(6, 3); // 6 state dims, 3 actions
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let net = SdpNetwork::new(cfg, &mut rng);
//! let action = net.act(&[0.9, 1.0, 1.1, 1.0, 0.95, 1.05], &mut rng);
//! assert!((action.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod decoder;
pub mod encoder;
pub mod layer;
pub mod network;
pub mod neuron;
pub mod raster;
pub mod spikes;
pub mod stbp;
pub mod surrogate;

pub use batch::{
    kernel_path, reset_kernel_path, set_kernel_path, BatchLayerTrace, BatchNetworkTrace,
    BatchWorkspace, KernelPath,
};
pub use encoder::{Encoding, PopulationEncoder, PopulationEncoderConfig};
pub use network::{SdpNetwork, SdpNetworkConfig};
pub use neuron::LifParams;
pub use spikes::{SparseMode, SpikeSet};
pub use surrogate::Surrogate;
