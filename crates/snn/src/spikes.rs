//! Spike-set views of rasters and stacked spike matrices.
//!
//! Re-exports the compact event representation from
//! [`spikefolio_tensor::sparse`] and anchors its contract at the SNN
//! level: every spike raster produced by the [`crate::encoder`] or a
//! [`crate::layer::LifLayer`] can be viewed as a [`SpikeSet`] — per row,
//! the ascending indices of the neurons that fired — and that view is
//! what the event-driven batched kernels ([`crate::batch`],
//! [`crate::stbp`]) consume instead of scanning the dense matrix.

pub use spikefolio_tensor::sparse::{SparseMode, SpikeSet};

use spikefolio_tensor::Matrix;

/// Builds the event view of a spike raster or stacked spike matrix: one
/// [`SpikeSet`] row per matrix row, with the ascending column indices of
/// every non-zero entry.
pub fn raster_spike_set(raster: &Matrix) -> SpikeSet {
    SpikeSet::from_matrix(raster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoding, PopulationEncoder, PopulationEncoderConfig};
    use crate::layer::LifLayer;
    use crate::neuron::{LifParams, SpikeFn};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder(encoding: Encoding) -> PopulationEncoder {
        let cfg = PopulationEncoderConfig { pop_size: 4, encoding, ..Default::default() };
        PopulationEncoder::new(3, cfg)
    }

    #[test]
    fn encoder_raster_round_trips_through_the_set() {
        // Build from a real encoder raster and reconstruct the occupancy:
        // binary rasters must round-trip exactly.
        for encoding in [Encoding::Deterministic, Encoding::Probabilistic] {
            let enc = encoder(encoding);
            let mut rng = StdRng::seed_from_u64(11);
            let raster = enc.encode(&[0.9, 1.0, 1.1], 6, &mut rng);
            let set = raster_spike_set(&raster);
            assert_eq!(set.rows(), raster.rows(), "{encoding:?}");
            assert_eq!(set.cols(), raster.cols(), "{encoding:?}");
            assert_eq!(set.occupancy(), raster, "{encoding:?}: binary raster must round-trip");
        }
    }

    #[test]
    fn layer_raster_round_trips_through_the_set() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = LifLayer::new(
            12,
            5,
            LifParams::paper(),
            SpikeFn::Hard { surrogate: crate::surrogate::Surrogate::paper_rectangular() },
            &mut rng,
        );
        let enc = encoder(Encoding::Deterministic); // 3 dims × 4 = 12 = layer input
        let raster = enc.encode(&[1.0, 0.95, 1.05], 7, &mut rng);
        let (out, _) = layer.forward(&raster, false);
        let set = raster_spike_set(&out);
        assert_eq!(set.occupancy(), out);
        let spikes = out.as_slice().iter().filter(|&&s| s > 0.0).count() as u64;
        assert_eq!(set.nnz(), spikes, "event count must equal the spike count");
    }

    #[test]
    fn iteration_order_is_deterministic_and_ascending() {
        let mut rng = StdRng::seed_from_u64(21);
        let raster = encoder(Encoding::Probabilistic).encode(&[1.1, 0.9, 1.0], 5, &mut rng);
        let set = raster_spike_set(&raster);
        for r in 0..set.rows() {
            assert!(
                set.row(r).windows(2).all(|w| w[0] < w[1]),
                "row {r} indices must be strictly ascending"
            );
        }
        // Rebuilding from the identical raster yields the identical set.
        assert_eq!(raster_spike_set(&raster), set);
    }

    #[test]
    fn silent_raster_yields_empty_rows() {
        let set = raster_spike_set(&Matrix::zeros(4, 9));
        assert_eq!(set.rows(), 4);
        assert_eq!(set.nnz(), 0);
        for r in 0..4 {
            assert!(set.row(r).is_empty());
        }
        assert_eq!(set.occupancy(), Matrix::zeros(4, 9));
    }

    #[test]
    fn saturated_raster_yields_full_rows() {
        let full = Matrix::filled(3, 7, 1.0);
        let set = raster_spike_set(&full);
        assert_eq!(set.nnz(), 21);
        for r in 0..3 {
            assert_eq!(set.row(r), &[0, 1, 2, 3, 4, 5, 6]);
        }
        assert_eq!(set.occupancy(), full);
    }
}
