//! The full SDP policy network: encoder → LIF layers → decoder
//! (Fig. 1 / Algorithm 1).

use crate::decoder::{Decoder, DecoderTrace};
use crate::encoder::{PopulationEncoder, PopulationEncoderConfig};
use crate::layer::{LayerTrace, LifLayer};
use crate::neuron::{AdaptiveParams, LifParams, SpikeFn};
use rand::Rng;
use serde::{Deserialize, Serialize};
use spikefolio_tensor::Matrix;

/// Configuration of an [`SdpNetwork`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdpNetworkConfig {
    /// Dimensionality `M` of the raw state vector.
    pub state_dim: usize,
    /// Number of actions `N` (assets + cash).
    pub action_dim: usize,
    /// Population encoder settings.
    pub encoder: PopulationEncoderConfig,
    /// Hidden layer widths (the paper uses `[128, 128]`, Table 2).
    pub hidden: Vec<usize>,
    /// Neurons per output population.
    pub pop_out: usize,
    /// Simulation length `T` (the paper trains with `T = 5`).
    pub timesteps: usize,
    /// LIF neuron parameters (Table 2).
    pub lif: LifParams,
    /// Spike nonlinearity (hard + surrogate in production).
    pub spike_fn: SpikeFn,
    /// Adaptive thresholds (ALIF) on the *hidden* layers; `None` = plain
    /// LIF everywhere (the paper's configuration). The output layer always
    /// uses fixed thresholds so the decoder's rate code stays calibrated.
    pub adaptation: Option<AdaptiveParams>,
}

impl SdpNetworkConfig {
    /// The paper's Table 2 configuration: hidden `128 × 128`, `T = 5`,
    /// `V_th = 0.5`, `d_c = 0.5`, `d_v = 0.8`, rectangular surrogate.
    pub fn paper(state_dim: usize, action_dim: usize) -> Self {
        Self {
            state_dim,
            action_dim,
            encoder: PopulationEncoderConfig::default(),
            hidden: vec![128, 128],
            pop_out: 10,
            timesteps: 5,
            lif: LifParams::paper(),
            spike_fn: SpikeFn::default(),
            adaptation: None,
        }
    }

    /// A small configuration for tests and examples: one hidden layer of
    /// 16 neurons, 5 encoder neurons per dimension, 4 per output
    /// population.
    pub fn small(state_dim: usize, action_dim: usize) -> Self {
        Self {
            state_dim,
            action_dim,
            encoder: PopulationEncoderConfig { pop_size: 5, ..Default::default() },
            hidden: vec![16],
            pop_out: 4,
            timesteps: 5,
            lif: LifParams::paper(),
            spike_fn: SpikeFn::default(),
            adaptation: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.state_dim == 0 || self.action_dim == 0 {
            return Err("state_dim and action_dim must be positive".into());
        }
        if self.pop_out == 0 || self.timesteps == 0 {
            return Err("pop_out and timesteps must be positive".into());
        }
        if self.hidden.contains(&0) {
            return Err("hidden layer widths must be positive".into());
        }
        if let Some(ad) = &self.adaptation {
            ad.validate()?;
        }
        self.lif.validate()
    }
}

/// Spike/synop counters collected during a forward pass — the raw inputs
/// of the neuromorphic energy model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SpikeStats {
    /// Spikes emitted by the encoder populations.
    pub encoder_spikes: u64,
    /// Spikes emitted by LIF neurons (hidden + output layers).
    pub neuron_spikes: u64,
    /// Synaptic operations: every spike delivered across one synapse.
    pub synops: u64,
    /// Neuron-update operations (one per neuron per timestep).
    pub neuron_updates: u64,
}

impl SpikeStats {
    /// Total spikes from all sources.
    pub fn total_spikes(&self) -> u64 {
        self.encoder_spikes + self.neuron_spikes
    }
}

/// Full forward trace for STBP.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkTrace {
    /// Encoder output raster (`T × encoder_dim`).
    pub encoder_spikes: Matrix,
    /// Per-layer traces.
    pub layers: Vec<LayerTrace>,
    /// Decoder trace (firing rates + action).
    pub decoder: DecoderTrace,
    /// Event counters.
    pub stats: SpikeStats,
    /// Spikes emitted by each LIF layer (input-side first); sums to
    /// [`SpikeStats::neuron_spikes`]. The per-layer resolution feeds the
    /// spike-activity telemetry (see
    /// [`SdpNetwork::layer_firing_rates`]).
    pub layer_spikes: Vec<u64>,
}

/// The spiking deterministic policy network of Fig. 1.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct SdpNetwork {
    /// Population encoder (eqs. 2–4).
    pub encoder: PopulationEncoder,
    /// LIF layers, hidden then output (`action_dim × pop_out` wide).
    pub layers: Vec<LifLayer>,
    /// Rate decoder (eqs. 8–10).
    pub decoder: Decoder,
    config: SdpNetworkConfig,
}

impl SdpNetwork {
    /// Builds a randomly initialized network.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new<R: Rng + ?Sized>(config: SdpNetworkConfig, rng: &mut R) -> Self {
        config.validate().expect("invalid SDP network configuration");
        let encoder = PopulationEncoder::new(config.state_dim, config.encoder);
        let mut dims = vec![encoder.output_dim()];
        dims.extend(&config.hidden);
        dims.push(config.action_dim * config.pop_out);
        let n_layers = dims.len() - 1;
        let layers: Vec<LifLayer> = dims
            .windows(2)
            .enumerate()
            .map(|(k, w)| match config.adaptation {
                // ALIF on hidden layers only; the output layer keeps fixed
                // thresholds for a calibrated rate code.
                Some(ad) if k + 1 < n_layers => {
                    LifLayer::new_adaptive(w[0], w[1], config.lif, ad, config.spike_fn, rng)
                }
                _ => LifLayer::new(w[0], w[1], config.lif, config.spike_fn, rng),
            })
            .collect();
        let decoder =
            Decoder::new_randomized(config.action_dim, config.pop_out, config.timesteps, rng);
        Self { encoder, layers, decoder, config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &SdpNetworkConfig {
        &self.config
    }

    /// Network depth `L` (number of LIF layers).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameters (LIF layers + decoder).
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(LifLayer::num_params).sum::<usize>()
            + self.decoder.weights.len()
            + self.decoder.bias.len()
    }

    /// Human-readable architecture summary (one line per stage).
    pub fn summary(&self) -> String {
        let cfg = &self.config;
        let mut s = format!(
            "SdpNetwork: {} state dims → {} actions, T = {}, {} params\n",
            cfg.state_dim,
            cfg.action_dim,
            cfg.timesteps,
            self.num_params()
        );
        s.push_str(&format!(
            "  encoder: {} × {} = {} neurons ({:?}, σ = {:.3})\n",
            cfg.state_dim,
            cfg.encoder.pop_size,
            self.encoder.output_dim(),
            cfg.encoder.encoding,
            self.encoder.sigma()
        ));
        for (k, layer) in self.layers.iter().enumerate() {
            s.push_str(&format!(
                "  layer {k}: LIF {} → {}{}\n",
                layer.in_dim(),
                layer.out_dim(),
                if layer.adaptation.is_some() { " (adaptive)" } else { "" }
            ));
        }
        s.push_str(&format!(
            "  decoder: {} populations × {} neurons → softmax\n",
            cfg.action_dim, cfg.pop_out
        ));
        s
    }

    /// Full forward pass with trace recording (Algorithm 1).
    ///
    /// Returns `(action, trace)`; the action is on the probability simplex.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != config.state_dim`.
    pub fn forward<R: Rng + ?Sized>(&self, state: &[f64], rng: &mut R) -> (Vec<f64>, NetworkTrace) {
        self.run(state, rng, true)
    }

    /// Inference-only forward pass (no trace allocation beyond counters).
    pub fn act<R: Rng + ?Sized>(&self, state: &[f64], rng: &mut R) -> Vec<f64> {
        self.run(state, rng, false).0
    }

    /// Inference with event statistics — used by the energy model.
    pub fn act_with_stats<R: Rng + ?Sized>(
        &self,
        state: &[f64],
        rng: &mut R,
    ) -> (Vec<f64>, SpikeStats) {
        let (action, trace) = self.run(state, rng, false);
        (action, trace.stats)
    }

    fn run<R: Rng + ?Sized>(
        &self,
        state: &[f64],
        rng: &mut R,
        record: bool,
    ) -> (Vec<f64>, NetworkTrace) {
        let t_max = self.config.timesteps;
        let enc = self.encoder.encode(state, t_max, rng);
        let mut stats = SpikeStats {
            encoder_spikes: enc.as_slice().iter().filter(|&&s| s > 0.0).count() as u64,
            ..Default::default()
        };

        let mut raster = enc.clone();
        let mut layer_traces = Vec::with_capacity(self.layers.len());
        let mut layer_spikes = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            // Synops: every incoming spike fans out to all `out_dim` neurons.
            let in_spikes = raster.as_slice().iter().filter(|&&s| s > 0.0).count() as u64;
            stats.synops += in_spikes * layer.out_dim() as u64;
            stats.neuron_updates += (layer.out_dim() * t_max) as u64;
            let (out, tr) = layer.forward(&raster, record);
            let out_spikes = out.as_slice().iter().filter(|&&s| s > 0.0).count() as u64;
            stats.neuron_spikes += out_spikes;
            layer_spikes.push(out_spikes);
            if let Some(tr) = tr {
                layer_traces.push(tr);
            }
            raster = out;
        }

        // Σ_t o(t) over the last layer.
        let out_dim = raster.cols();
        let mut sums = vec![0.0; out_dim];
        for t in 0..raster.rows() {
            for (s, &o) in sums.iter_mut().zip(raster.row(t)) {
                *s += o;
            }
        }
        let dec = self.decoder.decode(&sums);
        let action = dec.action.clone();
        (
            action,
            NetworkTrace {
                encoder_spikes: enc,
                layers: layer_traces,
                decoder: dec,
                stats,
                layer_spikes,
            },
        )
    }

    /// Converts per-layer spike counts (summed over `samples` forward
    /// passes) into per-layer firing rates: spikes per neuron per
    /// timestep, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `layer_spikes.len()` does not match the network depth.
    pub fn layer_firing_rates(&self, layer_spikes: &[u64], samples: u64) -> Vec<f64> {
        assert_eq!(layer_spikes.len(), self.layers.len(), "layer spike count mismatch");
        let t = self.config.timesteps as f64;
        let n = samples.max(1) as f64;
        self.layers
            .iter()
            .zip(layer_spikes)
            .map(|(layer, &spikes)| spikes as f64 / (layer.out_dim() as f64 * t * n))
            .collect()
    }

    /// Encoder spike rate: spikes per encoder neuron per timestep over
    /// `samples` forward passes, in `[0, 1]`.
    pub fn encoder_spike_rate(&self, encoder_spikes: u64, samples: u64) -> f64 {
        let denom =
            self.encoder.output_dim() as f64 * self.config.timesteps as f64 * samples.max(1) as f64;
        encoder_spikes as f64 / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoding;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    fn small_net() -> SdpNetwork {
        SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng())
    }

    #[test]
    fn paper_config_matches_table2() {
        let cfg = SdpNetworkConfig::paper(10, 12);
        assert_eq!(cfg.hidden, vec![128, 128]);
        assert_eq!(cfg.timesteps, 5);
        assert_eq!(cfg.lif, LifParams::paper());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn action_is_on_simplex() {
        let net = small_net();
        let mut r = rng();
        for s in [[1.0, 1.0, 1.0, 1.0], [0.5, 1.5, 0.8, 1.2], [1.1, 0.9, 1.0, 1.3]] {
            let a = net.act(&s, &mut r);
            assert_eq!(a.len(), 3);
            assert!(spikefolio_tensor::simplex::is_on_simplex(&a, 1e-9));
        }
    }

    #[test]
    fn deterministic_encoding_gives_reproducible_actions() {
        let net = small_net();
        let s = [1.0, 0.9, 1.1, 1.05];
        let a1 = net.act(&s, &mut rng());
        let a2 = net.act(&s, &mut rand::rngs::StdRng::seed_from_u64(31337));
        assert_eq!(a1, a2, "deterministic encoder must ignore RNG state");
    }

    #[test]
    fn probabilistic_encoding_varies_with_rng() {
        let mut cfg = SdpNetworkConfig::small(4, 3);
        cfg.encoder.encoding = Encoding::Probabilistic;
        let net = SdpNetwork::new(cfg, &mut rng());
        let s = [1.0, 0.9, 1.1, 1.05];
        let mut r = rng();
        let a1 = net.act(&s, &mut r);
        let a2 = net.act(&s, &mut r);
        // Not guaranteed different in theory, but overwhelmingly likely.
        assert_ne!(a1, a2);
    }

    #[test]
    fn trace_covers_all_layers_and_timesteps() {
        let net = small_net();
        let (_, tr) = net.forward(&[1.0, 1.0, 1.0, 1.0], &mut rng());
        assert_eq!(tr.layers.len(), net.depth());
        for lt in &tr.layers {
            assert_eq!(lt.len(), net.config().timesteps);
        }
        assert_eq!(tr.encoder_spikes.rows(), net.config().timesteps);
    }

    #[test]
    fn stats_count_events() {
        let net = small_net();
        let (_, stats) = net.act_with_stats(&[1.0, 1.0, 1.0, 1.0], &mut rng());
        assert!(stats.encoder_spikes > 0, "a plausible state must excite the encoder");
        assert!(stats.neuron_updates > 0);
        assert_eq!(
            stats.neuron_updates,
            ((16 + 12) * 5) as u64, // (hidden 16 + out 3*4) × T
        );
    }

    #[test]
    fn num_params_counts_everything() {
        let net = small_net();
        let enc_dim = net.encoder.output_dim(); // 4 dims × 5 pop = 20
        let expected = (enc_dim * 16 + 16) + (16 * 12 + 12) + 3 + 3;
        assert_eq!(net.num_params(), expected);
    }

    #[test]
    fn depth_matches_hidden_plus_output() {
        let net = small_net();
        assert_eq!(net.depth(), 2);
        let deep = SdpNetwork::new(SdpNetworkConfig::paper(4, 3), &mut rng());
        assert_eq!(deep.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "state length")]
    fn wrong_state_dim_panics() {
        let net = small_net();
        let _ = net.act(&[1.0], &mut rng());
    }

    #[test]
    fn summary_mentions_every_stage() {
        let net = small_net();
        let s = net.summary();
        assert!(s.contains("encoder"));
        assert!(s.contains("layer 0"));
        assert!(s.contains("decoder"));
        assert!(s.contains(&format!("{} params", net.num_params())));
        // Adaptive layers are flagged.
        let mut cfg = SdpNetworkConfig::small(4, 3);
        cfg.adaptation = Some(crate::neuron::AdaptiveParams::new());
        let alif = SdpNetwork::new(cfg, &mut rng());
        assert!(alif.summary().contains("(adaptive)"));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = SdpNetworkConfig::small(4, 3);
        cfg.timesteps = 0;
        assert!(cfg.validate().is_err());
        let mut cfg2 = SdpNetworkConfig::small(4, 3);
        cfg2.hidden = vec![0];
        assert!(cfg2.validate().is_err());
    }
}
