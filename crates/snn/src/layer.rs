//! Fully-connected dual-state LIF layer (eqs. 5–7 / Algorithm 1).

use crate::neuron::{AdaptiveParams, LifParams, SpikeFn};
use rand::Rng;
use spikefolio_tensor::init::Init;
use spikefolio_tensor::Matrix;

/// A fully-connected layer of dual-state LIF neurons, optionally with
/// adaptive thresholds (ALIF).
///
/// Holds the weight matrix `W` (`out × in`), bias `b`, neuron parameters,
/// and the spike nonlinearity. The layer itself is stateless between
/// forward passes; per-simulation state (`c`, `v`, `o`, adaptation `b`)
/// lives in [`LayerState`] and recorded histories in [`LayerTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct LifLayer {
    /// Synaptic weight matrix, `out_dim × in_dim`.
    pub weights: Matrix,
    /// Bias added to the synaptic current each step.
    pub bias: Vec<f64>,
    /// Neuron dynamics parameters.
    pub params: LifParams,
    /// Spike nonlinearity (hard + surrogate, or soft for gradient checks).
    pub spike_fn: SpikeFn,
    /// Threshold adaptation (ALIF) if enabled.
    pub adaptation: Option<AdaptiveParams>,
}

/// Mutable simulation state of one layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LayerState {
    /// Synaptic currents `c`.
    pub current: Vec<f64>,
    /// Membrane voltages `v`.
    pub voltage: Vec<f64>,
    /// Previous step's spikes `o(t−1)`.
    pub spikes: Vec<f64>,
    /// Adaptation traces `b` (all zeros for plain LIF).
    pub adapt: Vec<f64>,
}

impl LayerState {
    /// Zeroed state for `n` neurons.
    pub fn zeros(n: usize) -> Self {
        Self {
            current: vec![0.0; n],
            voltage: vec![0.0; n],
            spikes: vec![0.0; n],
            adapt: vec![0.0; n],
        }
    }
}

/// Recorded per-timestep history of one layer, consumed by the STBP
/// backward pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LayerTrace {
    /// Input spike vectors `o_in(t)`, one row per timestep.
    pub inputs: Vec<Vec<f64>>,
    /// Post-update membrane voltages `v(t)`.
    pub voltages: Vec<Vec<f64>>,
    /// Output spikes `o(t)`.
    pub outputs: Vec<Vec<f64>>,
    /// Effective thresholds `th(t)` per neuron (constant `V_th` columns
    /// for plain LIF layers).
    pub thresholds: Vec<Vec<f64>>,
}

impl LayerTrace {
    /// Number of recorded timesteps.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }
}

impl LifLayer {
    /// Creates a layer with Kaiming-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        params: LifParams,
        spike_fn: SpikeFn,
        rng: &mut R,
    ) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "layer dims must be positive");
        params.validate().expect("invalid LIF parameters");
        Self {
            weights: Init::KaimingUniform.matrix(out_dim, in_dim, rng),
            bias: vec![0.0; out_dim],
            params,
            spike_fn,
            adaptation: None,
        }
    }

    /// Creates an ALIF layer (adaptive thresholds).
    ///
    /// # Panics
    ///
    /// Panics if the LIF or adaptation parameters are invalid.
    pub fn new_adaptive<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        params: LifParams,
        adaptation: AdaptiveParams,
        spike_fn: SpikeFn,
        rng: &mut R,
    ) -> Self {
        adaptation.validate().expect("invalid adaptation parameters");
        let mut layer = Self::new(in_dim, out_dim, params, spike_fn, rng);
        layer.adaptation = Some(adaptation);
        layer
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension (number of neurons).
    pub fn out_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Advances the layer one timestep: updates `state` in place per
    /// Algorithm 1 and returns nothing (read spikes from
    /// `state.spikes`). If `trace` is provided, records inputs, voltages,
    /// and outputs.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn step(&self, input: &[f64], state: &mut LayerState, mut trace: Option<&mut LayerTrace>) {
        assert_eq!(input.len(), self.in_dim(), "input length mismatch");
        assert_eq!(state.current.len(), self.out_dim(), "state size mismatch");
        let p = &self.params;
        // c(t) = d_c·c(t−1) + W·o_in + b   (eq. 5)
        let drive = self.weights.matvec(input);
        for (i, d) in drive.iter().enumerate() {
            state.current[i] = p.d_c * state.current[i] + d + self.bias[i];
            // v(t) = d_v·v(t−1)·(1 − o(t−1)) + c(t)   (eq. 6 + reset)
            state.voltage[i] =
                p.d_v * state.voltage[i] * (1.0 - state.spikes[i]) + state.current[i];
        }
        // Effective thresholds: th(t) = V_th + β·b(t) with the adaptation
        // trace updated from the previous step's spikes.
        let thresholds: Vec<f64> = match self.adaptation {
            Some(ad) => {
                for (b, &o_prev) in state.adapt.iter_mut().zip(&state.spikes) {
                    *b = ad.rho * *b + (1.0 - ad.rho) * o_prev;
                }
                state.adapt.iter().map(|&b| p.v_th + ad.beta * b).collect()
            }
            None => vec![p.v_th; self.out_dim()],
        };
        if let Some(tr) = trace.as_deref_mut() {
            tr.inputs.push(input.to_vec());
            tr.voltages.push(state.voltage.clone());
            tr.thresholds.push(thresholds.clone());
        }
        for (i, &th) in thresholds.iter().enumerate() {
            state.spikes[i] = self.spike_fn.spike(state.voltage[i], th); // eq. 7
        }
        if let Some(tr) = trace {
            tr.outputs.push(state.spikes.clone());
        }
    }

    /// Runs the layer over a whole spike raster (`T × in_dim`), returning
    /// the output raster (`T × out_dim`) and, if requested, the trace.
    pub fn forward(&self, inputs: &Matrix, record: bool) -> (Matrix, Option<LayerTrace>) {
        let t_max = inputs.rows();
        let mut state = LayerState::zeros(self.out_dim());
        let mut trace = if record { Some(LayerTrace::default()) } else { None };
        let mut out = Matrix::zeros(t_max, self.out_dim());
        for t in 0..t_max {
            self.step(inputs.row(t).to_vec().as_slice(), &mut state, trace.as_mut());
            out.row_mut(t).copy_from_slice(&state.spikes);
        }
        (out, trace)
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::Surrogate;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    fn hard() -> SpikeFn {
        SpikeFn::Hard { surrogate: Surrogate::paper_rectangular() }
    }

    #[test]
    fn dims_and_param_count() {
        let l = LifLayer::new(8, 4, LifParams::paper(), hard(), &mut rng());
        assert_eq!(l.in_dim(), 8);
        assert_eq!(l.out_dim(), 4);
        assert_eq!(l.num_params(), 8 * 4 + 4);
    }

    #[test]
    fn silent_input_produces_no_spikes() {
        let l = LifLayer::new(6, 3, LifParams::paper(), hard(), &mut rng());
        let inputs = Matrix::zeros(5, 6);
        let (out, _) = l.forward(&inputs, false);
        assert_eq!(out, Matrix::zeros(5, 3));
    }

    #[test]
    fn strong_constant_drive_spikes() {
        let mut l = LifLayer::new(2, 1, LifParams::paper(), hard(), &mut rng());
        l.weights = Matrix::filled(1, 2, 1.0);
        let inputs = Matrix::filled(4, 2, 1.0); // drive = 2.0 per step ≫ V_th
        let (out, _) = l.forward(&inputs, false);
        assert!(out.as_slice().iter().sum::<f64>() >= 3.0, "neuron should spike nearly every step");
    }

    #[test]
    fn dynamics_match_hand_simulation() {
        // One neuron, one input, weight 0.3, no bias.
        let mut l = LifLayer::new(1, 1, LifParams::paper(), hard(), &mut rng());
        l.weights = Matrix::filled(1, 1, 0.3);
        l.bias[0] = 0.0;
        let inputs = Matrix::filled(6, 1, 1.0);
        let (out, tr) = l.forward(&inputs, true);
        let tr = tr.unwrap();
        // Hand-rolled dual-state dynamics.
        let (mut c, mut v, mut o) = (0.0, 0.0, 0.0);
        for t in 0..6 {
            c = 0.5 * c + 0.3;
            v = 0.8 * v * (1.0 - o) + c;
            let exp_v = v;
            o = if v > 0.5 { 1.0 } else { 0.0 };
            assert!((tr.voltages[t][0] - exp_v).abs() < 1e-12, "voltage at t={t}");
            assert_eq!(out[(t, 0)], o, "spike at t={t}");
        }
    }

    #[test]
    fn reset_clears_voltage_contribution() {
        // After a spike, the voltage restarts from the new current alone.
        let mut l =
            LifLayer::new(1, 1, LifParams { v_th: 0.5, d_c: 0.0, d_v: 0.9 }, hard(), &mut rng());
        l.weights = Matrix::filled(1, 1, 0.6); // immediate spike every step? v=0.6>0.5
        let inputs = Matrix::filled(3, 1, 1.0);
        let (out, tr) = l.forward(&inputs, true);
        let tr = tr.unwrap();
        // t0: c=0.6, v=0.6 → spike. t1: c=0.6, v=0.9*0.6*(1-1)+0.6=0.6 → spike.
        assert_eq!(out.as_slice(), &[1.0, 1.0, 1.0]);
        assert!((tr.voltages[1][0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn trace_shapes_are_consistent() {
        let l = LifLayer::new(5, 7, LifParams::paper(), hard(), &mut rng());
        let inputs = Matrix::filled(4, 5, 1.0);
        let (_, tr) = l.forward(&inputs, true);
        let tr = tr.unwrap();
        assert_eq!(tr.len(), 4);
        assert!(!tr.is_empty());
        assert_eq!(tr.inputs[0].len(), 5);
        assert_eq!(tr.voltages[0].len(), 7);
        assert_eq!(tr.outputs[0].len(), 7);
    }

    #[test]
    fn no_record_means_no_trace() {
        let l = LifLayer::new(3, 3, LifParams::paper(), hard(), &mut rng());
        let (_, tr) = l.forward(&Matrix::zeros(2, 3), false);
        assert!(tr.is_none());
    }

    #[test]
    fn soft_spikes_are_graded() {
        let l =
            LifLayer::new(2, 2, LifParams::paper(), SpikeFn::Soft { temperature: 0.2 }, &mut rng());
        let (out, _) = l.forward(&Matrix::filled(3, 2, 1.0), false);
        // Soft outputs are in (0,1), not exactly binary.
        assert!(out.as_slice().iter().all(|&o| (0.0..=1.0).contains(&o)));
        assert!(out.as_slice().iter().any(|&o| o > 0.0 && o < 1.0));
    }
}
